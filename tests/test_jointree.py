"""Unit tests for GYO reduction and join trees (Section 4.1)."""

import pytest

from repro.errors import NotAcyclicError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import (
    build_join_tree,
    gyo_reduction,
    is_alpha_acyclic,
    join_tree_of_query,
)
from repro.logic.parser import parse_cq


def H(*edges):
    vertices = {v for e in edges for v in e}
    return Hypergraph(vertices, [frozenset(e) for e in edges])


def test_path_is_acyclic():
    assert is_alpha_acyclic(H({"x", "y"}, {"y", "z"}))


def test_triangle_is_cyclic():
    assert not is_alpha_acyclic(H({"x", "y"}, {"y", "z"}, {"z", "x"}))


def test_covered_triangle_is_acyclic():
    assert is_alpha_acyclic(H({"x", "y"}, {"y", "z"}, {"z", "x"}, {"x", "y", "z"}))


def test_alpha_not_hereditary():
    """The hallmark of alpha-acyclicity: removing the covering edge
    reintroduces the cycle (motivates beta-acyclicity, Definition 4.29)."""
    full = H({"x", "y"}, {"y", "z"}, {"z", "x"}, {"x", "y", "z"})
    assert is_alpha_acyclic(full)
    sub = full.induced_by_edges([0, 1, 2])
    assert not is_alpha_acyclic(sub)


def test_empty_hypergraph_is_acyclic():
    assert is_alpha_acyclic(Hypergraph(set(), []))


def test_single_edge():
    tree = build_join_tree(H({"x", "y", "z"}))
    assert tree.nodes() == [0]
    assert tree.is_valid()


def test_gyo_residual_on_cycle():
    residual, _ = gyo_reduction(H({"x", "y"}, {"y", "z"}, {"z", "x"}))
    assert residual


def test_join_tree_valid_on_examples():
    cases = [
        H({"x", "y"}, {"y", "z"}),
        H({"x", "y"}, {"y", "z"}, {"z", "w"}, {"w", "v"}),
        H({"a", "b", "c"}, {"b", "c", "d"}, {"c", "d", "e"}),
        H({"a"}, {"b"}, {"c"}),                      # disconnected singletons
        H({"a", "b"}, {"a", "b"}),                   # duplicate edges
        H({"x", "y"}, {"y", "z"}, {"x", "y", "z"}),
    ]
    for h in cases:
        tree = build_join_tree(h)
        assert tree.is_valid(), h
        assert set(tree.nodes()) == set(range(len(h.edges)))


def test_join_tree_raises_on_cyclic():
    with pytest.raises(NotAcyclicError):
        build_join_tree(H({"x", "y"}, {"y", "z"}, {"z", "x"}))


def test_join_tree_raises_on_edgeless():
    with pytest.raises(NotAcyclicError):
        build_join_tree(Hypergraph({"x"}, []))


def test_bottom_up_parents_after_children():
    h = H({"a", "b"}, {"b", "c"}, {"c", "d"})
    tree = build_join_tree(h)
    order = tree.bottom_up()
    position = {n: i for i, n in enumerate(order)}
    for node, parent in tree.parent.items():
        if parent is not None:
            assert position[node] < position[parent]


def test_top_down_is_reverse():
    tree = build_join_tree(H({"a", "b"}, {"b", "c"}))
    assert tree.top_down() == list(reversed(tree.bottom_up()))


def test_leaves():
    tree = build_join_tree(H({"a", "b"}, {"b", "c"}, {"b", "d"}))
    assert set(tree.leaves()) <= set(tree.nodes())
    assert tree.leaves()


def test_rerooted_preserves_validity():
    h = H({"a", "b"}, {"b", "c"}, {"c", "d"})
    tree = build_join_tree(h)
    for node in tree.nodes():
        rerooted = tree.rerooted(node)
        assert rerooted.root == node
        assert rerooted.is_valid()
        assert sorted(rerooted.tree_edges()) != None  # structure intact


def test_figure1_join_tree(figure1_query):
    tree = join_tree_of_query(figure1_query)
    assert tree.is_valid()
    assert len(tree.nodes()) == 5


def test_join_tree_repr_mentions_edges():
    tree = build_join_tree(H({"a", "b"}, {"b", "c"}))
    assert "a" in repr(tree) and "c" in repr(tree)


def test_validity_check_rejects_bad_tree():
    from repro.hypergraph.jointree import JoinTree

    h = H({"x", "y"}, {"y", "z"}, {"z", "w"})
    # chain 0-2 with 1 hanging off 2 breaks connectivity of y
    bad = JoinTree(h, 0, {0: None, 2: 0, 1: 2})
    assert not bad.is_valid()
