"""``repro analyze`` — estimated-vs-actual introspection (ISSUE 9).

Covers the analysis backend (per-operator rows, scale checks, flag
semantics), the text/HTML renderings, the CLI subcommand, and the
acceptance scenario tying the whole PR together: a watchdog violation's
trace_id surfaces as the p99 exemplar on the plan's delay sketch,
resolves to a retained trace file on disk, and ``analyze`` flags the
offending operator.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.core.plancache import clear_plan_cache
from repro.data.generators import random_database
from repro.logic.parser import parse_query
from repro.obs import watchdog as wdmod
from repro.obs.analyze import FLAG, INFO, OK, analyze, render_text
from repro.obs.expose import emit_event, event_log
from repro.obs.registry import registry, set_enabled
from repro.obs.report import render_analyze_html
from repro.obs.tracelint import lint_chrome_trace_file
from repro.obs.watchdog import GuaranteeWatchdog, plan_label

FREE_CONNEX = "Q(x) :- R(x, z), S(z, y)"
ACYCLIC_ONLY = "Q(x, y) :- R(x, z), S(z, y)"


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_plan_cache()
    registry().reset()
    event_log().clear()
    prev = set_enabled(True)
    wdmod.uninstall()
    yield
    wdmod.uninstall()
    wdmod.watchdog().reset()
    set_enabled(prev)
    registry().reset()
    event_log().clear()
    clear_plan_cache()
    obs.disable()


# ------------------------------------------------------------- the backend


def test_analyze_free_connex_produces_the_full_row_set():
    q = parse_query(FREE_CONNEX)
    analysis = analyze(q, size=800, seed=3)
    ops = [r["operator"] for r in analysis["rows"]]
    assert "materialise" in ops
    assert "semijoin[bottom_up]" in ops and "semijoin[top_down]" in ops
    assert any(op.endswith("full_reduce") for op in ops)
    assert "enumerate" in ops
    assert analysis["expected"]["delay"] == "constant-delay"
    assert analysis["expected"]["preprocessing"] == "linear"
    assert analysis["sizes"] == [800, 1600]
    assert len(analysis["answers"]) == 2
    assert len(analysis["trace_ids"]) == 2  # both runs sampled
    # a healthy run flags nothing
    assert analysis["flagged"] == []
    # every row's status is one of the three levels
    assert all(r["status"] in (OK, FLAG, INFO) for r in analysis["rows"])


def test_analyze_with_explicit_db_skips_the_scale_run():
    q = parse_query(FREE_CONNEX)
    db = random_database({"R": 2, "S": 2}, 30, 200, seed=1)
    analysis = analyze(q, db)
    assert len(analysis["sizes"]) == 1 and len(analysis["answers"]) == 1
    # scale-dependent checks degrade to info, never to a false flag
    prep = [r for r in analysis["rows"]
            if r["operator"].endswith("full_reduce")]
    assert prep and prep[0]["status"] in (OK, INFO)


def test_semijoin_invariant_rows_report_filtering():
    q = parse_query(FREE_CONNEX)
    analysis = analyze(q, size=600, seed=2)
    for phase in ("bottom_up", "top_down"):
        row = next(r for r in analysis["rows"]
                   if r["operator"] == f"semijoin[{phase}]")
        assert row["status"] == OK
        assert "in " in row["actual"] and "out" in row["actual"]


def test_recent_violation_for_this_plan_flags_enumerate():
    q = parse_query(FREE_CONNEX)
    emit_event("guarantee.violation", plan=plan_label(q),
               expected="constant-delay", p99_ns=10 ** 6,
               budget_ns=10 ** 3, trace_id="feedbeeffeedbeef")
    db = random_database({"R": 2, "S": 2}, 30, 200, seed=1)
    analysis = analyze(q, db)
    row = next(r for r in analysis["rows"] if r["operator"] == "enumerate")
    assert row["status"] == FLAG
    assert "guarantee.violation" in row["note"]
    assert "enumerate" in analysis["flagged"]
    assert analysis["violations"]


def test_violation_for_a_different_plan_does_not_flag():
    q = parse_query(FREE_CONNEX)
    emit_event("guarantee.violation", plan="some other plan",
               expected="constant-delay", p99_ns=10 ** 6, budget_ns=10 ** 3)
    db = random_database({"R": 2, "S": 2}, 30, 200, seed=1)
    analysis = analyze(q, db)
    assert "enumerate" not in analysis["flagged"]


# ------------------------------------------------------------- renderings


def test_render_text_is_a_complete_table():
    q = parse_query(FREE_CONNEX)
    analysis = analyze(q, size=600, seed=2)
    text = render_text(analysis)
    assert "operator" in text and "expected" in text and "actual" in text
    for r in analysis["rows"]:
        assert r["operator"] in text
    assert "all operators within their predicted class" in text


def test_render_text_names_the_flagged_operators():
    q = parse_query(FREE_CONNEX)
    emit_event("guarantee.violation", plan=plan_label(q),
               expected="constant-delay", p99_ns=10 ** 6, budget_ns=10 ** 3)
    db = random_database({"R": 2, "S": 2}, 30, 200, seed=1)
    text = render_text(analyze(q, db))
    assert "FLAGGED: enumerate" in text


def test_render_analyze_html_is_self_contained():
    q = parse_query(FREE_CONNEX)
    analysis = analyze(q, size=600, seed=2)
    html_text = render_analyze_html(analysis)
    assert html_text.startswith("<!DOCTYPE html>")
    for r in analysis["rows"]:
        assert r["operator"] in html_text
    assert "<script" not in html_text  # inline-only, like the dashboard


# -------------------------------------------------------------------- CLI


def test_cli_analyze_prints_table_and_writes_html(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "panel.html"
    rc = main(["analyze", FREE_CONNEX, "--size", "500", "--seed", "2",
               "--html", str(out)])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "enumerate" in stdout and "constant-delay" in stdout
    assert out.exists() and "<!DOCTYPE html>" in out.read_text()


def test_cli_analyze_strict_fails_on_flag(tmp_path, capsys):
    from repro.cli import main

    q = parse_query(FREE_CONNEX)
    emit_event("guarantee.violation", plan=plan_label(q),
               expected="constant-delay", p99_ns=10 ** 6, budget_ns=10 ** 3)
    data = tmp_path / "data"
    data.mkdir()
    db = random_database({"R": 2, "S": 2}, 20, 80, seed=1)
    for rel in db.relations():
        with open(data / f"{rel.name}.csv", "w") as fh:
            for row in rel:
                fh.write(",".join(str(v) for v in row) + "\n")
    rc = main(["analyze", FREE_CONNEX, "--data", str(data), "--strict"])
    assert rc == 1
    assert "FLAGGED: enumerate" in capsys.readouterr().out


# ------------------------------------------------------------- acceptance


def test_acceptance_violation_exemplar_resolves_to_retained_trace(tmp_path):
    """The PR's end-to-end story: force a superlinear path on a
    constant-delay plan under the watchdog with tail retention on.  The
    fired ``guarantee.violation`` carries the request's trace_id; that
    same trace_id is the p99 exemplar on the plan's delay sketch,
    resolves through the watchdog to a retained (and lint-clean) trace
    file, and ``analyze`` flags the offending operator."""
    q = parse_query(FREE_CONNEX)
    label = plan_label(q)
    wd = GuaranteeWatchdog(factor=4.0, baseline_samples=64,
                           window_samples=64, min_budget_ns=10,
                           tail_dir=str(tmp_path))
    wd.tail_tracing = True

    with wd.tail_capture(label) as tr:
        # compliant baseline, then a quadratically degrading tail —
        # the forced superlinear path of a constant-delay plan
        with obs.span("enumerate.block", plan=label):
            for _ in range(64):
                wd.observe(label, 100, 1, "constant-delay")
            for i in range(64 * 2):
                wd.observe(label, 100 * (1 + i * i), 1, "constant-delay")
    trace_id = tr.context.trace_id
    assert trace_id

    events = event_log().recent(name="guarantee.violation")
    assert events and events[-1]["plan"] == label
    assert events[-1]["trace_id"] == trace_id

    # the violation's trace_id is the p99 exemplar on the delay sketch
    sketch = registry().sketch("delay.plan." + label)
    assert sketch is not None
    exemplar = sketch.exemplar(0.99)
    assert exemplar is not None and exemplar[1] == trace_id

    # ... and resolves to a retained, schema-clean trace file
    path = wd.retained_trace_path(trace_id)
    assert path is not None and os.path.exists(path)
    assert path == str(tmp_path / f"trace-{trace_id}.json")
    assert lint_chrome_trace_file(path) == []

    # ... and analyze flags the operator that broke its contract
    db = random_database({"R": 2, "S": 2}, 30, 200, seed=1)
    analysis = analyze(q, db)
    assert "enumerate" in analysis["flagged"]
    flagged_row = next(r for r in analysis["rows"]
                       if r["operator"] == "enumerate")
    assert "guarantee.violation" in flagged_row["note"]
