"""Unit tests for body homomorphisms, provided variables and union
extensions (Definitions 4.11-4.12, Equation 1)."""

from repro.hypergraph.unionext import (
    body_homomorphisms,
    find_free_connex_extension,
    is_free_connex_ucq,
    provided_sets,
    union_extension_plan,
)
from repro.logic.parser import parse_cq, parse_query
from repro.logic.terms import Variable
from repro.logic.ucq import UnionOfConjunctiveQueries


def equation1_ucq() -> UnionOfConjunctiveQueries:
    phi1 = parse_cq("Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w)")
    phi2 = parse_cq("Q(x, z, y) :- R1(x, z), R2(z, y)")
    return UnionOfConjunctiveQueries([phi1, phi2])


def test_body_homomorphism_exists():
    phi1 = parse_cq("Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w)")
    phi2 = parse_cq("Q(x, z, y) :- R1(x, z), R2(z, y)")
    homs = list(body_homomorphisms(phi2, phi1))
    assert len(homs) == 1
    h = homs[0]
    assert h[Variable("x")] is Variable("x")
    assert h[Variable("z")] is Variable("z")
    assert h[Variable("y")] is Variable("y")


def test_no_homomorphism_when_relations_missing():
    src = parse_cq("Q(x) :- T(x, y)")
    dst = parse_cq("Q(x) :- R(x, y)")
    assert list(body_homomorphisms(src, dst)) == []


def test_homomorphism_respects_constants():
    src = parse_cq("Q(x) :- R(x, 1)")
    dst_ok = parse_cq("Q(x) :- R(x, 1)")
    dst_bad = parse_cq("Q(x) :- R(x, 2)")
    assert list(body_homomorphisms(src, dst_ok))
    assert not list(body_homomorphisms(src, dst_bad))


def test_homomorphism_merging_variables():
    src = parse_cq("Q(x, y) :- R(x, y)")
    dst = parse_cq("Q(u) :- R(u, u)")
    homs = list(body_homomorphisms(src, dst))
    assert len(homs) == 1
    assert homs[0][Variable("x")] is homs[0][Variable("y")]


def test_equation1_provided_set():
    """phi2 provides {x, z, y} to phi1 (the paper's worked example)."""
    ucq = equation1_ucq()
    provided = provided_sets(ucq[1], 1, ucq[0])
    images = {frozenset(v.name for v in p.variables) for p in provided}
    assert frozenset({"x", "z", "y"}) in images


def test_equation1_extension_is_free_connex():
    ucq = equation1_ucq()
    assert not ucq[0].is_free_connex()
    ext = find_free_connex_extension(ucq, 0)
    assert ext is not None and not ext.is_trivial()
    assert ext.extended.is_free_connex()
    # the added atom covers {x, z, y}, matching P1(x, z, y) in the paper
    added = ext.extended.atoms[-1]
    assert {v.name for v in added.variable_set()} == {"x", "y", "z"}


def test_trivial_extension_for_free_connex_disjunct():
    ucq = equation1_ucq()
    ext = find_free_connex_extension(ucq, 1)
    assert ext is not None and ext.is_trivial()


def test_union_extension_plan_complete():
    ucq = equation1_ucq()
    plan = union_extension_plan(ucq)
    assert plan is not None and len(plan) == 2
    assert is_free_connex_ucq(ucq)


def test_intractable_union_has_no_plan():
    """Two unrelated non-free-connex disjuncts provide nothing useful."""
    phi1 = parse_cq("Q(x, y) :- A(x, z), B(z, y)")
    phi2 = parse_cq("Q(x, y) :- C(x, z), D(z, y)")
    ucq = UnionOfConjunctiveQueries([phi1, phi2])
    assert union_extension_plan(ucq) is None
    assert not is_free_connex_ucq(ucq)


def test_self_union_of_free_connex():
    phi = parse_cq("Q(x) :- R(x, y)")
    ucq = UnionOfConjunctiveQueries([phi, parse_cq("Q(x) :- S(x, y)")])
    plan = union_extension_plan(ucq)
    assert plan is not None
    assert all(e.is_trivial() for e in plan)
