"""Tests for matchings (Equation 2 / Theorem 4.22), the Karp-Luby FPRAS
(Section 5.1), and #Sigma_0 counting (Theorem 5.3)."""

import pytest

from repro.counting.approx import (
    count_so_models_bruteforce,
    encode_3dnf,
    exact_dnf_count,
    exact_dnf_count_inclusion_exclusion,
    karp_luby_dnf,
)
from repro.counting.matchings import (
    count_perfect_matchings_bruteforce,
    count_perfect_matchings_via_acq,
    product_query,
    star_query,
)
from repro.counting.spectrum import count_sigma0, count_so_bruteforce
from repro.counting.weighted import WeightFunction
from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.fo import And, Not, Or, RelAtom, SOAtom, SecondOrderVariable
from repro.logic.terms import Constant, Variable


# ----------------------------------------------------------------- matchings


def test_product_query_is_quantifier_free_free_connex():
    phi = product_query([0, 1, 2])
    assert phi.is_quantifier_free()
    assert phi.is_acyclic() and phi.is_free_connex()


def test_star_query_star_size_is_n():
    for n in (2, 4, 6):
        assert star_query(list(range(n))).quantified_star_size() == n


def test_perfect_matchings_on_known_graphs():
    # complete bipartite K_{3,3}: 3! = 6 perfect matchings
    a = [("a", i) for i in range(3)]
    b = [("b", i) for i in range(3)]
    rel = Relation("E", 2, [(u, v) for u in a for v in b])
    db = Database([rel])
    assert count_perfect_matchings_bruteforce(db, a, b) == 6
    assert count_perfect_matchings_via_acq(db, a, b) == 6


def test_perfect_matchings_randomized_agreement():
    for seed in range(5):
        db, a, b = generators.random_bipartite_graph(5, 0.45, seed=seed)
        assert count_perfect_matchings_bruteforce(db, a, b) == \
            count_perfect_matchings_via_acq(db, a, b), seed


def test_perfect_matchings_empty_graph():
    a = [("a", 0)]
    b = [("b", 0)]
    rel = Relation("E", 2)
    db = Database([rel], domain=a + b)
    assert count_perfect_matchings_bruteforce(db, a, b) == 0
    assert count_perfect_matchings_via_acq(db, a, b) == 0


def test_perfect_matchings_unbalanced_sides():
    db, a, b = generators.random_bipartite_graph(3, 0.5, seed=0)
    assert count_perfect_matchings_bruteforce(db, a, b[:2]) == 0


# -------------------------------------------------------------------- FPRAS


def test_exact_counters_agree():
    for seed in range(6):
        terms = generators.random_kdnf(8, 5, k=3, seed=seed)
        assert exact_dnf_count(terms, 8) == \
            exact_dnf_count_inclusion_exclusion(terms, 8), seed


def test_karp_luby_within_epsilon():
    failures = 0
    for seed in range(8):
        terms = generators.random_kdnf(10, 8, k=3, seed=seed)
        exact = exact_dnf_count_inclusion_exclusion(terms, 10)
        est = karp_luby_dnf(terms, 10, epsilon=0.1, seed=seed)
        if abs(est - exact) > 0.1 * max(exact, 1):
            failures += 1
    # Definition 5.4 allows failure probability < 1/4 per call
    assert failures <= 2


def test_karp_luby_edge_cases():
    assert karp_luby_dnf([], 5, epsilon=0.1) == 0.0
    with pytest.raises(ValueError):
        karp_luby_dnf([[1]], 5, epsilon=0.0)
    # single full-width term: exactly 1 satisfying assignment
    est = karp_luby_dnf([[1, 2, 3]], 3, epsilon=0.05, seed=0)
    assert est == pytest.approx(1.0, rel=0.2)


def test_3dnf_encoding_bijection():
    for seed in range(4):
        terms = generators.random_kdnf(5, 4, k=3, seed=seed)
        enc = encode_3dnf(terms, 5)
        assert count_so_models_bruteforce(enc) == exact_dnf_count(terms, 5), seed


def test_3dnf_encoding_rejects_wrong_width():
    with pytest.raises(ValueError):
        encode_3dnf([[1, 2]], 3)


# ------------------------------------------------------------------ #Sigma_0


def test_count_sigma0_matches_bruteforce():
    X = SecondOrderVariable("X", 1)
    x = Variable("x")
    rel = Relation("P", 1, [(0,), (1,)])
    db = Database([rel], domain=[0, 1, 2])
    cases = [
        SOAtom(X, [Constant(0)]),
        And(RelAtom("P", [x]), SOAtom(X, [x])),
        Or(SOAtom(X, [Constant(1)]), Not(SOAtom(X, [Constant(2)]))),
    ]
    for phi in cases:
        assert count_sigma0(phi, db) == count_so_bruteforce(phi, db)


def test_count_sigma0_two_so_variables():
    X = SecondOrderVariable("X", 1)
    Y = SecondOrderVariable("Y", 1)
    db = Database.from_relations({"P": [(0,)]})
    db.add_domain_values([1])
    phi = And(SOAtom(X, [Constant(0)]), Not(SOAtom(Y, [Constant(1)])))
    assert count_sigma0(phi, db) == count_so_bruteforce(phi, db)


def test_count_sigma0_rejects_quantifiers():
    from repro.errors import UnsupportedQueryError
    from repro.logic.fo import Exists

    X = SecondOrderVariable("X", 1)
    db = Database.from_relations({"P": [(0,)]})
    with pytest.raises(UnsupportedQueryError):
        count_sigma0(Exists(["x"], SOAtom(X, ["x"])), db)


def test_count_sigma0_is_exact_big_integer():
    """Polynomial time even when the count is astronomically large."""
    X = SecondOrderVariable("X", 2)
    db = Database.from_relations({"P": [(i, i) for i in range(12)]})
    phi = SOAtom(X, [Constant(0), Constant(0)])
    got = count_sigma0(phi, db)
    assert got == 2 ** (12 * 12 - 1)


def test_weight_function_interface():
    w = WeightFunction({1: 3})
    assert w(1) == 3 and w(99) == 1
    assert w.tuple_weight((1, 1)) == 9
    fn = WeightFunction(lambda v: 2)
    assert fn.tuple_weight((0, 0, 0)) == 8
    assert WeightFunction.ones()(5) == 1
