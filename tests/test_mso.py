"""Tests for tree decompositions and the Courcelle-style DP (Theorems
3.11-3.12), cross-validated against brute force."""

import random
from itertools import combinations, product

import pytest

from repro.data import generators
from repro.mso.courcelle import count_solutions, decide, optimise, run_dp
from repro.mso.enumeration import (
    enumerate_labelings,
    enumerate_solutions,
    two_cluster_example,
)
from repro.mso.properties import (
    ColoringProperty,
    DominatingSetProperty,
    IndependentSetProperty,
    VertexCoverProperty,
)
from repro.mso.treedecomp import (
    TreeDecomposition,
    adjacency_from_database,
    make_nice,
    tree_decomposition,
)


def random_graph(n, p, seed):
    rng = random.Random(seed)
    graph = {i: set() for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph[i].add(j)
                graph[j].add(i)
    return graph


def brute_independent_sets(graph):
    vs = list(graph)
    out = []
    for r in range(len(vs) + 1):
        for c in combinations(vs, r):
            s = set(c)
            if all(w not in s for u in s for w in graph[u]):
                out.append(frozenset(s))
    return out


def brute_vertex_covers(graph):
    vs = list(graph)
    out = []
    for r in range(len(vs) + 1):
        for c in combinations(vs, r):
            s = set(c)
            if all(u in s or w in s for u in vs for w in graph[u]):
                out.append(frozenset(s))
    return out


def brute_dominating_sets(graph):
    vs = list(graph)
    out = []
    for r in range(len(vs) + 1):
        for c in combinations(vs, r):
            s = set(c)
            if all(u in s or (graph[u] & s) for u in vs):
                out.append(frozenset(s))
    return out


def brute_colorings(graph, k):
    vs = list(graph)
    count = 0
    for combo in product(range(k), repeat=len(vs)):
        col = dict(zip(vs, combo))
        if all(col[u] != col[w] for u in vs for w in graph[u]):
            count += 1
    return count


# --------------------------------------------------------- decompositions


def test_decomposition_valid_on_standard_graphs():
    for db, expected_width in [
        (generators.path_graph(12), 1),
        (generators.cycle_graph(10), 2),
        (generators.grid_graph(3, 5), 3),
    ]:
        graph = adjacency_from_database(db)
        for strategy in ("min_degree", "min_fill"):
            td = tree_decomposition(graph, strategy)
            assert td.is_valid(graph), strategy
            assert td.width <= expected_width, (strategy, td.width)


def test_decomposition_on_random_graphs():
    for seed in range(5):
        graph = random_graph(10, 0.3, seed)
        td = tree_decomposition(graph)
        assert td.is_valid(graph)


def test_decomposition_disconnected_graph():
    graph = {0: {1}, 1: {0}, 2: set(), 3: {4}, 4: {3}}
    td = tree_decomposition(graph)
    assert td.is_valid(graph)


def test_empty_graph_decomposition():
    td = tree_decomposition({})
    assert td.width <= 0


def test_nice_form_has_empty_root_and_valid_kinds():
    graph = random_graph(8, 0.3, 1)
    nice = make_nice(tree_decomposition(graph))
    assert nice.nodes[nice.root].bag == frozenset()
    for node in nice.nodes:
        assert node.kind in ("leaf", "introduce", "forget", "join")
        if node.kind == "join":
            l, r = node.children
            assert nice.nodes[l].bag == nice.nodes[r].bag == node.bag


def test_validity_detects_broken_decomposition():
    graph = {0: {1}, 1: {0}}
    bad = TreeDecomposition([frozenset({0}), frozenset({1})], [None, 0])
    assert not bad.is_valid(graph)  # edge (0, 1) in no bag


# --------------------------------------------------------------------- DP


def test_independent_set_counting_randomized():
    for seed in range(6):
        graph = random_graph(8, 0.35, seed)
        expected = brute_independent_sets(graph)
        assert count_solutions(graph, IndependentSetProperty()) == len(expected)
        assert optimise(graph, IndependentSetProperty(), maximise=True) == \
            max(len(s) for s in expected)


def test_vertex_cover_randomized():
    for seed in range(5):
        graph = random_graph(7, 0.4, seed)
        expected = brute_vertex_covers(graph)
        assert count_solutions(graph, VertexCoverProperty()) == len(expected)
        assert optimise(graph, VertexCoverProperty()) == \
            min(len(s) for s in expected)


def test_dominating_set_randomized():
    for seed in range(5):
        graph = random_graph(7, 0.35, seed)
        expected = brute_dominating_sets(graph)
        assert count_solutions(graph, DominatingSetProperty()) == len(expected)
        assert optimise(graph, DominatingSetProperty()) == \
            min(len(s) for s in expected)


def test_coloring_randomized():
    for seed in range(5):
        graph = random_graph(7, 0.4, seed)
        for k in (2, 3):
            assert count_solutions(graph, ColoringProperty(k)) == \
                brute_colorings(graph, k), (seed, k)


def test_decide_3colorability():
    k4 = {i: {j for j in range(4) if j != i} for i in range(4)}
    assert not decide(k4, ColoringProperty(3))
    assert decide(k4, ColoringProperty(4))
    cycle = adjacency_from_database(generators.cycle_graph(5))
    assert decide(cycle, ColoringProperty(3))
    assert not decide(cycle, ColoringProperty(2))  # odd cycle


def test_gallai_identity():
    """max IS + min VC = n (sanity across two properties)."""
    for seed in range(4):
        graph = random_graph(8, 0.3, seed)
        mis = optimise(graph, IndependentSetProperty(), maximise=True)
        mvc = optimise(graph, VertexCoverProperty())
        assert mis + mvc == len(graph)


# -------------------------------------------------------------- enumeration


def test_enumerate_independent_sets_exact():
    for seed in range(4):
        graph = random_graph(7, 0.35, seed)
        got = list(enumerate_solutions(graph, IndependentSetProperty()))
        assert len(got) == len(set(got))
        assert set(got) == set(brute_independent_sets(graph))


def test_enumerate_dominating_sets_exact():
    for seed in range(3):
        graph = random_graph(6, 0.4, seed)
        got = list(enumerate_solutions(graph, DominatingSetProperty()))
        assert len(got) == len(set(got))
        assert set(got) == set(brute_dominating_sets(graph))


def test_enumerate_colorings_count():
    graph = random_graph(6, 0.4, 2)
    got = list(enumerate_labelings(graph, ColoringProperty(3)))
    assert len(got) == brute_colorings(graph, 3)


def test_two_cluster_example():
    """Section 3.3.1: exactly two answers, disjoint, each of size n —
    no constant-delay enumeration can hop between them."""
    db, answers = two_cluster_example(6)
    assert len(answers) == 2
    a, b = answers
    assert len(a) == len(b) == 6
    assert not (a & b)
    assert a | b == set(range(1, 13))
