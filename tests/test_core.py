"""Tests for the classifier and the planner — the paper's map as code."""

import pytest

from repro.core.classify import classify
from repro.core.planner import answer, count, decide, enumerate_answers
from repro.core.report import ComplexityReport, TaskVerdict
from repro.data import generators
from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.fo import Exists, ForAll, RelAtom, SOAtom, SecondOrderVariable
from repro.logic.parser import parse_cq, parse_query


def test_classify_free_connex_acq():
    report = classify(parse_cq("Q(x) :- R(x, z), S(z, y)"))
    assert report.query_class == "ACQ"
    assert report.fact("free_connex") is True
    assert report.fact("quantified_star_size") == 1
    assert report.verdict("enumerate").tractable is True
    assert "4.6" in report.verdict("enumerate").theorem
    assert report.verdict("decide").tractable is True
    assert report.verdict("count").tractable is True


def test_classify_bmm_query():
    report = classify(parse_cq("Pi(x, y) :- A(x, z), B(z, y)"))
    assert report.fact("free_connex") is False
    assert report.verdict("enumerate").tractable is False
    assert "Mat-Mul" in report.verdict("enumerate").bound
    assert report.verdict("count").tractable is True  # star size 2


def test_classify_cyclic_cq():
    report = classify(parse_cq("Q(x) :- R(x, y), S(y, z), T(z, x)"))
    assert report.query_class == "cyclic CQ"
    assert report.verdict("enumerate").tractable is False


def test_classify_order_comparisons():
    report = classify(parse_cq("Q(x) :- R(x, y), x < y"))
    assert report.query_class.endswith("<")
    assert report.verdict("decide").tractable is False
    assert "4.15" in report.verdict("decide").theorem


def test_classify_disequality_query():
    report = classify(parse_cq("Q(x) :- R(x, z), z != x"))
    assert report.query_class == "ACQ!="
    assert report.verdict("enumerate").tractable is True
    assert "4.20" in report.verdict("enumerate").theorem


def test_classify_ucq_free_connex():
    ucq = parse_query(
        "Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w)\n"
        "Q(x, z, y) :- R1(x, z), R2(z, y)")
    report = classify(ucq)
    assert report.fact("free_connex_ucq") is True
    assert report.verdict("enumerate").tractable is True
    assert "4.13" in report.verdict("enumerate").theorem


def test_classify_ncq():
    beta = classify(parse_query("Q() :- not R(x, y), not S(y, z)"))
    assert beta.fact("beta_acyclic") is True
    assert beta.verdict("decide").tractable is True
    hard = classify(parse_query("Q() :- not R(x, y), not S(y, z), not T(z, x)"))
    assert hard.fact("beta_acyclic") is False
    assert hard.verdict("decide").tractable is False


def test_classify_fo_prefixes():
    X = SecondOrderVariable("X", 1)
    sigma0 = SOAtom(X, [0])
    report = classify(sigma0)
    assert report.fact("prefix_class") == "Sigma_0^rel"
    assert report.verdict("count").tractable is True
    assert report.verdict("enumerate").tractable is True

    sigma1 = Exists(["x"], SOAtom(X, ["x"]))
    report1 = classify(sigma1)
    assert "FPRAS" in report1.verdict("count").bound

    pi1 = ForAll(["x"], SOAtom(X, ["x"]))
    report2 = classify(pi1)
    assert report2.verdict("enumerate").tractable is False


def test_classify_rejects_unknown():
    with pytest.raises(TypeError):
        classify(42)


def test_report_rendering():
    report = classify(parse_cq("Q(x) :- R(x, z), S(z, y)"))
    text = report.render()
    assert "free_connex" in text and "Theorem" in text
    assert str(report) == text
    with pytest.raises(KeyError):
        report.verdict("no-such-task")


# ------------------------------------------------------------------ planner


def test_planner_routes_all_cq_shapes():
    db = generators.random_database({"R": 2, "S": 2, "T": 2, "A": 2, "B": 2},
                                    6, 14, seed=0)
    shapes = [
        "Q(x) :- R(x, z), S(z, y)",            # free-connex
        "Q(x, y) :- A(x, z), B(z, y)",         # linear delay
        "Q(x) :- R(x, y), S(y, z), T(z, x)",   # cyclic -> naive
        "Q(x) :- R(x, z), z != x",             # disequality engine
        "Q(x, y) :- R(x, y), x < y",           # fallback
    ]
    for text in shapes:
        q = parse_cq(text)
        got = list(enumerate_answers(q, db))
        assert len(got) == len(set(got)), text
        assert set(got) == evaluate_cq_naive(q, db), text
        assert answer(q, db) == evaluate_cq_naive(q, db), text


def test_planner_count_routes():
    db = generators.random_database({"R": 2, "S": 2}, 6, 14, seed=1)
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    assert count(q, db) == len(evaluate_cq_naive(q, db))
    q2 = parse_cq("Q(x) :- R(x, y), x != y")
    assert count(q2, db) == len(evaluate_cq_naive(q2, db))


def test_planner_decide():
    db = Database.from_relations({"R": [(1, 2)], "S": [(2, 3)]})
    assert decide(parse_cq("Q() :- R(x, y), S(y, z)"), db)
    assert not decide(parse_cq("Q() :- R(x, x)"), db)


def test_planner_ucq_and_ncq():
    db = generators.random_database({"R1": 2, "R2": 2}, 5, 10, seed=2)
    ucq = parse_query("Q(x) :- R1(x, y); Q(x) :- R2(x, y)")
    expected = evaluate_cq_naive(ucq[0], db) | evaluate_cq_naive(ucq[1], db)
    assert answer(ucq, db) == expected
    assert count(ucq, db) == len(expected)

    ncq = parse_query("Q(x) :- not R1(x, y)")
    got = answer(ncq, db)
    from repro.csp.ncq_solver import ncq_answers

    assert got == ncq_answers(ncq, db)


def test_planner_fo():
    db = Database.from_relations({"R": [(1, 2), (2, 3)]})
    f = Exists(["y"], RelAtom("R", ["x", "y"]))
    assert answer(f, db) == {(1,), (2,)}
    assert count(f, db) == 2


def test_planner_fo_so_counting():
    X = SecondOrderVariable("X", 1)
    db = Database.from_relations({"P": [(0,)]})
    db.add_domain_values([1])
    assert count(SOAtom(X, [0]), db) == 2  # X contains (0,), (1,) free
    with pytest.raises(UnsupportedQueryError):
        list(enumerate_answers(SOAtom(X, [0]), db))
