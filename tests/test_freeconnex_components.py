"""Unit tests for free-connexity (Definition 4.4) and the S-component /
star-size machinery (Definitions 4.23-4.26, Figures 2-3, Example 4.27)."""

import pytest

from repro.errors import NotFreeConnexError
from repro.figures import figure2_query, figure3_expected
from repro.hypergraph.components import (
    free_cover_atoms,
    max_independent_subset,
    quantified_star_size,
    s_components,
    s_star_size,
)
from repro.hypergraph.freeconnex import (
    free_connex_join_tree,
    is_free_connex,
    is_s_connex,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.logic.parser import parse_cq
from repro.logic.terms import Variable


def test_free_connex_iff_star_size_at_most_one():
    """The paper: 'being of quantified star size 1 is equivalent to being
    free-connex' — checked over a batch of hand-written ACQs."""
    queries = [
        "Q(x, y) :- R(x, z), S(z, y)",
        "Q(x) :- R(x, z), S(z, y)",
        "Q(x, y) :- R(x, w), S(y, u), B(u)",
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "Q() :- R(x, y)",
        "Q(a, b) :- T(a, b, c), R(c, d)",
        "Q(a, b) :- R(a, c), S(b, d), U(c, d)",
        "Q(x1, x2, x3) :- R(x1, x2), S(x2, x3, y3), R(x1, y1), T(y3, y4, y5), S2(x2, y2)",
    ]
    for text in queries:
        q = parse_cq(text)
        if not q.is_acyclic():
            continue
        assert q.is_free_connex() == (q.quantified_star_size() <= 1), text


def test_cyclic_query_is_not_free_connex():
    q = parse_cq("Q(x, y) :- R(x, y), S(y, z), T(z, x)")
    assert not is_free_connex(q)


def test_s_connex_with_subset():
    q = parse_cq("Q(x, z, y) :- R1(x, z), R2(z, y)")
    # quantifier-free path: S = {x, z} keeps the hypergraph acyclic
    assert is_s_connex(q, {Variable("x"), Variable("z")})
    # but S = {x, y} closes a cycle
    assert not is_s_connex(q, {Variable("x"), Variable("y")})


def test_free_connex_join_tree_roots_at_free_edge():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    tree, virtual = free_connex_join_tree(q)
    assert tree.root == virtual
    assert tree.edge_of(virtual) == q.free_variables()
    assert tree.is_valid()


def test_free_connex_join_tree_raises():
    pi = parse_cq("Pi(x, y) :- A(x, z), B(z, y)")
    with pytest.raises(NotFreeConnexError):
        free_connex_join_tree(pi)


def test_star_query_has_star_size_n():
    """Equation 2 / Example 4.27: psi's quantified star size equals n."""
    from repro.counting.matchings import star_query

    for n in (2, 3, 5):
        psi = star_query(list(range(n)))
        assert psi.quantified_star_size() == n


def test_figure3_component_decomposition():
    q = figure2_query()
    expected = figure3_expected()
    h = q.hypergraph()
    comps = s_components(h, q.free_variables())
    assert len(comps) == expected["n_components"]
    assert quantified_star_size(q) == expected["star_size"]
    central = next(c for c in comps if Variable("y3") in c.s_vertices)
    witness = {Variable(n) for n in expected["witness_independent_set"]}
    assert central.subhypergraph(h).is_independent(witness)


def test_components_partition_quantified_variables():
    q = figure2_query()
    h = q.hypergraph()
    comps = s_components(h, q.free_variables())
    quantified = h.vertices - q.free_variables()
    seen = set()
    for c in comps:
        quant_here = c.vertices - q.free_variables()
        assert not (quant_here & seen)
        seen |= quant_here
    assert seen == quantified


def test_component_edges_cover_each_edge_once():
    q = figure2_query()
    h = q.hypergraph()
    comps = s_components(h, q.free_variables())
    covered = [i for c in comps for i in c.edge_indexes]
    assert len(covered) == len(set(covered))
    free = q.free_variables()
    outside = set(range(len(h.edges))) - set(covered)
    assert all(h.edges[i] <= free for i in outside)


def test_star_size_zero_for_quantifier_free():
    q = parse_cq("Q(x, y) :- R(x, y)")
    assert quantified_star_size(q) == 0


def test_max_independent_subset_exact():
    h = Hypergraph({"a", "b", "c", "d"},
                   [frozenset({"a", "b"}), frozenset({"b", "c"}),
                    frozenset({"c", "d"})])
    ind = max_independent_subset(h, ["a", "b", "c", "d"])
    assert len(ind) == 2
    assert h.is_independent(ind)


def test_free_cover_atoms_minimum():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    h = q.hypergraph()
    comps = s_components(h, q.free_variables())
    assert len(comps) == 1
    cover = free_cover_atoms(h, comps[0])
    assert len(cover) == 2  # no single atom covers both x and y


def test_s_star_size_direct():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    assert s_star_size(q.hypergraph(), q.free_variables()) == 2
