"""Tests for the always-on metrics registry (repro.obs.registry) and
its quantile sketches (repro.obs.sketch): bucket accuracy, merge
order-independence, drain/merge transport, always-on collection with
the tracer disabled, and counter exactness across worker fan-outs."""

import os
import random

import pytest

from repro import obs
from repro.core.plancache import clear_plan_cache
from repro.core.planner import enumerate_answers
from repro.data.generators import random_database
from repro.logic.parser import parse_query
from repro.obs.registry import MetricsRegistry, registry, set_enabled, \
    suspended
from repro.obs.sketch import QuantileSketch, bucket_bounds, bucket_index

FULL_QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_plan_cache()
    registry().reset()
    prev = set_enabled(True)
    yield
    set_enabled(prev)
    registry().reset()
    clear_plan_cache()
    obs.disable()


def _demo_db(n=200, seed=1):
    return random_database({"R": 2, "S": 2}, domain_size=50,
                           tuples_per_relation=n, seed=seed)


# ------------------------------------------------------------------ sketch


def test_bucket_bounds_contain_value():
    for v in [0, 1, 7, 8, 9, 15, 16, 17, 100, 1_000, 123_456, 10**9, 10**12]:
        lo, hi = bucket_bounds(bucket_index(v))
        assert lo <= v < hi, (v, lo, hi)


def test_bucket_relative_error_bounded():
    # log-linear bucketing with 8 sub-buckets per octave: width <= 12.5%
    for v in [20, 333, 5_000, 77_777, 10**6, 10**9]:
        lo, hi = bucket_bounds(bucket_index(v))
        assert (hi - lo) / lo <= 0.125 + 1e-9


def test_sketch_quantiles_accurate_on_random_data():
    rng = random.Random(42)
    values = [rng.randrange(1, 10**9) for _ in range(20_000)]
    sk = QuantileSketch()
    for v in values:
        sk.add(v)
    values.sort()
    for q in (0.5, 0.95, 0.99, 0.999):
        exact = values[min(len(values) - 1, int(q * len(values)))]
        approx = sk.quantile(q)
        assert abs(approx - exact) / exact < 0.15, (q, exact, approx)


def test_sketch_merge_is_order_independent():
    rng = random.Random(7)
    parts = []
    for _ in range(5):
        sk = QuantileSketch()
        for _ in range(1_000):
            sk.add(rng.randrange(1, 10**7))
        parts.append(sk)
    orders = [parts, list(reversed(parts)),
              [parts[2], parts[0], parts[4], parts[1], parts[3]]]
    merged = [QuantileSketch.merged(order) for order in orders]
    for other in merged[1:]:
        assert other.buckets == merged[0].buckets
        assert other.count == merged[0].count
        assert other.total == merged[0].total
        assert other.min == merged[0].min and other.max == merged[0].max


def test_sketch_dict_round_trip_and_weights():
    sk = QuantileSketch()
    sk.add(1_000, weight=10)
    sk.add(2_000, weight=5)
    clone = QuantileSketch.from_dict(sk.to_dict())
    assert clone.count == 15
    assert clone.total == sk.total
    assert clone.buckets == sk.buckets
    assert clone.summary() == sk.summary()


def test_sketch_empty_and_negative():
    sk = QuantileSketch()
    assert sk.quantile(0.5) == 0
    sk.add(-5)  # clamped to zero, not dropped
    assert sk.count == 1
    assert sk.quantile(0.99) == 0


# ---------------------------------------------------------------- registry


def test_registry_counts_and_gauges_exact():
    reg = MetricsRegistry()
    reg.enabled = True
    for _ in range(100):
        reg.count("a")
    reg.count("b", 42)
    reg.gauge("g", 3.5)
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 100, "b": 42}
    assert snap["gauges"] == {"g": 3.5}


def test_registry_drain_and_merge_round_trip():
    worker = MetricsRegistry()
    worker.enabled = True
    worker.count("w.tasks", 3)
    worker.observe("w.lat", 500, weight=2)
    state = worker.drain()
    assert state is not None
    assert worker.drain() is None          # drained registry is empty
    driver = MetricsRegistry()
    driver.enabled = True
    driver.count("w.tasks", 1)
    driver.merge_state(state)
    snap = driver.snapshot()
    assert snap["counters"]["w.tasks"] == 4
    assert snap["sketches"]["w.lat"]["count"] == 2


def test_registry_merge_is_commutative():
    states = []
    for seed in range(3):
        reg = MetricsRegistry()
        reg.enabled = True
        rng = random.Random(seed)
        for _ in range(200):
            reg.observe("lat", rng.randrange(1, 10**6))
        reg.count("n", seed + 1)
        states.append(reg.drain())
    a = MetricsRegistry()
    a.enabled = True
    b = MetricsRegistry()
    b.enabled = True
    for st in states:
        a.merge_state(st)
    for st in reversed(states):
        b.merge_state(st)
    assert a.snapshot() == b.snapshot()


def test_registry_disabled_records_nothing():
    reg = MetricsRegistry()
    reg.enabled = False
    reg.count("x")
    reg.observe("y", 5)
    reg.record_delay(100, 1)
    assert reg.drain() is None


def test_suspended_context_manager():
    reg = registry()
    with suspended():
        obs.count("inside.suspend")
    obs.count("after.suspend")
    assert reg.counter("inside.suspend") == 0
    assert reg.counter("after.suspend") == 1


def test_record_delay_weights_and_listener():
    reg = MetricsRegistry()
    reg.enabled = True
    seen = []
    reg.add_delay_listener(lambda gap, answers: seen.append((gap, answers)))
    reg.record_delay(10_000, answers=10)
    sk = reg.sketch("enum.delay_ns")
    assert sk.count == 10                 # weight = answers
    assert seen == [(10_000, 10)]
    reg.remove_delay_listener(seen.append)  # unknown fn: no-op


# ------------------------------------------------------------- always-on


def test_registry_collects_with_tracer_disabled():
    assert not obs.enabled()
    q = parse_query(FULL_QUERY)
    db = _demo_db()
    answers = sum(1 for _ in enumerate_answers(q, db))
    snap = registry().snapshot()
    assert snap["counters"]["enum.answers"] == answers
    assert snap["sketches"]["enum.delay_ns"]["count"] == answers
    # spans routed into phase sketches even without a tracer
    assert any(name.startswith("phase.") for name in snap["sketches"])


def test_span_feeds_tracer_when_enabled_registry_otherwise():
    with obs.capture() as tr:
        with obs.span("only.in.tracer"):
            pass
    assert any(s.name == "only.in.tracer" for s in tr.spans)
    assert registry().sketch("phase.only.in.tracer") is None
    with obs.span("only.in.registry"):
        pass
    assert registry().sketch("phase.only.in.registry") is not None


def test_metrics_env_var_disables(monkeypatch):
    monkeypatch.setenv("REPRO_METRICS", "off")
    reg = MetricsRegistry()
    assert not reg.enabled
    monkeypatch.setenv("REPRO_METRICS", "1")
    assert MetricsRegistry().enabled
    monkeypatch.delenv("REPRO_METRICS")
    assert MetricsRegistry().enabled


# ------------------------------------------------------- worker exactness


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_counters_exact_across_worker_counts(workers):
    from repro.engine.parallel import ParallelEngine

    q = parse_query(FULL_QUERY)
    db = _demo_db(n=600, seed=3)
    eng = ParallelEngine(workers=workers, threshold=0)
    registry().reset()
    answers = sum(1 for _ in enumerate_answers(q, db, engine=eng))
    assert answers > 0
    snap = registry().snapshot()
    assert snap["counters"]["enum.answers"] == answers
    assert snap["sketches"]["enum.delay_ns"]["count"] == answers


def test_worker_phase_sketches_merged_into_driver():
    from repro.engine.parallel import ParallelEngine

    q = parse_query(FULL_QUERY)
    db = _demo_db(n=600, seed=4)
    eng = ParallelEngine(workers=2, threshold=0)
    registry().reset()
    sum(1 for _ in enumerate_answers(q, db, engine=eng))
    names = set(registry().snapshot()["sketches"])
    # worker-side phases only exist in worker processes; their sketches
    # must have crossed the wave round-trips into the driver registry
    assert any(n.startswith("phase.parallel.") for n in names), names


def test_adopted_worker_spans_carry_pid_in_chrome_export():
    from repro.engine.parallel import ParallelEngine
    from repro.obs.export import chrome_trace_events

    q = parse_query(FULL_QUERY)
    db = _demo_db(n=600, seed=5)
    eng = ParallelEngine(workers=2, threshold=0)
    with obs.capture() as tr:
        sum(1 for _ in enumerate_answers(q, db, engine=eng))
    events = chrome_trace_events(tr)
    me = os.getpid()
    worker_events = [e for e in events
                     if e["ph"] == "X" and e["pid"] != me]
    assert worker_events, "no adopted worker spans in the export"
    assert all("tid" in e for e in worker_events)
    names = [e for e in events if e["ph"] == "M"
             and e["name"] == "process_name"]
    labels = {e["args"]["name"] for e in names}
    assert "repro driver" in labels and "repro worker" in labels
