"""Unit tests for the Hypergraph class, including Figure 2's hypergraph."""

import pytest

from repro.hypergraph.hypergraph import Hypergraph
from repro.logic.parser import parse_cq


def figure2_hypergraph():
    """The Figures 2-3 hypergraph (via repro.figures)."""
    from repro.figures import figure2_query

    return figure2_query().hypergraph()


def test_vertices_validated():
    with pytest.raises(ValueError):
        Hypergraph({"a"}, [{"a", "b"}])


def test_edges_containing_and_incidence():
    h = Hypergraph({"a", "b", "c"}, [{"a", "b"}, {"b", "c"}])
    assert h.edges_containing("b") == [frozenset({"a", "b"}), frozenset({"b", "c"})]
    inc = h.incidence()
    assert inc["b"] == [0, 1]
    assert inc["a"] == [0]


def test_distinct_edges_with_duplicates():
    h = Hypergraph({"a", "b"}, [{"a", "b"}, {"a", "b"}])
    assert len(h) == 2
    assert len(h.distinct_edges()) == 1


def test_induced_by_edges_vertex_set():
    h = Hypergraph({"a", "b", "c", "d"}, [{"a", "b"}, {"c", "d"}])
    sub = h.induced_by_edges([0])
    assert sub.vertices == {"a", "b"}
    assert len(sub) == 1


def test_induced_by_vertices_drops_empty_edges():
    h = Hypergraph({"a", "b", "c"}, [{"a", "b"}, {"c"}])
    sub = h.induced_by_vertices({"a", "b"})
    assert sub.vertices == {"a", "b"}
    assert len(sub) == 1


def test_with_edge():
    h = Hypergraph({"a"}, [{"a"}])
    h2 = h.with_edge({"a", "b"})
    assert "b" in h2.vertices
    assert len(h2) == 2


def test_primal_graph_and_independence():
    h = Hypergraph({"a", "b", "c", "d"}, [{"a", "b", "c"}, {"c", "d"}])
    adj = h.primal_graph()
    assert adj["a"] == {"b", "c"}
    assert adj["d"] == {"c"}
    assert h.is_independent({"a", "d"})
    assert not h.is_independent({"a", "b"})


def test_connected_components_with_isolated_vertex():
    h = Hypergraph({"a", "b", "z"}, [{"a", "b"}])
    comps = h.connected_components()
    assert {frozenset(c) for c in comps} == {frozenset({"a", "b"}), frozenset({"z"})}


def test_k_uniform():
    h = Hypergraph({"a", "b", "c"}, [{"a", "b"}, {"b", "c"}])
    assert h.is_k_uniform(2)
    assert not h.is_k_uniform(3)


def test_query_hypergraph_ignores_comparisons():
    q = parse_cq("Q(x) :- R(x, z), x != z, x < z")
    h = q.hypergraph()
    assert len(h) == 1  # only the relational atom contributes


def test_figure2_hypergraph_shape():
    h = figure2_hypergraph()
    assert len(h.vertices) == 16  # x1..x9 and y1..y7
    assert len(h) == 13


def test_equality_and_hash():
    h1 = Hypergraph({"a", "b"}, [{"a", "b"}])
    h2 = Hypergraph({"a", "b"}, [{"a", "b"}])
    assert h1 == h2
    assert hash(h1) == hash(h2)
