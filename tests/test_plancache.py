"""Unit tests for the cross-query plan/preprocessing cache
(repro.core.plancache) and its database-fingerprint invalidation."""

import pytest

from repro.core.plancache import (
    DEFAULT_MAXSIZE,
    ENV_VAR,
    PlanCache,
    cached_plan,
    clear_plan_cache,
    plan_cache,
    plan_cache_disabled,
    plan_cache_enabled,
    set_plan_cache_enabled,
)
from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.eval.naive import evaluate_cq_naive
from repro.eval.yannakakis import full_reducer
from repro.logic.parser import parse_cq


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    set_plan_cache_enabled(None)
    yield
    clear_plan_cache()
    set_plan_cache_enabled(None)


def _db():
    return Database([
        Relation("R", 2, [(i, i % 3) for i in range(12)]),
        Relation("S", 2, [(i % 3, i) for i in range(12)]),
    ])


# --------------------------------------------------------------- PlanCache


def test_hit_miss_accounting():
    cache = PlanCache(maxsize=4)
    from repro.core.plancache import _MISS

    key = PlanCache.key_for("k", "q", None, "tuple")
    assert cache.get(key) is _MISS
    cache.put(key, "plan")
    assert cache.get(key) == "plan"
    expected = {"hits": 1, "misses": 1, "evictions": 0,
                "refreshes": 0, "refresh_overflows": 0,
                "refresh_fallbacks": 0,
                "entries": 1, "maxsize": 4}
    stats = cache.stats()
    assert {k: stats[k] for k in expected} == expected
    # sharing telemetry (process-global counters) rides along
    assert isinstance(stats["symbol_sharing"], bool)
    assert stats["symbol_workspace_hits"] >= 0
    assert stats["coalesced_semijoins"] >= 0
    cache.clear()
    expected = {"hits": 0, "misses": 0, "evictions": 0,
                "refreshes": 0, "refresh_overflows": 0,
                "refresh_fallbacks": 0,
                "entries": 0, "maxsize": 4}
    stats = cache.stats()
    assert {k: stats[k] for k in expected} == expected


def test_none_is_a_cacheable_value():
    cache = PlanCache()
    key = PlanCache.key_for("k", "q", None, "tuple")
    cache.put(key, None)
    assert cache.get(key) is None
    assert cache.stats()["hits"] == 1


def test_lru_eviction_order():
    cache = PlanCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")       # refresh a; b becomes LRU
    cache.put("c", 3)    # evicts b
    assert len(cache) == 2
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    misses_before = cache.misses
    from repro.core.plancache import _MISS

    assert cache.get("b") is _MISS
    assert cache.misses == misses_before + 1


# ------------------------------------------------- fingerprint / versioning


def test_relation_version_counts_effective_mutations():
    r = Relation("R", 1)
    v0 = r.version
    r.add((1,))
    assert r.version == v0 + 1
    r.add((1,))                  # duplicate: no effect, no bump
    assert r.version == v0 + 1
    r.discard((1,))
    assert r.version == v0 + 2
    r.discard((1,))              # absent: no effect, no bump
    assert r.version == v0 + 2


def test_fingerprint_changes_on_mutation():
    db = _db()
    fp0 = db.fingerprint()
    assert db.fingerprint() == fp0            # stable while untouched
    db.relation("R").add((99, 99))
    fp1 = db.fingerprint()
    assert fp1 != fp0
    db.relation("R").discard((99, 99))
    assert db.fingerprint() != fp1            # version is monotone


def test_keys_distinguish_kind_engine_extra_and_db():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    db1, db2 = _db(), _db()
    keys = {
        PlanCache.key_for("a", q, db1, "tuple"),
        PlanCache.key_for("b", q, db1, "tuple"),
        PlanCache.key_for("a", q, db1, "columnar"),
        PlanCache.key_for("a", q, db1, "tuple", extra=7),
        PlanCache.key_for("a", q, db2, "tuple"),  # distinct id() per db
    }
    assert len(keys) == 5


# ------------------------------------------------------------- cached_plan


def test_cached_plan_builds_once_then_hits():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    db = _db()
    calls = []

    def build():
        calls.append(1)
        return "artefact"

    assert cached_plan("t", q, db, "tuple", build) == "artefact"
    assert cached_plan("t", q, db, "tuple", build) == "artefact"
    assert len(calls) == 1
    db.relation("S").add((50, 51))
    assert cached_plan("t", q, db, "tuple", build) == "artefact"
    assert len(calls) == 2                    # mutation invalidated the key


def test_cached_plan_respects_disable_toggles(monkeypatch):
    db = _db()
    calls = []

    def build():
        calls.append(1)
        return len(calls)

    with plan_cache_disabled():
        assert not plan_cache_enabled()
        cached_plan("t", "q", db, "tuple", build)
        cached_plan("t", "q", db, "tuple", build)
    assert len(calls) == 2                    # no caching inside the scope
    assert plan_cache_enabled()               # restored on exit

    set_plan_cache_enabled(False)
    cached_plan("t", "q", db, "tuple", build)
    assert len(calls) == 3
    set_plan_cache_enabled(None)              # back to env default

    monkeypatch.setenv(ENV_VAR, "off")
    assert not plan_cache_enabled()
    monkeypatch.setenv(ENV_VAR, "1")
    assert plan_cache_enabled()


def test_global_cache_defaults():
    cache = plan_cache()
    assert cache.maxsize == DEFAULT_MAXSIZE


# ----------------------------------------------- integration with the stack


@pytest.mark.parametrize("engine", ["tuple", "columnar"])
def test_full_reducer_warm_results_are_isolated_copies(engine):
    q = parse_cq("Q(x, z) :- R(x, z), S(z, y)")
    db = _db()
    _tree, first = full_reducer(q, db, engine=engine)
    baseline = [set(r) for r in first]
    # mutating what a caller received must not corrupt the cached plan
    first[0].add((777, 777))
    _tree, second = full_reducer(q, db, engine=engine)
    assert [set(r) for r in second] == baseline
    assert plan_cache().hits >= 1


@pytest.mark.parametrize("engine", ["tuple", "columnar"])
def test_warm_enumeration_matches_cold(engine):
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    db = _db()
    expected = evaluate_cq_naive(q, db)
    cold = set(FreeConnexEnumerator(q, db, engine=engine))
    warm = set(FreeConnexEnumerator(q, db, engine=engine))
    assert cold == warm == expected
    assert plan_cache().hits >= 1
    # mutation: the next run is a miss and sees the new data
    db.relation("R").add((42, 0))
    after = set(FreeConnexEnumerator(q, db, engine=engine))
    assert after == evaluate_cq_naive(q, db)
    assert (42,) in after
