"""Property-based tests (hypothesis) on the core invariants:

* GYO / join trees: acyclic <=> join tree exists, and built trees satisfy
  the connectedness condition;
* beta-acyclicity <=> all edge-subsets alpha-acyclic;
* free-connex <=> quantified star size <= 1;
* enumeration engines == naive evaluation, duplicate-free;
* star-size counting == naive counting, for arbitrary weights;
* cover algebra: minimal covers are covers, mutually incomparable,
  <= k! many; representative sets preserve the cover set;
* Gray code: visits every subset exactly once, one flip per step;
* Davis-Putnam == brute-force SAT under any elimination order;
* Yannakakis == naive.
"""

import math
from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

# ------------------------------------------------------------- strategies

VAR_NAMES = ["x", "y", "z", "u", "w"]


@st.composite
def hypergraphs(draw):
    from repro.hypergraph.hypergraph import Hypergraph

    n_edges = draw(st.integers(1, 5))
    edges = []
    for _ in range(n_edges):
        size = draw(st.integers(1, 3))
        edge = draw(st.sets(st.sampled_from(VAR_NAMES), min_size=size,
                            max_size=size))
        edges.append(frozenset(edge))
    vertices = {v for e in edges for v in e}
    return Hypergraph(vertices, edges)


@st.composite
def acyclic_queries_with_dbs(draw):
    """A random ACQ (2-3 atoms over a path-ish variable layout, a random
    head) plus a random database — restricted to acyclic shapes by
    construction check."""
    layouts = [
        [("R", ["x", "y"]), ("S", ["y", "z"])],
        [("R", ["x", "y"]), ("S", ["y", "z"]), ("T", ["z", "u"])],
        [("R", ["x", "y"]), ("S", ["y", "z"]), ("B", ["y"])],
        [("T3", ["x", "y", "z"]), ("R", ["x", "u"])],
        [("R", ["x", "y"]), ("S", ["u", "w"])],
    ]
    layout = draw(st.sampled_from(layouts))
    all_vars = sorted({v for _, vs in layout for v in vs})
    head_size = draw(st.integers(0, len(all_vars)))
    head = draw(st.permutations(all_vars))[:head_size]
    q = ConjunctiveQuery(head, [Atom(r, vs) for r, vs in layout])

    domain = list(range(draw(st.integers(2, 5))))
    rels = []
    for name, vs in layout:
        rel = Relation(name, len(vs))
        n_tuples = draw(st.integers(0, 10))
        for _ in range(n_tuples):
            rel.add(tuple(draw(st.sampled_from(domain)) for _ in vs))
        rels.append(rel)
    db = Database(rels, domain=domain)
    return q, db


# ----------------------------------------------------------------- GYO


@given(hypergraphs())
@settings(max_examples=80, deadline=None)
def test_join_tree_exists_iff_acyclic(h):
    from repro.errors import NotAcyclicError
    from repro.hypergraph.jointree import build_join_tree, is_alpha_acyclic

    if is_alpha_acyclic(h):
        tree = build_join_tree(h)
        assert tree.is_valid()
    else:
        try:
            tree = build_join_tree(h)
        except NotAcyclicError:
            return
        raise AssertionError("cyclic hypergraph produced a join tree")


@given(hypergraphs())
@settings(max_examples=60, deadline=None)
def test_beta_acyclicity_characterisation(h):
    from repro.hypergraph.acyclicity import (
        all_subhypergraphs_alpha_acyclic,
        is_beta_acyclic,
    )

    assert is_beta_acyclic(h) == all_subhypergraphs_alpha_acyclic(h)


@given(acyclic_queries_with_dbs())
@settings(max_examples=60, deadline=None)
def test_free_connex_iff_star_size_le_one(qdb):
    q, _db = qdb
    if q.is_acyclic():
        assert q.is_free_connex() == (q.quantified_star_size() <= 1)


# ----------------------------------------------------------- enumeration


@given(acyclic_queries_with_dbs())
@settings(max_examples=50, deadline=None)
def test_engines_agree_with_naive(qdb):
    from repro.core.planner import enumerate_answers
    from repro.eval.naive import evaluate_cq_naive

    q, db = qdb
    got = list(enumerate_answers(q, db))
    assert len(got) == len(set(got))
    assert set(got) == evaluate_cq_naive(q, db)


@given(acyclic_queries_with_dbs(),
       st.dictionaries(st.integers(0, 4), st.integers(-3, 3), max_size=5))
@settings(max_examples=50, deadline=None)
def test_counting_agrees_with_naive_weighted(qdb, weight_map):
    from repro.counting.acq_count import count_acq, count_cq_naive
    from repro.counting.weighted import WeightFunction

    q, db = qdb
    if not q.is_acyclic():
        return
    w = WeightFunction(weight_map)
    assert count_acq(q, db, w) == count_cq_naive(q, db, w)


# ----------------------------------------------------------------- covers


@given(st.integers(1, 3),
       st.lists(st.tuples(st.integers(1, 3), st.integers(1, 3),
                          st.integers(1, 3)), min_size=0, max_size=6))
@settings(max_examples=60, deadline=None)
def test_cover_algebra(k, raw_rows):
    from repro.enumeration.covers import (
        Table,
        covers_equal,
        is_cover,
        minimal_covers,
        more_general,
        representative_set,
    )

    rows = {i: r[:k] for i, r in enumerate(raw_rows)}
    t = Table.from_rows(rows) if rows else Table({}, k)
    mc = minimal_covers(t)
    assert len(mc) <= math.factorial(k)
    for c in mc:
        assert is_cover(t, c)
    for c1 in mc:
        for c2 in mc:
            if c1 != c2:
                assert not more_general(c1, c2)
    assert covers_equal(t, representative_set(t))


# -------------------------------------------------------------- Gray code


@given(st.integers(0, 10))
@settings(max_examples=20, deadline=None)
def test_gray_code_visits_every_subset_once(n):
    from repro.enumeration.gray import gray_flip_sequence

    current = set()
    seen = {frozenset()}
    for flip in gray_flip_sequence(n):
        assert 0 <= flip < n
        current ^= {flip}
        key = frozenset(current)
        assert key not in seen
        seen.add(key)
    assert len(seen) == 2 ** n


# ------------------------------------------------------------------ SAT


@given(st.lists(st.lists(st.sampled_from([1, -1, 2, -2, 3, -3, 4, -4]),
                         min_size=1, max_size=3, unique_by=abs),
                min_size=0, max_size=8),
       st.permutations([1, 2, 3, 4]))
@settings(max_examples=60, deadline=None)
def test_davis_putnam_any_order(cnf, order):
    from repro.csp.cnf import clauses_satisfiable_bruteforce
    from repro.csp.davis_putnam import davis_putnam

    clauses = [frozenset(c) for c in cnf]
    assert davis_putnam(clauses, list(order)) == \
        clauses_satisfiable_bruteforce(clauses, 4)


# -------------------------------------------------------------- relations


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=15),
       st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=15))
@settings(max_examples=50, deadline=None)
def test_varrelation_join_is_set_semantics(t1, t2):
    from repro.eval.join import VarRelation

    x, y, z = Variable("x"), Variable("y"), Variable("z")
    r = VarRelation((x, y), t1)
    s = VarRelation((y, z), t2)
    expected = {(a, b, c) for (a, b) in set(t1) for (b2, c) in set(t2) if b == b2}
    assert set(r.join(s)) == expected
    semi = {(a, b) for (a, b) in set(t1) if any(b == b2 for (b2, _c) in set(t2))}
    assert set(r.semijoin(s)) == semi
