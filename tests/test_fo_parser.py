"""Tests for the FO formula parser."""

import pytest

from repro.data.database import Database
from repro.errors import QuerySyntaxError
from repro.eval.naive import fo_answers, model_check_fo
from repro.logic.fo import And, Exists, ForAll, Not, Or
from repro.logic.fo_parser import parse_fo
from repro.logic.prefix import classify_prefix
from repro.logic.terms import Variable


def test_quantifier_max_scope():
    f = parse_fo("exists x y. R(x, y) & ~S(y)")
    assert isinstance(f, Exists)
    assert f.free_variables() == frozenset()


def test_implication_desugars():
    f = parse_fo("forall x. R(x) -> S(x)")
    assert isinstance(f, ForAll)
    assert isinstance(f.child, Or)


def test_precedence_and_binds_tighter_than_or():
    f = parse_fo("R(x) | S(x) & T(x)")
    assert isinstance(f, Or)
    assert isinstance(f.operands[1], And)


def test_parentheses_override():
    f = parse_fo("(R(x) | S(x)) & T(x)")
    assert isinstance(f, And)


def test_word_operators():
    f = parse_fo("R(x) and not S(x) or T(x)")
    assert isinstance(f, Or)


def test_so_variables():
    f = parse_fo("forall x. X(x) -> E(x, 3)", so_names=["X"])
    assert classify_prefix(f).name() == "Pi_1^rel"
    assert {s.name for s in f.so_variables()} == {"X"}


def test_constants_and_strings():
    f = parse_fo('R(x, 5) & S(x, "home") & x != -2')
    db = Database.from_relations({"R": [(1, 5)], "S": [(1, "home")]})
    assert fo_answers(f, db) == {(1,)}


def test_comparisons():
    f = parse_fo("exists y. R(x, y) & y <= 2")
    db = Database.from_relations({"R": [(1, 2), (2, 9)]})
    assert fo_answers(f, db) == {(1,)}


def test_semantics_match_cq_parser():
    from repro.eval.naive import evaluate_cq_naive
    from repro.logic.parser import parse_cq

    db = Database.from_relations({"R": [(1, 2), (2, 3)], "S": [(2, 7)]})
    fo = parse_fo("exists z. R(x, z) & S(z, y)")
    cq = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    # fo_answers sorts free variables by name: (x, y) order matches
    assert fo_answers(fo, db) == evaluate_cq_naive(cq, db)


def test_nested_quantifiers():
    f = parse_fo("forall x. exists y. R(x, y)")
    db_yes = Database.from_relations({"R": [(1, 2), (2, 1)]})
    assert model_check_fo(f, db_yes)
    db_no = Database.from_relations({"R": [(1, 2)]})
    assert not model_check_fo(f, db_no)


def test_errors():
    for bad in [
        "",
        "R(x",
        "exists . R(x)",
        "R(x) &",
        "R(x) ? S(x)",
        "exists x R(x)",   # missing dot
        "R(x) S(x)",
    ]:
        with pytest.raises(QuerySyntaxError):
            parse_fo(bad)


def test_trailing_input_rejected():
    with pytest.raises(QuerySyntaxError):
        parse_fo("R(x) )")
