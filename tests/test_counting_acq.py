"""Tests for the counting engines (Theorems 4.21 and 4.28)."""

import pytest

from repro.counting.acq_count import (
    count_acq,
    count_cq_naive,
    count_full_acyclic_join,
    count_quantifier_free_acyclic,
    derive_counting_join,
)
from repro.counting.weighted import WeightFunction, sum_of_weights
from repro.data import generators
from repro.data.database import Database
from repro.errors import NotAcyclicError, UnsupportedQueryError
from repro.eval.join import VarRelation
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq
from repro.logic.terms import Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


def test_count_full_acyclic_join_basics():
    r = VarRelation((x, y), [(1, 2), (2, 3)])
    s = VarRelation((y, z), [(2, 9), (3, 8), (3, 7)])
    assert count_full_acyclic_join([r, s]) == 3


def test_count_full_acyclic_join_weighted():
    r = VarRelation((x,), [(1,), (2,)])
    s = VarRelation((y,), [(10,)])
    w = WeightFunction({1: 2, 2: 3, 10: 5})
    # solutions (1,10) and (2,10): 2*5 + 3*5
    assert count_full_acyclic_join([r, s], w) == 25


def test_count_full_join_empty_and_unit():
    assert count_full_acyclic_join([]) == 1
    assert count_full_acyclic_join([VarRelation((), [()])]) == 1
    assert count_full_acyclic_join([VarRelation(())]) == 0


def test_quantifier_free_counting_randomized():
    queries = [
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "Q(x, y, z, w) :- R(x, y), S(y, z), T(z, w)",
        "Q(a, b, c) :- T3(a, b, c), R(a, b)",
    ]
    for text in queries:
        q = parse_cq(text)
        for seed in range(4):
            db = generators.random_database(
                {"R": 2, "S": 2, "T": 2, "T3": 3}, 6, 15, seed=seed)
            assert count_quantifier_free_acyclic(q, db) == len(
                evaluate_cq_naive(q, db)), (text, seed)


def test_quantifier_free_rejects_projection():
    db = generators.random_database({"R": 2}, 4, 8, seed=0)
    with pytest.raises(UnsupportedQueryError):
        count_quantifier_free_acyclic(parse_cq("Q(x) :- R(x, y)"), db)


def test_count_acq_randomized_star_sizes():
    queries = [
        "Q(x) :- R(x, z), S(z, y)",                  # star 1
        "Q(x, y) :- R(x, z), S(z, y)",               # star 2 (Pi)
        "Q(x, y, w) :- R(x, z), S(z, y), T(z, w)",   # star 3
        "Q(x1, x2, x3) :- R(x1, x2), S(x2, x3, y3), R(x1, y1), T2(y3, y4, y5), S2(x2, y2)",
    ]
    for text in queries:
        q = parse_cq(text)
        for seed in range(5):
            db = generators.random_database(
                {"R": 2, "S": q.relation_arities().get("S", 2), "T": 2,
                 "T2": 3, "S2": 2}, 6, 14, seed=seed)
            assert count_acq(q, db) == len(evaluate_cq_naive(q, db)), (text, seed)


def test_count_acq_weighted_matches_reference():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    for seed in range(4):
        db = generators.random_database({"R": 2, "S": 2}, 5, 12, seed=seed)
        w = WeightFunction(lambda v: v + 1)
        got = count_acq(q, db, w)
        expected = sum_of_weights(evaluate_cq_naive(q, db), w)
        assert got == expected, seed


def test_count_acq_boolean():
    q = parse_cq("Q() :- R(x, z), S(z, y)")
    db = Database.from_relations({"R": [(1, 2)], "S": [(2, 3)]})
    assert count_acq(q, db) == 1
    db2 = Database.from_relations({"R": [(1, 2)], "S": [(9, 3)]})
    assert count_acq(q, db2) == 0


def test_count_acq_rejects_cyclic_and_comparisons():
    db = generators.random_database({"R": 2, "S": 2, "T": 2}, 4, 8, seed=1)
    with pytest.raises(NotAcyclicError):
        count_acq(parse_cq("Q(x) :- R(x, y), S(y, z), T(z, x)"), db)
    with pytest.raises(UnsupportedQueryError):
        count_acq(parse_cq("Q(x) :- R(x, y), x != y"), db)


def test_derive_counting_join_unsatisfiable():
    db = Database.from_relations({"R": [(1, 2)], "S": [(9, 9)]})
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    assert derive_counting_join(q, db) is None


def test_derived_join_covers_free_variables():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    db = generators.random_database({"R": 2, "S": 2}, 5, 10, seed=3)
    derived = derive_counting_join(q, db)
    if derived is not None:
        covered = {v for r in derived for v in r.variables}
        assert covered == set(q.free_variables())


def test_naive_counting_weighted():
    q = parse_cq("Q(x) :- R(x, y)")
    db = Database.from_relations({"R": [(1, 2), (2, 3)]})
    assert count_cq_naive(q, db) == 2
    assert count_cq_naive(q, db, WeightFunction({1: 10, 2: 20})) == 30


def test_big_counts_are_exact_integers():
    """No float drift: counts on a cartesian-ish query are exact."""
    q = parse_cq("Q(a, b) :- R(a, u), S(b, v)")
    db = generators.random_database({"R": 2, "S": 2}, 30, 200, seed=4)
    assert count_acq(q, db) == len(evaluate_cq_naive(q, db))
