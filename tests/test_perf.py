"""Tests for the measurement harness and the *measured* delay behaviour:
the constant-vs-linear delay separation of Theorems 4.3/4.6 must be
observable on this very machine (with modest sizes so the suite stays
fast; the benchmarks push further)."""

import time

import pytest

from repro.data import generators
from repro.enumeration.acq_linear import LinearDelayACQEnumerator
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.logic.parser import parse_cq
from repro.perf.delay import DelayProfile, measure_enumerator, measure_stream
from repro.perf.scaling import ScalingResult, loglog_slope, run_scaling, time_call


def test_delay_profile_statistics():
    p = DelayProfile(preprocessing_seconds=0.5,
                     delays_seconds=[0.1, 0.2, 0.3], n_outputs=3)
    assert p.median_delay == 0.2
    assert p.max_delay == 0.3
    assert abs(p.mean_delay - 0.2) < 1e-12
    assert p.total_seconds == 0.5 + 0.6
    assert p.percentile(0.0) == 0.1
    assert p.percentile(0.99) == 0.3
    assert "pre=" in repr(p)


def test_delay_profile_empty():
    p = DelayProfile(preprocessing_seconds=0.0)
    assert p.median_delay == 0.0 and p.max_delay == 0.0
    assert p.percentile(0.5) == 0.0


def test_delay_profile_p999_tail():
    # 999 fast outputs and one slow straggler: the median hides the
    # spike, p99.9 must surface it
    delays = [1e-6] * 999 + [5e-3]
    p = DelayProfile(preprocessing_seconds=0.0, delays_seconds=delays,
                     n_outputs=1000)
    assert p.median_delay == 1e-6
    assert p.p999 == 5e-3


def test_delay_profile_histogram_fixed_buckets():
    from repro.perf.delay import DELAY_BUCKET_LABELS

    p = DelayProfile(preprocessing_seconds=0.0,
                     delays_seconds=[5e-8, 2e-7, 2e-7, 5e-4, 2.0],
                     n_outputs=5)
    hist = p.histogram()
    assert tuple(hist) == DELAY_BUCKET_LABELS  # every bucket, in order
    assert hist["<=1e-07s"] == 1
    assert hist["<=3.16e-07s"] == 2
    assert hist["<=0.001s"] == 1
    assert hist[">1e-01s"] == 1
    assert sum(hist.values()) == 5


def test_delay_profile_summary_json_able():
    import json

    p = DelayProfile(preprocessing_seconds=0.01,
                     delays_seconds=[1e-6, 2e-6, 3e-6], n_outputs=3)
    s = p.summary()
    json.dumps(s)
    assert s["outputs"] == 3
    assert s["delay_p50_seconds"] == 2e-6
    assert s["delay_p999_seconds"] == 3e-6
    assert s["preprocessing_seconds"] == 0.01
    assert s["throughput_per_s"] == pytest.approx(3 / 6e-6)
    assert sum(s["delay_histogram"].values()) == 3


def test_delay_profile_summary_infinite_throughput_is_none():
    # every delay rounded to zero (sub-resolution emission): throughput
    # is inf, which JSON can't carry — summary maps it to None
    p = DelayProfile(preprocessing_seconds=0.0,
                     delays_seconds=[0.0, 0.0], n_outputs=2)
    assert p.throughput == float("inf")
    assert p.summary()["throughput_per_s"] is None


def test_measure_enumerator_counts_outputs():
    db = generators.random_database({"R": 2, "S": 2}, 10, 40, seed=0)
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    profile = measure_enumerator(FreeConnexEnumerator(q, db))
    assert profile.n_outputs == len(set(FreeConnexEnumerator(q, db)))
    assert profile.preprocessing_seconds >= 0


def test_measure_stream_and_cap():
    profile = measure_stream(lambda: iter(range(100)), max_outputs=10)
    assert profile.n_outputs == 10


def test_loglog_slope_fits_polynomials():
    sizes = [100, 200, 400, 800]
    assert abs(loglog_slope(sizes, [s for s in sizes]) - 1.0) < 1e-9
    assert abs(loglog_slope(sizes, [s * s for s in sizes]) - 2.0) < 1e-9
    assert abs(loglog_slope(sizes, [7.0] * 4)) < 1e-9
    assert loglog_slope([1], [1]) == 0.0


def test_scaling_result_render():
    r = ScalingResult("demo")
    r.add(10, 1.0)
    r.add(100, 10.0)
    text = r.render()
    assert "demo" in text and "slope" in text
    assert r.rows() == [(10.0, 1.0), (100.0, 10.0)]


def test_run_scaling_uses_min_of_repeats():
    calls = []

    def metric(instance):
        calls.append(instance)
        return float(len(calls))

    result = run_scaling("m", [1, 2], make_instance=lambda n: n,
                         metric=metric, repeats=3)
    assert result.values == [1.0, 4.0]  # min over each triple of calls


def test_time_call_positive():
    assert time_call(lambda: sum(range(1000))) >= 0


def test_constant_vs_linear_delay_separation():
    """The headline empirical claim: the free-connex engine's median delay
    stays flat as ||D|| grows, while Algorithm 2's grows.  Asserted
    loosely (ratios, not absolute times) to be robust on CI machines."""
    fc_query = parse_cq("Q(x) :- R(x, z), S(z, y)")
    lin_query = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    sizes = [300, 2400]
    fc_delays, lin_delays = [], []
    for n in sizes:
        db = generators.random_database({"R": 2, "S": 2}, n // 3, n, seed=7)
        fc = measure_enumerator(FreeConnexEnumerator(fc_query, db),
                                max_outputs=100)
        lin = measure_enumerator(LinearDelayACQEnumerator(lin_query, db),
                                 max_outputs=100)
        # Algorithm 2's linear cost is paid when advancing to the next
        # first-coordinate value, so it lives in the delay *tail* (p95);
        # the free-connex engine's p95 stays flat
        fc_delays.append(max(fc.percentile(0.95), 1e-7))
        lin_delays.append(max(lin.percentile(0.95), 1e-7))
    fc_growth = fc_delays[-1] / fc_delays[0]
    lin_growth = lin_delays[-1] / lin_delays[0]
    # 8x data: constant-delay growth must stay well below linear-delay
    assert fc_growth < lin_growth, (fc_delays, lin_delays)
    assert lin_growth > 2.0, lin_delays


def test_preprocessing_scales_roughly_linearly():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")

    def metric(n):
        db = generators.random_database({"R": 2, "S": 2}, n // 3, n, seed=3)
        enum = FreeConnexEnumerator(q, db)
        start = time.perf_counter()
        enum.preprocess()
        return time.perf_counter() - start

    result = run_scaling("pre", [400, 800, 1600, 3200],
                         make_instance=lambda n: n, metric=metric, repeats=2)
    assert result.slope() < 1.7  # linear-ish, certainly not quadratic
