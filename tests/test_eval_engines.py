"""Unit + randomized integration tests for the evaluation engines:
naive CQ/FO evaluation, Yannakakis (Theorem 4.2), model checking."""

import random

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.errors import NotAcyclicError, UnsupportedQueryError
from repro.eval.join import VarRelation
from repro.eval.modelcheck import model_check
from repro.eval.naive import (
    cq_is_satisfiable_naive,
    evaluate_cq_naive,
    evaluate_fo,
    fo_answers,
    model_check_fo,
    satisfying_assignments,
)
from repro.eval.yannakakis import (
    acyclic_answers,
    full_reducer,
    yannakakis,
    yannakakis_boolean,
)
from repro.logic.fo import And, Exists, ForAll, Not, Or, RelAtom
from repro.logic.parser import parse_cq
from repro.logic.terms import Variable


def test_naive_simple_join(small_db):
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    assert (1, 10) in evaluate_cq_naive(q, small_db)


def test_naive_respects_comparisons(small_db):
    q = parse_cq("Q(x, y) :- R(x, y), x < y")
    got = evaluate_cq_naive(q, small_db)
    assert got == {t for t in small_db.relation("R") if t[0] < t[1]}


def test_naive_boolean(small_db):
    assert cq_is_satisfiable_naive(parse_cq("Q() :- R(x, y), S(y, z)"), small_db)
    assert not cq_is_satisfiable_naive(parse_cq("Q() :- R(x, x)"), small_db)


def test_satisfying_assignments_bind_all_variables(small_db):
    q = parse_cq("Q(x) :- R(x, z)")
    for a in satisfying_assignments(q, small_db):
        assert set(a) == {Variable("x"), Variable("z")}


def test_yannakakis_matches_naive_randomized():
    rng = random.Random(0)
    queries = [
        "Q(x, y) :- R(x, z), S(z, y)",
        "Q(x) :- R(x, z), S(z, y), T(y, w)",
        "Q(a, b, c) :- T(a, b, w), R(w, c)",
        "Q() :- R(x, y), S(y, z)",
        "Q(x) :- R(x, x)",
    ]
    for text in queries:
        q = parse_cq(text)
        for seed in range(4):
            db = generators.random_database(
                {"R": 2, "S": 2, "T": q.relation_arities().get("T", 2)},
                6, 12, seed=rng.randrange(10**6))
            assert acyclic_answers(q, db) == evaluate_cq_naive(q, db), (text, seed)


def test_yannakakis_boolean_matches(small_db):
    q = parse_cq("Q() :- R(x, z), S(z, y)")
    assert yannakakis_boolean(q, small_db) == cq_is_satisfiable_naive(q, small_db)
    q2 = parse_cq("Q() :- R(x, z), S(z, y), B(y)")
    db = small_db.copy()
    from repro.data.relation import Relation

    db.add_relation(Relation("B", 1))  # empty relation
    assert not yannakakis_boolean(q2, db)


def test_yannakakis_raises_on_cyclic(small_db):
    q = parse_cq("Q(x) :- R(x, y), S(y, z), R(z, x)")
    with pytest.raises(NotAcyclicError):
        yannakakis(q, small_db)


def test_full_reducer_global_consistency(small_db):
    """After full reduction every remaining tuple participates in some
    satisfying assignment (the global-consistency invariant)."""
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    _tree, reduced = full_reducer(q, small_db)
    assignments = list(satisfying_assignments(q, small_db))
    for rel, atom in zip(reduced, q.atoms):
        for t in rel:
            binding = dict(zip(rel.variables, t))
            assert any(
                all(a[v] == binding[v] for v in rel.variables)
                for a in assignments
            ), (atom, t)


def test_full_reducer_empties_on_unsatisfiable():
    db = Database.from_relations({"R": [(1, 2)], "S": [(9, 9)]})
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    _tree, reduced = full_reducer(q, db)
    assert all(len(r) == 0 for r in reduced)


def test_yannakakis_column_order_matches_head():
    db = Database.from_relations({"R": [(1, 2)], "S": [(2, 3)]})
    q = parse_cq("Q(y, x) :- R(x, z), S(z, y)")
    assert set(yannakakis(q, db)) == {(3, 1)}


# ---------------------------------------------------------------- FO engine


def test_fo_quantifiers(small_db):
    x, y = Variable("x"), Variable("y")
    # every R-source has an S-continuation?
    f = ForAll([x, y], Or(Not(RelAtom("R", [x, y])),
                          Exists(["w"], RelAtom("S", [y, "w"]))))
    assert model_check_fo(f, small_db)


def test_fo_evaluation_with_assignment(small_db):
    x = Variable("x")
    f = Exists(["y"], RelAtom("R", [x, "y"]))
    assert evaluate_fo(f, small_db, {x: 1})
    assert not evaluate_fo(f, small_db, {x: 40})


def test_fo_answers_matches_cq(small_db):
    from repro.logic.fo import cq_to_fo

    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    assert fo_answers(cq_to_fo(q), small_db) == evaluate_cq_naive(q, small_db)


def test_model_check_requires_sentence(small_db):
    with pytest.raises(UnsupportedQueryError):
        model_check_fo(RelAtom("R", ["x", "y"]), small_db)


def test_unbound_variable_raises(small_db):
    with pytest.raises(UnsupportedQueryError):
        evaluate_fo(RelAtom("R", ["x", "y"]), small_db, {})


# ------------------------------------------------------------- dispatcher


def test_model_check_dispatch(small_db):
    assert model_check(parse_cq("Q() :- R(x, z), S(z, y)"), small_db)
    cyclic = parse_cq("Q() :- R(x, y), R(y, z), R(z, x)")
    db = generators.graph_database([(1, 2), (2, 3), (3, 1)], edge_name="R")
    assert model_check(cyclic, db)
    with pytest.raises(UnsupportedQueryError):
        model_check(parse_cq("Q(x) :- R(x, y)"), small_db)


def test_model_check_ucq(small_db):
    from repro.logic.parser import parse_query

    u = parse_query("Q() :- R(x, x); Q() :- S(x, y)")
    assert model_check(u, small_db)  # second disjunct holds


def test_model_check_ncq():
    from repro.logic.parser import parse_query

    db = Database.from_relations({"R": [(0, 0)]}, domain=[0, 1])
    q = parse_query("Q() :- not R(x, y)")
    assert model_check(q, db)  # e.g. x=0, y=1 avoids the forbidden tuple


def test_model_check_fo_formula(small_db):
    f = Exists(["x", "y"], RelAtom("R", ["x", "y"]))
    assert model_check(f, small_db)
