"""Tests for repro.figures — the paper's figures as objects."""

from repro.figures import (
    figure1_added_edge,
    figure1_query,
    figure2_query,
    figure3_expected,
)
from repro.hypergraph.components import s_components
from repro.hypergraph.freeconnex import free_connex_join_tree
from repro.logic.terms import Variable


def test_figure1_query_shape():
    q = figure1_query()
    assert q.arity == 3
    assert [v.name for v in q.head] == ["x1", "x2", "x3"]
    assert len(q.atoms) == 5
    assert q.is_acyclic() and q.is_free_connex()
    assert q.quantified_star_size() == 1


def test_figure1_added_edge():
    edge = figure1_added_edge()
    assert edge == {Variable("x2"), Variable("x3")}
    # the added edge is a sub-edge of the S atom, as in the paper
    q = figure1_query()
    s_atom = next(a for a in q.atoms if a.relation == "S")
    assert edge <= s_atom.variable_set()


def test_figure1_tree_valid():
    tree, virtual = free_connex_join_tree(figure1_query())
    assert tree.is_valid()
    assert tree.root == virtual


def test_figure2_query_shape():
    q = figure2_query()
    assert q.arity == 7
    assert len(q.hypergraph().vertices) == 16
    assert {v.name for v in q.free_variables()} == {f"y{i}" for i in range(1, 8)}
    assert {v.name for v in q.existential_variables()} == \
        {f"x{i}" for i in range(1, 10)}
    assert q.is_acyclic()


def test_figure3_invariants_hold():
    q = figure2_query()
    expected = figure3_expected()
    comps = s_components(q.hypergraph(), q.free_variables())
    assert len(comps) == expected["n_components"]
    assert q.quantified_star_size() == expected["star_size"]
    central = next(c for c in comps if Variable("y3") in c.s_vertices)
    witness = {Variable(n) for n in expected["witness_independent_set"]}
    assert witness <= central.s_vertices
    assert central.subhypergraph(q.hypergraph()).is_independent(witness)


def test_y6_shared_between_components():
    """Figure 3 shows y6 in two components (free vertices may be shared)."""
    q = figure2_query()
    comps = s_components(q.hypergraph(), q.free_variables())
    holding = [c for c in comps if Variable("y6") in c.s_vertices]
    assert len(holding) == 2
