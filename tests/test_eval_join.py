"""Unit tests for VarRelation and the relational operators."""

import pytest

from repro.data.database import Database
from repro.errors import SchemaMismatchError
from repro.eval.join import VarRelation, atom_to_varrelation, product
from repro.logic.atoms import Atom
from repro.logic.terms import Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


def test_schema_and_add():
    r = VarRelation((x, y), [(1, 2), (1, 3)])
    assert len(r) == 2
    assert (1, 2) in r
    with pytest.raises(ValueError):
        r.add((1,))


def test_duplicate_schema_rejected():
    with pytest.raises(ValueError):
        VarRelation((x, x))


def test_probe_by_variables():
    r = VarRelation((x, y), [(1, 2), (1, 3), (2, 3)])
    assert sorted(r.probe((x,), (1,))) == [(1, 2), (1, 3)]
    assert r.probe_assignment({x: 2, z: 99}) == [(2, 3)]


def test_project():
    r = VarRelation((x, y), [(1, 2), (1, 3)])
    p = r.project((x,))
    assert p.variables == (x,)
    assert set(p) == {(1,)}


def test_semijoin_shared_variables():
    r = VarRelation((x, y), [(1, 2), (2, 3)])
    s = VarRelation((y, z), [(2, 9)])
    out = r.semijoin(s)
    assert set(out) == {(1, 2)}


def test_semijoin_no_shared_variables():
    r = VarRelation((x,), [(1,), (2,)])
    s_nonempty = VarRelation((y,), [(5,)])
    s_empty = VarRelation((y,))
    assert set(r.semijoin(s_nonempty)) == {(1,), (2,)}
    assert len(r.semijoin(s_empty)) == 0


def test_natural_join():
    r = VarRelation((x, y), [(1, 2), (2, 3)])
    s = VarRelation((y, z), [(2, 9), (3, 8)])
    out = r.join(s)
    assert out.variables == (x, y, z)
    assert set(out) == {(1, 2, 9), (2, 3, 8)}


def test_join_without_shared_is_cartesian():
    r = VarRelation((x,), [(1,), (2,)])
    s = VarRelation((y,), [(5,)])
    assert set(r.join(s)) == {(1, 5), (2, 5)}


def test_rename_merges_columns():
    r = VarRelation((x, y), [(1, 1), (1, 2)])
    merged = r.rename({y: x})
    assert merged.variables == (x,)
    assert set(merged) == {(1,)}  # (1, 2) dropped: conflicting merge


def test_assignment_view():
    r = VarRelation((x, y), [(1, 2)])
    assert r.assignment((1, 2)) == {x: 1, y: 2}


def test_atom_to_varrelation_handles_constants():
    db = Database.from_relations({"R": [(1, 2), (3, 2), (1, 5)]})
    rel = atom_to_varrelation(db, Atom("R", [x, 2]))
    assert rel.variables == (x,)
    assert set(rel) == {(1,), (3,)}


def test_atom_to_varrelation_handles_repeats():
    db = Database.from_relations({"R": [(1, 1), (1, 2)]})
    rel = atom_to_varrelation(db, Atom("R", [x, x]))
    assert set(rel) == {(1,)}


def test_atom_to_varrelation_arity_check():
    db = Database.from_relations({"R": [(1, 2)]})
    with pytest.raises(SchemaMismatchError):
        atom_to_varrelation(db, Atom("R", [x]))


def test_product_of_list():
    r = VarRelation((x,), [(1,)])
    s = VarRelation((y,), [(2,)])
    out = product([r, s])
    assert set(out) == {(1, 2)}
    unit = product([])
    assert set(unit) == {()}


def test_index_updates_on_add():
    r = VarRelation((x, y))
    r.index_on((x,))
    r.add((1, 2))
    assert r.probe((x,), (1,)) == [(1, 2)]
