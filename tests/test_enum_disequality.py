"""Tests for ACQ!= enumeration (Theorem 4.20)."""

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.enumeration.disequality import (
    DisequalityEnumerator,
    FallbackDisequalityEnumerator,
    enumerate_acq_disequalities,
)
from repro.errors import NotFreeConnexError, UnsupportedQueryError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq

SUPPORTED = [
    "Q(x, y) :- R(x, z), S(y, w), x != y",         # free-free
    "Q(x, y) :- R(x, y), x != y",                  # same-atom
    "Q(x) :- R(x, z), z != x",                     # quantified, single host
    "Q(x, y) :- R(x, z), S(y, w), x != y, x != 3", # with a constant
    "Q(x) :- R(x, z), z != x, z != 0",             # two diseqs on z
]


def test_supported_fragment_matches_naive():
    for text in SUPPORTED:
        q = parse_cq(text)
        for seed in range(5):
            db = generators.random_database({"R": 2, "S": 2}, 6, 14, seed=seed)
            enum = DisequalityEnumerator(q, db)
            got = list(enum)
            assert len(got) == len(set(got)), (text, seed)
            assert set(got) == evaluate_cq_naive(q, db), (text, seed)


def test_witness_tables_keep_k_plus_one_values():
    # z is quantified, hosted by R alone, and compared against the free w
    # of another atom: the genuine witness-table case
    q = parse_cq("Q(x, w) :- R(x, z), B(w), z != w")
    db = Database.from_relations({
        "R": [(1, v) for v in range(10)] + [(2, 5)],
        "B": [(5,), (6,)],
    })
    enum = DisequalityEnumerator(q, db)
    enum.preprocess()
    (constraint,) = enum._constraints
    # k = 1 disequality -> at most 2 representative witnesses per group
    assert all(len(ws) <= 2 for ws in constraint.witnesses.values())
    assert set(enum) == evaluate_cq_naive(q, db)


def test_same_atom_disequality_has_no_witness_constraint():
    q = parse_cq("Q(x) :- R(x, z), z != x")
    db = Database.from_relations({"R": [(1, 1), (1, 2), (2, 2)]})
    enum = DisequalityEnumerator(q, db)
    enum.preprocess()
    assert enum._constraints == []  # handled during materialisation
    assert set(enum) == {(1,)}


def test_group_with_only_forbidden_witness_is_rejected():
    q = parse_cq("Q(x) :- R(x, z), z != x")
    db = Database.from_relations({"R": [(1, 1), (2, 7)]})
    assert set(DisequalityEnumerator(q, db)) == {(2,)}


def test_rejects_non_free_connex_core():
    db = generators.random_database({"A": 2, "B": 2}, 5, 10, seed=0)
    with pytest.raises(NotFreeConnexError):
        DisequalityEnumerator(parse_cq("Q(x, y) :- A(x, z), B(z, y), x != y"), db)


def test_rejects_order_comparisons():
    db = generators.random_database({"R": 2}, 5, 10, seed=0)
    enum = DisequalityEnumerator(parse_cq("Q(x) :- R(x, y), x < y"), db)
    with pytest.raises(UnsupportedQueryError):
        enum.preprocess()


def test_unsupported_shape_falls_back():
    # z occurs in two atoms and is compared against a free variable it
    # shares no atom with: outside the witness-table fragment
    q = parse_cq("Q(x, u) :- R(x, z), S(z, w), B(u), z != u")
    db = generators.random_database({"R": 2, "S": 2, "B": 1}, 6, 12, seed=1)
    enum = enumerate_acq_disequalities(q, db)
    assert isinstance(enum, FallbackDisequalityEnumerator)
    got = list(enum)
    assert set(got) == evaluate_cq_naive(q, db)
    assert len(got) == len(set(got))


def test_fallback_is_always_correct():
    queries = [
        "Q(x, y) :- R(x, z), S(z, y), x != y",
        "Q(x) :- R(x, y), S(y, z), y != z",
    ]
    for text in queries:
        q = parse_cq(text)
        for seed in range(4):
            db = generators.random_database({"R": 2, "S": 2}, 6, 12, seed=seed)
            got = list(FallbackDisequalityEnumerator(q, db))
            assert set(got) == evaluate_cq_naive(q, db)
            assert len(got) == len(set(got))


def test_boolean_with_disequality():
    q = parse_cq("Q() :- R(x, z), z != x")
    db_yes = Database.from_relations({"R": [(1, 2)]})
    db_no = Database.from_relations({"R": [(1, 1), (2, 2)]})
    assert list(DisequalityEnumerator(q, db_yes)) == [()]
    assert list(DisequalityEnumerator(q, db_no)) == []


def test_everything_filtered():
    q = parse_cq("Q(x, y) :- R(x, z), S(y, w), x != y")
    db = Database.from_relations({"R": [(1, 5)], "S": [(1, 6)]})
    assert list(DisequalityEnumerator(q, db)) == []
