"""Unit tests for the functional-structure encoding (Section 4.3)."""

from repro.data.database import Database
from repro.data.functional import BOTTOM, to_functional_structure


def test_encoding_shapes():
    db = Database.from_relations({
        "R": [(1, 2), (2, 3)],
        "S": [(1, 2, 3)],
    })
    f = to_functional_structure(db)
    assert f.max_arity == 3
    assert len(f.sort("R")) == 2
    assert len(f.sort("S")) == 1
    # F = domain + tuple elements + bottom
    assert f.size() == db.domain_size() + 3 + 1


def test_projection_functions():
    db = Database.from_relations({"R": [(10, 20)]})
    f = to_functional_structure(db)
    t = f.sort("R")[0]
    assert f.f(1, t) == 10
    assert f.f(2, t) == 20
    # outside arity -> bottom
    db2 = Database.from_relations({"R": [(10, 20)], "S": [(1, 2, 3)]})
    f2 = to_functional_structure(db2)
    t2 = f2.sort("R")[0]
    assert f2.f(3, t2) == BOTTOM


def test_projection_of_domain_element_is_bottom():
    db = Database.from_relations({"R": [(10, 20)]})
    f = to_functional_structure(db)
    assert f.f(1, 10) == BOTTOM


def test_sorts_are_disjoint():
    db = Database.from_relations({"R": [(1, 2)], "S": [(1, 2)]})
    f = to_functional_structure(db)
    r_elem = f.sort("R")[0]
    assert f.in_sort(r_elem, "R")
    assert not f.in_sort(r_elem, "S")
    assert f.is_domain(1)
    assert not f.is_domain(r_elem)


def test_index_bounds():
    import pytest

    db = Database.from_relations({"R": [(1, 2)]})
    f = to_functional_structure(db)
    with pytest.raises(IndexError):
        f.f(0, f.sort("R")[0])


def test_all_elements_includes_bottom():
    db = Database.from_relations({"R": [(1, 2)]})
    f = to_functional_structure(db)
    assert BOTTOM in f.all_elements()


def test_relation_subset_selection():
    db = Database.from_relations({"R": [(1, 2)], "S": [(3, 4)]})
    f = to_functional_structure(db, relations=["R"])
    assert "S" not in f.tuple_elements
