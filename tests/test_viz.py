"""Tests for the DOT/text exporters."""

from repro.figures import figure1_query, figure2_query
from repro.hypergraph.freeconnex import free_connex_join_tree
from repro.hypergraph.jointree import join_tree_of_query
from repro.logic.parser import parse_cq
from repro.mso.treedecomp import adjacency_from_database, tree_decomposition
from repro.data import generators
from repro.viz import (
    hypergraph_to_dot,
    join_tree_to_dot,
    query_to_dot,
    s_components_to_dot,
    tree_decomposition_to_dot,
)


def test_hypergraph_dot_structure():
    q = parse_cq("Q(x) :- R(x, y), S(y, z)")
    dot = hypergraph_to_dot(q.hypergraph(), q.free_variables())
    assert dot.startswith("graph H {") and dot.endswith("}")
    assert '"x" [shape=doublecircle]' in dot  # free variable doubled
    assert '"y" [shape=circle]' in dot
    assert "e0" in dot and "e1" in dot
    assert dot.count(" -- ") == 4  # two binary edges -> four incidences


def test_join_tree_dot():
    q = parse_cq("Q(x) :- R(x, y), S(y, z)")
    tree = join_tree_of_query(q)
    dot = join_tree_to_dot(tree, highlight=[tree.root])
    assert dot.startswith("digraph T {")
    assert "fillcolor" in dot
    assert dot.count("->") == 1  # two nodes, one tree edge


def test_free_connex_tree_dot_of_figure1():
    q = figure1_query()
    tree, virtual = free_connex_join_tree(q)
    dot = join_tree_to_dot(tree, highlight=[virtual])
    assert "x1,x2,x3" in dot
    assert dot.count("->") == len(tree.nodes()) - 1


def test_s_components_dot_figure3():
    q = figure2_query()
    dot = s_components_to_dot(q.hypergraph(), q.free_variables())
    assert dot.count("subgraph cluster_") == 3
    assert '"1_y6"' in dot or '"2_y6"' in dot  # y6 appears in two clusters


def test_tree_decomposition_dot():
    graph = adjacency_from_database(generators.cycle_graph(6))
    td = tree_decomposition(graph)
    dot = tree_decomposition_to_dot(td)
    assert dot.startswith("digraph TD {")
    assert dot.count("shape=box") == len(td.bags)


def test_query_to_dot_quotes_labels():
    q = parse_cq('Q(x) :- R(x, "a b")')
    dot = query_to_dot(q)
    assert "graph Q {" in dot
    # the constant does not appear as a vertex; only variables do
    assert '"x"' in dot


def test_dot_is_parseable_shape():
    """Each emitted line inside the braces is a node, edge or attr."""
    q = figure2_query()
    dot = hypergraph_to_dot(q.hypergraph(), q.free_variables())
    body = dot.splitlines()[1:-1]
    for line in body:
        line = line.strip()
        assert line.endswith(";") or line.endswith("{") or line == "}"
