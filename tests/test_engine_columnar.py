"""Unit tests for the pluggable engine layer (repro.engine): the backend
registry, the dictionary-encoded columnar kernel, and the satellite
index/caching optimisations that ride along with it."""

import os

import numpy as np
import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine import (
    available_engines,
    get_engine,
    resolve_engine,
    set_engine,
    use_engine,
)
from repro.engine.base import ColumnarEngine, TupleEngine
from repro.engine.columnar import (
    ColumnarRelation,
    ValueDictionary,
    group_ids,
    materialise_atom_columnar,
)
from repro.eval.join import VarRelation, atom_to_varrelation
from repro.hypergraph.jointree import cached_join_tree
from repro.logic.parser import parse_cq
from repro.logic.terms import Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


# ------------------------------------------------------------------ registry


def test_registry_lists_both_backends():
    assert "tuple" in available_engines()
    assert "columnar" in available_engines()


def test_get_engine_default_is_tuple(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    set_engine(None)
    assert get_engine().name == "tuple"


def test_get_engine_honours_env_var(monkeypatch):
    set_engine(None)
    monkeypatch.setenv("REPRO_ENGINE", "columnar")
    assert get_engine().name == "columnar"


def test_set_engine_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "tuple")
    set_engine("columnar")
    try:
        assert get_engine().name == "columnar"
    finally:
        set_engine(None)


def test_use_engine_restores_previous_selection():
    set_engine(None)
    before = get_engine().name
    with use_engine("tuple" if before == "columnar" else "columnar") as eng:
        assert get_engine().name == eng.name != before
    assert get_engine().name == before


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        get_engine("no-such-backend")
    with pytest.raises(ValueError):
        set_engine("no-such-backend")


def test_resolve_engine_accepts_name_instance_and_none():
    assert resolve_engine("tuple").name == "tuple"
    eng = ColumnarEngine()
    assert resolve_engine(eng) is eng
    set_engine(None)
    assert resolve_engine(None).name == get_engine().name


# --------------------------------------------------------- value dictionary


def test_value_dictionary_roundtrip():
    d = ValueDictionary()
    values = [3, "a", (1, 2), None, 3, "a"]
    codes = [d.encode(v) for v in values]
    assert codes[0] == codes[4] and codes[1] == codes[5]
    assert [d.decode(c) for c in codes[:4]] == [3, "a", (1, 2), None]
    assert d.code_of("missing") is None


def test_group_ids_distinguishes_composite_keys():
    a = np.array([0, 0, 1, 1, 0], dtype=np.int64)
    b = np.array([0, 1, 0, 1, 0], dtype=np.int64)
    ids, card = group_ids([a, b], 5)
    assert card >= 4
    # equal rows share an id, distinct rows do not
    assert ids[0] == ids[4]
    assert len({ids[0], ids[1], ids[2], ids[3]}) == 4


# ------------------------------------------------------ columnar relation ops


def _pair(rows_r, rows_s):
    r = ColumnarRelation((x, y), rows_r)
    s = ColumnarRelation((y, z), rows_s, dictionary=r.dictionary)
    return r, s


def test_columnar_matches_varrelation_on_core_ops():
    rows_r = [(1, 2), (1, 3), (2, 3), (4, 5)]
    rows_s = [(2, 7), (3, 8), (9, 9)]
    cr, cs = _pair(rows_r, rows_s)
    vr, vs = VarRelation((x, y), rows_r), VarRelation((y, z), rows_s)

    assert set(cr.semijoin(cs)) == set(vr.semijoin(vs))
    assert set(cr.join(cs)) == set(vr.join(vs))
    assert set(cr.project([y])) == set(vr.project([y]))
    assert set(cr.project([y, x])) == set(vr.project([y, x]))
    assert len(cr) == len(vr)


def test_columnar_join_column_order_and_duplicate_free():
    cr, cs = _pair([(1, 2), (1, 2)], [(2, 3)])
    assert len(cr) == 1  # construction dedupes
    joined = cr.join(cs)
    assert joined.variables == (x, y, z)
    assert set(joined) == {(1, 2, 3)}


def test_columnar_project_preserves_first_seen_order():
    rel = ColumnarRelation((x, y), [(5, 1), (3, 1), (5, 2), (3, 9)])
    assert list(rel.project([x])) == [5, 3] or list(rel.project([x])) == [(5,), (3,)]


def test_columnar_probe_interface_matches_tuple_backend():
    rows = [(1, 2), (1, 3), (2, 3)]
    cr = ColumnarRelation((x, y), rows)
    vr = VarRelation((x, y), rows)
    assert sorted(cr.probe_assignment({x: 1})) == sorted(vr.probe_assignment({x: 1}))
    assert sorted(cr.index_on((x,))[(1,)]) == sorted(vr.index_on((x,))[(1,)])
    assert (1, 2) in cr and (9, 9) not in cr


def test_columnar_mixed_type_rows_do_not_coerce():
    # numpy would coerce [(1, "a")] to strings; the encoder must not
    rel = ColumnarRelation((x, y), [(1, "a"), ("b", 2)])
    assert set(rel) == {(1, "a"), ("b", 2)}


def test_columnar_empty_and_nullary():
    empty = ColumnarRelation((x,))
    assert len(empty) == 0 and list(empty) == []
    other = ColumnarRelation((x,), [(1,)], dictionary=empty.dictionary)
    assert len(empty.semijoin(other)) == 0
    assert len(other.semijoin(empty)) == 0


# ------------------------------------------------- atom materialisation paths


def _db():
    db = Database()
    db.add_relation(Relation("R", 2, [(1, 1), (1, 2), (2, 2), (3, 1)]))
    return db


@pytest.mark.parametrize("query", [
    "Q(x, y) :- R(x, y)",
    "Q(x) :- R(x, x)",
    "Q(x) :- R(x, 1)",
    "Q(x) :- R(1, x)",
])
def test_materialise_atom_parity(query):
    db = _db()
    atom = parse_cq(query).atoms[0]
    tup = atom_to_varrelation(db, atom)
    col = materialise_atom_columnar(db, atom)
    assert set(col) == set(tup)
    assert col.variables == tup.variables


def test_engine_objects_materialise_consistently():
    db = _db()
    atom = parse_cq("Q(x) :- R(x, x)").atoms[0]
    assert set(TupleEngine().materialise_atom(db, atom)) == \
        set(ColumnarEngine().materialise_atom(db, atom))


# ----------------------------------------------------- satellite: indexes etc


def test_atom_to_varrelation_uses_index_for_constants():
    db = _db()
    atom = parse_cq("Q(x) :- R(x, 2)").atoms[0]
    rel = db.relation("R")
    atom_to_varrelation(db, atom)
    # the constant position should now be indexed on the base relation
    assert any(pos == (1,) for pos in rel._indexes)


def test_relation_discard_maintains_indexes_incrementally():
    rel = Relation("R", 2, [(1, 2), (1, 3), (2, 4)])
    idx = rel.index_on((0,))
    assert sorted(idx[(1,)]) == [(1, 2), (1, 3)]
    rel.discard((1, 2))
    idx2 = rel.index_on((0,))
    assert idx2[(1,)] == [(1, 3)]
    rel.discard((2, 4))
    assert (2,) not in rel.index_on((0,))
    # discarding a missing tuple is a no-op
    rel.discard((9, 9))
    assert len(rel) == 1


def test_cached_join_tree_memoises_per_hypergraph():
    q1 = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    q2 = parse_cq("Q(x) :- R(x, z), S(z, y)")
    t1 = cached_join_tree(q1.hypergraph())
    t2 = cached_join_tree(q2.hypergraph())
    assert t1 is t2  # same body hypergraph -> same memoised tree
