"""Parity and unit tests for engine-wide per-symbol work sharing.

Self-join queries name one stored relation through several atoms, and
the :class:`repro.engine.symbols.SymbolWorkspace` shares one build (one
dictionary encode, one probe structure, one masked column set) per
(symbol, database version) across all of them.  Sharing must be
invisible: every backend, with sharing on or off
(``REPRO_SYMBOL_SHARING``), must return exactly the answers of the
naive evaluator — including duplicate-variable atoms ``R(x, x)``,
constant atoms ``R(3, y)``, and interleaved updates that invalidate the
workspace mid-stream.  The classifier half pins the Carmeli–Segoufin
self-join analysis: core-based verdicts are decisive, not hedged with
the old "lower bound stated for self-join-free queries" caveat.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import classify
from repro.core.plancache import clear_plan_cache
from repro.counting.acq_count import count_acq
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine import get_engine
from repro.engine.symbols import (
    SymbolWorkspace,
    atom_signature,
    sharing_enabled,
    sharing_scope,
)
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.eval.naive import cq_is_satisfiable_naive, evaluate_cq_naive
from repro.eval.yannakakis import full_reducer, yannakakis, yannakakis_boolean
from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_cq
from repro.logic.terms import Constant, Variable
from repro.obs.fitting import expected_verdict
from repro.obs.registry import registry

ENGINES = ("tuple", "columnar", "parallel", "compiled")

DOMAIN = st.integers(min_value=0, max_value=4)


@st.composite
def selfjoin_instance(draw):
    """A random *acyclic* self-join CQ over one binary symbol ``R``, plus
    a random database.  Atoms grow tree-shaped (each new atom hangs off
    one existing variable), which keeps the variable graph a forest and
    hence the query alpha-acyclic; the second term is a fresh variable,
    the anchor again (``R(v, v)``), or a constant — so the strategy
    exercises every :func:`atom_signature` layout."""
    n_atoms = draw(st.integers(min_value=2, max_value=4))
    anchor = Variable("v0")
    pool = [anchor]
    fresh = 1
    atoms = []
    for i in range(n_atoms):
        anchor = pool[0] if i == 0 else draw(st.sampled_from(pool))
        kind = draw(st.sampled_from(["fresh", "dup", "const"]))
        if kind == "fresh":
            other = Variable(f"v{fresh}")
            fresh += 1
            pool.append(other)
        elif kind == "dup":
            other = anchor
        else:
            other = Constant(draw(DOMAIN))
        terms = [other, anchor] if draw(st.booleans()) else [anchor, other]
        atoms.append(Atom("R", terms))
    all_vars = sorted({t for a in atoms for t in a.terms
                       if isinstance(t, Variable)}, key=lambda v: v.name)
    head = draw(st.lists(st.sampled_from(all_vars), unique=True,
                         max_size=len(all_vars)))
    cq = ConjunctiveQuery(head, atoms)
    rows = draw(st.lists(st.tuples(DOMAIN, DOMAIN), min_size=0, max_size=12))
    db = Database([Relation("R", 2, rows)])
    return cq, db


# ----------------------------------------------------- cross-engine parity


@settings(max_examples=40, deadline=None)
@given(selfjoin_instance())
def test_selfjoin_answer_parity(instance):
    cq, db = instance
    if cq.is_boolean():
        expect = cq_is_satisfiable_naive(cq, db)
        for enabled in (True, False):
            with sharing_scope(enabled):
                clear_plan_cache()
                for engine in ENGINES:
                    assert yannakakis_boolean(cq, db, engine=engine) == expect
        return
    expect = evaluate_cq_naive(cq, db)
    for enabled in (True, False):
        with sharing_scope(enabled):
            clear_plan_cache()
            for engine in ENGINES:
                assert set(yannakakis(cq, db, engine=engine)) == expect


@settings(max_examples=40, deadline=None)
@given(selfjoin_instance())
def test_selfjoin_count_parity(instance):
    cq, db = instance
    expect = (1 if cq_is_satisfiable_naive(cq, db) else 0) \
        if cq.is_boolean() else len(evaluate_cq_naive(cq, db))
    for enabled in (True, False):
        with sharing_scope(enabled):
            clear_plan_cache()
            for engine in ENGINES:
                assert count_acq(cq, db, engine=engine) == expect


@settings(max_examples=30, deadline=None)
@given(selfjoin_instance())
def test_selfjoin_enumeration_parity(instance):
    """Quantifier-free variant (all variables in the head): free-connex
    by construction, so every backend must enumerate the same answer
    set, and the *order* within one backend must not depend on whether
    the workspace served shared artefacts."""
    cq, db = instance
    all_vars = sorted(cq.variables(), key=lambda v: v.name)
    qf = ConjunctiveQuery(all_vars, cq.atoms)
    expect = evaluate_cq_naive(qf, db)
    for engine in ENGINES:
        with sharing_scope(True):
            clear_plan_cache()
            shared = list(FreeConnexEnumerator(qf, db, engine=engine))
        with sharing_scope(False):
            clear_plan_cache()
            unshared = list(FreeConnexEnumerator(qf, db, engine=engine))
        assert set(shared) == expect
        assert shared == unshared


def test_interleaved_updates_invalidate_workspace():
    """Mutations bump the stored relation's version; the next query must
    see the new data on every backend (a stale shared materialisation
    would be silently wrong), with workspace misses accounting for the
    invalidation."""
    q = parse_cq("Q(x, y, z) :- R(x, y), R(y, z)")
    db = Database([Relation("R", 2, [(i, i + 1) for i in range(20)])])
    reg = registry()
    for step in range(4):
        expect = evaluate_cq_naive(q, db)
        misses_before = reg.counter("engine.symbol_workspace_misses")
        for engine in ENGINES:
            assert set(yannakakis(q, db, engine=engine)) == expect
        if step % 2 == 0:
            db.relation("R").add((100 + step, 0))       # append-only delta
        else:
            db.relation("R").discard((step, step + 1))  # delete path
        assert reg.counter("engine.symbol_workspace_misses") > misses_before


# ------------------------------------------------------- workspace internals


def test_atom_signature_layouts():
    x, y = Variable("x"), Variable("y")
    u = Variable("u")
    assert atom_signature(Atom("R", [x, y])) is None
    assert atom_signature(Atom("R", [x, x])) == (("dup", 1, 0),)
    assert atom_signature(Atom("R", [Constant(3), y])) == (("const", 0, 3),)
    # signatures are variable-name independent: R(x, x) and R(u, u)
    # share one masked materialisation
    assert atom_signature(Atom("R", [x, x])) == atom_signature(Atom("R", [u, u]))
    assert atom_signature(Atom("R", [Constant(3), x])) \
        == atom_signature(Atom("R", [Constant(3), u]))
    assert atom_signature(Atom("R", [Constant(2), x])) \
        != atom_signature(Atom("R", [Constant(3), x]))


def test_workspace_hit_miss_and_version_invalidation():
    ws = SymbolWorkspace()
    r = Relation("R", 2, [(1, 2)])
    e1 = ws.entry("R", r, "unit")
    assert ws.entry("R", r, "unit") is e1          # same version: hit
    r.add((3, 4))                                  # version bump
    e2 = ws.entry("R", r, "unit")
    assert e2 is not e1
    assert ws.stats()["entries"] == 1              # stale entry dropped


def test_workspace_variant_memoised_once():
    ws = SymbolWorkspace()
    r = Relation("R", 2, [(1, 1), (1, 2)])
    entry = ws.entry("R", r, "unit")
    calls = []

    def build():
        calls.append(1)
        return ("payload",)

    key = ("cols", (("dup", 1, 0),))
    assert entry.variant(key, build) == ("payload",)
    assert entry.variant(key, build) == ("payload",)
    assert len(calls) == 1
    assert ws.stats()["variants"] == 1


def test_workspace_lru_eviction():
    ws = SymbolWorkspace(limit=2)
    rels = [Relation(f"R{i}", 1, [(i,)]) for i in range(3)]
    for rel in rels:
        ws.entry(rel.name, rel, "unit")
    assert ws.stats()["entries"] == 2              # oldest evicted


def test_sharing_scope_and_plan_key():
    """The kill-switch folds into every backend's plan key, so a plan
    built with sharing on can never serve a run with sharing off."""
    assert sharing_enabled() in (True, False)
    for engine in ENGINES:
        eng = get_engine(engine)
        with sharing_scope(True):
            on = eng.plan_key()
        with sharing_scope(False):
            off = eng.plan_key()
        assert on != off
    with sharing_scope(False):
        assert not sharing_enabled()
        with sharing_scope(True):
            assert sharing_enabled()
        assert not sharing_enabled()


def test_semijoin_coalescing_counted_and_sound():
    """When one tree node is reduced by two sources whose shared columns
    are the *same arrays* (per-symbol sharing aliases them), the second
    pass is provably a no-op and gets coalesced — without changing the
    reduction.  A star-shaped join tree (root with two same-symbol
    children) forces the situation deterministically."""
    from repro.eval.yannakakis import materialise_atoms
    from repro.hypergraph.jointree import JoinTree

    q = parse_cq("Q(x, y1, y2, y3) :- R(x, y1), R(x, y2), R(x, y3)")
    db = Database([Relation("R", 2, [(i % 5, i) for i in range(40)])])
    star = JoinTree(q.hypergraph(), 0, {0: None, 1: 0, 2: 0})
    assert star.is_valid()
    reg = registry()
    with sharing_scope(True):
        clear_plan_cache()
        before = reg.counter("yannakakis.coalesced_semijoins")
        _, reduced = full_reducer(
            q, db, tree=star,
            relations=materialise_atoms(q, db, "columnar"),
            engine="columnar")
        assert reg.counter("yannakakis.coalesced_semijoins") > before
    with sharing_scope(False):
        clear_plan_cache()
        base = reg.counter("yannakakis.coalesced_semijoins")
        _, reduced_off = full_reducer(
            q, db, tree=star,
            relations=materialise_atoms(q, db, "columnar"),
            engine="columnar")
        assert reg.counter("yannakakis.coalesced_semijoins") == base
    for a, b in zip(reduced, reduced_off):
        assert set(a) == set(b)


# ------------------------------------------------- classifier: self-joins


def test_cyclic_query_with_acyclic_core_is_decisively_tractable():
    """R(x,y),R(y,z),R(z,x),R(x,x) looks cyclic, but y,z collapse onto x
    (the loop atom absorbs the triangle): the homomorphic core is the
    free-connex ACQ Q(x) :- R(x,x), so every task is decisively easy."""
    q = parse_cq("Q(x) :- R(x, y), R(y, z), R(z, x), R(x, x)")
    rep = classify(q)
    assert rep.query_class == "cyclic CQ (acyclic core)"
    assert rep.fact("core_is_proper") is True
    assert rep.fact("effective_acyclic") is True
    assert rep.fact("effective_free_connex") is True
    assert rep.verdict("decide").tractable is True
    assert rep.verdict("count").tractable is True
    assert rep.verdict("enumerate").tractable is True
    # the observatory's expectation rides on the effective structure
    assert expected_verdict(q, "total") == "linear"
    assert expected_verdict(q, "delay") == "constant-delay"


def test_triangle_selfjoin_lower_bound_is_decisive():
    """The triangle's core is the triangle: no identification removes
    the cyclic structure, so the Hyperclique bound transfers to the
    self-join query — stated decisively, not hedged as 'lower bound
    stated for self-join-free queries'."""
    q = parse_cq("Q() :- R(x, y), R(y, z), R(z, x)")
    rep = classify(q)
    assert rep.query_class == "cyclic CQ"
    assert rep.fact("self_join_free") is False
    assert rep.fact("core_acyclic") is False
    v = rep.verdict("enumerate")
    assert v.tractable is False
    assert "Carmeli-Segoufin" in v.caveat
    assert "self-join-free" not in v.caveat
    assert expected_verdict(q, "total") == "superlinear"


def test_acyclic_selfjoin_matmul_bound_transfers():
    """The same-symbol path Q(x,z) :- R(x,y),R(y,z) is its own core, so
    the Mat-Mul non-free-connex bound lifts from the self-join-free
    setting to this query."""
    q = parse_cq("Q(x, z) :- R(x, y), R(y, z)")
    rep = classify(q)
    assert rep.fact("self_join_free") is False
    assert rep.fact("core_is_proper") is False
    assert rep.fact("effective_free_connex") is False
    v = rep.verdict("enumerate")
    assert v.tractable is False
    assert "Carmeli-Segoufin" in v.caveat
    assert expected_verdict(q, "delay") == "linear"


def test_free_connex_selfjoin_star_is_constant_delay():
    q = parse_cq("Q(x, y1, y2) :- R(x, y1), R(x, y2)")
    rep = classify(q)
    assert rep.fact("self_join_free") is False
    assert rep.verdict("enumerate").tractable is True
    assert expected_verdict(q, "delay") == "constant-delay"
    assert rep.fact("self_join_signature") == (("R", 2),)
