"""Unit tests for Algorithm 2 — linear-delay ACQ enumeration (Thm 4.3)."""

import pytest

from repro.data import generators
from repro.enumeration.acq_linear import LinearDelayACQEnumerator
from repro.errors import NotAcyclicError, UnsupportedQueryError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq


def test_matches_naive_on_random(small_db=None):
    queries = [
        "Q(x, y) :- R(x, z), S(z, y)",          # the BMM query
        "Q(x, y, w) :- R(x, z), S(z, y), T(y, w)",
        "Q(x) :- R(x, z)",
        "Q(x, y, z) :- R(x, y), S(y, z)",       # quantifier-free
    ]
    for text in queries:
        q = parse_cq(text)
        for seed in range(4):
            db = generators.random_database({"R": 2, "S": 2, "T": 2}, 6, 14,
                                            seed=seed)
            got = list(LinearDelayACQEnumerator(q, db))
            assert len(got) == len(set(got)), (text, seed)
            assert set(got) == evaluate_cq_naive(q, db), (text, seed)


def test_no_duplicates_with_shared_values():
    db = generators.random_database({"R": 2, "S": 2}, 3, 9, seed=1)
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    got = list(LinearDelayACQEnumerator(q, db))
    assert len(got) == len(set(got))


def test_boolean_query():
    db = generators.random_database({"R": 2, "S": 2}, 5, 10, seed=0)
    q = parse_cq("Q() :- R(x, z), S(z, y)")
    got = list(LinearDelayACQEnumerator(q, db))
    assert got in ([()], [])
    from repro.eval.naive import cq_is_satisfiable_naive

    assert bool(got) == cq_is_satisfiable_naive(q, db)


def test_rejects_cyclic():
    db = generators.random_database({"R": 2, "S": 2, "T": 2}, 4, 8, seed=2)
    with pytest.raises(NotAcyclicError):
        LinearDelayACQEnumerator(
            parse_cq("Q(x) :- R(x, y), S(y, z), T(z, x)"), db)


def test_rejects_comparisons():
    db = generators.random_database({"R": 2}, 4, 8, seed=2)
    with pytest.raises(UnsupportedQueryError):
        LinearDelayACQEnumerator(parse_cq("Q(x) :- R(x, y), x != y"), db)


def test_first_values_are_projection_of_answers():
    db = generators.random_database({"R": 2, "S": 2}, 6, 14, seed=3)
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    enum = LinearDelayACQEnumerator(q, db)
    enum.preprocess()
    expected_x = {t[0] for t in evaluate_cq_naive(q, db)}
    assert set(enum._first_values) == expected_x


def test_empty_database_variants():
    from repro.data.database import Database
    from repro.data.relation import Relation

    db = Database([Relation("R", 2), Relation("S", 2)])
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    assert list(LinearDelayACQEnumerator(q, db)) == []
