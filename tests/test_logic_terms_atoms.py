"""Unit tests for terms and atomic formulas."""

import pytest

from repro.logic.atoms import Atom, Comparison, evaluate_comparisons
from repro.logic.terms import Constant, Variable, as_term


def test_variable_interning():
    assert Variable("x") is Variable("x")
    assert Variable("x") is not Variable("y")


def test_variable_immutable():
    with pytest.raises(AttributeError):
        Variable("x").name = "y"


def test_constant_equality():
    assert Constant(1) == Constant(1)
    assert Constant(1) != Constant(2)
    assert hash(Constant("a")) == hash(Constant("a"))


def test_as_term_coercion():
    assert isinstance(as_term("x"), Variable)
    assert isinstance(as_term(3), Constant)
    v = Variable("v")
    assert as_term(v) is v


def test_atom_variables_in_order():
    a = Atom("R", ["y", "x", "y", 3])
    assert [v.name for v in a.variables()] == ["y", "x"]
    assert a.variable_set() == {Variable("x"), Variable("y")}
    assert a.constants() == (Constant(3),)
    assert a.arity == 4


def test_atom_matches_constants():
    a = Atom("R", ["x", 3])
    assert a.matches((7, 3))
    assert not a.matches((7, 4))
    assert not a.matches((7,))


def test_atom_matches_repeated_variables():
    a = Atom("R", ["x", "x", "y"])
    assert a.matches((1, 1, 2))
    assert not a.matches((1, 2, 2))


def test_atom_bind():
    a = Atom("R", ["x", 3, "y"])
    assert a.bind((1, 3, 5)) == {Variable("x"): 1, Variable("y"): 5}


def test_atom_substitute():
    a = Atom("R", ["x", "y"]).substitute({Variable("x"): 9})
    assert a.terms == (Constant(9), Variable("y"))


def test_atom_equality_and_hash():
    assert Atom("R", ["x", 1]) == Atom("R", ["x", 1])
    assert Atom("R", ["x"]) != Atom("S", ["x"])
    assert len({Atom("R", ["x"]), Atom("R", ["x"])}) == 1


def test_comparison_evaluate():
    c = Comparison("x", "<", "y")
    assert c.evaluate({Variable("x"): 1, Variable("y"): 2})
    assert not c.evaluate({Variable("x"): 2, Variable("y"): 2})
    le = Comparison("x", "<=", 5)
    assert le.evaluate({Variable("x"): 5})


def test_comparison_kinds():
    assert Comparison("x", "!=", "y").is_disequality()
    assert not Comparison("x", "!=", "y").is_order_comparison()
    assert Comparison("x", "<", "y").is_order_comparison()
    with pytest.raises(ValueError):
        Comparison("x", "~", "y")


def test_comparison_substitute():
    c = Comparison("x", "!=", "y").substitute({Variable("x"): 1})
    assert c.left == Constant(1)
    assert c.evaluate({Variable("y"): 2})


def test_evaluate_comparisons_conjunction():
    cs = [Comparison("x", "<", "y"), Comparison("y", "!=", 3)]
    env = {Variable("x"): 1, Variable("y"): 2}
    assert evaluate_comparisons(cs, env)
    env[Variable("y")] = 3
    assert not evaluate_comparisons(cs, env)
