"""Tests for the exposure surfaces (repro.obs.expose): OpenMetrics
exposition lint, HTTP endpoint, file flusher, NDJSON event log with
rotation, the REPRO_TRACE atexit metrics dump, and the CLI commands."""

import json
import os
import re
import urllib.request

import pytest

from repro import obs
from repro.obs.expose import (EventLog, MetricsFlusher, configure_event_log,
                              emit_event, event_log, metric_name,
                              openmetrics_text, parse_openmetrics,
                              start_metrics_server)
from repro.obs.registry import registry, set_enabled

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


@pytest.fixture(autouse=True)
def _fresh_state():
    registry().reset()
    event_log().clear()
    prev = set_enabled(True)
    yield
    set_enabled(prev)
    configure_event_log(None)
    registry().reset()
    obs.disable()


def _seed_registry():
    reg = registry()
    reg.count("demo.hits", 3)
    reg.gauge("demo.workers", 4)
    reg.observe("demo.lat_ns", 1_000, weight=2)
    reg.observe("demo.lat_ns", 8_000)


# ----------------------------------------------------------------- lint


def test_exposition_lint():
    """OpenMetrics validity: legal names, TYPE before samples, counters
    suffixed _total, terminating # EOF."""
    _seed_registry()
    text = openmetrics_text(extra_info={"version": "1"})
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    typed = set()
    for line in lines:
        if line.startswith("# TYPE "):
            _, _, name, mtype = line.split(" ", 3)
            assert NAME_RE.match(name), name
            assert mtype in ("counter", "gauge", "summary")
            typed.add(name)
        elif line and not line.startswith("#"):
            sample = line.split("{")[0].split(" ")[0]
            base = re.sub(r"_(total|count|sum)$", "", sample)
            assert sample in typed or base in typed, line
    parsed = parse_openmetrics(text)
    assert parsed["eof"]
    assert parsed["counters"]["repro_demo_hits"] == 3
    assert parsed["gauges"]["repro_demo_workers"] == 4
    summ = parsed["summaries"]["repro_demo_lat_ns"]
    assert summ["count"] == 3
    assert 0.5 in summ["quantiles"] and 0.999 in summ["quantiles"]


def test_counter_sample_names_end_in_total():
    _seed_registry()
    parsed = parse_openmetrics(openmetrics_text())
    for name, mtype in parsed["types"].items():
        if mtype == "counter":
            assert not name.endswith("_total")  # base name is bare


def test_counters_monotonic_across_scrapes():
    registry().count("mono.events", 5)
    first = parse_openmetrics(openmetrics_text())["counters"]
    registry().count("mono.events", 2)
    second = parse_openmetrics(openmetrics_text())["counters"]
    for name, value in first.items():
        assert second.get(name, 0) >= value
    assert second["repro_mono_events"] == 7


def test_metric_name_sanitisation():
    assert metric_name("plancache.hits") == "repro_plancache_hits"
    assert metric_name("delay.plan.Q(x) :- R(x, y)") \
        == "repro_delay_plan_Q_x__:__R_x__y_"
    assert NAME_RE.match(metric_name("weird name/with%chars"))


def test_plancache_state_exposed_as_gauges():
    parsed = parse_openmetrics(openmetrics_text())
    assert "repro_plancache_state_entries" in parsed["gauges"]
    assert "repro_plancache_state_maxsize" in parsed["gauges"]


# -------------------------------------------------------------- escaping


def test_label_escape_round_trip_specials():
    """The OpenMetrics spec's escaping table: backslash, double quote
    and line feed must survive render -> parse unchanged."""
    from repro.obs.expose import escape_label_value, unescape_label_value

    for raw in ('plain', 'with "quotes"', 'back\\slash', 'line\nfeed',
                'all\\of "them"\ntogether', '\\n is not a newline',
                'trailing\\'):
        assert unescape_label_value(escape_label_value(raw)) == raw


def test_label_escaping_survives_exposition_round_trip():
    """A build-info label containing every special character comes back
    intact through the full render -> parse cycle."""
    nasty = 'a"b\\c\nd'
    text = openmetrics_text(extra_info={"nasty": nasty})
    # the raw newline must not produce a stray exposition line
    for line in text.splitlines():
        assert not line.startswith("d")
    parsed = parse_openmetrics(text)
    assert parsed["build_info"]["nasty"] == nasty


def test_escape_is_not_double_applied():
    from repro.obs.expose import escape_label_value

    once = escape_label_value("\\n")
    assert once == "\\\\n"  # backslash escaped first, no re-escape


def test_unescape_tolerates_unknown_escapes():
    from repro.obs.expose import unescape_label_value

    assert unescape_label_value("\\q") == "q"
    assert unescape_label_value("ok") == "ok"


# ----------------------------------------------------------------- HTTP


def test_metrics_server_serves_openmetrics():
    _seed_registry()
    server = start_metrics_server(port=0)
    try:
        port = server.server_address[1]
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics") as resp:
            assert resp.status == 200
            assert "openmetrics-text" in resp.headers["Content-Type"]
            body = resp.read().decode()
        parsed = parse_openmetrics(body)
        assert parsed["counters"]["repro_demo_hits"] == 3
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz") as resp:
            assert resp.read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"http://127.0.0.1:{port}/nope")
    finally:
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------- flusher


def test_flusher_writes_exposition_and_json(tmp_path):
    _seed_registry()
    path = str(tmp_path / "metrics.prom")
    flusher = MetricsFlusher(path, interval=60.0)
    flusher.flush_once()
    parsed = parse_openmetrics(open(path).read())
    assert parsed["eof"]
    snap = json.load(open(path + ".json"))
    assert snap["counters"]["demo.hits"] == 3
    assert snap["sketches"]["demo.lat_ns"]["count"] == 3


def test_flusher_background_thread(tmp_path):
    path = str(tmp_path / "bg.prom")
    registry().count("bg.ticks")
    flusher = MetricsFlusher(path, interval=0.05).start()
    try:
        import time
        deadline = time.monotonic() + 2.0
        while not os.path.exists(path) and time.monotonic() < deadline:
            time.sleep(0.02)
    finally:
        flusher.stop()
    assert os.path.exists(path) and os.path.exists(path + ".json")


# ----------------------------------------------------------------- events


def test_event_log_ring_and_file(tmp_path):
    path = str(tmp_path / "events.ndjson")
    log = EventLog(path)
    log.emit("pool.respawn", workers=4)
    log.emit("delta.overflow", relation="R")
    events = log.recent()
    assert [e["event"] for e in events] == ["pool.respawn", "delta.overflow"]
    assert log.recent(name="pool.respawn")[0]["workers"] == 4
    lines = [json.loads(line) for line in open(path)]
    assert len(lines) == 2 and lines[0]["pid"] == os.getpid()


def test_event_log_rotation(tmp_path):
    path = str(tmp_path / "rot.ndjson")
    log = EventLog(path, max_bytes=200)
    for i in range(30):
        log.emit("tick", i=i)
    assert os.path.exists(path + ".1")
    assert os.path.getsize(path) <= 200
    # every line in both generations is valid NDJSON
    for p in (path, path + ".1"):
        for line in open(p):
            json.loads(line)


def test_emit_event_counts_in_registry(tmp_path):
    configure_event_log(str(tmp_path / "ev.ndjson"))
    emit_event("guarantee.violation", plan="Q")
    emit_event("guarantee.violation", plan="Q")
    assert registry().counter("event.guarantee.violation") == 2
    assert len(event_log().recent(name="guarantee.violation")) == 2


def test_configure_event_log_preserves_ring(tmp_path):
    event_log().emit("before.configure")
    log = configure_event_log(str(tmp_path / "cfg.ndjson"))
    assert any(e["event"] == "before.configure" for e in log.recent())


# ------------------------------------------------------------ atexit dump


def test_atexit_dump_writes_metrics_next_to_trace(tmp_path):
    registry().count("dump.check", 9)
    path = str(tmp_path / "run.trace.json")
    tracer = obs.enable()
    with obs.span("dump.span"):
        pass
    metrics_path = obs._atexit_dump(path)
    obs.disable()
    assert metrics_path == path + ".metrics.json"
    trace = json.load(open(path))
    assert "traceEvents" in trace
    dump = json.load(open(metrics_path))
    assert dump["registry"]["counters"]["dump.check"] == 9
    assert tracer is not None


# -------------------------------------------------------------------- CLI


def test_cli_metrics_serve_smoke(tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path / "cli.prom")
    ev = str(tmp_path / "cli.ndjson")
    registry().count("cli.smoke", 1)
    rc = main(["metrics-serve", "--port", "0", "--duration", "0.3",
               "--metrics-out", out, "--interval", "0.1", "--events", ev])
    assert rc == 0
    assert "serving OpenMetrics" in capsys.readouterr().out
    parsed = parse_openmetrics(open(out).read())
    assert parsed["counters"]["repro_cli_smoke"] == 1
    assert os.path.exists(out + ".json")


def test_cli_top_once(capsys):
    from repro.cli import main

    registry().count("top.smoke", 2)
    registry().observe("enum.delay_ns", 1_500, weight=3)
    emit_event("pool.respawn", workers=2)
    rc = main(["top", "--once"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "enum.delay_ns" in out
    assert "top.smoke" in out
    assert "pool.respawn" in out


def test_cli_doctor_mentions_cache_counters(capsys):
    from repro.cli import main

    rc = main(["doctor"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "arena cache:" in out
    assert "pool lifecycle:" in out
    assert "compiled symbol cache:" in out
    assert "delay watchdog:" in out
