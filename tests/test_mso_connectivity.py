"""Tests for the partition-state connectivity DP (the MSO property whose
states are partitions, not per-vertex labels)."""

import random
from itertools import combinations

import pytest

from repro.data import generators
from repro.mso.connectivity import (
    connected_sets_dp,
    count_connected_sets,
    has_connected_set_of_size,
    largest_connected_set,
)
from repro.mso.treedecomp import adjacency_from_database


def brute(graph):
    vs = list(graph)
    total, best = 0, 0
    for r in range(1, len(vs) + 1):
        for c in combinations(vs, r):
            s = set(c)
            start = next(iter(s))
            seen = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for w in graph[u]:
                    if w in s and w not in seen:
                        seen.add(w)
                        stack.append(w)
            if seen == s:
                total += 1
                best = max(best, r)
    return total, best


def random_graph(n, p, seed):
    rng = random.Random(seed)
    graph = {i: set() for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph[i].add(j)
                graph[j].add(i)
    return graph


def test_randomized_against_bruteforce():
    for seed in range(8):
        graph = random_graph(7, 0.35, seed)
        total, best = brute(graph)
        assert count_connected_sets(graph) == total, seed
        assert largest_connected_set(graph) == best, seed


def test_path_counts():
    # a path on n vertices has n(n+1)/2 connected sets (contiguous runs)
    for n in (1, 2, 5, 9):
        graph = adjacency_from_database(generators.path_graph(n))
        assert count_connected_sets(graph) == n * (n + 1) // 2
        assert largest_connected_set(graph) == n


def test_cycle_counts():
    # a cycle on n >= 3 vertices: n arcs per length 1..n-1, plus the whole
    n = 6
    graph = adjacency_from_database(generators.cycle_graph(n))
    assert count_connected_sets(graph) == n * (n - 1) + 1


def test_disconnected_graph():
    graph = {0: {1}, 1: {0}, 2: {3}, 3: {2}}
    # each edge contributes 3 sets; no set crosses components
    assert count_connected_sets(graph) == 6
    assert largest_connected_set(graph) == 2
    assert has_connected_set_of_size(graph, 2)
    assert not has_connected_set_of_size(graph, 3)


def test_isolated_vertices():
    graph = {0: set(), 1: set(), 2: set()}
    assert count_connected_sets(graph) == 3  # singletons only
    assert largest_connected_set(graph) == 1


def test_empty_graph():
    assert count_connected_sets({}) == 0
    assert largest_connected_set({}) == 0


def test_grid_largest_is_everything():
    graph = adjacency_from_database(generators.grid_graph(3, 3))
    assert largest_connected_set(graph) == 9


def test_root_table_shape():
    graph = random_graph(5, 0.4, 1)
    root = connected_sets_dp(graph)
    for (partition, done), (count, size) in root.items():
        assert partition == frozenset()  # root bag is empty
        assert count > 0 and size >= 0
