"""Unit tests for UCQ and NCQ query classes."""

import pytest

from repro.errors import MalformedQueryError
from repro.logic.atoms import Atom
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.parser import parse_cq, parse_query
from repro.logic.ucq import UnionOfConjunctiveQueries


def test_ucq_arity_agreement():
    with pytest.raises(MalformedQueryError):
        UnionOfConjunctiveQueries([
            parse_cq("Q(x) :- R(x)"),
            parse_cq("Q(x, y) :- S(x, y)"),
        ])


def test_ucq_needs_disjuncts():
    with pytest.raises(MalformedQueryError):
        UnionOfConjunctiveQueries([])


def test_ucq_accessors():
    u = parse_query("Q(x) :- R(x, y); Q(x) :- S(x, y)")
    assert u.arity == 1
    assert not u.is_boolean()
    assert len(u) == 2
    assert u[0].relation_names() == ["R"]
    assert set(u.relation_names()) == {"R", "S"}
    assert u.size() > 0
    assert list(iter(u)) == list(u.disjuncts)


def test_ucq_all_disjuncts_free_connex():
    u = parse_query("Q(x) :- R(x, y); Q(x) :- S(x, y)")
    assert u.all_disjuncts_free_connex()
    u2 = parse_query("Q(x, y) :- A(x, z), B(z, y); Q(x, y) :- C(x, y)")
    assert not u2.all_disjuncts_free_connex()


def test_ucq_equality():
    u1 = parse_query("Q(x) :- R(x); Q(x) :- S(x)")
    u2 = parse_query("Q(x) :- R(x); Q(x) :- S(x)")
    assert u1 == u2
    assert hash(u1) == hash(u2)


def test_ncq_shape():
    q = parse_query("Q(x) :- not R(x, y)")
    assert isinstance(q, NegativeConjunctiveQuery)
    assert q.arity == 1
    assert {v.name for v in q.variable_set()} == {"x", "y"}
    assert q.relation_names() == ["R"]


def test_ncq_validation():
    with pytest.raises(MalformedQueryError):
        NegativeConjunctiveQuery(["x"], [Atom("R", ["y"])])
    with pytest.raises(MalformedQueryError):
        NegativeConjunctiveQuery([], [])
    with pytest.raises(MalformedQueryError):
        NegativeConjunctiveQuery(["x", "x"], [Atom("R", ["x"])])


def test_ncq_beta_acyclicity():
    chain = parse_query("Q() :- not R(x, y), not S(y, z)")
    assert chain.is_beta_acyclic()
    triangle = parse_query("Q() :- not R(x, y), not S(y, z), not T(z, x)")
    assert not triangle.is_beta_acyclic()


def test_ncq_boolean():
    q = parse_query("Q() :- not R(x)")
    assert q.is_boolean()
