"""Tests for the lower-bound reductions (Theorems 4.8, 4.9, 4.15;
Sections 4.5 and 3.3)."""

import random

import pytest

from repro.csp.ncq_solver import decide_ncq
from repro.data import generators
from repro.eval.naive import cq_is_satisfiable_naive
from repro.eval.yannakakis import acyclic_answers
from repro.reductions.bmm import (
    bmm_query,
    example_47_database,
    example_47_query,
    multiply_boolean_naive,
    multiply_boolean_numpy,
    multiply_via_query,
    product_from_example_47_answers,
)
from repro.reductions.clique_inequality import (
    clique_acq_lt_instance,
    encode_value,
    has_k_clique_bruteforce,
)
from repro.reductions.grid_mso import (
    check_local_windows,
    diagram_database,
    run_automaton,
)
from repro.reductions.hyperclique import (
    boolean_triangle_query,
    count_triangles,
    find_hyperclique,
    find_triangle,
    random_uniform_hypergraph,
    tetrahedron_query,
    triangle_query,
    tripartite_triangle_database,
)
from repro.reductions.sat_ncq import cnf_as_acyclic_ncq, is_alpha_but_not_beta


# ------------------------------------------------------------ BMM (Thm 4.8)


def test_bmm_query_shape():
    pi = bmm_query()
    assert pi.is_acyclic() and not pi.is_free_connex()
    assert pi.is_self_join_free()


def test_three_multiplication_routes_agree():
    for seed in range(4):
        a = generators.boolean_matrix(7, 0.3, seed=seed)
        b = generators.boolean_matrix(7, 0.3, seed=seed + 100)
        assert multiply_boolean_naive(a, b) == multiply_boolean_numpy(a, b) \
            == multiply_via_query(a, b)


def test_example_47_encoding():
    q = example_47_query()
    assert q.is_acyclic() and not q.is_free_connex() and q.is_self_join_free()
    for seed in range(3):
        a = generators.boolean_matrix(6, 0.35, seed=seed)
        b = generators.boolean_matrix(6, 0.35, seed=seed + 50)
        db = example_47_database(a, b)
        answers = acyclic_answers(q, db)
        assert product_from_example_47_answers(answers, 6) == \
            multiply_boolean_naive(a, b), seed


def test_example_47_encoding_is_linear_sized():
    a = generators.boolean_matrix(10, 0.3, seed=1)
    b = generators.boolean_matrix(10, 0.3, seed=2)
    db = example_47_database(a, b)
    ones = sum(v for row in a for v in row) + sum(v for row in b for v in row)
    assert db.tuple_count() <= ones + 10  # E adds one tuple per row index


# ----------------------------------------------------- triangles (Thm 4.9)


def test_triangle_queries_are_cyclic_then_covered():
    assert not triangle_query().is_acyclic()
    assert not boolean_triangle_query().is_acyclic()
    assert tetrahedron_query().is_acyclic()  # Example 4.1's phi_3


def test_find_triangle_and_count(triangle_db):
    from repro.mso.treedecomp import adjacency_from_database

    adj = adjacency_from_database(triangle_db)
    tri = find_triangle(adj)
    assert tri is not None
    assert set(tri) == {1, 2, 3}
    assert count_triangles(adj) == 1


def test_no_triangle_in_path():
    from repro.mso.treedecomp import adjacency_from_database

    adj = adjacency_from_database(generators.path_graph(10))
    assert find_triangle(adj) is None
    assert count_triangles(adj) == 0


def test_tripartite_database_triangle_query():
    db = tripartite_triangle_database(4, 0.6, seed=1)
    q = boolean_triangle_query()
    from repro.mso.treedecomp import adjacency_from_database

    assert cq_is_satisfiable_naive(q, db) == (
        find_triangle(adjacency_from_database(db)) is not None)


def test_find_hyperclique():
    # K_4^(3): all 3-subsets of {0..3} -> a 4-hyperclique
    edges = random_uniform_hypergraph(4, 3, 1.0, seed=0)
    assert find_hyperclique(edges, 4) == frozenset({0, 1, 2, 3})
    # remove one edge: no 4-hyperclique
    assert find_hyperclique(edges[1:], 4) is None


def test_hyperclique_uniformity_checked():
    with pytest.raises(ValueError):
        find_hyperclique([frozenset({1, 2})], 4)


# ------------------------------------------------- clique + "<" (Thm 4.15)


def test_encode_value_injective():
    n = 5
    values = {encode_value(i, j, b, n) for i in range(n) for j in range(n)
              for b in (0, 1)}
    assert len(values) == n * n * 2


def test_clique_reduction_correct_randomized():
    rng = random.Random(1)
    for trial in range(6):
        n = 6
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)
                 if rng.random() < 0.55]
        query, db = clique_acq_lt_instance(edges, n, 3)
        assert query.without_comparisons().is_acyclic()
        got = cq_is_satisfiable_naive(query, db)
        assert got == has_k_clique_bruteforce(edges, n, 3), (trial, edges)


def test_clique_reduction_positive_instance():
    edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
    query, db = clique_acq_lt_instance(edges, 4, 3)
    assert cq_is_satisfiable_naive(query, db)
    query4, db4 = clique_acq_lt_instance(edges, 4, 4)
    assert not cq_is_satisfiable_naive(query4, db4)


def test_clique_query_comparison_graph_is_acyclic_but_query_expresses_clique():
    query, _db = clique_acq_lt_instance([(0, 1)], 2, 2)
    # the relational part alone is acyclic; power comes from "<" only
    assert query.without_comparisons().is_acyclic()
    assert query.order_comparisons()


# ----------------------------------------------------- SAT as NCQ (Sec 4.5)


def test_cnf_as_acyclic_ncq_preserves_satisfiability():
    for seed in range(6):
        cnf = generators.random_kcnf(5, 9, k=3, seed=seed)
        ncq, db = cnf_as_acyclic_ncq(cnf, 5)
        alpha, beta = is_alpha_but_not_beta(ncq)
        assert alpha  # the full edge makes it alpha-acyclic, always
        from repro.csp.cnf import clauses_satisfiable_bruteforce

        truth = clauses_satisfiable_bruteforce(
            [frozenset(c) for c in cnf], 5)
        assert decide_ncq(ncq, db) == truth, seed


def test_acyclified_sat_is_rarely_beta_acyclic():
    cnf = [[1, 2], [-2, 3], [-3, -1]]  # cyclic clause structure
    ncq, _db = cnf_as_acyclic_ncq(cnf, 3)
    alpha, beta = is_alpha_but_not_beta(ncq)
    assert alpha and not beta


# ------------------------------------------------- grids & MSO (Sec 3.3)


def test_automaton_diagram_checks():
    initial = [0, 1, 0, 0, 1, 1, 0, 1]
    diagram = run_automaton(initial, steps=6, rule=110)
    db = diagram_database(diagram)
    assert check_local_windows(db, rule=110)
    # corrupt one cell: the local checks must catch it
    bad = [row[:] for row in diagram]
    bad[3][2] ^= 1
    assert not check_local_windows(diagram_database(bad), rule=110)


def test_diagram_database_is_coloured_grid():
    diagram = run_automaton([1, 0, 1], steps=2, rule=90)
    db = diagram_database(diagram)
    assert db.has_relation("E") and db.has_relation("C0") and db.has_relation("C1")
    assert len(db.relation("C0")) + len(db.relation("C1")) == 3 * 3
