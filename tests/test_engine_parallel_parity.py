"""Parity suite for the parallel backend (shared-memory worker pool).

The parallel engine's contract is *byte-level* equivalence with the
serial columnar engine: the full reducer must keep the same rows in the
same order, counts and weighted sums must agree, and block enumeration
must emit the identical flat answer sequence — at every worker count.
These tests force pool dispatch with a zero threshold so even tiny
hypothesis instances exercise the sharded paths, and pin the degenerate
shapes (empty relations, single-shard key skew, below-threshold
fallback) directly.

Worker pools are cached process-wide by worker count, so the spawn cost
is paid once per module, not per example.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.plancache import plan_cache_disabled
from repro.counting.acq_count import count_acq, count_full_acyclic_join
from repro.counting.weighted import WeightFunction
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.columnar import ColumnarRelation, ValueDictionary
from repro.engine.enumerate import BlockIterator
from repro.engine.parallel import (
    ParallelBlockIterator,
    ParallelEngine,
    arena_cache_stats,
    get_pool,
    invalidate_arena_cache,
    parallel_full_reduce,
    pool_stats,
    shutdown_pools,
)
from repro.engine.shard import (
    count_node_shard,
    merge_count_messages,
    semijoin_mask,
    shard_ids,
)
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.eval.naive import evaluate_cq_naive
from repro.eval.yannakakis import full_reducer
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import build_join_tree
from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

WORKER_COUNTS = (1, 2, 4)

DOMAIN = st.integers(min_value=0, max_value=4)


def _engine(workers: int) -> ParallelEngine:
    # threshold=0 forces pool dispatch on arbitrarily small inputs
    # (workers=1 still exercises the serial fallback inside the engine)
    return ParallelEngine(workers=workers, threshold=0)


def _rows(draw, arity, max_rows=10):
    return draw(st.lists(
        st.tuples(*([DOMAIN] * arity)), min_size=0, max_size=max_rows))


@st.composite
def acyclic_instance(draw):
    """A random acyclic CQ with a random database (tree-structured atom
    variable sets guarantee alpha-acyclicity by construction)."""
    n_atoms = draw(st.integers(min_value=1, max_value=4))
    atom_vars = []
    fresh = 0
    for i in range(n_atoms):
        if i == 0:
            shared = []
        else:
            parent = atom_vars[draw(st.integers(0, i - 1))]
            shared = draw(st.lists(st.sampled_from(parent), min_size=1,
                                   max_size=len(parent), unique=True))
        n_fresh = draw(st.integers(min_value=0 if shared else 1, max_value=2))
        mine = list(shared)
        for _ in range(n_fresh):
            mine.append(Variable(f"v{fresh}"))
            fresh += 1
        atom_vars.append(draw(st.permutations(mine)))

    atoms = [Atom(f"R{i}", vs) for i, vs in enumerate(atom_vars)]
    all_vars = sorted({v for vs in atom_vars for v in vs},
                      key=lambda v: v.name)
    head = draw(st.lists(st.sampled_from(all_vars), unique=True,
                         max_size=len(all_vars)))
    cq = ConjunctiveQuery(head, atoms)

    db = Database()
    for i, vs in enumerate(atom_vars):
        db.add_relation(Relation(f"R{i}", len(vs), _rows(draw, len(vs))))
    return cq, db


def _path_relations(sizes, seed=3, dom=30):
    """A three-atom path join R(x,y), S(y,z), T(z,w) on one dictionary."""
    rng = random.Random(seed)
    x, y, z, w = (Variable(n) for n in "xyzw")
    d = ValueDictionary()
    schemas = [(x, y), (y, z), (z, w)]
    rels = [
        ColumnarRelation(vs, [(rng.randrange(dom), rng.randrange(dom))
                              for _ in range(n)], dictionary=d)
        for vs, n in zip(schemas, sizes)
    ]
    return rels, (x, y, z, w)


# ------------------------------------------------------- shard kernels


def test_shard_ids_are_row_consistent_and_full_range():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 50, size=5000)
    b = rng.integers(0, 50, size=5000)
    for shards in (1, 2, 4, 7):
        sid = shard_ids([a, b], shards)
        assert sid.min() >= 0 and sid.max() < shards
        # same key values -> same shard, independent of row position
        seen = {}
        for i in range(len(a)):
            key = (a[i], b[i])
            assert seen.setdefault(key, sid[i]) == sid[i]
    # one shard is the identity partition
    assert not shard_ids([a], 1).any()


def test_shard_ids_mix_avoids_residue_skew():
    # keys that are all congruent mod 4 must still spread over 4 shards
    keys = np.arange(0, 4000, 4, dtype=np.int64)
    sid = shard_ids([keys], 4)
    counts = np.bincount(sid, minlength=4)
    assert (counts > 0).all()


def test_semijoin_mask_matches_set_semantics():
    rng = np.random.default_rng(1)
    left = [rng.integers(0, 6, size=200), rng.integers(0, 6, size=200)]
    right = [rng.integers(0, 6, size=40), rng.integers(0, 6, size=40)]
    mask = semijoin_mask(left, right)
    present = set(zip(right[0].tolist(), right[1].tolist()))
    expect = np.array([(a, b) in present
                       for a, b in zip(left[0], left[1])])
    assert (mask == expect).all()


def test_semijoin_mask_empty_sides():
    a = np.array([1, 2, 3], dtype=np.int64)
    empty = np.array([], dtype=np.int64)
    assert semijoin_mask([a], [empty]).sum() == 0
    assert semijoin_mask([empty], [a]).shape == (0,)


def test_merge_count_messages_zero_key_adds_in_shard_order():
    parts = [([], np.array([2.0])), ([], np.array([3.0])),
             ([], np.array([0.5]))]
    keys, sums = merge_count_messages(parts, 0)
    assert keys == [] or all(len(k) == 0 for k in keys)
    assert sums.tolist() == [5.5]


def test_count_node_shard_sharded_equals_whole():
    rng = np.random.default_rng(2)
    cols = [rng.integers(0, 5, size=300), rng.integers(0, 5, size=300)]
    whole_keys, whole_sums = count_node_shard(cols, None, [0], [1], [], None)
    parts = []
    for shard in range(3):
        sel = shard_ids([cols[0]], 3) == shard
        parts.append(count_node_shard(cols, sel, [0], [1], [], None))
    keys, sums = merge_count_messages(parts, 1)
    merged = dict(zip(keys[0].tolist(), sums.tolist()))
    expect = dict(zip(whole_keys[0].tolist(), whole_sums.tolist()))
    assert merged == expect


# ------------------------------------------- reduce / count / enumerate


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_reduce_is_byte_identical(workers):
    rels, _head = _path_relations([400, 400, 120])
    h = Hypergraph({v for r in rels for v in r.variables},
                   [frozenset(r.variables) for r in rels])
    tree = build_join_tree(h)
    serial = rels
    for node in tree.bottom_up():
        parent = tree.parent[node]
        if parent is not None:
            serial = list(serial)
            serial[parent] = serial[parent].semijoin(serial[node])
    for node in tree.top_down():
        for child in tree.children[node]:
            serial = list(serial)
            serial[child] = serial[child].semijoin(serial[node])
    reduced = parallel_full_reduce(tree, rels, engine=_engine(workers))
    for s, p in zip(serial, reduced):
        # identical rows in the identical (original) order
        assert list(s) == list(p)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_count_and_weighted_parity(workers):
    rels, _head = _path_relations([500, 500, 150], seed=9)
    eng = _engine(workers)
    assert count_full_acyclic_join(rels, engine=eng) \
        == count_full_acyclic_join(rels)
    wf = WeightFunction(lambda v: 2.0 if v % 2 == 0 else 0.5)
    assert count_full_acyclic_join(rels, wf, engine=eng) \
        == pytest.approx(count_full_acyclic_join(rels, wf))


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_enumeration_order_identical(workers):
    rels, head = _path_relations([300, 300, 90], seed=5)
    serial = list(BlockIterator(rels, head, block_size=32))
    par = list(ParallelBlockIterator(rels, head, block_size=32,
                                     engine=_engine(workers)))
    assert serial == par


def test_parallel_enumeration_restartable():
    rels, head = _path_relations([200, 200, 60], seed=6)
    serial = list(BlockIterator(rels, head, block_size=32))
    it = ParallelBlockIterator(rels, head, block_size=32, engine=_engine(2))
    assert list(it) == serial
    assert list(it) == serial


# ------------------------------------------------------ degenerate shards


def test_parallel_reduce_empty_relation_annihilates():
    rels, _head = _path_relations([200, 200, 60])
    x, y = Variable("x"), Variable("y")
    empty = ColumnarRelation([x, y], [], dictionary=rels[0].dictionary)
    rels = [rels[0], rels[1], empty]
    h = Hypergraph({v for r in rels for v in r.variables},
                   [frozenset(r.variables) for r in rels])
    tree = build_join_tree(h)
    reduced = parallel_full_reduce(tree, rels, engine=_engine(2))
    assert all(len(r) == 0 for r in reduced)


def test_parallel_single_shard_key_skew():
    # every tuple shares one join-key value: all semijoin work lands in
    # one shard and the others must stay no-ops
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    d = ValueDictionary()
    rng = random.Random(2)
    R = ColumnarRelation([x, y], [(rng.randrange(50), 7)
                                  for _ in range(300)], dictionary=d)
    S = ColumnarRelation([y, z], [(7, rng.randrange(50))
                                  for _ in range(300)], dictionary=d)
    eng = _engine(4)
    assert count_full_acyclic_join([R, S], engine=eng) \
        == count_full_acyclic_join([R, S])
    serial = list(BlockIterator([R, S], (x, y, z), block_size=64))
    par = list(ParallelBlockIterator([R, S], (x, y, z), block_size=64,
                                     engine=eng))
    assert serial == par


def test_below_threshold_falls_back_to_serial():
    rels, _head = _path_relations([50, 50, 20])
    eng = ParallelEngine(workers=2, threshold=10 ** 9)
    assert not eng.should_parallelise(rels)
    # the public paths still answer correctly through the serial kernels
    assert count_full_acyclic_join(rels, engine=eng) \
        == count_full_acyclic_join(rels)


def test_workers_one_never_dispatches():
    rels, _head = _path_relations([200, 200, 60])
    eng = ParallelEngine(workers=1, threshold=0)
    assert not eng.should_parallelise(rels)


# --------------------------------------------------- end-to-end (planner)


@settings(max_examples=20, deadline=None)
@given(acyclic_instance())
def test_query_parity_random_instances(instance):
    """Random acyclic CQs: answers, counts, and enumeration all agree
    between the serial columnar engine and a 2-worker pool forced on."""
    cq, db = instance
    eng = _engine(2)
    with plan_cache_disabled():
        expect = count_acq(cq, db, engine="columnar")
        assert count_acq(cq, db, engine=eng) == expect
        if not cq.is_boolean() and cq.is_free_connex():
            serial = list(FreeConnexEnumerator(cq, db, engine="columnar"))
            par = list(FreeConnexEnumerator(cq, db, engine=eng))
            assert par == serial
            assert set(par) == evaluate_cq_naive(cq, db)


@pytest.mark.parametrize("workers", (2, 4))
def test_free_connex_order_parity_medium(workers):
    rng = random.Random(13)
    db = Database.from_relations({
        "R": [(rng.randrange(40), rng.randrange(40)) for _ in range(1500)],
        "S": [(rng.randrange(40), rng.randrange(40)) for _ in range(1500)],
    })
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    cq = ConjunctiveQuery([x, y, z], [Atom("R", (x, y)), Atom("S", (y, z))])
    with plan_cache_disabled():
        serial = list(FreeConnexEnumerator(cq, db, engine="columnar"))
        par = list(FreeConnexEnumerator(cq, db, engine=_engine(workers)))
    assert serial == par


def test_plan_key_distinguishes_fanouts():
    e2 = ParallelEngine(workers=2, threshold=0)
    e4 = ParallelEngine(workers=4, threshold=0)
    assert e2.plan_key() != e4.plan_key()
    assert ParallelEngine(workers=2, threshold=0).plan_key() == e2.plan_key()


def test_full_reducer_entry_point_parity():
    rng = random.Random(17)
    db = Database.from_relations({
        "R": [(rng.randrange(30), rng.randrange(30)) for _ in range(1200)],
        "S": [(rng.randrange(30), rng.randrange(30)) for _ in range(1200)],
    })
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    cq = ConjunctiveQuery([x, y, z], [Atom("R", (x, y)), Atom("S", (y, z))])
    with plan_cache_disabled():
        _t, red_s = full_reducer(cq, db, engine="columnar")
        _t, red_p = full_reducer(cq, db, engine=_engine(2))
    for s, p in zip(red_s, red_p):
        assert list(s) == list(p)


# -------------------------------------------- arena cache / pool hygiene


def test_arena_cache_cold_then_warm():
    """The first parallel call over a relation list publishes its column
    arena; subsequent calls over the same columns attach to the cached
    segment instead of re-copying."""
    invalidate_arena_cache()
    rels, _head = _path_relations([500, 500, 150], seed=9)
    eng = _engine(2)
    with obs.capture() as tracer:
        first = count_full_acyclic_join(rels, engine=eng)
        second = count_full_acyclic_join(rels, engine=eng)
    assert first == second
    assert tracer.counters.get("parallel.arena_cache_misses") == 1
    assert tracer.counters.get("parallel.arena_cache_hits") == 1
    stats = arena_cache_stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert all(r == 0 for r in stats["refs"].values())  # released per call
    invalidate_arena_cache()


def test_arena_cache_lru_eviction_and_invalidate():
    invalidate_arena_cache()
    eng = _engine(2)
    with obs.capture() as tracer:
        for seed in range(6):  # > ARENA_CACHE_LIMIT distinct column sets
            rels, _head = _path_relations([120, 120, 40], seed=100 + seed)
            count_full_acyclic_join(rels, engine=eng)
    assert tracer.counters.get("parallel.arena_cache_misses") == 6
    assert tracer.counters.get("parallel.arena_cache_evictions", 0) >= 1
    stats = arena_cache_stats()
    assert 0 < stats["entries"] <= stats["limit"]
    invalidate_arena_cache()
    assert arena_cache_stats()["entries"] == 0


def test_shutdown_pools_clears_arena_cache_and_stats_shape():
    rels, _head = _path_relations([200, 200, 60], seed=12)
    count_full_acyclic_join(rels, engine=_engine(2))
    assert arena_cache_stats()["entries"] >= 1
    stats = pool_stats()
    assert "arena_cache" in stats
    shutdown_pools()
    assert arena_cache_stats()["entries"] == 0


def test_pool_spawn_reuse_respawn_counters():
    shutdown_pools()
    with obs.capture() as tracer:
        pool = get_pool(2)
        again = get_pool(2)
    assert again is pool
    assert tracer.counters.get("parallel.pool_spawn") == 1
    assert tracer.counters.get("parallel.pool_reuse") == 1
    # kill the workers: the next request must respawn a healthy pool and
    # drop cached arenas so stale shm registrations cannot leak
    for p in pool.procs:
        p.terminate()
        p.join()
    assert not pool.alive()
    with obs.capture() as tracer:
        fresh = get_pool(2)
    assert tracer.counters.get("parallel.pool_respawn") == 1
    assert fresh is not pool and fresh.alive()
    assert arena_cache_stats()["entries"] == 0
    shutdown_pools()


def test_wave_batching_counters_and_parity():
    """Above the inline cutoff, consecutive conflict-free semijoin steps
    ride one batched wave (one queue round-trip per worker), and the
    reduced output is still byte-identical to the serial program."""
    rels, _head = _path_relations([9000, 9000, 6000], seed=21, dom=100)
    assert all(len(r) > 2048 for r in rels)
    h = Hypergraph({v for r in rels for v in r.variables},
                   [frozenset(r.variables) for r in rels])
    tree = build_join_tree(h)
    serial = list(rels)
    for node in tree.bottom_up():
        parent = tree.parent[node]
        if parent is not None:
            serial[parent] = serial[parent].semijoin(serial[node])
    for node in tree.top_down():
        for child in tree.children[node]:
            serial[child] = serial[child].semijoin(serial[node])
    with obs.capture() as tracer:
        reduced = parallel_full_reduce(tree, rels, engine=_engine(2))
    waves = tracer.counters.get("parallel.waves", 0)
    batches = tracer.counters.get("parallel.batches", 0)
    tasks = tracer.counters.get("parallel.tasks", 0)
    assert waves >= 1
    assert batches >= waves          # >= one batch (worker) per wave
    assert tasks >= batches          # each batch carries >= 1 step-shard
    for s, p in zip(serial, reduced):
        assert list(s) == list(p)
    invalidate_arena_cache()
