"""Stateful property-based testing (hypothesis RuleBasedStateMachine):
drive a DynamicFreeConnexView with arbitrary interleavings of inserts,
deletes and reads, checking it against from-scratch recomputation after
every step."""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import settings

from repro.data.database import Database
from repro.data.relation import Relation
from repro.dynamic import DynamicFreeConnexView
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq

QUERY = parse_cq("Q(x, y) :- R(x, w), S(y, u), B(u)")
ARITIES = QUERY.relation_arities()
VALUES = st.integers(0, 3)


class DynamicViewMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.view = DynamicFreeConnexView(QUERY, materialize=True)
        self.shadow = {name: set() for name in ARITIES}
        self.prev_answers = set()

    def _tuple(self, name, values):
        return tuple(values[: ARITIES[name]])

    @rule(name=st.sampled_from(sorted(ARITIES)),
          values=st.tuples(VALUES, VALUES))
    def insert(self, name, values):
        tup = self._tuple(name, values)
        self.shadow[name].add(tup)
        self.view.insert(name, tup)

    @rule(name=st.sampled_from(sorted(ARITIES)),
          values=st.tuples(VALUES, VALUES))
    def delete(self, name, values):
        tup = self._tuple(name, values)
        self.shadow[name].discard(tup)
        self.view.delete(name, tup)

    def _truth(self):
        rels = []
        for name, arity in ARITIES.items():
            rels.append(Relation(name, arity, self.shadow[name]))
        db = Database(rels, domain=range(4))
        return evaluate_cq_naive(QUERY, db)

    @rule()
    def check_deltas(self):
        truth = self._truth()
        added, removed = self.view.pop_changes()
        assert set(added) == truth - self.prev_answers
        assert set(removed) == self.prev_answers - truth
        self.prev_answers = truth

    @invariant()
    def answers_match_recomputation(self):
        truth = self._truth()
        assert self.view.answers() == truth
        assert self.view.count_answers() == len(truth)


DynamicViewMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestDynamicView = DynamicViewMachine.TestCase
