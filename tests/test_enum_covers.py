"""Tests for the cover machinery (Definitions 4.16-4.19) — including the
exact reproduction of Examples 4.18 and 4.19."""

import random

from repro.enumeration.covers import (
    GAP,
    Table,
    all_covers,
    covers_equal,
    excludes_all,
    is_cover,
    minimal_covers,
    more_general,
    representative_set,
)

EXAMPLE_419_ROWS = {
    "a": (1, 2, 4, 5),
    "b": (1, 5, 1, 5),
    "c": (3, 2, 4, 5),
    "d": (3, 5, 3, 5),
    "e": (5, 2, 4, 5),
    "f": (2, 2, 4, 5),
}


def example_table() -> Table:
    return Table.from_rows(EXAMPLE_419_ROWS)


def test_example_418_generality():
    """Example 4.18: (2, 1, GAP) is more general than (2, 1, 1)."""
    assert more_general((2, 1, GAP), (2, 1, 1))
    assert not more_general((2, 1, 1), (2, 1, GAP))
    assert more_general((GAP, GAP), (7, 8))


def test_example_419_minimal_covers():
    """Example 4.19's minimal cover set, verbatim:
    {(1,2,3,GAP), (3,2,1,GAP), (GAP,5,4,GAP), (GAP,GAP,GAP,5)}."""
    mc = set(minimal_covers(example_table()))
    assert mc == {
        (1, 2, 3, GAP),
        (3, 2, 1, GAP),
        (GAP, 5, 4, GAP),
        (GAP, GAP, GAP, 5),
    }


def test_example_419_full_cover_count():
    """Example 4.19 claims 64 covers; exhaustive enumeration finds 67.

    The paper's families (1,2,3,*), (1,5,4,*), (3,2,1,*), (GAP,5,4,*),
    (*,*,*,5) miss the three covers (v,5,4,GAP) for v in {2,3,5} — each
    refines the minimal cover (GAP,5,4,GAP) with a non-GAP first
    coordinate other than 1.  The *minimal* cover set and the
    representative set of the example are reproduced exactly
    (see the tests above/below); EXPERIMENTS.md records the discrepancy.
    """
    covers = all_covers(example_table())
    assert len(covers) == 67
    for v in (2, 3, 5):
        assert (v, 5, 4, GAP) in covers  # the covers the paper missed


def test_example_419_representative_set():
    """{a, b, c, d} is a representative set; ours must be one too."""
    t = example_table()
    assert covers_equal(t, ["a", "b", "c", "d"])
    rep = representative_set(t)
    assert covers_equal(t, rep)


def test_minimal_covers_bounded_by_k_factorial():
    rng = random.Random(0)
    for trial in range(25):
        k = rng.randint(1, 4)
        n = rng.randint(1, 8)
        rows = {i: tuple(rng.randint(1, 4) for _ in range(k)) for i in range(n)}
        t = Table.from_rows(rows)
        mc = minimal_covers(t)
        assert len(mc) <= _factorial(k), (rows, mc)
        for c in mc:
            assert is_cover(t, c)
        # minimality: no cover strictly more general than another
        for c1 in mc:
            for c2 in mc:
                if c1 != c2:
                    assert not more_general(c1, c2)


def test_minimal_covers_generate_all_covers():
    """Every cover is refined by some minimal cover (randomized)."""
    rng = random.Random(1)
    for trial in range(10):
        k = rng.randint(1, 3)
        rows = {i: tuple(rng.randint(1, 3) for _ in range(k))
                for i in range(rng.randint(1, 6))}
        t = Table.from_rows(rows)
        mc = minimal_covers(t)
        for c in all_covers(t):
            assert any(more_general(m, c) for m in mc), (rows, c)


def test_representative_sets_randomized():
    rng = random.Random(2)
    for trial in range(10):
        k = rng.randint(1, 3)
        rows = {i: tuple(rng.randint(1, 3) for _ in range(k))
                for i in range(rng.randint(1, 7))}
        t = Table.from_rows(rows)
        rep = representative_set(t)
        assert covers_equal(t, rep), rows


def test_empty_table():
    t = Table.from_rows({})
    assert t.k == 0
    assert minimal_covers(t) == [()]
    assert is_cover(t, ())


def test_excludes_all_semantics():
    t = example_table()
    # (1, 2, 3, GAP) is a cover -> no row avoids all of (1, 2, 3, _)
    assert not excludes_all(t, (1, 2, 3, 99))
    # (9, 9, 9, 9) covers nothing -> some witness avoids it
    assert excludes_all(t, (9, 9, 9, 9))


def test_from_functions():
    t = Table.from_functions([1, 2, 3], [lambda v: v % 2, lambda v: v])
    assert t.rows[2] == (0, 2)
    assert t.k == 2


def _factorial(k: int) -> int:
    out = 1
    for i in range(2, k + 1):
        out *= i
    return out
