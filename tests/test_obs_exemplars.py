"""Sketch exemplars: the tail-to-trace link (ISSUE 9).

A :class:`QuantileSketch` bucket may retain one exemplar — the most
recent ``(ts, trace_id, value)`` that landed in it — so a p99/p99.9
outlier in ``repro top`` or the OpenMetrics exposition points at the
concrete request that caused it.  The properties that make this safe to
rely on: newest-wins within a bucket (by timestamp, so merges are
commutative), retention limited to the highest buckets (the tail is
what anyone debugs), and survival through the wire formats
(``to_dict``/``from_dict`` for wave transport, exemplar syntax for the
OpenMetrics endpoint).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.expose import openmetrics_text, parse_openmetrics
from repro.obs.sketch import EXEMPLAR_BUCKETS, QuantileSketch


def test_add_with_trace_id_retains_an_exemplar():
    s = QuantileSketch()
    s.add(1_000_000, trace_id="aaaa", ts=1.0)
    ex = s.exemplar(0.99)
    assert ex is not None
    assert ex[1] == "aaaa" and ex[2] == 1_000_000


def test_add_without_trace_id_retains_nothing():
    s = QuantileSketch()
    s.add(1_000_000)
    assert s.exemplar(0.99) is None
    assert s.exemplars == {}


def test_newest_wins_within_a_bucket():
    s = QuantileSketch()
    s.add(1_000_000, trace_id="old", ts=1.0)
    s.add(1_000_001, trace_id="new", ts=2.0)  # same log bucket, later ts
    s.add(1_000_002, trace_id="stale", ts=0.5)  # earlier ts: ignored
    ex = s.exemplar(0.99)
    assert ex is not None and ex[1] == "new"


def test_retention_trims_to_the_highest_buckets():
    s = QuantileSketch()
    for i in range(EXEMPLAR_BUCKETS * 3):
        s.add(10 ** 2 * 4 ** i, trace_id=f"t{i}", ts=float(i))
    assert len(s.exemplars) <= EXEMPLAR_BUCKETS
    kept_values = sorted(v for _, _, v in s.exemplars.values())
    # the survivors are the largest values (the tail), not the earliest
    assert kept_values[0] > 10 ** 2


def test_merge_keeps_newest_per_bucket_order_independent():
    def build(pairs):
        s = QuantileSketch()
        for ts, tid, v in pairs:
            s.add(v, trace_id=tid, ts=ts)
        return s

    left = [(1.0, "a", 5_000_000), (4.0, "d", 70_000_000)]
    right = [(2.0, "b", 5_100_000), (3.0, "c", 71_000_000)]

    ab = build(left)
    ab.merge(build(right))
    ba = build(right)
    ba.merge(build(left))

    assert ab.exemplars == ba.exemplars
    # per bucket, the later timestamp won
    by_bucket = ab.exemplars
    assert all(entry in (max((e for e in by_bucket.values()
                              if e is entry), default=entry),)
               for entry in by_bucket.values())
    winners = {tid for _, tid, _ in by_bucket.values()}
    assert "b" in winners and "d" in winners  # newest of each pair
    assert "a" not in winners


@given(st.lists(st.tuples(st.floats(0, 1e6, allow_nan=False),
                          st.text("abcdef0123456789", min_size=4,
                                  max_size=8),
                          st.integers(1_000, 10 ** 9)),
                min_size=1, max_size=40),
       st.integers(0, 2 ** 32))
@settings(max_examples=60, deadline=None)
def test_merge_is_commutative_under_any_split(entries, split_seed):
    import random as _random

    rng = _random.Random(split_seed)
    left, right = [], []
    for e in entries:
        (left if rng.random() < 0.5 else right).append(e)

    def build(pairs):
        s = QuantileSketch()
        for ts, tid, v in pairs:
            s.add(v, trace_id=tid, ts=ts)
        return s

    ab = build(left)
    ab.merge(build(right))
    ba = build(right)
    ba.merge(build(left))
    assert ab.exemplars == ba.exemplars

    whole = build(entries)
    assert ab.exemplars == whole.exemplars


def test_exemplars_survive_the_wire_format():
    s = QuantileSketch()
    s.add(42_000_000, trace_id="cafe", ts=9.5)
    t = QuantileSketch.from_dict(s.to_dict())
    assert t.exemplars == s.exemplars
    assert t.exemplar(0.99)[1] == "cafe"


def test_clear_drops_exemplars():
    s = QuantileSketch()
    s.add(42_000_000, trace_id="cafe", ts=9.5)
    s.clear()
    assert s.exemplars == {} and s.exemplar(0.99) is None


def test_openmetrics_exposition_carries_the_exemplar():
    from repro.obs.registry import registry

    reg = registry()
    reg.reset()
    try:
        for _ in range(200):
            reg.observe("delay.test_exemplar", 1_000)
        reg.observe("delay.test_exemplar", 900_000_000,
                    trace_id="deadbeefdeadbeef")
        text = openmetrics_text()
        assert 'trace_id="deadbeefdeadbeef"' in text
        parsed = parse_openmetrics(text)
        summary = parsed["summaries"]["repro_delay_test_exemplar"]
        exemplars = summary.get("exemplars") or {}
        tail = [ex for q, ex in exemplars.items() if float(q) >= 0.99]
        assert tail and any(
            ex["labels"].get("trace_id") == "deadbeefdeadbeef"
            for ex in tail)
    finally:
        reg.reset()
