"""Property-based parity suite: the tuple and columnar backends must give
identical results for every relational operation and for full Yannakakis
evaluation / counting on random acyclic conjunctive queries.

Queries are generated tree-structured (each new atom shares a nonempty
variable subset with one earlier atom), which guarantees alpha-acyclicity
by construction; the naive evaluator is the ground truth."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting.acq_count import count_acq, count_quantifier_free_acyclic
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.columnar import ColumnarRelation, ValueDictionary
from repro.eval.join import VarRelation
from repro.eval.naive import cq_is_satisfiable_naive, evaluate_cq_naive
from repro.eval.yannakakis import full_reducer, yannakakis, yannakakis_boolean
from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

DOMAIN = st.integers(min_value=0, max_value=4)


def _rows(draw, arity, max_rows=10):
    return draw(st.lists(
        st.tuples(*([DOMAIN] * arity)), min_size=0, max_size=max_rows))


@st.composite
def acyclic_instance(draw):
    """A random acyclic CQ together with a random database for it."""
    n_atoms = draw(st.integers(min_value=1, max_value=4))
    atom_vars = []
    fresh = 0
    for i in range(n_atoms):
        if i == 0:
            shared = []
        else:
            parent = atom_vars[draw(st.integers(0, i - 1))]
            shared = draw(st.lists(st.sampled_from(parent), min_size=1,
                                   max_size=len(parent), unique=True))
        n_fresh = draw(st.integers(min_value=0 if shared else 1, max_value=2))
        mine = list(shared)
        for _ in range(n_fresh):
            mine.append(Variable(f"v{fresh}"))
            fresh += 1
        atom_vars.append(draw(st.permutations(mine)))

    atoms = [Atom(f"R{i}", vs) for i, vs in enumerate(atom_vars)]
    all_vars = sorted({v for vs in atom_vars for v in vs}, key=lambda v: v.name)
    head = draw(st.lists(st.sampled_from(all_vars), unique=True,
                         max_size=len(all_vars)))
    cq = ConjunctiveQuery(head, atoms)

    db = Database()
    for i, vs in enumerate(atom_vars):
        db.add_relation(Relation(f"R{i}", len(vs), _rows(draw, len(vs))))
    return cq, db


@st.composite
def relation_pair(draw):
    """Two relations with (possibly) overlapping variable sets, built on
    both backends over the same rows."""
    pool = [Variable(n) for n in ("a", "b", "c", "d")]
    left = draw(st.lists(st.sampled_from(pool), min_size=1, max_size=3,
                         unique=True))
    right = draw(st.lists(st.sampled_from(pool), min_size=1, max_size=3,
                          unique=True))
    rows_l = _rows(draw, len(left))
    rows_r = _rows(draw, len(right))
    d = ValueDictionary()
    return (
        VarRelation(left, rows_l), VarRelation(right, rows_r),
        ColumnarRelation(left, rows_l, dictionary=d),
        ColumnarRelation(right, rows_r, dictionary=d),
    )


@settings(max_examples=60, deadline=None)
@given(relation_pair())
def test_operation_parity(rels):
    vl, vr, cl, cr = rels
    assert set(cl) == set(vl) and len(cl) == len(vl)
    assert set(cl.semijoin(cr)) == set(vl.semijoin(vr))
    if set(vl.variables) & set(vr.variables):
        joined_c, joined_v = cl.join(cr), vl.join(vr)
        assert joined_c.variables == joined_v.variables
        assert set(joined_c) == set(joined_v)
    for k in range(1, len(vl.variables) + 1):
        sub = vl.variables[:k]
        assert set(cl.project(sub)) == set(vl.project(sub))


@settings(max_examples=60, deadline=None)
@given(acyclic_instance())
def test_yannakakis_parity(instance):
    cq, db = instance
    if cq.is_boolean():
        expect = cq_is_satisfiable_naive(cq, db)
        assert yannakakis_boolean(cq, db, engine="tuple") == expect
        assert yannakakis_boolean(cq, db, engine="columnar") == expect
        return
    expect = evaluate_cq_naive(cq, db)
    assert set(yannakakis(cq, db, engine="tuple")) == expect
    assert set(yannakakis(cq, db, engine="columnar")) == expect


@settings(max_examples=60, deadline=None)
@given(acyclic_instance())
def test_full_reducer_parity(instance):
    cq, db = instance
    _, red_t = full_reducer(cq, db, engine="tuple")
    _, red_c = full_reducer(cq, db, engine="columnar")
    for rt, rc in zip(red_t, red_c):
        assert rt.variables == rc.variables
        assert set(rt) == set(rc)


@settings(max_examples=60, deadline=None)
@given(acyclic_instance())
def test_count_parity(instance):
    cq, db = instance
    expect = (1 if cq_is_satisfiable_naive(cq, db) else 0) \
        if cq.is_boolean() else len(evaluate_cq_naive(cq, db))
    assert count_acq(cq, db, engine="tuple") == expect
    assert count_acq(cq, db, engine="columnar") == expect
    if cq.is_quantifier_free() and not cq.is_boolean():
        assert count_quantifier_free_acyclic(cq, db, engine="columnar") == expect
