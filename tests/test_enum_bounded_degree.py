"""Tests for the bounded-degree local-pattern engine (Theorems 3.1-3.2,
Example 3.3 / Algorithm 1's exception-skipping)."""

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.enumeration.bounded_degree import (
    BoolCombo,
    BoundedDegreeEnumerator,
    Pattern,
    ThresholdSentence,
    count_pattern,
    match_component,
    model_check_pattern,
    model_check_sentence,
)
from repro.errors import MalformedQueryError, UnsupportedQueryError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

x, y, z, u, w = (Variable(c) for c in "xyzuw")


def as_cq(pattern: Pattern) -> ConjunctiveQuery:
    """The positive+diseq part of a pattern as a plain CQ over all vars
    (ground truth ignores negated atoms; tests add them separately)."""
    head = list(pattern.variables())
    return ConjunctiveQuery(head, pattern.atoms, pattern.disequalities)


def test_pattern_validation():
    with pytest.raises(MalformedQueryError):
        Pattern(head=(x,), atoms=(Atom("E", [y, z]),))
    with pytest.raises(MalformedQueryError):
        Pattern(head=(), atoms=(Atom("E", [x, y]),),
                negated=(Atom("E", [x, w]),))
    with pytest.raises(MalformedQueryError):
        Pattern(head=(), atoms=(Atom("E", [x, y]),),
                disequalities=(Comparison(x, "<", y),))


def test_components_split_correctly():
    pat = Pattern(head=(x, u), atoms=(Atom("E", [x, y]), Atom("E", [u, w])))
    comps = pat.components()
    assert len(comps) == 2
    assert {frozenset(v.name for v in c.variables) for c in comps} == {
        frozenset({"x", "y"}), frozenset({"u", "w"})
    }


def test_cross_disequalities_detected():
    pat = Pattern(head=(x, u), atoms=(Atom("E", [x, y]), Atom("E", [u, w])),
                  disequalities=(Comparison(x, "!=", u), Comparison(x, "!=", y)))
    cross = pat.cross_disequalities()
    assert len(cross) == 1
    assert cross[0].variable_set() == {x, u}


def test_match_component_equals_naive():
    pat = Pattern(head=(x, z), atoms=(Atom("E", [x, y]), Atom("E", [y, z])))
    for seed in range(4):
        db = generators.random_bounded_degree_graph(15, 3, seed=seed)
        (comp,) = pat.components()
        got = set(match_component(comp, db))
        cq = ConjunctiveQuery([x, y, z], pat.atoms)
        assert got == evaluate_cq_naive(cq, db)


def test_counting_matches_naive_with_cross_disequalities():
    pat = Pattern(head=(x, z, u),
                  atoms=(Atom("E", [x, y]), Atom("E", [y, z]), Atom("E", [u, w])),
                  disequalities=(Comparison(x, "!=", z), Comparison(x, "!=", u)))
    for seed in range(4):
        db = generators.random_bounded_degree_graph(12, 3, seed=seed)
        assert count_pattern(pat, db) == len(evaluate_cq_naive(as_cq(pat), db))


def test_enumeration_matches_naive():
    pat = Pattern(head=(x, z, u),
                  atoms=(Atom("E", [x, y]), Atom("E", [y, z]), Atom("E", [u, w])),
                  disequalities=(Comparison(x, "!=", u),))
    for seed in range(4):
        db = generators.random_bounded_degree_graph(12, 3, seed=seed)
        got = list(BoundedDegreeEnumerator(pat, db))
        full = evaluate_cq_naive(as_cq(pat), db)
        order = list(pat.variables())
        pos = [order.index(v) for v in pat.head]
        expected = {tuple(t[p] for p in pos) for t in full}
        assert len(got) == len(set(got)), seed
        assert set(got) == expected, seed


def test_negated_atoms_enforced():
    pat = Pattern(head=(x, z), atoms=(Atom("E", [x, y]), Atom("E", [y, z])),
                  negated=(Atom("E", [x, z]),))
    db = generators.random_bounded_degree_graph(12, 3, seed=5)
    rel = db.relation("E")
    for a, c in BoundedDegreeEnumerator(pat, db):
        assert (a, c) not in rel


def test_cross_disequality_on_quantified_rejected():
    pat = Pattern(head=(x,), atoms=(Atom("E", [x, y]), Atom("E", [u, w])),
                  disequalities=(Comparison(y, "!=", u),))
    db = generators.random_bounded_degree_graph(8, 2, seed=0)
    enum = BoundedDegreeEnumerator(pat, db)
    with pytest.raises(UnsupportedQueryError):
        enum.preprocess()


def test_distinct_head_counting():
    from repro.counting.fo_count import count_answers, count_assignments

    pat = Pattern(head=(x,), atoms=(Atom("E", [x, y]),))
    db = Database.from_relations({"E": [(1, 2), (1, 3), (2, 3)]})
    assert count_assignments(pat, db) == 3
    assert count_answers(pat, db) == 2


def test_model_check(small_db=None):
    pat = Pattern(head=(), atoms=(Atom("E", [x, y]), Atom("E", [y, z])),
                  disequalities=(Comparison(x, "!=", z),))
    db = Database.from_relations({"E": [(1, 2), (2, 3)]})
    assert model_check_pattern(pat, db)
    db2 = Database.from_relations({"E": [(1, 2)]})
    assert not model_check_pattern(pat, db2)


def test_threshold_sentences_and_combos():
    pat = Pattern(head=(x, y), atoms=(Atom("E", [x, y]),))
    db = Database.from_relations({"E": [(1, 2), (2, 3), (3, 4)]})
    at_least_3 = ThresholdSentence(pat, 3)
    at_least_4 = ThresholdSentence(pat, 4)
    assert model_check_sentence(at_least_3, db)
    assert not model_check_sentence(at_least_4, db)
    combo = BoolCombo("and", (at_least_3, BoolCombo("not", (at_least_4,))))
    assert model_check_sentence(combo, db)
    assert model_check_sentence(BoolCombo("or", (at_least_4, at_least_3)), db)


def test_bucket_skipping_many_exclusions():
    """Algorithm 1's regime: for each outer value one inner bucket is
    excluded; results must still be exact."""
    pat = Pattern(head=(x, u), atoms=(Atom("A", [x, y]), Atom("B", [u, w])),
                  disequalities=(Comparison(x, "!=", u),))
    db = Database.from_relations({
        "A": [(i, 100 + i) for i in range(6)],
        "B": [(i, 200 + i) for i in range(6)],
    })
    got = set(BoundedDegreeEnumerator(pat, db))
    expected = {(a, b) for a in range(6) for b in range(6) if a != b}
    assert got == expected
