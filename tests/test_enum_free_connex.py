"""Unit + randomized tests for the constant-delay free-connex engine
(Theorem 4.6) — the paper's headline enumeration algorithm."""

import random

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.free_connex import FreeConnexEnumerator, derive_free_join
from repro.errors import NotFreeConnexError, UnsupportedQueryError
from repro.eval.naive import cq_is_satisfiable_naive, evaluate_cq_naive
from repro.logic.parser import parse_cq

FREE_CONNEX_QUERIES = [
    "Q(x) :- R(x, z), S(z, y)",
    "Q(x, y) :- R(x, w), S(y, u), B(u)",          # Example 4.5
    "Q(x, y, z) :- R(x, y), S(y, z)",             # quantifier-free
    "Q(x1, x2, x3) :- R(x1, x2), S(x2, x3, y3), R(x1, y1), T(y3, y4, y5), S2(x2, y2)",
    "Q(a) :- T(a, b, c), R(b, x), S(c, y)",
    "Q() :- R(x, z), S(z, y)",
]

SCHEMA = {"R": 2, "S": 2, "T": 3, "B": 1, "S2": 2}


def schema_for(q):
    arities = q.relation_arities()
    return {n: a for n, a in arities.items()}


def test_matches_naive_randomized():
    for text in FREE_CONNEX_QUERIES:
        q = parse_cq(text)
        assert q.is_free_connex(), text
        for seed in range(5):
            db = generators.random_database(schema_for(q), 6, 14, seed=seed)
            got = list(FreeConnexEnumerator(q, db))
            assert len(got) == len(set(got)), (text, seed)
            assert set(got) == evaluate_cq_naive(q, db), (text, seed)


def test_boolean_queries():
    q = parse_cq("Q() :- R(x, z), S(z, y)")
    for seed in range(5):
        db = generators.random_database({"R": 2, "S": 2}, 4, 6, seed=seed)
        got = list(FreeConnexEnumerator(q, db))
        assert (got == [()]) == cq_is_satisfiable_naive(q, db)


def test_rejects_non_free_connex():
    db = generators.random_database({"A": 2, "B": 2}, 4, 8, seed=0)
    with pytest.raises(NotFreeConnexError):
        list(FreeConnexEnumerator(parse_cq("Pi(x, y) :- A(x, z), B(z, y)"), db))


def test_rejects_cyclic():
    db = generators.random_database({"R": 2, "S": 2, "T": 2}, 4, 8, seed=0)
    with pytest.raises(NotFreeConnexError):
        FreeConnexEnumerator(parse_cq("Q(x) :- R(x, y), S(y, z), T(z, x)"), db)


def test_rejects_comparisons():
    db = generators.random_database({"R": 2}, 4, 8, seed=0)
    with pytest.raises(UnsupportedQueryError):
        FreeConnexEnumerator(parse_cq("Q(x) :- R(x, y), x != y"), db)


def test_empty_answer_set():
    db = Database([Relation("R", 2, [(1, 2)]), Relation("S", 2, [(9, 9)])])
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    assert list(FreeConnexEnumerator(q, db)) == []


def test_empty_quantified_component_kills_all_answers():
    """Regression: a fully quantified S-component whose relations reduce
    to empty contributes a zero-ary empty relation to the derived join;
    the enumerator must emit nothing (the old `nonempty` branch re-tested
    the unfiltered list and could never take effect)."""
    # component over x is live; the fully quantified component {u, w}
    # joins T with U on w, and U is empty -> no answers at all
    db = Database([
        Relation("R", 1, [(1,), (2,)]),
        Relation("T", 2, [(7, 8)]),
        Relation("U", 1, []),
    ])
    q = parse_cq("Q(x) :- R(x), T(u, w), U(w)")
    enum = FreeConnexEnumerator(q, db)
    assert list(enum) == []
    # the zero-ary verdict must also survive inside derive_free_join
    derived = derive_free_join(q, db)
    zero_ary = [r for r in derived if len(r.variables) == 0]
    assert zero_ary and all(len(r) == 0 for r in zero_ary)


def test_nonempty_quantified_component_is_filtered_not_joined():
    """The mirror case: the quantified component is satisfiable, so its
    verdict must not block the live component's answers."""
    db = Database([
        Relation("R", 1, [(1,), (2,)]),
        Relation("T", 2, [(7, 8)]),
        Relation("U", 1, [(8,)]),
    ])
    q = parse_cq("Q(x) :- R(x), T(u, w), U(w)")
    assert set(FreeConnexEnumerator(q, db)) == {(1,), (2,)}


def test_derived_join_projects_onto_free_variables(small_db):
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    derived = derive_free_join(q, small_db)
    for rel in derived:
        assert set(rel.variables) <= q.free_variables()
    # their join is exactly phi(D)
    union_vars = {v for r in derived for v in r.variables}
    assert union_vars == set(q.free_variables())


def test_derived_join_figure1(figure1_query):
    """Figure 1: after the bottom-up filtering only a quantifier-free join
    over the free variables remains (the R(x1,x2) join S'(x2,x3) step)."""
    db = generators.random_database(schema_for(figure1_query), 5, 15, seed=4)
    derived = derive_free_join(figure1_query, db)
    edges = {frozenset(v.name for v in r.variables) for r in derived}
    # contains the pi_{x2,x3}(S) relation the paper calls S'
    assert frozenset({"x2", "x3"}) in edges
    assert frozenset({"x1", "x2"}) in edges


def test_preprocessing_is_idempotent():
    db = generators.random_database({"R": 2, "S": 2}, 5, 10, seed=1)
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    enum = FreeConnexEnumerator(q, db)
    enum.preprocess()
    enum.preprocess()
    assert set(enum) == evaluate_cq_naive(q, db)


def test_large_instance_exact_count():
    db = generators.random_database({"R": 2, "S": 2, "B": 1}, 40, 300, seed=9)
    q = parse_cq("Q(x, y) :- R(x, w), S(y, u), B(u)")
    got = list(FreeConnexEnumerator(q, db))
    assert len(got) == len(set(got))
    assert set(got) == evaluate_cq_naive(q, db)


def test_self_join_query():
    """Free-connex engine on a query with a self join (R used twice)."""
    q = parse_cq("Q(x) :- R(x, y), R(y, z)")
    for seed in range(4):
        db = generators.random_database({"R": 2}, 6, 14, seed=seed)
        assert set(FreeConnexEnumerator(q, db)) == evaluate_cq_naive(q, db)


def test_constants_in_atoms():
    db = Database.from_relations({"R": [(1, 2), (1, 3), (2, 3)]})
    q = parse_cq("Q(y) :- R(1, y)")
    assert set(FreeConnexEnumerator(q, db)) == {(2,), (3,)}
