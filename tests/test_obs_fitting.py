"""Verdict correctness for the observatory's slope fitting.

Synthetic series with known exponents (plus multiplicative noise) must
produce the right verdict, and the anti-flake rule must force
``inconclusive`` whenever the size sweep spans less than one decade.
"""

import math
import random

import pytest

from repro.logic.parser import parse_cq
from repro.obs.fitting import (
    MIN_DECADES,
    SlopeFit,
    expected_verdict,
    fit_and_judge,
    fit_loglog,
    verdict_from_fit,
    verdict_matches,
)

SIZES = [100, 300, 1000, 3000, 10000, 30000]  # 2.5 decades


def synth(exponent, noise=0.05, seed=11, sizes=SIZES, scale=1e-6):
    rng = random.Random(seed)
    return [scale * (n ** exponent) * rng.uniform(1 - noise, 1 + noise)
            for n in sizes]


@pytest.mark.parametrize("exponent, expected", [
    (0.0, "constant-delay"),
    (1.0, "linear"),
    (2.0, "quadratic"),
])
def test_known_slopes_produce_right_verdict(exponent, expected):
    for seed in (1, 2, 3):
        fit, verdict = fit_and_judge(SIZES, synth(exponent, seed=seed))
        assert verdict == expected, (exponent, seed, fit)
        assert abs(fit.slope - exponent) < 0.1


def test_intermediate_slope_is_superlinear():
    # ~||D||^1.5 (the naive triangle join's shape): clearly worse than
    # linear but not in the quadratic band
    fit, verdict = fit_and_judge(SIZES, synth(1.5, noise=0.02))
    assert verdict == "superlinear"
    assert fit.ci_low > 1.0


def test_sub_decade_sweep_is_inconclusive():
    # perfect linear data — but the sweep spans < one decade, so the
    # anti-flake rule refuses to certify a shape
    sizes = [1000, 2000, 4000, 8000]
    assert math.log10(sizes[-1] / sizes[0]) < MIN_DECADES
    fit, verdict = fit_and_judge(sizes, [1e-6 * n for n in sizes])
    assert verdict == "inconclusive"
    assert abs(fit.slope - 1.0) < 1e-9  # the fit itself is exact


def test_too_few_points_is_inconclusive():
    fit, verdict = fit_and_judge([100, 10000], [1e-6, 1e-4])
    assert verdict == "inconclusive"
    assert not math.isfinite(fit.stderr)


def test_wide_interval_is_inconclusive():
    # noise so large the CI covers both flat and linear
    values = [1e-6, 1e-3, 1e-6, 1e-3, 1e-6, 1e-3]
    fit, verdict = fit_and_judge(SIZES, values)
    assert verdict == "inconclusive"


def test_fit_confidence_interval_brackets_slope():
    fit = fit_loglog(SIZES, synth(1.0))
    assert fit.ci_low <= fit.slope <= fit.ci_high
    assert fit.n_points == len(SIZES)
    assert fit.decades == pytest.approx(math.log10(300), rel=1e-6)
    assert 0.9 <= fit.r_squared <= 1.0


def test_fit_to_dict_is_jsonable():
    import json

    doc = fit_loglog(SIZES, synth(0.0)).to_dict()
    json.dumps(doc)
    assert set(doc) == {"slope", "intercept", "stderr", "ci_low", "ci_high",
                        "n_points", "decades", "r_squared", "reliable"}
    # two-point fits carry infinite stderr -> rendered as None, and the
    # reliable flag marks the slope as interpolation, not measurement
    two = fit_loglog([10, 1000], [1, 2]).to_dict()
    assert two["stderr"] is None
    assert two["reliable"] is False
    assert doc["reliable"] is True


def test_zero_values_clamped_by_floor():
    fit = fit_loglog(SIZES, [0.0] * len(SIZES))
    assert verdict_from_fit(fit) == "constant-delay"


def test_expected_verdicts_from_classification():
    fc = parse_cq("Q(x) :- R(x, z), S(z, y)")           # free-connex
    acq = parse_cq("Q(x, y) :- R(x, z), S(z, y)")        # acyclic, not fc
    tri = parse_cq("Q() :- E(x, y), E(y, z), E(z, x)")   # cyclic
    assert expected_verdict(fc, "delay") == "constant-delay"
    assert expected_verdict(fc, "preprocessing") == "linear"
    assert expected_verdict(acq, "delay") == "linear"
    assert expected_verdict(acq, "total") == "linear"
    assert expected_verdict(tri, "total") == "superlinear"
    assert expected_verdict(tri, "delay") == "superlinear"


def test_expected_verdict_none_for_comparisons():
    lt = parse_cq("Q(x, y) :- R(x, z), S(z, y), x < y")
    assert expected_verdict(lt, "delay") is None


def test_verdict_matches_semantics():
    assert verdict_matches("constant-delay", "constant-delay") is True
    assert verdict_matches("linear", "constant-delay") is False
    assert verdict_matches("quadratic", "superlinear") is True
    assert verdict_matches("superlinear", "quadratic") is True
    assert verdict_matches("linear", "superlinear") is False
    assert verdict_matches("inconclusive", "linear") is None
    assert verdict_matches("linear", None) is None


def test_manual_slopefit_verdict_bands():
    def vf(slope, half):
        return verdict_from_fit(SlopeFit(
            slope, 0.0, half / 2, slope - half, slope + half,
            n_points=5, decades=2.0, r_squared=0.99))

    assert vf(0.05, 0.1) == "constant-delay"
    assert vf(1.1, 0.1) == "linear"
    assert vf(2.05, 0.2) == "quadratic"
    assert vf(1.55, 0.15) == "superlinear"
    assert vf(0.5, 0.6) == "inconclusive"  # covers both 0 and 1
