"""Unit tests for the FO AST, prenex transformation and the Sigma_k/Pi_k
prefix classification (Section 5, Examples 5.1/5.2)."""

import pytest

from repro.errors import MalformedQueryError
from repro.logic.fo import (
    And,
    CompareAtom,
    Exists,
    ForAll,
    Not,
    Or,
    RelAtom,
    SOAtom,
    SecondOrderVariable,
    atoms_of,
    cq_to_fo,
    is_quantifier_free,
    quantifier_prefix,
    to_prenex,
)
from repro.logic.parser import parse_cq
from repro.logic.prefix import PrefixClass, classify_prefix
from repro.logic.terms import Variable


def test_free_variables():
    x, y = Variable("x"), Variable("y")
    f = Exists([x], And(RelAtom("R", [x, y]), CompareAtom(x, "!=", y)))
    assert f.free_variables() == {y}


def test_so_atom_arity_checked():
    X = SecondOrderVariable("X", 2)
    with pytest.raises(MalformedQueryError):
        SOAtom(X, ["x"])


def test_so_variables_collected():
    X = SecondOrderVariable("X", 1)
    f = ForAll(["x"], SOAtom(X, ["x"]))
    assert f.so_variables() == {X}
    assert f.free_variables() == frozenset()


def test_connective_sugar():
    a = RelAtom("R", ["x"])
    b = RelAtom("S", ["x"])
    assert isinstance(a & b, And)
    assert isinstance(a | b, Or)
    assert isinstance(~a, Not)


def test_nary_flattening():
    a, b, c = (RelAtom(n, ["x"]) for n in "RST")
    f = And(And(a, b), c)
    assert len(f.operands) == 3


def test_atoms_of():
    f = And(RelAtom("R", ["x"]), Not(RelAtom("S", ["x"])))
    assert [a.relation for a in atoms_of(f)] == ["R", "S"]


def test_quantifier_prefix_blocks_merge():
    f = Exists(["x"], Exists(["y"], ForAll(["z"], RelAtom("R", ["x", "y", "z"]))))
    blocks, matrix = quantifier_prefix(f)
    assert [(k, len(vs)) for k, vs in blocks] == [("E", 2), ("A", 1)]
    assert is_quantifier_free(matrix)


def test_prenex_pushes_negation():
    f = Not(Exists(["x"], RelAtom("R", ["x"])))
    p = to_prenex(f)
    assert isinstance(p, ForAll)
    assert isinstance(p.child, Not)


def test_prenex_pulls_from_conjunction():
    f = And(Exists(["x"], RelAtom("R", ["x"])), ForAll(["y"], RelAtom("S", ["y"])))
    blocks, matrix = quantifier_prefix(to_prenex(f))
    assert len(blocks) == 2
    assert is_quantifier_free(matrix)


def test_prenex_capture_avoidance():
    # exists x R(x)  AND  S(x): the free x of S must not be captured
    f = And(Exists(["x"], RelAtom("R", ["x"])), RelAtom("S", ["x"]))
    p = to_prenex(f)
    assert Variable("x") in p.free_variables()


def test_classify_sigma0():
    f = RelAtom("R", ["x"])
    assert classify_prefix(f).name() == "Sigma_0"


def test_classify_example_52_sigma0():
    # Psi_0: ordered triangle, quantifier-free
    x1, x2, x3 = Variable("v1"), Variable("v2"), Variable("v3")
    f = And(CompareAtom(x1, "<", x2), CompareAtom(x2, "<", x3),
            RelAtom("E", [x1, x2]), RelAtom("E", [x2, x3]), RelAtom("E", [x3, x1]))
    cls = classify_prefix(f)
    assert cls.k == 0 and not cls.relational


def test_classify_example_52_pi1_rel():
    # Psi_1(T) = forall v1 v2 (T(v1) and T(v2) -> E(v1, v2))
    T = SecondOrderVariable("T", 1)
    v1, v2 = Variable("v1"), Variable("v2")
    body = Or(Not(And(SOAtom(T, [v1]), SOAtom(T, [v2]))), RelAtom("E", [v1, v2]))
    f = ForAll([v1, v2], body)
    cls = classify_prefix(f)
    assert cls.name() == "Pi_1^rel"


def test_classify_sigma1_rel():
    T = SecondOrderVariable("T", 1)
    f = Exists(["x"], SOAtom(T, ["x"]))
    assert classify_prefix(f).name() == "Sigma_1^rel"


def test_classify_sigma2():
    f = Exists(["x"], ForAll(["y"], RelAtom("R", ["x", "y"])))
    cls = classify_prefix(f)
    assert cls.k == 2 and cls.leading == "E"


def test_containment_order():
    s0 = PrefixClass(0, "")
    s1 = PrefixClass(1, "E")
    p1 = PrefixClass(1, "A")
    s2 = PrefixClass(2, "E")
    assert s1.contains(s0) and p1.contains(s0)
    assert s2.contains(s1) and s2.contains(p1)
    assert not s1.contains(p1) and not p1.contains(s1)


def test_cq_to_fo_roundtrip_semantics():
    from repro.data.database import Database
    from repro.eval.naive import evaluate_cq_naive, fo_answers

    q = parse_cq("Q(x) :- R(x, z), S(z)")
    db = Database.from_relations({"R": [(1, 2), (2, 3)], "S": [(2,)]})
    f = cq_to_fo(q)
    assert fo_answers(f, db) == evaluate_cq_naive(q, db)
