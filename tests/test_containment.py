"""Tests for CQ containment, equivalence and cores (Chandra-Merlin)."""

import random

import pytest

from repro.data import generators
from repro.eval.naive import evaluate_cq_naive
from repro.logic.containment import (
    are_equivalent,
    classify_up_to_equivalence,
    core,
    has_homomorphism,
    homomorphisms,
    is_contained_in,
    is_minimal,
)
from repro.logic.parser import parse_cq


def test_basic_containments():
    p2 = parse_cq("Q(x) :- E(x, y), E(y, z)")
    p1 = parse_cq("Q(x) :- E(x, y)")
    assert is_contained_in(p2, p1)       # longer path is more restrictive
    assert not is_contained_in(p1, p2)


def test_boolean_triangle_contained_in_path():
    tri = parse_cq("Q() :- E(x, y), E(y, z), E(z, x)")
    path = parse_cq("Q() :- E(a, b), E(b, c)")
    assert is_contained_in(tri, path)
    assert not is_contained_in(path, tri)


def test_head_must_align():
    q1 = parse_cq("Q(x) :- E(x, y)")
    q2 = parse_cq("Q(y) :- E(x, y)")    # asks for targets, not sources
    assert not are_equivalent(q1, q2)


def test_constants_respected():
    q1 = parse_cq("Q(x) :- E(x, 1)")
    q2 = parse_cq("Q(x) :- E(x, y)")
    assert is_contained_in(q1, q2)
    assert not is_contained_in(q2, q1)


def test_arity_mismatch_never_contained():
    q1 = parse_cq("Q(x) :- E(x, y)")
    q2 = parse_cq("Q(x, y) :- E(x, y)")
    assert not is_contained_in(q1, q2)


def test_core_removes_redundant_atom():
    q = parse_cq("Q(x) :- E(x, y), E(x, z)")
    c = core(q)
    assert len(c.atoms) == 1
    assert not is_minimal(q)
    assert is_minimal(c)
    assert are_equivalent(q, c)


def test_core_keeps_non_redundant_chain():
    q = parse_cq("Q(x) :- E(x, y), E(y, z)")
    assert core(q) == q
    assert is_minimal(q)


def test_core_folds_partial_redundancy():
    q = parse_cq("Q(x) :- E(x, y), E(x, z), E(y, w)")
    c = core(q)
    # E(x, z) folds onto E(x, y); E(y, w) stays
    assert len(c.atoms) == 2
    assert are_equivalent(q, c)


def test_core_of_self_loop_query():
    q = parse_cq("Q() :- E(x, x), E(y, z)")
    c = core(q)
    assert len(c.atoms) == 1  # E(y, z) maps onto E(x, x)
    assert are_equivalent(q, c)


def test_containment_is_sound_semantically():
    """If is_contained_in holds, answers are contained on random data."""
    pairs = [
        ("Q(x) :- E(x, y), E(y, z)", "Q(x) :- E(x, y)"),
        ("Q() :- E(x, y), E(y, x)", "Q() :- E(a, b)"),
        ("Q(x, y) :- E(x, y), F(y)", "Q(x, y) :- E(x, y)"),
    ]
    for t1, t2 in pairs:
        q1, q2 = parse_cq(t1), parse_cq(t2)
        assert is_contained_in(q1, q2), (t1, t2)
        for seed in range(4):
            db = generators.random_database({"E": 2, "F": 1}, 5, 12, seed=seed)
            assert evaluate_cq_naive(q1, db) <= evaluate_cq_naive(q2, db)


def test_core_preserves_semantics_randomized():
    queries = [
        "Q(x) :- E(x, y), E(x, z), E(y, w)",
        "Q() :- E(x, y), E(y, z), E(a, b)",
        "Q(x, y) :- E(x, y), E(x, w), F(w)",
    ]
    for text in queries:
        q = parse_cq(text)
        c = core(q)
        for seed in range(4):
            db = generators.random_database({"E": 2, "F": 1}, 5, 12, seed=seed)
            assert evaluate_cq_naive(q, db) == evaluate_cq_naive(c, db), text


def test_classification_changes_under_core():
    """A query that looks hard can have an easy core: the cyclic triangle
    folds into the self-loop atom, so the core is a one-atom ACQ."""
    q = parse_cq("Q() :- E(x, y), E(y, z), E(z, x), E(u, u)")
    assert not q.is_acyclic()  # classified as a cyclic CQ as written
    minimal, report = classify_up_to_equivalence(q)
    assert len(minimal.atoms) == 1
    assert minimal.is_acyclic() and minimal.is_free_connex()
    assert report.query_class == "ACQ"
    assert are_equivalent(q, minimal)


def test_homomorphism_counts():
    src = parse_cq("Q() :- E(x, y)")
    dst = parse_cq("Q() :- E(a, b), E(b, c)")
    assert len(list(homomorphisms(src, dst))) == 2
    assert has_homomorphism(src, dst)


def test_comparisons_rejected():
    with pytest.raises(ValueError):
        is_contained_in(parse_cq("Q(x) :- E(x, y), x != y"),
                        parse_cq("Q(x) :- E(x, y)"))
