"""Tests for signed queries (Section 4.5's [18] fragment) and the
Beeri-Fagin-Maier-Yannakakis alpha-acyclicity characterisation."""

import random

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.errors import MalformedQueryError
from repro.eval.naive import satisfying_assignments
from repro.hypergraph.characterizations import (
    is_alpha_acyclic_bfmy,
    is_chordal,
    is_conformal,
    maximal_cliques,
    perfect_elimination_ordering,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import is_alpha_acyclic
from repro.logic.parser import parse_cq
from repro.logic.signed import (
    SignedConjunctiveQuery,
    count_signed,
    decide_signed,
    evaluate_signed,
    parse_signed,
)
from repro.logic.terms import Variable


# ------------------------------------------------------------ signed queries


def expected_signed(db, positive_text, negative_checks):
    pos = parse_cq(positive_text)
    out = set()
    for a in satisfying_assignments(pos, db):
        if all(tuple(a[Variable(v)] for v in vs) not in db.relation(rel)
               for rel, vs in negative_checks):
            out.add(tuple(a[v] for v in pos.head))
    return out


def test_signed_evaluation_randomized():
    for seed in range(6):
        db = generators.random_database({"E": 2, "F": 2}, 5, 14, seed=seed)
        sq = parse_signed("Q(x, z) :- E(x, y), E(y, z), not F(x, z)")
        expected = expected_signed(db, "Q(x, z) :- E(x, y), E(y, z)",
                                   [("F", ["x", "z"])])
        assert evaluate_signed(sq, db) == expected, seed
        assert count_signed(sq, db) == len(expected)
        assert decide_signed(sq, db) == bool(expected)


def test_signed_open_triangle():
    sq = parse_signed("Q(x, z) :- E(x, y), E(y, z), not E(x, z)")
    db = Database.from_relations({"E": [(1, 2), (2, 3), (1, 3), (3, 4)]})
    got = evaluate_signed(sq, db)
    assert (2, 4) in got            # 2-3-4 is open
    assert (1, 3) not in got        # 1-2-3 is closed by (1, 3)


def test_signed_safety_enforced():
    from repro.logic.atoms import Atom

    with pytest.raises(MalformedQueryError):
        SignedConjunctiveQuery(["x"], [Atom("E", ["x", "y"])],
                               [Atom("F", ["x", "w"])])
    with pytest.raises(MalformedQueryError):
        SignedConjunctiveQuery(["x"], [], [Atom("F", ["x"])])


def test_signed_positive_core_classification():
    sq = parse_signed("Q(x) :- E(x, y), B(y), not F(x)")
    core = sq.positive_core()
    assert core.is_free_connex()
    assert set(sq.relation_names()) == {"E", "B", "F"}
    assert "not" in repr(sq)


def test_signed_boolean():
    sq = parse_signed("Q() :- E(x, y), not F(x, y)")
    db = Database.from_relations({"E": [(1, 2)], "F": [(1, 2)]})
    assert not decide_signed(sq, db)
    db2 = Database.from_relations({"E": [(1, 2), (3, 4)], "F": [(1, 2)]})
    assert decide_signed(sq, db2)


# --------------------------------------------------------- characterisations


def test_maximal_cliques_triangle_plus_pendant():
    adj = {1: {2, 3}, 2: {1, 3}, 3: {1, 2, 4}, 4: {3}}
    cliques = {frozenset(c) for c in maximal_cliques(adj)}
    assert frozenset({1, 2, 3}) in cliques
    assert frozenset({3, 4}) in cliques


def test_chordality():
    c4 = {1: {2, 4}, 2: {1, 3}, 3: {2, 4}, 4: {3, 1}}
    assert not is_chordal(c4)
    assert perfect_elimination_ordering(c4) is None
    chorded = {1: {2, 4, 3}, 2: {1, 3}, 3: {2, 4, 1}, 4: {3, 1}}
    assert is_chordal(chorded)


def test_conformality():
    # triangle as 2-uniform hypergraph: clique {a,b,c} in no edge
    h = Hypergraph({"a", "b", "c"},
                   [frozenset("ab"), frozenset("bc"), frozenset("ca")])
    assert not is_conformal(h)
    covered = h.with_edge({"a", "b", "c"})
    assert is_conformal(covered)


def test_bfmy_equivalence_randomized():
    """GYO == (conformal AND chordal) on random hypergraphs — the classic
    BFMY theorem as a property test."""
    rng = random.Random(3)
    variables = list("abcdef")
    for trial in range(200):
        edges = []
        for _ in range(rng.randint(1, 6)):
            size = rng.randint(1, 4)
            edges.append(frozenset(rng.sample(variables, size)))
        verts = {v for e in edges for v in e}
        h = Hypergraph(verts, edges)
        assert is_alpha_acyclic(h) == is_alpha_acyclic_bfmy(h), edges


def test_bfmy_on_paper_examples():
    path = parse_cq("Q(x, y, z) :- E(x, y), F(y, z)").hypergraph()
    assert is_alpha_acyclic_bfmy(path)
    tri = parse_cq("Q(x, y, z) :- E(x, y), F(y, z), G(z, x)").hypergraph()
    assert not is_alpha_acyclic_bfmy(tri)
    covered = parse_cq(
        "Q(x, y, z) :- E(x, y), F(y, z), G(z, x), T(x, y, z)").hypergraph()
    assert is_alpha_acyclic_bfmy(covered)


def test_signed_classification():
    from repro.core.classify import classify

    sq = parse_signed("Q(x) :- E(x, y), B(y), not F(x)")
    report = classify(sq)
    assert report.query_class == "signed CQ"
    assert report.fact("negative_atoms") == 1
    assert report.verdict("decide").engine.endswith("decide_signed")
    assert report.verdict("enumerate").tractable is None
