"""Parity and caching suite for the ``compiled`` backend.

The compiled tier's contract mirrors the parallel one: *sequence-level*
equivalence with the serial columnar engine — identical reduced rows in
identical order, identical counts and weighted sums, identical flat
enumeration streams at every block size — plus two properties of its
own:

* **tier transparency** — without numba the radix kernels degrade to the
  sort-based columnar probes, so every test here runs (and must pass)
  in both tiers; the raw radix algorithm is additionally pinned against
  ``_BatchProbe`` through its uncompiled pure-Python kernels, which are
  byte-for-byte the code numba would JIT;
* **per-symbol sharing** — self-join atoms over one stored relation
  share probe structures keyed by column positions, observable through
  the ``compiled.symbol_cache_*`` counters, and a ``Relation.version``
  bump must invalidate the share.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.plancache import plan_cache_disabled
from repro.counting.acq_count import count_acq, count_full_acyclic_join
from repro.counting.weighted import WeightFunction
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine import get_engine, use_engine
from repro.engine.base import ColumnarEngine
from repro.engine.columnar import ColumnarRelation, ValueDictionary
from repro.engine.compiled import CompiledEngine, CompiledRelation
from repro.engine.enumerate import BlockIterator, _BatchProbe
from repro.engine.radix import (
    FALLBACK_ENV_VAR,
    HAVE_NUMBA,
    RADIX_BITS_ENV_VAR,
    RadixTable,
    kernel_tier,
    radix_bits,
)
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.eval.naive import cq_is_satisfiable_naive, evaluate_cq_naive
from repro.eval.yannakakis import full_reducer, yannakakis
from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

DOMAIN = st.integers(min_value=0, max_value=4)


def _rows(draw, arity, max_rows=10):
    return draw(st.lists(
        st.tuples(*([DOMAIN] * arity)), min_size=0, max_size=max_rows))


@st.composite
def acyclic_instance(draw):
    """A random acyclic CQ with a random database (tree-structured atom
    variable sets guarantee alpha-acyclicity by construction)."""
    n_atoms = draw(st.integers(min_value=1, max_value=4))
    atom_vars = []
    fresh = 0
    for i in range(n_atoms):
        if i == 0:
            shared = []
        else:
            parent = atom_vars[draw(st.integers(0, i - 1))]
            shared = draw(st.lists(st.sampled_from(parent), min_size=1,
                                   max_size=len(parent), unique=True))
        n_fresh = draw(st.integers(min_value=0 if shared else 1, max_value=2))
        mine = list(shared)
        for _ in range(n_fresh):
            mine.append(Variable(f"v{fresh}"))
            fresh += 1
        atom_vars.append(draw(st.permutations(mine)))

    atoms = [Atom(f"R{i}", vs) for i, vs in enumerate(atom_vars)]
    all_vars = sorted({v for vs in atom_vars for v in vs},
                      key=lambda v: v.name)
    head = draw(st.lists(st.sampled_from(all_vars), unique=True,
                         max_size=len(all_vars)))
    cq = ConjunctiveQuery(head, atoms)

    db = Database()
    for i, vs in enumerate(atom_vars):
        db.add_relation(Relation(f"R{i}", len(vs), _rows(draw, len(vs))))
    return cq, db


def _path_relations(sizes, seed=3, dom=30, cls=CompiledRelation):
    rng = random.Random(seed)
    x, y, z, w = (Variable(n) for n in "xyzw")
    d = ValueDictionary()
    schemas = [(x, y), (y, z), (z, w)]
    rels = [cls(vs, [(rng.randrange(dom), rng.randrange(dom))
                     for _ in range(n)], dictionary=d)
            for vs, n in zip(schemas, sizes)]
    return rels, (x, y, z, w)


# -------------------------------------------------------- tier resolution


def test_kernel_tier_resolution(monkeypatch):
    monkeypatch.delenv(FALLBACK_ENV_VAR, raising=False)
    assert kernel_tier() == ("numba" if HAVE_NUMBA else "numpy")
    monkeypatch.setenv(FALLBACK_ENV_VAR, "numpy")
    assert kernel_tier() == "numpy"
    monkeypatch.setenv(FALLBACK_ENV_VAR, "fallback")
    assert kernel_tier() == "numpy"
    if not HAVE_NUMBA:
        monkeypatch.setenv(FALLBACK_ENV_VAR, "numba")
        with pytest.raises(ValueError, match="requires numba"):
            kernel_tier()
    monkeypatch.setenv(FALLBACK_ENV_VAR, "sparkles")
    with pytest.raises(ValueError, match="must be auto"):
        kernel_tier()


def test_radix_bits_growth_and_override(monkeypatch):
    monkeypatch.delenv(RADIX_BITS_ENV_VAR, raising=False)
    assert radix_bits(0) == 1
    assert radix_bits(10_000) == 1
    assert radix_bits(100_000) < radix_bits(10_000_000)
    monkeypatch.setenv(RADIX_BITS_ENV_VAR, "6")
    assert radix_bits(10) == 6
    monkeypatch.setenv(RADIX_BITS_ENV_VAR, "99")
    assert radix_bits(10) == 16  # clamped
    monkeypatch.setenv(RADIX_BITS_ENV_VAR, "nope")
    with pytest.raises(ValueError):
        radix_bits(10)


def test_engine_registered_and_always_selectable():
    eng = get_engine("compiled")
    assert isinstance(eng, CompiledEngine)
    with use_engine("compiled"):
        assert get_engine().name == "compiled"


# -------------------------------------------- raw radix kernels vs sorted


@pytest.mark.parametrize("seed", range(6))
def test_radix_table_matches_batch_probe(seed):
    """The pure-Python radix kernels (the exact code numba JITs) must
    reproduce ``_BatchProbe``'s lookup contract: same counts AND the
    same expanded row sequence per probe key."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 700))
    k = int(rng.integers(1, 4))
    cols = [rng.integers(0, 12, size=n).astype(np.int64) for _ in range(k)]
    table = RadixTable(cols, n, compiled=False)
    ref = _BatchProbe(cols, n)
    m = int(rng.integers(0, 300))
    pcols = [rng.integers(0, 14, size=m).astype(np.int64) for _ in range(k)]
    lo_t, cnt_t = table.lookup(pcols, m)
    lo_r, cnt_r = ref.lookup(pcols, m)
    assert (cnt_t == cnt_r).all()
    for i in range(m):
        rows_t = table.order[lo_t[i]:lo_t[i] + cnt_t[i]]
        rows_r = ref.order[lo_r[i]:lo_r[i] + cnt_r[i]]
        assert rows_t.tolist() == rows_r.tolist()
    # membership agrees with counts
    assert (table.member_mask(pcols, m) == (cnt_r > 0)).all()


def test_radix_group_sums_match_scatter_add():
    rng = np.random.default_rng(3)
    n = 500
    cols = [rng.integers(0, 9, size=n).astype(np.int64)]
    table = RadixTable(cols, n, compiled=False)
    values = rng.integers(1, 5, size=n).astype(np.int64)
    expect = np.zeros(table.ngroups, dtype=np.int64)
    np.add.at(expect, table.group_of, values)
    assert (table.group_sums(values) == expect).all()
    fvals = rng.random(n)
    fexpect = np.zeros(table.ngroups, dtype=np.float64)
    np.add.at(fexpect, table.group_of, fvals)
    assert np.allclose(table.group_sums(fvals), fexpect)


def test_radix_table_empty_build_side():
    empty = [np.array([], dtype=np.int64)]
    table = RadixTable(empty, 0, compiled=False)
    probe = [np.array([1, 2, 3], dtype=np.int64)]
    lo, counts = table.lookup(probe, 3)
    assert counts.tolist() == [0, 0, 0] and lo.tolist() == [0, 0, 0]
    assert not table.member_mask(probe, 3).any()


# --------------------------------------------------- operator-level parity


def test_semijoin_join_match_columnar_row_order():
    crels, _head = _path_relations([300, 300, 90], cls=ColumnarRelation)
    krels, _head = _path_relations([300, 300, 90])
    for op in ("semijoin", "join"):
        c = getattr(crels[0], op)(crels[1])
        k = getattr(krels[0], op)(krels[1])
        assert isinstance(k, CompiledRelation)
        assert c.variables == k.variables
        assert list(c) == list(k)  # sequence, not set: order must match


def test_degenerate_semijoin_no_shared_variables():
    x, y, u, v = (Variable(n) for n in "xyuv")
    d = ValueDictionary()
    left = CompiledRelation([x, y], [(1, 2), (3, 4)], dictionary=d)
    right = CompiledRelation([u, v], [(5, 6)], dictionary=d)
    empty = CompiledRelation([u, v], [], dictionary=d)
    assert list(left.semijoin(right)) == list(left)
    assert len(left.semijoin(empty)) == 0


# ----------------------------------------------------- end-to-end parity


@settings(max_examples=40, deadline=None)
@given(acyclic_instance())
def test_query_parity_random_instances(instance):
    """Random acyclic CQs: answers, counts, weighted sums all agree with
    the tuple ground truth and the columnar engine."""
    cq, db = instance
    with plan_cache_disabled():
        if cq.is_boolean():
            expect_sat = cq_is_satisfiable_naive(cq, db)
            assert (count_acq(cq, db, engine="compiled") > 0) == expect_sat
            return
        expect = evaluate_cq_naive(cq, db)
        assert set(yannakakis(cq, db, engine="compiled")) == expect
        assert count_acq(cq, db, engine="compiled") \
            == count_acq(cq, db, engine="columnar")
        wf = WeightFunction(lambda val: 2.0 if val % 2 == 0 else 0.5)
        if cq.is_quantifier_free():
            # fresh dictionaries: engines default to the process-global
            # dictionary, which accumulates every value the session
            # touched, and code_table would apply wf to foreign
            # (non-int) values from unrelated tests
            ceng = ColumnarEngine(ValueDictionary())
            keng = CompiledEngine(ValueDictionary())
            crels = [ceng.materialise_atom(db, a) for a in cq.atoms]
            krels = [keng.materialise_atom(db, a) for a in cq.atoms]
            assert count_full_acyclic_join(krels) \
                == count_full_acyclic_join(crels)
            assert count_full_acyclic_join(krels, wf) \
                == pytest.approx(count_full_acyclic_join(crels, wf))


@settings(max_examples=25, deadline=None)
@given(acyclic_instance(), st.sampled_from([1, 7, 1024]))
def test_enumeration_order_parity(instance, block_size):
    """Free-connex enumeration emits the identical flat answer sequence
    as tuple and columnar backends, at block sizes 1, 7 and 1024."""
    cq, db = instance
    if cq.is_boolean() or not cq.is_free_connex():
        return
    with plan_cache_disabled():
        serial = list(FreeConnexEnumerator(cq, db, engine="columnar",
                                           block_size=block_size))
        compiled = list(FreeConnexEnumerator(cq, db, engine="compiled",
                                             block_size=block_size))
        tuples = list(FreeConnexEnumerator(cq, db, engine="tuple"))
    assert compiled == serial
    assert set(compiled) == set(tuples)


@pytest.mark.parametrize("block_size", (1, 7, 1024))
def test_block_iterator_order_parity_medium(block_size):
    crels, head = _path_relations([400, 400, 120], seed=5,
                                  cls=ColumnarRelation)
    krels, _ = _path_relations([400, 400, 120], seed=5)
    serial = list(BlockIterator(crels, head, block_size=block_size))
    compiled = list(BlockIterator(krels, head, block_size=block_size))
    assert serial == compiled


def test_full_reducer_entry_point_parity():
    rng = random.Random(17)
    db = Database.from_relations({
        "R": [(rng.randrange(30), rng.randrange(30)) for _ in range(1200)],
        "S": [(rng.randrange(30), rng.randrange(30)) for _ in range(1200)],
    })
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    cq = ConjunctiveQuery([x, y, z], [Atom("R", (x, y)), Atom("S", (y, z))])
    with plan_cache_disabled():
        _t, red_s = full_reducer(cq, db, engine="columnar")
        _t, red_k = full_reducer(cq, db, engine="compiled")
    for s, k in zip(red_s, red_k):
        assert list(s) == list(k)


def test_forced_numpy_tier_stays_correct(monkeypatch):
    """REPRO_COMPILED_FALLBACK=numpy is the parity escape hatch: the
    whole pipeline answers identically on the sort-based kernels."""
    monkeypatch.setenv(FALLBACK_ENV_VAR, "numpy")
    rng = random.Random(23)
    db = Database.from_relations({
        "R": [(rng.randrange(20), rng.randrange(20)) for _ in range(600)],
        "S": [(rng.randrange(20), rng.randrange(20)) for _ in range(600)],
    })
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    cq = ConjunctiveQuery([x, y], [Atom("R", (x, y)), Atom("S", (y, z))])
    with plan_cache_disabled():
        assert count_acq(cq, db, engine="compiled") \
            == count_acq(cq, db, engine="columnar")
        assert list(FreeConnexEnumerator(cq, db, engine="compiled")) \
            == list(FreeConnexEnumerator(cq, db, engine="columnar"))


# ------------------------------------------------------ per-symbol cache


def _self_join_cq():
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return ConjunctiveQuery(
        [x, y, z], [Atom("E", (x, y)), Atom("E", (y, z))])


def test_symbol_cache_shares_probes_across_self_join_atoms():
    rng = random.Random(5)
    db = Database.from_relations({
        "E": [(rng.randrange(25), rng.randrange(25)) for _ in range(800)],
    })
    cq = _self_join_cq()
    eng = CompiledEngine()
    with obs.capture() as tracer:
        r1 = eng.materialise_atom(db, cq.atoms[0])
        r2 = eng.materialise_atom(db, cq.atoms[1])
    # one miss (first atom installs the cache), one hit (second shares)
    assert tracer.counters.get("compiled.symbol_cache_misses") == 1
    assert tracer.counters.get("compiled.symbol_cache_hits") == 1
    assert r1._probecache is r2._probecache
    # a probe built through one atom is visible to the other: R(x,y)
    # probing column 0 and R(y,z) probing column 0 are the same entry
    p1 = r1.batch_probe((r1.variables[0],))
    p2 = r2.batch_probe((r2.variables[0],))
    assert p1 is p2


def test_symbol_cache_answers_self_join_correctly():
    rng = random.Random(6)
    db = Database.from_relations({
        "E": [(rng.randrange(12), rng.randrange(12)) for _ in range(300)],
    })
    cq = _self_join_cq()
    with plan_cache_disabled():
        assert count_acq(cq, db, engine="compiled") \
            == count_acq(cq, db, engine="columnar")
        assert list(FreeConnexEnumerator(cq, db, engine="compiled")) \
            == list(FreeConnexEnumerator(cq, db, engine="columnar"))


def test_symbol_cache_invalidated_by_version_bump():
    db = Database.from_relations({"E": [(1, 2), (2, 3)]})
    cq = _self_join_cq()
    eng = CompiledEngine()
    r1 = eng.materialise_atom(db, cq.atoms[0])
    cache_before = r1._probecache
    r1.batch_probe((r1.variables[0],))
    assert len(cache_before) > 0
    db.relation("E").add((3, 4))  # version bump
    with obs.capture() as tracer:
        r2 = eng.materialise_atom(db, cq.atoms[0])
    assert tracer.counters.get("compiled.symbol_cache_misses") == 1
    assert r2._probecache is not cache_before
    assert len(r2) == 3
    stats = eng.symbol_cache_stats()
    assert stats["entries"] >= 1


def test_symbol_cache_variants_for_masked_atoms():
    """Atoms with constants or repeated variables materialise masked
    columns, so they must not share the *base* position-keyed cache —
    but atoms with the *same* constant/dup-var signature share one
    variant (masked columns and probe cache), regardless of the
    variable names they use."""
    from repro.logic.terms import Constant

    db = Database.from_relations({"E": [(1, 1), (1, 2), (2, 2)]})
    x, u = Variable("x"), Variable("u")
    eng = CompiledEngine()
    dup = eng.materialise_atom(db, Atom("E", (x, x)))
    plain = eng.materialise_atom(db, Atom("E", (x, Variable("y"))))
    const = eng.materialise_atom(db, Atom("E", (x, Constant(2))))
    assert dup._probecache is not plain._probecache
    assert const._probecache is not plain._probecache
    assert set(dup) == {(1,), (2,)}       # rows with t[0] == t[1]
    assert set(const) == {(1,), (2,)}     # rows with t[1] == 2
    # same signature, different variable names -> one shared variant
    dup2 = eng.materialise_atom(db, Atom("E", (u, u)))
    const2 = eng.materialise_atom(db, Atom("E", (u, Constant(2))))
    assert dup2._probecache is dup._probecache
    assert const2._probecache is const._probecache
    assert set(dup2) == set(dup)
    # a different constant is a different variant
    other = eng.materialise_atom(db, Atom("E", (x, Constant(1))))
    assert other._probecache is not const._probecache
    assert set(other) == {(1,)}           # rows with t[1] == 1


def test_plan_key_distinguishes_kernel_tiers(monkeypatch):
    eng = CompiledEngine()
    monkeypatch.setenv(FALLBACK_ENV_VAR, "numpy")
    numpy_key = eng.plan_key()
    assert "numpy" in numpy_key
    monkeypatch.setenv(RADIX_BITS_ENV_VAR, "8")
    assert eng.plan_key() != numpy_key  # fan-out is part of the key
