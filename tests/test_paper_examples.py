"""End-to-end reproduction of the paper's worked examples, one test per
example — the 'did we build the same objects the paper talks about'
layer, complementing the per-module unit tests.

Covered: Examples 3.3 (quantifier elimination setting / Algorithm 1),
4.1, 4.5, 4.7, 4.18, 4.19, 4.24/4.27 (Figures 2-3), 5.1, 5.2; Equations
(1) and (2); Figure 1; the Section 3.3.1 two-cluster example; the
Section 4.5 clause example.
"""

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.parser import parse_cq, parse_query
from repro.logic.terms import Variable


def test_example_41_acyclicity_verdicts():
    assert parse_cq("Q(x, y, z) :- E(x, y), F(y, z)").is_acyclic()
    assert not parse_cq("Q(x, y, z) :- E(x, y), F(y, z), G(z, x)").is_acyclic()
    assert parse_cq(
        "Q(x, y, z) :- E(x, y), F(y, z), G(z, x), T(x, y, z)").is_acyclic()


def test_example_45_free_connex_verdicts():
    phi = parse_cq("Q(x, y) :- E(x, w), F(y, z), B(z)")
    assert phi.is_free_connex()
    pi = parse_cq("Pi(x, y) :- A(x, z), B(z, y)")
    assert not pi.is_free_connex()


def test_example_33_algorithm1_exception_skipping():
    """Example 3.3 / Algorithm 1: enumerate pairs (a, b) with
    psi1(a), psi2(b) and b != f_i(a_i) for k exceptions — rendered as a
    two-component pattern with disequalities, which is exactly the
    bucket-skipping loop of the bounded-degree engine."""
    from repro.enumeration.bounded_degree import BoundedDegreeEnumerator, Pattern
    from repro.logic.atoms import Atom, Comparison

    a, b = Variable("a"), Variable("b")
    db = Database.from_relations({
        "Psi1": [(i,) for i in range(5)],
        "Psi2": [(j,) for j in range(5)],
    })
    pat = Pattern(head=(a, b),
                  atoms=(Atom("Psi1", [a]), Atom("Psi2", [b])),
                  disequalities=(Comparison(a, "!=", b),))
    got = set(BoundedDegreeEnumerator(pat, db))
    assert got == {(i, j) for i in range(5) for j in range(5) if i != j}


def test_figure1_join_tree_and_added_atom(figure1_query):
    from repro.figures import figure1_added_edge
    from repro.hypergraph.freeconnex import free_connex_join_tree

    assert figure1_query.is_free_connex()
    tree, virtual = free_connex_join_tree(figure1_query)
    assert tree.root == virtual
    # the S'(x2, x3) sub-edge of the paper appears in the derived join
    from repro.enumeration.free_connex import derive_free_join

    db = generators.random_database(
        {n: a for n, a in figure1_query.relation_arities().items()},
        5, 15, seed=0)
    derived = derive_free_join(figure1_query, db)
    edges = {frozenset(v.name for v in r.variables) for r in derived}
    assert frozenset({"x2", "x3"}) in edges
    assert figure1_added_edge() == {Variable("x2"), Variable("x3")}


def test_figures_2_and_3(figure1_query):
    from repro.figures import figure2_query, figure3_expected
    from repro.hypergraph.components import s_components

    q = figure2_query()
    expected = figure3_expected()
    comps = s_components(q.hypergraph(), q.free_variables())
    assert len(comps) == expected["n_components"]
    assert q.quantified_star_size() == expected["star_size"]


def test_equation_1_union():
    """Equation (1): phi1 not free-connex, phi2 free-connex, yet the union
    enumerates with constant (amortised) delay via the provided atom
    P1(x, z, y)."""
    from repro.enumeration.ucq_union import UCQEnumerator
    from repro.eval.naive import evaluate_cq_naive
    from repro.logic.ucq import UnionOfConjunctiveQueries

    phi1 = parse_cq("Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w)")
    phi2 = parse_cq("Q(x, z, y) :- R1(x, z), R2(z, y)")
    assert not phi1.is_free_connex() and phi2.is_free_connex()
    ucq = UnionOfConjunctiveQueries([phi1, phi2])
    db = generators.random_database({"R1": 2, "R2": 2, "R3": 2}, 6, 16, seed=11)
    got = set(UCQEnumerator(ucq, db))
    assert got == evaluate_cq_naive(phi1, db) | evaluate_cq_naive(phi2, db)


def test_equation_2_matchings():
    """Equation (2)'s moral: phi is poly-countable, psi (one quantifier!)
    has star size n and counting it relates to #PerfectMatching."""
    from repro.counting.matchings import (
        count_perfect_matchings_bruteforce,
        count_perfect_matchings_via_acq,
        product_query,
        star_query,
    )

    db, a, b = generators.random_bipartite_graph(4, 0.6, seed=5)
    phi = product_query(a)
    psi = star_query(a)
    assert phi.quantified_star_size() == 0
    assert psi.quantified_star_size() == len(a)
    assert count_perfect_matchings_via_acq(db, a, b) == \
        count_perfect_matchings_bruteforce(db, a, b)


def test_example_47_reduction():
    from repro.eval.yannakakis import acyclic_answers
    from repro.reductions.bmm import (
        example_47_database,
        example_47_query,
        multiply_boolean_naive,
        product_from_example_47_answers,
    )

    a = generators.boolean_matrix(5, 0.4, seed=0)
    b = generators.boolean_matrix(5, 0.4, seed=1)
    q = example_47_query()
    db = example_47_database(a, b)
    assert product_from_example_47_answers(acyclic_answers(q, db), 5) == \
        multiply_boolean_naive(a, b)


def test_examples_418_419_covers():
    from repro.enumeration.covers import GAP, Table, minimal_covers, more_general

    assert more_general((2, 1, GAP), (2, 1, 1))
    t = Table.from_rows({
        "a": (1, 2, 4, 5), "b": (1, 5, 1, 5), "c": (3, 2, 4, 5),
        "d": (3, 5, 3, 5), "e": (5, 2, 4, 5), "f": (2, 2, 4, 5),
    })
    assert set(minimal_covers(t)) == {
        (1, 2, 3, GAP), (3, 2, 1, GAP), (GAP, 5, 4, GAP), (GAP, GAP, GAP, 5),
    }


def test_example_51_dnf_encodings():
    from repro.counting.approx import (
        count_so_models_bruteforce,
        encode_3dnf,
        exact_dnf_count,
    )
    from repro.logic.prefix import classify_prefix

    terms = generators.random_kdnf(4, 3, k=3, seed=2)
    enc = encode_3dnf(terms, 4)
    assert classify_prefix(enc.formula).name() == "Sigma_1^rel"
    assert count_so_models_bruteforce(enc) == exact_dnf_count(terms, 4)


def test_example_52_clique_formulas():
    """Psi_0 (ordered 3-clique) is Sigma_0; Psi_1 (clique as Pi_1^rel)."""
    from repro.eval.naive import evaluate_fo, fo_answers
    from repro.logic.fo import And, CompareAtom, ForAll, Not, Or, RelAtom, SOAtom, SecondOrderVariable
    from repro.logic.prefix import classify_prefix

    v1, v2, v3 = Variable("v1"), Variable("v2"), Variable("v3")
    psi0 = And(CompareAtom(v1, "<", v2), CompareAtom(v2, "<", v3),
               RelAtom("E", [v1, v2]), RelAtom("E", [v2, v3]),
               RelAtom("E", [v3, v1]))
    assert classify_prefix(psi0).k == 0

    db = generators.graph_database([(1, 2), (2, 3), (3, 1), (3, 4)])
    triangles = fo_answers(psi0, db)
    assert (1, 2, 3) in triangles

    T = SecondOrderVariable("T", 1)
    # the paper's Psi_1 literally requires E(v, v) for v in T (no v1 != v2
    # guard); we add the guard so that loop-free graphs have cliques
    body = Or(Not(And(SOAtom(T, [v1]), SOAtom(T, [v2]))),
              RelAtom("E", [v1, v2]), CompareAtom(v1, "=", v2))
    psi1 = ForAll([v1, v2], body)
    assert classify_prefix(psi1).name() == "Pi_1^rel"

    def is_clique(vertices):
        interp = {T: {(v,) for v in vertices}}
        return evaluate_fo(psi1, db, {}, interp)

    assert not is_clique({1, 4})
    assert is_clique({2, 3})
    assert is_clique({1, 2, 3})


def test_section_331_two_cluster():
    from repro.mso.enumeration import two_cluster_example

    db, answers = two_cluster_example(5)
    assert [sorted(a) for a in answers] == [[1, 2, 3, 4, 5], [6, 7, 8, 9, 10]]


def test_section_45_clause_example():
    """The opening clause of Section 4.5: x1 \\/ x2 \\/ x3 \\/ x4 \\/ -x5
    \\/ -x6 as not R(x1..x6) with R = {(0,0,0,0,1,1)}."""
    from repro.csp.ncq_solver import solve_negative_csp

    db = Database.from_relations({"R": [(0, 0, 0, 0, 1, 1)]}, domain=[0, 1])
    q = parse_query("Q() :- not R(x1, x2, x3, x4, x5, x6)")
    sols = list(solve_negative_csp(q, db))
    assert len(sols) == 2 ** 6 - 1


def test_triangle_self_loop_subtlety():
    """Example 5.2's Psi_0 on an ordered graph only reports ordered
    triangles; the count matches the triangle counter."""
    from repro.reductions.hyperclique import count_triangles
    from repro.mso.treedecomp import adjacency_from_database

    db = generators.graph_database([(1, 2), (2, 3), (3, 1), (1, 4), (4, 2)])
    adj = adjacency_from_database(db)
    from repro.eval.naive import fo_answers
    from repro.logic.fo import And, CompareAtom, RelAtom

    v1, v2, v3 = Variable("v1"), Variable("v2"), Variable("v3")
    psi0 = And(CompareAtom(v1, "<", v2), CompareAtom(v2, "<", v3),
               RelAtom("E", [v1, v2]), RelAtom("E", [v2, v3]),
               RelAtom("E", [v3, v1]))
    assert len(fo_answers(psi0, db)) == count_triangles(adj)
