"""Tests for the delay-guarantee watchdog (repro.obs.watchdog): fires
on a constant-delay plan forced onto a superlinear path, stays silent
on the compliant path and on linear-delay plans, attributes delay
observations through nested generators, and retains tail traces only
for breaching requests."""

import pytest

from repro import obs
from repro.core.plancache import clear_plan_cache
from repro.core.planner import enumerate_answers
from repro.data.generators import random_database
from repro.logic.parser import parse_cq, parse_query
from repro.obs import watchdog as wdmod
from repro.obs.expose import event_log
from repro.obs.registry import registry, set_enabled
from repro.obs.watchdog import GuaranteeWatchdog, plan_label

FREE_CONNEX = "Q(x) :- R(x, z), S(z, y)"          # constant-delay plan
ACYCLIC_ONLY = "Q(x, y) :- R(x, z), S(z, y)"      # linear-delay plan


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_plan_cache()
    registry().reset()
    event_log().clear()
    prev = set_enabled(True)
    wdmod.uninstall()
    yield
    wdmod.uninstall()
    wdmod.watchdog().reset()
    set_enabled(prev)
    registry().reset()
    event_log().clear()
    clear_plan_cache()
    obs.disable()


def _small_wd(**kw):
    knobs = dict(factor=4.0, baseline_samples=64, window_samples=64,
                 min_budget_ns=10)
    knobs.update(kw)
    return GuaranteeWatchdog(**knobs)


def _feed(wd, label, gaps, expectation):
    for gap in gaps:
        wd.observe(label, gap, 1, expectation)


# ------------------------------------------------------------ expectations


def test_classifier_derived_expectations():
    wd = _small_wd()
    assert wd.expectation_for(parse_cq(FREE_CONNEX)) == "constant-delay"
    assert wd.expectation_for(parse_cq(ACYCLIC_ONLY)) == "linear"


# ----------------------------------------------------------------- firing


def test_fires_on_superlinear_drift_of_constant_delay_plan():
    wd = _small_wd()
    # compliant baseline: ~100ns per answer
    _feed(wd, "plan", [100] * 64, "constant-delay")
    assert wd.stats()["plan"]["budget_ns"] is not None
    # the enumerator leaves its guarantee: delay grows with every answer
    _feed(wd, "plan", [100 * i * i for i in range(1, 65)], "constant-delay")
    stats = wd.stats()["plan"]
    assert stats["violations"] >= 1
    events = event_log().recent(name="guarantee.violation")
    assert events and events[-1]["plan"] == "plan"
    assert events[-1]["expected"] == "constant-delay"
    assert events[-1]["p99_ns"] > events[-1]["budget_ns"]
    assert registry().counter("watchdog.violations") >= 1


def test_silent_on_compliant_constant_delay_plan():
    wd = _small_wd()
    # steady delay with honest jitter stays inside factor x baseline p99
    _feed(wd, "plan", [100 + (i % 7) for i in range(64 * 5)],
          "constant-delay")
    wd.flush()
    assert wd.stats()["plan"]["violations"] == 0
    assert not event_log().recent(name="guarantee.violation")


def test_silent_on_linear_plan_even_when_delay_grows():
    wd = _small_wd()
    _feed(wd, "lin", [100] * 64, "linear")
    _feed(wd, "lin", [100 * i * i for i in range(1, 65)], "linear")
    wd.flush()
    assert wd.stats()["lin"]["violations"] == 0
    assert not event_log().recent(name="guarantee.violation")


def test_per_plan_sketch_lands_in_registry():
    wd = _small_wd()
    _feed(wd, "p1", [100] * 10, "constant-delay")
    sk = registry().sketch("delay.plan.p1")
    assert sk is not None and sk.count == 10


def test_plan_overflow_falls_back_to_other_label():
    wd = _small_wd(max_plans=1)
    _feed(wd, "first", [100] * 4, None)
    _feed(wd, "second", [100] * 4, None)
    assert set(wd.stats()) == {"first", "_other"}
    assert registry().sketch("delay.plan._other").count == 4


# ------------------------------------------------------------ attribution


def test_watched_attributes_only_inner_observations():
    wd = _small_wd().install()
    try:
        def stream(n):
            for i in range(n):
                yield i

        for _ in wd.watched(stream(5), "mine", "constant-delay"):
            # delay recorded while "mine" is suspended (consumer side)
            # must not be attributed to it
            registry().record_delay(1_000, 1)
        assert "mine" not in wd.stats()

        def recording(n):
            for i in range(n):
                registry().record_delay(2_000, 1)
                yield i

        for _ in wd.watched(recording(5), "mine", "constant-delay"):
            pass
        assert wd.stats()["mine"]["answers"] == 5
    finally:
        wd.uninstall()


def test_watch_stream_records_per_answer_gaps():
    wd = _small_wd()
    list(wd.watch_stream(iter(range(50)), "stream", "constant-delay"))
    assert wd.stats()["stream"]["answers"] == 50


# ------------------------------------------------------------ integration


def test_planner_integration_compliant_plan_stays_silent():
    wd = wdmod.install(factor=8.0, baseline_samples=64, window_samples=64)
    q = parse_query(FREE_CONNEX)
    db = random_database({"R": 2, "S": 2}, domain_size=50,
                         tuples_per_relation=400, seed=2)
    answers = sum(1 for _ in enumerate_answers(q, db))
    assert answers > 0
    label = plan_label(q)
    assert label in wd.stats()
    assert wd.stats()[label]["expectation"] == "constant-delay"
    assert registry().sketch("delay.plan." + label) is not None
    assert not event_log().recent(name="guarantee.violation")


def test_planner_integration_forced_superlinear_path_fires():
    """The acceptance scenario: a free-connex (constant-delay) plan
    whose answer stream degrades superlinearly must trip the watchdog."""
    wd = wdmod.install(factor=4.0, baseline_samples=64, window_samples=64,
                       min_budget_ns=10)
    q = parse_query(FREE_CONNEX)
    label = plan_label(q)
    expectation = wd.expectation_for(q)
    assert expectation == "constant-delay"

    def degrading():
        # a stand-in for the plan's answer stream after it lost its
        # guarantee: per-answer work grows quadratically
        for i in range(64 * 3):
            registry().record_delay(100 * (1 + i * i), 1)
            yield (i,)

    for _ in wd.watched(degrading(), label, expectation):
        pass
    assert wd.stats()[label]["violations"] >= 1
    events = event_log().recent(name="guarantee.violation")
    assert events and events[-1]["plan"] == label


def test_maybe_watch_passthrough_when_not_installed():
    inner = iter([1, 2, 3])
    assert wdmod.maybe_watch(parse_query(FREE_CONNEX), inner) is inner


# ---------------------------------------------------------------- tail


def test_tail_capture_retains_only_breaching_requests():
    wd = _small_wd()
    wd.tail_tracing = True
    with wd.tail_capture("ok"):
        _feed(wd, "ok", [100] * (64 * 2), "constant-delay")
        wd.flush()
    assert len(wd.tail) == 0
    assert registry().counter("watchdog.tail_discarded") == 1
    with wd.tail_capture("bad"):
        _feed(wd, "bad", [100] * 64, "constant-delay")
        _feed(wd, "bad", [10**6] * 64, "constant-delay")
    assert len(wd.tail) == 1
    assert wd.tail[0]["label"] == "bad"
    assert registry().counter("watchdog.tail_retained") == 1


def test_tail_capture_noop_when_disabled():
    wd = _small_wd()
    with wd.tail_capture("x") as tr:
        assert tr is None
