"""GF(p) weighted counting and cross-module integration tests: the
classifier's verdicts must be consistent with the engines' behaviour on
a generated query corpus."""

import random

import pytest

from repro.core.classify import classify
from repro.core.planner import answer, count, enumerate_answers
from repro.counting.fields import GF, count_mod_p, gf
from repro.data import generators
from repro.errors import NotFreeConnexError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq


# ------------------------------------------------------------------- GF(p)


def test_gf_arithmetic():
    seven = gf(7)
    assert seven(3) + seven(5) == seven(1)
    assert seven(3) * seven(5) == seven(1)
    assert seven(3) - seven(5) == seven(5)
    assert -seven(3) == seven(4)
    assert seven(3) / seven(5) == seven(2)  # 5*2 = 10 = 3
    assert seven(3) ** 6 == seven(1)        # Fermat
    assert int(seven(10)) == 3
    assert seven(3) == 3 and seven(3) == 10


def test_gf_rejects_composite_and_mixed():
    with pytest.raises(ValueError):
        GF(1, 6)
    with pytest.raises(ValueError):
        GF(1, 7) + GF(1, 11)
    with pytest.raises(ZeroDivisionError):
        GF(3, 7) / GF(0, 7)


def test_gf_int_interop():
    assert 1 + GF(3, 7) == GF(4, 7)
    assert 2 * GF(4, 7) == GF(1, 7)
    assert (5 - GF(3, 7)) == GF(2, 7)


def test_count_mod_p_matches_plain_count():
    for seed in range(4):
        db = generators.random_database({"R": 2, "S": 2}, 6, 20, seed=seed)
        for text in ("Q(x) :- R(x, z), S(z, y)",
                     "Q(x, y) :- R(x, z), S(z, y)",
                     "Q() :- R(x, y)"):
            q = parse_cq(text)
            plain = len(evaluate_cq_naive(q, db))
            for p in (2, 7, 101):
                assert count_mod_p(q, db, p) == GF(plain, p), (text, seed, p)


# ------------------------------------------------ classifier <-> engines


CORPUS = [
    "Q(x) :- R(x, z), S(z, y)",
    "Q(x, y) :- R(x, z), S(z, y)",
    "Q(x, y) :- R(x, w), S(y, u), B(u)",
    "Q(x, y, z) :- R(x, y), S(y, z)",
    "Q() :- R(x, y), S(y, z)",
    "Q(x) :- R(x, y), S(y, z), T(z, x)",
    "Q(x) :- R(x, z), z != x",
    "Q(a) :- T3(a, b, c), R(b, x), S(c, y)",
    "Q(x, y) :- R(x, y), x < y",
]


@pytest.mark.parametrize("text", CORPUS)
def test_classifier_consistent_with_engines(text):
    q = parse_cq(text)
    report = classify(q)
    db = generators.random_database(
        {"R": 2, "S": 2, "T": 2, "B": 1, "T3": 3}, 6, 16, seed=42)
    truth = evaluate_cq_naive(q, db)

    # the planner is always correct, whatever the verdicts
    assert answer(q, db) == truth
    assert count(q, db) == len(truth)

    # a tractable enumerate verdict via Theorem 4.6 means the free-connex
    # engine accepts; a 'hard' verdict means it refuses
    if not q.has_comparisons() and q.is_acyclic():
        from repro.enumeration.free_connex import FreeConnexEnumerator

        verdict = report.verdict("enumerate")
        if report.fact("free_connex"):
            assert set(FreeConnexEnumerator(q, db)) == truth
            assert verdict.tractable is True
        else:
            with pytest.raises(NotFreeConnexError):
                list(FreeConnexEnumerator(q, db))
            assert verdict.tractable is False


@pytest.mark.parametrize("text", CORPUS)
def test_enumeration_never_duplicates(text):
    q = parse_cq(text)
    db = generators.random_database(
        {"R": 2, "S": 2, "T": 2, "B": 1, "T3": 3}, 5, 14, seed=7)
    got = list(enumerate_answers(q, db))
    assert len(got) == len(set(got))


def test_report_engine_paths_resolve():
    """Every engine named in a verdict is an importable attribute."""
    import importlib

    for text in CORPUS:
        report = classify(parse_cq(text))
        for verdict in report.verdicts:
            module_name, _, attr = verdict.engine.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, attr), verdict.engine
