"""Unit tests for ConjunctiveQuery, including the Example 4.1 / 4.5
acyclicity and free-connexity verdicts."""

import pytest

from repro.errors import MalformedQueryError
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_cq
from repro.logic.terms import Variable


def test_basic_shape():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    assert q.arity == 2
    assert not q.is_boolean()
    assert not q.is_quantifier_free()
    assert {v.name for v in q.existential_variables()} == {"z"}
    assert q.relation_names() == ["R", "S"]
    assert q.is_self_join_free()


def test_head_variable_must_occur():
    with pytest.raises(MalformedQueryError):
        ConjunctiveQuery(["x"], [Atom("R", ["y"])])


def test_duplicate_head_variable_rejected():
    with pytest.raises(MalformedQueryError):
        ConjunctiveQuery(["x", "x"], [Atom("R", ["x"])])


def test_constant_head_rejected():
    with pytest.raises(MalformedQueryError):
        ConjunctiveQuery([3], [Atom("R", ["x"])])


def test_empty_body_rejected():
    with pytest.raises(MalformedQueryError):
        ConjunctiveQuery(["x"], [])


def test_inconsistent_arity_rejected():
    with pytest.raises(MalformedQueryError):
        ConjunctiveQuery([], [Atom("R", ["x"]), Atom("R", ["x", "y"])])


def test_unsafe_comparison_rejected():
    with pytest.raises(MalformedQueryError):
        ConjunctiveQuery(["x"], [Atom("R", ["x"])],
                         [Comparison("x", "!=", "w")])


def test_example_41_path_is_acyclic():
    phi1 = parse_cq("Q(x, y, z) :- E(x, y), F(y, z)")
    assert phi1.is_acyclic()


def test_example_41_triangle_is_cyclic():
    phi2 = parse_cq("Q(x, y, z) :- E1(x, y), E2(y, z), E3(z, x)")
    assert not phi2.is_acyclic()


def test_example_41_covered_triangle_is_acyclic():
    phi3 = parse_cq("Q(x, y, z) :- E1(x, y), E2(y, z), E3(z, x), T(x, y, z)")
    assert phi3.is_acyclic()


def test_example_45_free_connex():
    q = parse_cq("Q(x, y) :- E(x, w), F(y, z), B(z)")
    assert q.is_acyclic() and q.is_free_connex()


def test_example_45_matrix_multiplication_not_free_connex():
    pi = parse_cq("Pi(x, y) :- A(x, z), B(z, y)")
    assert pi.is_acyclic()
    assert not pi.is_free_connex()
    assert pi.quantified_star_size() == 2


def test_boolean_and_unary_queries_are_free_connex():
    assert parse_cq("Q() :- R(x, y)").is_free_connex()
    assert parse_cq("Q(x) :- R(x, y)").is_free_connex()


def test_substitute_removes_head_variable():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    sub = q.substitute({Variable("x"): 7})
    assert sub.arity == 1
    assert sub.head == (Variable("y"),)
    assert any(a.constants() for a in sub.atoms)


def test_with_head_and_extra_atom():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    q2 = q.with_head(["z"])
    assert q2.head == (Variable("z"),)
    q3 = q.with_extra_atom(Atom("P", ["x", "y"]))
    assert len(q3.atoms) == 3
    # adding P(x, y) to the path closes a cycle (Definition 4.4's test!)
    assert not q3.is_acyclic()
    prod = parse_cq("Q(x, y) :- R(x, z), S(y, w)")
    covered = prod.with_extra_atom(Atom("P", ["x", "y"]))
    assert covered.is_acyclic() and covered.is_free_connex()


def test_rename_apart():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y)")
    r = q.rename_apart("_1")
    assert {v.name for v in r.variables()} == {"x_1", "y_1", "z_1"}
    assert r.relation_names() == q.relation_names()


def test_size_measure_positive():
    q = parse_cq("Q(x) :- R(x, z), x != z")
    assert q.size() > 0
    assert q.has_comparisons()
    assert q.without_comparisons().comparisons == ()


def test_self_join_detection():
    assert not parse_cq("Q(x) :- R(x, z), R(z, x)").is_self_join_free()


def test_equality_and_hash():
    q1 = parse_cq("Q(x) :- R(x, y)")
    q2 = parse_cq("Q(x) :- R(x, y)")
    assert q1 == q2
    assert hash(q1) == hash(q2)


def test_variables_order_of_first_occurrence():
    q = parse_cq("Q(y) :- R(z, y), S(y, x)")
    assert [v.name for v in q.variables()] == ["z", "y", "x"]
