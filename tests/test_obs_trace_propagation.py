"""Trace-context propagation across the parallel wave transport.

ISSUE 9's tentpole contract: a request's :class:`TraceContext` rides
the wave payloads into the worker processes, worker tracers mint spans
under the propagated identity, and the driver grafts the shipped-back
subtrees under the dispatching span.  The observable outcome — asserted
here over worker counts and data seeds — is that every worker span
carries the *root* request's ``trace_id`` and the whole fan-out
reconstructs one connected span tree (no floating worker roots), which
is exactly what makes a Chrome export of a parallel run readable as a
single request.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.planner import enumerate_answers
from repro.data import generators
from repro.engine import parallel as par_mod
from repro.engine.parallel import ParallelEngine
from repro.logic.parser import parse_cq
from repro.obs.export import chrome_trace
from repro.obs.tracelint import lint_chrome_trace

QUERY = "Q(x) :- R(x, z), S(z, y)"


def _traced_parallel_run(workers: int, seed: int):
    """One parallel evaluation under a capturing tracer; returns the
    tracer and the answers.  STEP_SERIAL_CUTOFF drops to 0 so even the
    small test database actually dispatches waves (the whole point is
    to cross the process boundary)."""
    q = parse_cq(QUERY)
    db = generators.random_database({"R": 2, "S": 2}, 50, 400, seed=seed)
    eng = ParallelEngine(workers=workers, threshold=0)
    old_cutoff = par_mod.STEP_SERIAL_CUTOFF
    par_mod.STEP_SERIAL_CUTOFF = 0
    try:
        with obs.capture() as tracer:
            answers = sorted(enumerate_answers(q, db, engine=eng))
    finally:
        par_mod.STEP_SERIAL_CUTOFF = old_cutoff
    return tracer, answers


def _worker_spans(tracer):
    """Spans rebuilt from worker processes (their pid is stamped on
    revival; driver-side spans carry pid None)."""
    me = os.getpid()
    return [s for s in tracer.spans if s.pid is not None and s.pid != me]


@given(workers=st.sampled_from([2, 4]), seed=st.integers(0, 6))
@settings(max_examples=4, deadline=None)
def test_worker_spans_carry_root_trace_id_and_form_one_tree(workers, seed):
    tracer, answers = _traced_parallel_run(workers, seed)
    root_trace = tracer.context.trace_id

    workers_spans = _worker_spans(tracer)
    assert workers_spans, "no wave was dispatched — the test is vacuous"
    for span in workers_spans:
        assert span.trace_id == root_trace, (
            f"worker span {span.name} carries {span.trace_id}, "
            f"not the request's {root_trace}")

    # connectivity: exactly one root among the id-stamped spans — every
    # worker subtree grafted under the driver span that dispatched it
    ids = {s.span_id for s in tracer.spans if s.span_id is not None}
    roots = [s for s in tracer.spans
             if s.span_id is not None
             and (s.parent_id is None or s.parent_id not in ids)]
    assert len(roots) == 1, (
        f"expected one connected span tree, found {len(roots)} roots: "
        f"{[s.name for s in roots]}")
    assert roots[0] is tracer.roots[0]

    # and the run still computes the right thing
    q = parse_cq(QUERY)
    db = generators.random_database({"R": 2, "S": 2}, 50, 400, seed=seed)
    assert answers == sorted(enumerate_answers(q, db, engine="tuple"))


def test_parallel_chrome_export_passes_the_lint():
    tracer, _ = _traced_parallel_run(2, seed=11)
    doc = chrome_trace(tracer)
    assert doc["otherData"]["trace_id"] == tracer.context.trace_id
    assert lint_chrome_trace(doc) == []
    # worker events reached the export with the request identity
    args_ids = {(e.get("args") or {}).get("trace_id")
                for e in doc["traceEvents"]}
    assert tracer.context.trace_id in args_ids


def test_unsampled_context_ships_no_ids(monkeypatch):
    """REPRO_TRACE_SAMPLE=0: the request rolls unsampled, so neither
    driver nor worker spans get identity stamped (all-or-nothing head
    sampling), but evaluation and span *timing* still work."""
    monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0")
    tracer, answers = _traced_parallel_run(2, seed=3)
    assert answers  # the run itself is unaffected
    assert tracer.context is not None and not tracer.context.sampled
    assert all(s.trace_id is None and s.span_id is None
               for s in tracer.spans)


@pytest.mark.parametrize("workers", [2])
def test_explicit_context_wins_over_fresh_mint(workers):
    """A caller-supplied context (explicit-propagation API) is the one
    that reaches the workers, not a fresh mint."""
    from repro.obs.trace import TraceContext, Tracer

    ctx = TraceContext("feedfacefeedface", sampled=True)
    q = parse_cq(QUERY)
    db = generators.random_database({"R": 2, "S": 2}, 50, 400, seed=5)
    eng = ParallelEngine(workers=workers, threshold=0)
    old_cutoff = par_mod.STEP_SERIAL_CUTOFF
    par_mod.STEP_SERIAL_CUTOFF = 0
    try:
        with obs.capture(Tracer(context=ctx)) as tracer:
            list(enumerate_answers(q, db, engine=eng))
    finally:
        par_mod.STEP_SERIAL_CUTOFF = old_cutoff
    spans = _worker_spans(tracer)
    assert spans and all(s.trace_id == "feedfacefeedface" for s in spans)
