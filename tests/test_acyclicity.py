"""Unit tests for beta-acyclicity via nest points (Definition 4.29)."""

from repro.hypergraph.acyclicity import (
    all_subhypergraphs_alpha_acyclic,
    is_beta_acyclic,
    nest_point_elimination_order,
)
from repro.hypergraph.hypergraph import Hypergraph


def H(*edges):
    vertices = {v for e in edges for v in e}
    return Hypergraph(vertices, [frozenset(e) for e in edges])


def test_chain_is_beta_acyclic():
    h = H({"a", "b"}, {"b", "c"}, {"c", "d"})
    assert is_beta_acyclic(h)
    order = nest_point_elimination_order(h)
    assert order is not None
    assert set(order) == h.vertices


def test_nested_edges_are_beta_acyclic():
    h = H({"a"}, {"a", "b"}, {"a", "b", "c"})
    assert is_beta_acyclic(h)


def test_covered_triangle_is_alpha_not_beta():
    h = H({"x", "y"}, {"y", "z"}, {"z", "x"}, {"x", "y", "z"})
    from repro.hypergraph.jointree import is_alpha_acyclic

    assert is_alpha_acyclic(h)
    assert not is_beta_acyclic(h)
    assert nest_point_elimination_order(h) is None


def test_triangle_is_not_beta_acyclic():
    assert not is_beta_acyclic(H({"x", "y"}, {"y", "z"}, {"z", "x"}))


def test_isolated_vertices_eliminated_first():
    h = Hypergraph({"a", "b", "lonely"}, [frozenset({"a", "b"})])
    order = nest_point_elimination_order(h)
    assert order is not None and order[0] == "lonely"


def test_duplicate_edges_do_not_block():
    h = H({"a", "b"}, {"a", "b"}, {"b", "c"})
    assert is_beta_acyclic(h)


def test_brute_force_agreement_small():
    """Nest-point characterisation == 'every subhypergraph alpha-acyclic'
    on an exhaustive family of small hypergraphs."""
    import itertools

    vertices = ["a", "b", "c", "d"]
    candidate_edges = [frozenset(e) for r in (1, 2, 3)
                       for e in itertools.combinations(vertices, r)]
    import random

    rng = random.Random(7)
    for _ in range(60):
        edges = rng.sample(candidate_edges, rng.randint(1, 5))
        verts = {v for e in edges for v in e}
        h = Hypergraph(verts, edges)
        assert is_beta_acyclic(h) == all_subhypergraphs_alpha_acyclic(h), edges


def test_beta_acyclic_query_examples():
    from repro.logic.parser import parse_query

    chain = parse_query("Q() :- not R(x1, x2), not S(x2, x3), not T(x3, x4)")
    assert chain.is_beta_acyclic()
    # the SAT-style overlapping clauses of a cycle are not beta-acyclic
    cyc = parse_query("Q() :- not R(x1, x2), not S(x2, x3), not T(x3, x1)")
    assert not cyc.is_beta_acyclic()
