"""Unit tests for the query parser and the fluent builder."""

import pytest

from repro.errors import QuerySyntaxError
from repro.logic.builder import Q, union
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.parser import parse_cq, parse_query
from repro.logic.terms import Constant, Variable
from repro.logic.ucq import UnionOfConjunctiveQueries


def test_parse_simple_cq():
    q = parse_query("Q(x, y) :- R(x, z), S(z, y)")
    assert isinstance(q, ConjunctiveQuery)
    assert q.arity == 2
    assert q.name == "Q"


def test_parse_boolean_query():
    q = parse_cq("Q() :- R(x, y)")
    assert q.is_boolean()


def test_parse_constants():
    q = parse_cq('Q(x) :- R(x, 3), S(x, "paris")')
    consts = [c.value for a in q.atoms for c in a.constants()]
    assert consts == [3, "paris"]


def test_parse_negative_constant():
    q = parse_cq("Q(x) :- R(x, -5)")
    assert q.atoms[0].constants() == (Constant(-5),)


def test_parse_comparisons():
    q = parse_cq("Q(x, y) :- R(x, y), x != y, x < 10")
    assert len(q.comparisons) == 2
    assert q.disequalities()[0].op == "!="
    assert q.order_comparisons()[0].op == "<"


def test_parse_all_comparison_ops():
    q = parse_cq("Q(x, y) :- R(x, y), x <= y, x >= 0, x = x, x > 0")
    assert len(q.comparisons) == 4


def test_parse_ncq():
    q = parse_query("Q(x) :- not R(x, y), !S(y)")
    assert isinstance(q, NegativeConjunctiveQuery)
    assert len(q.atoms) == 2


def test_parse_signed_query_rejected():
    with pytest.raises(QuerySyntaxError):
        parse_query("Q(x) :- R(x, y), not S(y)")


def test_parse_ucq_multiline():
    q = parse_query("""
        Q(x, y) :- R(x, y)
        Q(x, y) :- S(x, y)
    """)
    assert isinstance(q, UnionOfConjunctiveQueries)
    assert len(q) == 2


def test_parse_ucq_semicolons():
    q = parse_query("Q(x) :- R(x, y); Q(x) :- S(x)")
    assert isinstance(q, UnionOfConjunctiveQueries)


def test_parse_comments_and_blank_lines():
    q = parse_query("""
        # the lineage query
        Q(x) :- R(x, y)
    """)
    assert isinstance(q, ConjunctiveQuery)


def test_parse_errors():
    for bad in [
        "",
        "Q(x)",
        "Q(x) :-",
        "Q(x) :- R(x",
        "Q(x) :- R(x,)",
        "Q(3) :- R(x)",
        "Q(x) :- x",
        "Q(x) :- R(x) extra",
        "Q(x) :- R(x) ??",
    ]:
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


def test_parse_cq_rejects_union():
    with pytest.raises(QuerySyntaxError):
        parse_cq("Q(x) :- R(x); Q(x) :- S(x)")


def test_parser_repr_roundtrip():
    q = parse_cq("Q(x, y) :- R(x, z), S(z, y), x != y")
    assert parse_cq(repr(q)) == q


def test_builder_cq():
    q = Q("x", "y").where("R", "x", "z").where("S", "z", "y").build()
    assert q == parse_cq("Q(x, y) :- R(x, z), S(z, y)")


def test_builder_with_comparison():
    q = Q("x").where("R", "x", "z").compare("x", "!=", "z").build()
    assert len(q.disequalities()) == 1


def test_builder_ncq():
    q = Q("x").where_not("R", "x", "y").build_negative()
    assert isinstance(q, NegativeConjunctiveQuery)


def test_builder_union():
    u = union(parse_cq("Q(x) :- R(x)"), parse_cq("Q(x) :- S(x)"))
    assert isinstance(u, UnionOfConjunctiveQueries)
    assert len(u) == 2
