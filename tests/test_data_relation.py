"""Unit tests for repro.data.relation."""

import pytest

from repro.data.relation import Relation
from repro.errors import MalformedQueryError


def test_add_and_contains():
    r = Relation("R", 2)
    r.add((1, 2))
    assert (1, 2) in r
    assert (2, 1) not in r
    assert len(r) == 1


def test_add_is_idempotent():
    r = Relation("R", 2, [(1, 2), (1, 2), (3, 4)])
    assert len(r) == 2


def test_arity_is_enforced():
    r = Relation("R", 2)
    with pytest.raises(MalformedQueryError):
        r.add((1, 2, 3))


def test_negative_arity_rejected():
    with pytest.raises(MalformedQueryError):
        Relation("R", -1)


def test_insertion_order_is_preserved():
    r = Relation("R", 1, [(3,), (1,), (2,)])
    assert r.tuples() == [(3,), (1,), (2,)]


def test_index_probe():
    r = Relation("R", 2, [(1, 2), (1, 3), (2, 3)])
    assert sorted(r.probe([0], (1,))) == [(1, 2), (1, 3)]
    assert r.probe([1], (3,)) == [(1, 3), (2, 3)]
    assert r.probe([0, 1], (2, 3)) == [(2, 3)]
    assert r.probe([0], (99,)) == []


def test_index_updates_on_add():
    r = Relation("R", 2, [(1, 2)])
    r.index_on([0])
    r.add((1, 5))
    assert sorted(r.probe([0], (1,))) == [(1, 2), (1, 5)]


def test_index_out_of_range():
    r = Relation("R", 2, [(1, 2)])
    with pytest.raises(IndexError):
        r.index_on([2])


def test_discard():
    r = Relation("R", 2, [(1, 2), (3, 4)])
    r.discard((1, 2))
    assert (1, 2) not in r
    assert len(r) == 1
    r.discard((9, 9))  # no-op
    assert len(r) == 1
    # indexes rebuilt correctly after deletion
    assert r.probe([0], (3,)) == [(3, 4)]
    assert r.probe([0], (1,)) == []


def test_project():
    r = Relation("R", 3, [(1, 2, 3), (1, 2, 4), (5, 6, 7)])
    p = r.project([0, 1])
    assert set(p) == {(1, 2), (5, 6)}
    assert p.arity == 2


def test_select():
    r = Relation("R", 2, [(1, 2), (2, 2), (3, 1)])
    s = r.select(lambda t: t[0] < t[1])
    assert set(s) == {(1, 2)}


def test_semijoin():
    r = Relation("R", 2, [(1, 2), (2, 3), (4, 5)])
    s = Relation("S", 2, [(2, 9), (5, 9)])
    out = r.semijoin([1], s, [0])
    assert set(out) == {(1, 2), (4, 5)}


def test_semijoin_arity_mismatch():
    r = Relation("R", 2, [(1, 2)])
    s = Relation("S", 2, [(2, 9)])
    with pytest.raises(MalformedQueryError):
        r.semijoin([0, 1], s, [0])


def test_distinct_and_domain_values():
    r = Relation("R", 2, [(1, 2), (1, 3)])
    assert set(r.distinct([0])) == {(1,)}
    assert r.domain_values() == {1, 2, 3}


def test_equality_and_copy():
    r = Relation("R", 2, [(1, 2)])
    c = r.copy()
    assert r == c
    c.add((3, 4))
    assert r != c
    renamed = r.copy(name="R2")
    assert renamed != r


def test_relation_unhashable():
    with pytest.raises(TypeError):
        hash(Relation("R", 1))


def test_size_contribution():
    r = Relation("R", 3, [(1, 2, 3), (4, 5, 6)])
    assert r.size_contribution() == 6


def test_empty_relation_is_falsy():
    assert not Relation("R", 2)
    assert Relation("R", 2, [(1, 2)])
