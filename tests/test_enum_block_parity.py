"""Property-based parity of the batched columnar enumeration pipeline.

The amortised block-at-a-time emission (repro.engine.enumerate) must
produce the *same answer multiset* as the tuple-at-a-time constant-delay
enumerator on random free-connex CQs, for every block size — the order
may differ (blocks follow key-sorted probe runs), but nothing may be
dropped, duplicated, or invented, at any chunking boundary.
"""

from collections import Counter

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.columnar import ColumnarRelation, ValueDictionary
from repro.engine.enumerate import (
    BlockIterator,
    batchable,
    resolve_block_size,
)
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.enumeration.full_acyclic import FullJoinEnumerator
from repro.eval.naive import evaluate_cq_naive
from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_cq
from repro.logic.terms import Variable

BLOCK_SIZES = (1, 7, 1024)

DOMAIN = st.integers(min_value=0, max_value=4)


def _rows(draw, arity, max_rows=10):
    return draw(st.lists(
        st.tuples(*([DOMAIN] * arity)), min_size=0, max_size=max_rows))


@st.composite
def free_connex_instance(draw):
    """A random free-connex acyclic CQ with a database (tree-structured
    atom generation guarantees alpha-acyclicity; free-connexity is
    enforced by assumption)."""
    n_atoms = draw(st.integers(min_value=1, max_value=4))
    atom_vars = []
    fresh = 0
    for i in range(n_atoms):
        if i == 0:
            shared = []
        else:
            parent = atom_vars[draw(st.integers(0, i - 1))]
            shared = draw(st.lists(st.sampled_from(parent), min_size=1,
                                   max_size=len(parent), unique=True))
        n_fresh = draw(st.integers(min_value=0 if shared else 1, max_value=2))
        mine = list(shared)
        for _ in range(n_fresh):
            mine.append(Variable(f"v{fresh}"))
            fresh += 1
        atom_vars.append(draw(st.permutations(mine)))

    atoms = [Atom(f"R{i}", vs) for i, vs in enumerate(atom_vars)]
    all_vars = sorted({v for vs in atom_vars for v in vs},
                      key=lambda v: v.name)
    head = draw(st.lists(st.sampled_from(all_vars), unique=True, min_size=1,
                         max_size=len(all_vars)))
    cq = ConjunctiveQuery(head, atoms)
    assume(cq.is_free_connex())

    db = Database()
    for i, vs in enumerate(atom_vars):
        db.add_relation(Relation(f"R{i}", len(vs), _rows(draw, len(vs))))
    return cq, db


@settings(max_examples=60, deadline=None)
@given(free_connex_instance())
def test_batched_multiset_parity(instance):
    """Tuple-at-a-time vs batched columnar, block sizes {1, 7, 1024}."""
    cq, db = instance
    reference = Counter(FreeConnexEnumerator(cq, db, engine="tuple",
                                             block_size=0))
    assert Counter(reference.keys()) == reference  # enumerators emit sets
    assert set(reference) == evaluate_cq_naive(cq, db)
    for block_size in BLOCK_SIZES:
        got = Counter(FreeConnexEnumerator(cq, db, engine="columnar",
                                           block_size=block_size))
        assert got == reference, block_size


@settings(max_examples=40, deadline=None)
@given(free_connex_instance())
def test_full_join_enumerator_batched_parity(instance):
    """FullJoinEnumerator's own batched path (projection-free joins)."""
    cq, db = instance
    assume(cq.is_quantifier_free())
    from repro.engine import get_engine

    eng = get_engine("columnar")
    relations = [eng.materialise_atom(db, atom) for atom in cq.atoms]
    tuple_rels = [r.to_varrelation() for r in relations]
    reference = Counter(FullJoinEnumerator(tuple_rels, cq.head, block_size=0))
    for block_size in BLOCK_SIZES:
        enum = FullJoinEnumerator(list(relations), cq.head,
                                  block_size=block_size)
        got = Counter(enum)
        assert got == reference, block_size
        # restartable: a second pass over the same enumerator agrees
        assert Counter(enum) == reference, block_size


def _columnar_pair(dictionary):
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    r = ColumnarRelation((x, z), [(i, i % 5) for i in range(40)],
                         dictionary=dictionary)
    s = ColumnarRelation((z, y), [(i % 5, 100 + i) for i in range(40)],
                         dictionary=dictionary)
    return [r, s], (x, z, y)


def test_blocks_respect_block_size():
    relations, head = _columnar_pair(ValueDictionary())
    it = BlockIterator(relations, head, block_size=7)
    blocks = list(it.blocks())
    assert all(len(b) <= 7 for b in blocks)
    assert sum(len(b) for b in blocks) == len(list(it))
    # every answer in exactly one block
    assert Counter(t for b in blocks for t in b) == Counter(it)


def test_block_iterator_rejects_mixed_backends():
    d = ValueDictionary()
    relations, head = _columnar_pair(d)
    from repro.eval.join import VarRelation

    with pytest.raises(TypeError):
        BlockIterator([relations[0], VarRelation(relations[1].variables)],
                      head)
    with pytest.raises(TypeError):
        other = ColumnarRelation(relations[1].variables,
                                 dictionary=ValueDictionary())
        BlockIterator([relations[0], other], head)


def test_block_iterator_rejects_uncovered_head():
    relations, _head = _columnar_pair(ValueDictionary())
    with pytest.raises(ValueError):
        BlockIterator(relations, (Variable("nope"),))


def test_resolve_block_size_env(monkeypatch):
    monkeypatch.delenv("REPRO_BLOCK_SIZE", raising=False)
    assert resolve_block_size(None) == 1024
    assert resolve_block_size(32) == 32
    assert resolve_block_size(0) == 0
    monkeypatch.setenv("REPRO_BLOCK_SIZE", "77")
    assert resolve_block_size(None) == 77
    monkeypatch.setenv("REPRO_BLOCK_SIZE", "junk")
    with pytest.raises(ValueError):
        resolve_block_size(None)


def test_batchable_predicate():
    d = ValueDictionary()
    relations, _ = _columnar_pair(d)
    assert batchable(relations)
    assert not batchable([])
    assert not batchable(relations + [
        ColumnarRelation((Variable("w"),), dictionary=ValueDictionary())])


def test_tuple_path_block_chunking():
    """blocks() on the tuple backend chunks the per-tuple stream."""
    q = parse_cq("Q(x, z, y) :- R(x, z), S(z, y)")
    db = Database([
        Relation("R", 2, [(i, i % 3) for i in range(9)]),
        Relation("S", 2, [(i % 3, i) for i in range(9)]),
    ])
    enum = FreeConnexEnumerator(q, db, engine="tuple", block_size=4)
    enum.preprocess()
    blocks = list(enum._inner.blocks())
    assert all(len(b) <= 4 for b in blocks)
    assert set(t for b in blocks for t in b) == evaluate_cq_naive(q, db)
