"""Tests for fractional/integral edge covers and the AGM bound."""

import math
import random

import pytest

from repro.data import generators
from repro.eval.naive import evaluate_cq_naive
from repro.hypergraph.edge_covers import (
    agm_bound,
    agm_exponent,
    fractional_edge_cover,
    fractional_edge_cover_number,
    integral_edge_cover_number,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.logic.parser import parse_cq


def H(*edges):
    vertices = {v for e in edges for v in e}
    return Hypergraph(vertices, [frozenset(e) for e in edges])


def test_triangle_rho_star_is_three_halves():
    tri = H({"x", "y"}, {"y", "z"}, {"z", "x"})
    rho, weights = fractional_edge_cover(tri)
    assert rho == pytest.approx(1.5)
    assert all(w == pytest.approx(0.5) for w in weights)
    assert integral_edge_cover_number(tri) == 2


def test_path_rho_star():
    path = H({"x", "y"}, {"y", "z"})
    assert fractional_edge_cover_number(path) == pytest.approx(2.0)
    assert integral_edge_cover_number(path) == 2


def test_single_edge():
    assert fractional_edge_cover_number(H({"x", "y", "z"})) == pytest.approx(1.0)
    assert integral_edge_cover_number(H({"x", "y", "z"})) == 1


def test_empty_hypergraph():
    h = Hypergraph(set(), [])
    assert fractional_edge_cover_number(h) == 0.0
    assert integral_edge_cover_number(h) == 0


def test_star_query_cover():
    # every leaf vertex lies in exactly one edge, so all three edges get
    # weight 1: rho* = 3
    h = H({"t", "a"}, {"t", "b"}, {"t", "c"})
    assert fractional_edge_cover_number(h) == pytest.approx(3.0, abs=1e-6)
    assert integral_edge_cover_number(h) == 3


def test_fractional_at_most_integral():
    rng = random.Random(0)
    variables = list("abcdef")
    for _ in range(20):
        edges = [frozenset(rng.sample(variables, rng.randint(1, 3)))
                 for _ in range(rng.randint(1, 5))]
        h = Hypergraph({v for e in edges for v in e}, edges)
        assert fractional_edge_cover_number(h) <= \
            integral_edge_cover_number(h) + 1e-9


def test_agm_bound_uses_relation_sizes():
    """The weighted LP prefers covering with the small relation."""
    from repro.data.database import Database
    from repro.data.relation import Relation

    q = parse_cq("Q(x, y) :- R(x, y), S(y, x)")
    db = Database([Relation("R", 2, [(1, 2)]),
                   Relation("S", 2, [(i, j) for i in range(5) for j in range(5)])])
    assert agm_bound(q, db) == pytest.approx(1.0)


def test_agm_bound_caps_output_randomized():
    """|phi(D)| <= AGM bound, on random instances of three query shapes."""
    shapes = [
        "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)",   # the triangle
        "Q(x, y, z) :- R(x, y), S(y, z)",
        "Q(x, y) :- R(x, y)",
    ]
    for text in shapes:
        q = parse_cq(text)
        for seed in range(5):
            db = generators.random_database({"R": 2, "S": 2, "T": 2}, 8, 30,
                                            seed=seed)
            answers = evaluate_cq_naive(q, db)
            assert len(answers) <= agm_bound(q, db) + 1e-6, (text, seed)


def test_agm_triangle_exponent():
    q = parse_cq("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
    assert agm_exponent(q) == pytest.approx(1.5)


def test_agm_bound_tight_on_worst_case_triangle():
    """The classic n^{3/2} instance: tripartite with sqrt(n) fan-out —
    the AGM bound is met within a constant."""
    q = parse_cq("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
    from repro.data.database import Database
    from repro.data.relation import Relation

    m = 5  # |R| = |S| = |T| = m^2
    r = Relation("R", 2, [((("a", i)), ("b", j)) for i in range(m) for j in range(m)])
    s = Relation("S", 2, [((("b", i)), ("c", j)) for i in range(m) for j in range(m)])
    t = Relation("T", 2, [((("c", i)), ("a", j)) for i in range(m) for j in range(m)])
    db = Database([r, s, t])
    answers = evaluate_cq_naive(q, db)
    bound = agm_bound(q, db)
    assert len(answers) == m ** 3          # n^{3/2} with n = m^2
    assert bound == pytest.approx(m ** 3)  # the bound is exactly met


def test_agm_bound_zero_for_empty_relation():
    q = parse_cq("Q(x, y) :- R(x, y), S(y, x)")
    from repro.data.database import Database
    from repro.data.relation import Relation

    db = Database([Relation("R", 2, [(1, 2)]), Relation("S", 2)])
    assert agm_bound(q, db) == 0.0
