"""Parity suite for the delta-propagated incremental refresh path.

The contract under test: with ``--incremental`` / ``REPRO_INCREMENTAL=1``
an interleaved stream of inserts, deletes and queries must produce
results *byte-identical* to cold re-preprocessing after every update —
reduced relations (contents AND row order), exact counts, weighted sums
and enumeration order — across all four engine tiers, including the
delta-log overflow boundary and plans the delta backend does not
support (both of which must degrade gracefully to cold invalidation).

The cold reference is computed with the plan cache disabled entirely,
so nothing warm can leak into it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plancache import (
    clear_plan_cache,
    incremental_scope,
    plan_cache,
    plan_cache_disabled,
    set_incremental_enabled,
    set_plan_cache_enabled,
)
from repro.counting.acq_count import count_acq
from repro.counting.weighted import WeightFunction
from repro.data.database import Database
from repro.data.relation import (
    DELTA_LOG_ENV_VAR,
    Relation,
)
from repro.enumeration.free_connex import FreeConnexEnumerator
from repro.eval.yannakakis import full_reducer
from repro.logic.parser import parse_cq

ENGINES = ["tuple", "columnar", "parallel", "compiled"]

PATH_QUERY = "Q(x, y, z) :- R(x, y), S(y, z), T(z)"
ARITIES = {"R": 2, "S": 2, "T": 1}


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_plan_cache()
    set_plan_cache_enabled(None)
    set_incremental_enabled(None)
    yield
    clear_plan_cache()
    set_plan_cache_enabled(None)
    set_incremental_enabled(None)


def _db(seed_rows=()):
    db = Database([Relation(name, arity) for name, arity in ARITIES.items()])
    for name, tup in seed_rows:
        db.relation(name).add(tup)
    return db


def _apply(db, ops):
    for name, op, tup in ops:
        rel = db.relation(name)
        if op == "+":
            rel.add(tup)
        else:
            rel.discard(tup)


def _snapshot(cq, db, engine):
    """Everything the acceptance criteria compare, order-sensitively."""
    _tree, reduced = full_reducer(cq, db, engine=engine)
    rows = [list(r) for r in reduced]
    count = count_acq(cq, db, engine=engine)
    # total on arbitrary values: the columnar value dictionary is
    # process-wide, and weight code tables map every interned value
    weights = WeightFunction(lambda v: v + 2 if isinstance(v, int) else 3)
    weighted = count_acq(cq, db, weights=weights, engine=engine)
    answers = list(FreeConnexEnumerator(cq, db, engine=engine))
    return rows, count, weighted, answers


def _assert_parity(cq, db, engine):
    with incremental_scope(True):
        warm = _snapshot(cq, db, engine)
    with incremental_scope(False), plan_cache_disabled():
        cold = _snapshot(cq, db, engine)
    assert warm[0] == cold[0], "reduced relations diverged (rows or order)"
    assert warm[1] == cold[1], "exact count diverged"
    assert warm[2] == cold[2], "weighted sum diverged"
    assert warm[3] == cold[3], "enumeration diverged (answers or order)"


# ----------------------------------------------------------- strategies


def _ops(min_size, max_size):
    @st.composite
    def build(draw):
        out = []
        for _ in range(draw(st.integers(min_size, max_size))):
            name = draw(st.sampled_from(sorted(ARITIES)))
            op = draw(st.sampled_from("+-"))
            tup = tuple(draw(st.integers(0, 5))
                        for _ in range(ARITIES[name]))
            out.append((name, op, tup))
        return out

    return build()


@st.composite
def update_streams(draw):
    seed = [(name, tup) for name, _op, tup in draw(_ops(3, 15))]
    chunks = draw(st.lists(_ops(1, 10), min_size=1, max_size=3))
    return seed, chunks


# ------------------------------------------------- interleaved streams


@pytest.mark.parametrize("engine", ENGINES)
@given(stream=update_streams())
@settings(max_examples=12, deadline=None)
def test_interleaved_stream_parity(engine, stream):
    """Insert/delete/query streams: the warm refresh path must match a
    cold re-preprocess after every update chunk, on every engine tier.

    The small value domain makes duplicate inserts and deletes of
    absent tuples (no-op mutations) and genuine deletes all frequent.
    """
    seed, chunks = stream
    clear_plan_cache()          # hypothesis reuses the fixture instance
    cq = parse_cq(PATH_QUERY)
    db = _db(seed)
    _assert_parity(cq, db, engine)          # cold build primes the cache
    for ops in chunks:
        _apply(db, ops)
        _assert_parity(cq, db, engine)      # now served via refresh


@pytest.mark.parametrize("engine", ENGINES)
def test_overflow_boundary_parity(engine, monkeypatch):
    """Updates past the delta-log capacity must fall back to a cold
    rebuild — silently and correctly (graceful degradation)."""
    monkeypatch.setenv(DELTA_LOG_ENV_VAR, "4")
    cq = parse_cq(PATH_QUERY)
    db = _db([("R", (i, i % 3)) for i in range(8)]
             + [("S", (i % 3, i)) for i in range(8)]
             + [("T", (i,)) for i in range(8)])
    with incremental_scope(True):
        _snapshot(cq, db, engine)           # prime warm plans
    # 12 effective mutations on R: far past the 4-entry ring
    for i in range(100, 112):
        db.relation("R").add((i % 3, i % 5))
        db.relation("R").discard((i % 3, i % 5))
    _assert_parity(cq, db, engine)
    stats = plan_cache().stats()
    assert stats["refresh_overflows"] >= 1
    # a later *small* delta refreshes again: overflow is not sticky
    db.relation("T").add((77,))
    _assert_parity(cq, db, engine)


def test_unsupported_plan_degrades_to_cold():
    """Repeated-variable atoms are outside the tuple-engine delta
    backend's contract: the incremental flag must not change answers."""
    cq = parse_cq("Q(x, y) :- E(x, x), F(x, y)")
    db = Database([Relation("E", 2), Relation("F", 2)])
    for i in range(6):
        db.relation("E").add((i, i if i % 2 else i + 1))
        db.relation("F").add((i, i + 10))
    _assert_parity(cq, db, "tuple")
    db.relation("E").add((7, 7))
    db.relation("F").discard((0, 10))
    _assert_parity(cq, db, "tuple")


# ------------------------------------------------- satellite: no-op ops


def test_noop_mutations_bump_nothing():
    """Re-adding a present tuple / discarding an absent one must not
    bump the version nor emit a delta — otherwise every no-op would
    poison warm plans."""
    rel = Relation("R", 2)
    rel.add((1, 2))
    v = rel.version
    rel.add((1, 2))             # duplicate insert: no-op
    rel.discard((9, 9))         # absent delete: no-op
    assert rel.version == v
    assert rel.deltas_since(v) == []
    rel.discard((1, 2))         # effective
    assert rel.version == v + 1
    assert rel.deltas_since(v) == [("-", (1, 2))]


def test_noop_mutations_do_not_invalidate_warm_plans():
    cq = parse_cq(PATH_QUERY)
    db = _db([("R", (1, 2)), ("S", (2, 3)), ("T", (3,))])
    with incremental_scope(True):
        before = _snapshot(cq, db, "columnar")
        base = plan_cache().stats()
        db.relation("R").add((1, 2))        # no-op
        db.relation("T").discard((99,))     # no-op
        after = _snapshot(cq, db, "columnar")
        stats = plan_cache().stats()
    assert after == before
    assert stats["refreshes"] == base["refreshes"]      # pure cache hits
    assert stats["misses"] == base["misses"]


# ------------------------------------------- satellite: stats counters


def test_refresh_counters_in_stats():
    cq = parse_cq(PATH_QUERY)
    db = _db([("R", (1, 2)), ("S", (2, 3)), ("T", (3,))])
    with incremental_scope(True):
        _snapshot(cq, db, "columnar")       # cold misses
        assert plan_cache().stats()["refreshes"] == 0
        db.relation("S").add((2, 4))
        _snapshot(cq, db, "columnar")
        stats = plan_cache().stats()
    # at least the full-reducer and counting states were refreshed
    assert stats["refreshes"] >= 2
    assert stats["refresh_fallbacks"] == 0
    assert stats["refresh_overflows"] == 0


def test_incremental_off_never_refreshes():
    cq = parse_cq(PATH_QUERY)
    db = _db([("R", (1, 2)), ("S", (2, 3)), ("T", (3,))])
    with incremental_scope(False):
        _snapshot(cq, db, "columnar")
        db.relation("S").add((2, 4))
        _snapshot(cq, db, "columnar")
    assert plan_cache().stats()["refreshes"] == 0
