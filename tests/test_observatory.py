"""Schema validation, history, regression gate and legacy migration for
:mod:`repro.obs.observatory`."""

import json

import pytest

from repro.obs.observatory import (
    BASELINE_N,
    Observatory,
    SCHEMA,
    SchemaError,
    backfill_provenance,
    collect_provenance,
    headline,
    load_snapshot,
    make_record,
    merge_snapshot,
    migrate_legacy_doc,
    validate_record,
)

TS = "2026-08-05T00:00:00+00:00"


def record_with(value=1.0, case="fc/delay", suite="t", scale=1.0):
    points = [{"n": n, "value": scale * value} for n in (100, 1000, 10000)]
    return make_record(suite, case, "delay_p50_seconds", points,
                       expectation="constant-delay",
                       provenance=backfill_provenance(TS))


def test_make_record_computes_fit_and_verdict():
    rec = record_with()
    assert rec["schema"] == SCHEMA
    assert rec["verdict"] == "constant-delay"
    assert rec["verdict_ok"] is True
    assert rec["fit"]["n_points"] == 3
    json.dumps(rec)  # JSON-able throughout


def test_make_record_flags_wrong_shape():
    points = [{"n": n, "value": 1e-6 * n} for n in (100, 1000, 10000)]
    rec = make_record("t", "fc/delay", "delay_p50_seconds", points,
                      expectation="constant-delay",
                      provenance=backfill_provenance(TS))
    assert rec["verdict"] == "linear"
    assert rec["verdict_ok"] is False


def test_recorder_rejects_schemaless_payloads():
    obs = Observatory("/tmp/nonexistent-history")
    with pytest.raises(SchemaError):
        obs.append({"experiment": "flat_delay", "n": 100, "value": 1.0})
    with pytest.raises(SchemaError):
        validate_record(["not", "a", "dict"])
    with pytest.raises(SchemaError):
        validate_record({"schema": "other/1", "suite": "t"})


def test_validation_requires_points_and_provenance():
    good = record_with()
    for breakage in (
        lambda r: r.pop("points"),
        lambda r: r.__setitem__("points", []),
        lambda r: r["points"][0].pop("value"),
        lambda r: r["points"][0].__setitem__("n", "big"),
        lambda r: r.pop("provenance"),
        lambda r: r["provenance"].pop("git_sha"),
        lambda r: r.__setitem__("metric", ""),
    ):
        broken = json.loads(json.dumps(good))
        breakage(broken)
        with pytest.raises(SchemaError):
            validate_record(broken)


def test_make_record_needs_timestamp_or_provenance():
    with pytest.raises(SchemaError):
        make_record("t", "c", "m", [{"n": 1, "value": 1.0}])


def test_collect_provenance_fields():
    prov = collect_provenance(TS, engine="tuple", block_size=64)
    rec = make_record("t", "c", "m", [{"n": 1, "value": 1.0}],
                      provenance=prov)
    assert rec["provenance"]["timestamp"] == TS
    assert rec["provenance"]["engine"] == "tuple"
    assert rec["provenance"]["block_size"] == 64
    assert rec["provenance"]["python"].count(".") == 2
    assert rec["provenance"]["timer_overhead_ns"] >= 0


def test_history_append_and_load(tmp_path):
    obs = Observatory(str(tmp_path / "history"))
    for value in (1.0, 1.1):
        obs.append(record_with(value))
    assert obs.suites() == ["t"]
    records = obs.load()
    assert len(records) == 2
    assert [r["case"] for r in records] == ["fc/delay", "fc/delay"]
    cases = obs.cases()
    assert len(cases[("t", "fc/delay")]) == 2


def test_history_skips_corrupt_lines(tmp_path):
    obs = Observatory(str(tmp_path))
    obs.append(record_with())
    with open(obs.path_for("t"), "a") as fh:
        fh.write("{not json\n")
        fh.write(json.dumps({"schema": "bad"}) + "\n")
    assert len(obs.load()) == 1


def _seed_history(obs, values, case="fc/delay"):
    for value in values:
        points = [{"n": 100, "value": value / 10},
                  {"n": 10000, "value": value}]
        obs.append(make_record("t", case, "delay_p50_seconds", points,
                               provenance=backfill_provenance(TS)))


def test_regression_gate_flags_slowed_entry(tmp_path):
    obs = Observatory(str(tmp_path))
    _seed_history(obs, [1.0, 1.02, 0.98, 1.01, 0.99])
    clean = obs.regressions()
    assert len(clean) == 1 and not clean[0].flagged
    # a synthetically slowed run must trip the gate
    _seed_history(obs, [10.0])
    flagged = obs.regressions()
    assert flagged[0].flagged
    assert flagged[0].baseline == pytest.approx(1.0, rel=0.05)
    assert flagged[0].ratio > 5
    assert "REGRESSION" in flagged[0].describe()


def test_regression_band_widens_with_noisy_baseline(tmp_path):
    obs = Observatory(str(tmp_path))
    # jittery baseline: +-40% swings should widen the band past 30%
    _seed_history(obs, [1.0, 1.4, 0.6, 1.45, 0.62, 1.35])
    reg = obs.regressions()[0]
    assert reg.band > 0.30
    assert not reg.flagged


def test_regression_no_baseline_on_first_run(tmp_path):
    obs = Observatory(str(tmp_path))
    _seed_history(obs, [1.0])
    reg = obs.regressions()[0]
    assert reg.baseline is None and not reg.flagged
    assert "no baseline" in reg.describe()


def test_regression_uses_rolling_window(tmp_path):
    obs = Observatory(str(tmp_path))
    # ancient slow history outside the last-N window must not raise the
    # baseline: 8 fast runs follow, then a slow one
    _seed_history(obs, [50.0, 50.0] + [1.0] * (BASELINE_N + 3) + [10.0])
    reg = obs.regressions()[0]
    assert reg.baseline == pytest.approx(1.0)
    assert reg.flagged


def test_regression_baseline_ignores_other_metrics(tmp_path):
    obs = Observatory(str(tmp_path))
    # old runs measured delay; the recorder then switched the case to
    # throughput (numerically enormous by comparison).  The gate must
    # not flag the metric change as a 10^12x regression.
    _seed_history(obs, [1.5e-6, 1.6e-6])
    points = [{"n": 100, "value": 5e4}, {"n": 10000, "value": 5e5}]
    obs.append(make_record("t", "fc/delay", "throughput_per_s", points,
                           provenance=backfill_provenance(TS)))
    reg = obs.regressions()[0]
    assert reg.metric == "throughput_per_s"
    assert reg.baseline is None and not reg.flagged


def test_headline_is_value_at_largest_n():
    rec = make_record("t", "c", "m",
                      [{"n": 1000, "value": 5.0}, {"n": 10, "value": 9.0}],
                      provenance=backfill_provenance(TS))
    assert headline(rec) == 5.0


def test_snapshot_merge_replaces_case(tmp_path):
    path = str(tmp_path / "BENCH_t.json")
    merge_snapshot(path, record_with(1.0))
    merge_snapshot(path, record_with(2.0))
    merge_snapshot(path, record_with(1.0, case="other"))
    records = load_snapshot(path)
    assert len(records) == 2
    assert {r["case"] for r in records} == {"fc/delay", "other"}


def test_load_snapshot_ignores_legacy_files(tmp_path):
    path = tmp_path / "BENCH_old.json"
    path.write_text(json.dumps([{"op": "x", "n": 1, "backend": "tuple",
                                 "seconds": 0.5}]))
    assert load_snapshot(str(path)) == []


def test_migrate_legacy_core_rows():
    doc = [{"op": "full_reducer", "n": n, "backend": b,
            "seconds": 1e-6 * n * (1 if b == "columnar" else 30)}
           for n in (1000, 10000, 100000) for b in ("tuple", "columnar")]
    records = migrate_legacy_doc(doc, "core", TS)
    assert {r["case"] for r in records} == {"full_reducer/tuple",
                                            "full_reducer/columnar"}
    for rec in records:
        validate_record(rec)
        assert rec["provenance"]["backfilled"] is True
        assert rec["verdict"] == "linear"
        assert len(rec["points"]) == 3


def test_migrate_legacy_enum_rows():
    doc = [
        {"experiment": "flat_delay", "mode": "columnar", "n": 25000,
         "outputs": 3000, "median_delay_us": 0.157},
        {"experiment": "flat_delay", "mode": "columnar", "n": 100000,
         "outputs": 3000, "median_delay_us": 0.156},
        {"experiment": "flat_delay", "mode": "slope", "n": 100000,
         "loglog_slope": 0.14},  # recomputed, hence dropped
        {"experiment": "plan_cache", "mode": "warm", "n": 100000,
         "preprocessing_ms": 0.03, "speedup": 541.0},
        # throughput rows carry delay fields too; the primary metric
        # must still be throughput, matching the live recorder
        {"experiment": "throughput", "mode": "tuple", "n": 100000,
         "median_delay_us": 1.577, "mean_delay_us": 2.35,
         "throughput_per_s": 515097.0},
    ]
    records = migrate_legacy_doc(doc, "enum", TS)
    by_case = {r["case"]: r for r in records}
    assert set(by_case) == {"flat_delay/columnar", "plan_cache/warm",
                            "throughput/tuple"}
    flat = by_case["flat_delay/columnar"]
    assert flat["metric"] == "delay_p50_seconds"
    assert flat["points"][0]["value"] == pytest.approx(0.157e-6)
    warm = by_case["plan_cache/warm"]
    assert warm["metric"] == "preprocessing_seconds"
    assert warm["points"][0]["value"] == pytest.approx(3e-5)
    assert warm["points"][0]["speedup"] == 541.0
    tput = by_case["throughput/tuple"]
    assert tput["metric"] == "throughput_per_s"
    assert tput["points"][0]["value"] == pytest.approx(515097.0)


def test_migrate_rejects_unknown_rows():
    with pytest.raises(SchemaError):
        migrate_legacy_doc([{"weird": 1}], "x", TS)
    with pytest.raises(SchemaError):
        migrate_legacy_doc({"not": "a list"}, "x", TS)


def test_migrate_roundtrips_canonical_snapshot():
    rec = record_with()
    doc = {"schema": SCHEMA, "records": [rec]}
    assert migrate_legacy_doc(doc, "t", TS) == [rec]
