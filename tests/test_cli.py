"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, load_csv_database, main


@pytest.fixture
def tables(tmp_path):
    (tmp_path / "R.csv").write_text("1,2\n2,3\n# comment\n\n")
    (tmp_path / "S.csv").write_text("2,10\n3,30\n")
    (tmp_path / "Names.csv").write_text("1,ana\n2,bo\n")
    (tmp_path / "notes.txt").write_text("ignored")
    return str(tmp_path)


def test_load_csv_database(tables):
    db = load_csv_database(tables)
    assert set(db.relation_names()) == {"R", "S", "Names"}
    assert (1, 2) in db.relation("R")
    assert (1, "ana") in db.relation("Names")  # mixed int/str parsing
    assert db.relation("R").arity == 2


def test_classify_command(capsys):
    assert main(["classify", "Q(x, y) :- R(x, z), S(z, y)"]) == 0
    out = capsys.readouterr().out
    assert "free_connex = False" in out
    assert "Theorem" in out


def test_run_command(tables, capsys):
    assert main(["run", "Q(x, y) :- R(x, z), S(z, y)", "--data", tables]) == 0
    out = capsys.readouterr().out
    assert "1\t10" in out and "2\t30" in out


def test_run_count(tables, capsys):
    assert main(["run", "Q(x, y) :- R(x, z), S(z, y)", "--data", tables,
                 "--count"]) == 0
    assert capsys.readouterr().out.strip() == "2"


def test_run_limit(tables, capsys):
    assert main(["run", "Q(x, y) :- R(x, z), S(z, y)", "--data", tables,
                 "--limit", "1"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 1


def test_run_no_answers(tables, capsys):
    assert main(["run", "Q(x) :- R(x, x)", "--data", tables]) == 0
    assert "(no answers)" in capsys.readouterr().err


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 3" in out
    assert "quantified star size = 3" in out


def test_bench_delay_command(capsys):
    assert main(["bench-delay", "--sizes", "200", "400"]) == 0
    out = capsys.readouterr().out
    assert "fc median us" in out
    assert len(out.strip().splitlines()) == 3


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_doctor_command(capsys):
    assert main(["doctor", "Q(a, c) :- F(a, b), F(b, c)"]) == 0
    out = capsys.readouterr().out
    assert "doctor's note" in out and "free-connex" in out


def test_doctor_command_core(capsys):
    assert main(["doctor", "Q(x) :- F(x, y), F(x, z)"]) == 0
    out = capsys.readouterr().out
    assert "core:" in out


def test_doctor_on_ncq(capsys):
    assert main(["doctor", "Q() :- not R(x, y)"]) == 0
    assert "NCQ" in capsys.readouterr().out


def test_doctor_prints_plan_cache_stats(capsys):
    assert main(["doctor", "Q(x) :- R(x, z), S(z, y)"]) == 0
    out = capsys.readouterr().out
    assert "plan cache:" in out and "evictions" in out


def test_explain_command(capsys):
    assert main(["explain", "Q(x) :- R(x, z), S(z, y)",
                 "--size", "200"]) == 0
    out = capsys.readouterr().out
    assert "span tree" in out
    assert "FreeConnexEnumerator.preprocess" in out
    assert "FreeConnexEnumerator.enumerate" in out
    assert "plancache.misses" in out
    assert "plan cache:" in out
    assert "answers:" in out


def test_explain_count_mode(capsys):
    assert main(["explain", "Q(x) :- R(x, z), S(z, y)",
                 "--size", "200", "--count"]) == 0
    out = capsys.readouterr().out
    assert "count:" in out
    assert "planner.count" in out


def test_explain_csv_data(tables, capsys):
    assert main(["explain", "Q(x) :- R(x, z), S(z, y)",
                 "--data", tables]) == 0
    out = capsys.readouterr().out
    assert "answers: 2" in out


def test_explain_trace_and_metrics(tmp_path, capsys):
    import json

    trace_path = tmp_path / "t.json"
    assert main(["explain", "Q(x) :- R(x, z), S(z, y)", "--size", "200",
                 "--trace", str(trace_path), "--metrics"]) == 0
    err = capsys.readouterr().err
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]
    metrics = json.loads(err[err.index("{"):])
    assert "plan_cache" in metrics and "counters" in metrics


def test_run_trace_and_metrics(tables, tmp_path, capsys):
    import json

    from repro import obs

    trace_path = tmp_path / "run.json"
    assert main(["run", "Q(x) :- R(x, z), S(z, y)", "--data", tables,
                 "--trace", str(trace_path), "--metrics"]) == 0
    captured = capsys.readouterr()
    assert captured.out.splitlines()  # answers still on stdout
    doc = json.loads(trace_path.read_text())
    assert any(e.get("name") == "planner.enumerate"
               for e in doc["traceEvents"])
    metrics = json.loads(captured.err[captured.err.index("{"):])
    assert "counters" in metrics
    assert not obs.enabled()  # tracer restored after the command


def test_bench_delay_json(tmp_path, capsys):
    import json

    path = tmp_path / "bd.json"
    assert main(["bench-delay", "--sizes", "200", "400",
                 "--json", str(path)]) == 0
    doc = json.loads(path.read_text())
    assert doc["benchmark"] == "bench-delay"
    assert len(doc["rows"]) == 2
    row = doc["rows"][0]["free_connex"]
    for key in ("preprocessing_seconds", "outputs", "delay_p50_seconds",
                "delay_p95_seconds", "delay_p99_seconds"):
        assert key in row
    assert set(doc["slopes"]) == {"free_connex_delay_p50",
                                  "free_connex_preprocessing",
                                  "acq_linear_delay_mean"}


def test_bench_core_json(tmp_path, capsys):
    import json

    out_rows = tmp_path / "rows.json"
    path = tmp_path / "bc.json"
    assert main(["bench-core", "--sizes", "500", "1000", "--repeats", "1",
                 "--output", str(out_rows), "--json", str(path)]) == 0
    doc = json.loads(path.read_text())
    assert doc["benchmark"] == "bench-core"
    assert doc["rows"] and doc["slopes"]
    for slope in doc["slopes"]:
        assert {"op", "backend", "loglog_slope"} <= set(slope)


def test_doctor_environment_checks(capsys):
    assert main(["doctor"]) == 0
    out = capsys.readouterr().out
    assert "timer overhead:" in out
    assert "machine noise:" in out
    assert "plan cache:" in out


def _bench_args(tmp_path, *extra):
    # tiny sub-decade sweep: fast, and the fitter's anti-flake rule makes
    # the join-suite verdicts `inconclusive` — fine for plumbing tests.
    # The parallel suite is off here (it has its own test below) so the
    # plumbing tests stay fast and never touch the repo-root snapshot.
    return ["bench", "--sizes", "200", "400", "--triangle-sizes", "8",
            "12", "--max-outputs", "50", "--repeats", "1",
            "--no-parallel-suite",
            "--history-dir", str(tmp_path / "hist"),
            "--snapshot", str(tmp_path / "BENCH_bench.json"), *extra]


def test_bench_command_records_history(tmp_path, capsys):
    import json

    from repro.obs.observatory import Observatory, load_snapshot

    assert main(_bench_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "verdict" in out and "expected" in out
    assert "free_connex/delay" in out
    assert "lower_bound_triangle/total" in out
    assert main(_bench_args(tmp_path)) == 0  # second run appends
    obs = Observatory(str(tmp_path / "hist"))
    records = obs.load()
    assert len(records) == 10  # 5 cases x 2 runs
    for record in records:
        json.dumps(record)
        assert record["schema"] == "repro-bench/1"
        assert record["provenance"]["git_sha"]
    assert len(load_snapshot(str(tmp_path / "BENCH_bench.json"))) == 5


def test_bench_parallel_suite_records(tmp_path, capsys):
    from repro.obs.observatory import Observatory, load_snapshot

    args = ["bench", "--sizes", "200", "--triangle-sizes", "8",
            "--max-outputs", "50", "--repeats", "1",
            "--parallel-size", "500",
            "--history-dir", str(tmp_path / "hist"),
            "--snapshot", str(tmp_path / "BENCH_bench.json"),
            "--parallel-snapshot", str(tmp_path / "BENCH_parallel.json")]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "parallel/count_wall" in out and "parallel/enum_wall" in out
    records = Observatory(str(tmp_path / "hist")).load("parallel")
    assert {r["case"] for r in records} \
        == {"parallel/count_wall", "parallel/enum_wall"}
    for record in records:
        assert record["metric"] == "wall_seconds"
        assert record["provenance"]["engine"] == "parallel"
        for point in record["points"]:
            assert point["speedup_x"] > 0
    snapshot = load_snapshot(str(tmp_path / "BENCH_parallel.json"))
    assert len(snapshot) == 2
    # the bench snapshot carries only the join/triangle suites
    assert all(r["suite"] == "bench"
               for r in load_snapshot(str(tmp_path / "BENCH_bench.json")))


def test_bench_requires_sizes(capsys):
    assert main(["bench"]) == 2
    assert "--quick" in capsys.readouterr().err


def test_report_command(tmp_path, capsys):
    assert main(_bench_args(tmp_path)) == 0
    out_html = tmp_path / "report.html"
    assert main(["report", "-o", str(out_html),
                 "--history-dir", str(tmp_path / "hist")]) == 0
    assert "wrote" in capsys.readouterr().out
    html = out_html.read_text()
    assert "<svg" in html and "free_connex/delay" in html


def test_report_gate_fails_on_slowed_entry(tmp_path, capsys):
    import json

    from repro.obs.observatory import Observatory

    assert main(_bench_args(tmp_path, "--gate", "off")) == 0
    obs = Observatory(str(tmp_path / "hist"))
    slowed = json.loads(json.dumps(obs.load("bench")[-1]))
    for point in slowed["points"]:
        point["value"] *= 10
    obs.append(slowed)
    capsys.readouterr()
    assert main(["report", "-o", str(tmp_path / "r.html"),
                 "--history-dir", str(tmp_path / "hist"),
                 "--gate", "fail"]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "failing" in captured.err
    # warn-only keeps the exit code green on the same history
    assert main(["report", "-o", str(tmp_path / "r.html"),
                 "--history-dir", str(tmp_path / "hist")]) == 0
