"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, load_csv_database, main


@pytest.fixture
def tables(tmp_path):
    (tmp_path / "R.csv").write_text("1,2\n2,3\n# comment\n\n")
    (tmp_path / "S.csv").write_text("2,10\n3,30\n")
    (tmp_path / "Names.csv").write_text("1,ana\n2,bo\n")
    (tmp_path / "notes.txt").write_text("ignored")
    return str(tmp_path)


def test_load_csv_database(tables):
    db = load_csv_database(tables)
    assert set(db.relation_names()) == {"R", "S", "Names"}
    assert (1, 2) in db.relation("R")
    assert (1, "ana") in db.relation("Names")  # mixed int/str parsing
    assert db.relation("R").arity == 2


def test_classify_command(capsys):
    assert main(["classify", "Q(x, y) :- R(x, z), S(z, y)"]) == 0
    out = capsys.readouterr().out
    assert "free_connex = False" in out
    assert "Theorem" in out


def test_run_command(tables, capsys):
    assert main(["run", "Q(x, y) :- R(x, z), S(z, y)", "--data", tables]) == 0
    out = capsys.readouterr().out
    assert "1\t10" in out and "2\t30" in out


def test_run_count(tables, capsys):
    assert main(["run", "Q(x, y) :- R(x, z), S(z, y)", "--data", tables,
                 "--count"]) == 0
    assert capsys.readouterr().out.strip() == "2"


def test_run_limit(tables, capsys):
    assert main(["run", "Q(x, y) :- R(x, z), S(z, y)", "--data", tables,
                 "--limit", "1"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 1


def test_run_no_answers(tables, capsys):
    assert main(["run", "Q(x) :- R(x, x)", "--data", tables]) == 0
    assert "(no answers)" in capsys.readouterr().err


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 3" in out
    assert "quantified star size = 3" in out


def test_bench_delay_command(capsys):
    assert main(["bench-delay", "--sizes", "200", "400"]) == 0
    out = capsys.readouterr().out
    assert "fc median us" in out
    assert len(out.strip().splitlines()) == 3


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_doctor_command(capsys):
    assert main(["doctor", "Q(a, c) :- F(a, b), F(b, c)"]) == 0
    out = capsys.readouterr().out
    assert "doctor's note" in out and "free-connex" in out


def test_doctor_command_core(capsys):
    assert main(["doctor", "Q(x) :- F(x, y), F(x, z)"]) == 0
    out = capsys.readouterr().out
    assert "core:" in out


def test_doctor_on_ncq(capsys):
    assert main(["doctor", "Q() :- not R(x, y)"]) == 0
    assert "NCQ" in capsys.readouterr().out
