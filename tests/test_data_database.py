"""Unit tests for repro.data.database — including the ||D|| size measure
and the degree notion of Section 3.1."""

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import MalformedQueryError, SchemaMismatchError


def make_db():
    return Database.from_relations({
        "R": [(1, 2), (2, 3)],
        "S": [(2,), (9,)],
    })


def test_from_relations_infers_arity():
    db = make_db()
    assert db.relation("R").arity == 2
    assert db.relation("S").arity == 1


def test_from_relations_rejects_empty():
    with pytest.raises(MalformedQueryError):
        Database.from_relations({"R": []})


def test_domain_collects_all_values():
    db = make_db()
    assert set(db.domain) == {1, 2, 3, 9}
    assert db.domain_size() == 4
    assert 2 in db
    assert 42 not in db


def test_isolated_domain_values():
    db = make_db()
    db.add_domain_values([100, 200])
    assert 100 in db
    assert db.domain_size() == 6


def test_size_measure():
    # ||D|| = |sigma| + |Dom| + sum |R| * ar(R) = 2 + 4 + (2*2 + 2*1)
    db = make_db()
    assert db.size() == 2 + 4 + 4 + 2


def test_tuple_count():
    assert make_db().tuple_count() == 4


def test_degree_counts_tuples_per_element():
    db = make_db()
    # element 2 occurs in R-tuples (1,2), (2,3) and S-tuple (2,) -> degree 3
    assert db.degrees()[2] == 3
    assert db.degree() == 3


def test_degree_counts_tuple_once_for_repeats():
    db = Database.from_relations({"R": [(1, 1)]})
    assert db.degrees()[1] == 1


def test_missing_relation_raises():
    with pytest.raises(SchemaMismatchError):
        make_db().relation("T")
    assert not make_db().has_relation("T")


def test_duplicate_relation_rejected():
    db = make_db()
    with pytest.raises(MalformedQueryError):
        db.add_relation(Relation("R", 2))


def test_copy_is_independent():
    db = make_db()
    db2 = db.copy()
    db2.relation("R").add((7, 8))
    assert (7, 8) not in db.relation("R")


def test_restrict_domain():
    db = make_db()
    sub = db.restrict_domain([1, 2])
    assert set(sub.relation("R")) == {(1, 2)}
    assert set(sub.relation("S")) == {(2,)}
    assert set(sub.domain) == {1, 2}


def test_iteration_and_names():
    db = make_db()
    assert db.relation_names() == ["R", "S"]
    assert [r.name for r in db] == ["R", "S"]


def test_empty_database_degree():
    assert Database().degree() == 0
