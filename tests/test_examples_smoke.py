"""Smoke tests: every example script must run to completion.

Each example is executed in a subprocess (its own interpreter, like a
user would run it); non-zero exit or a traceback fails the test.  These
are the slowest tests of the suite (~1 min total) — they guarantee the
examples deliverable never rots.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_example_inventory():
    assert len(EXAMPLES) >= 8
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (script, result.stderr[-2000:])
    assert "Traceback" not in result.stderr, script
    assert result.stdout.strip(), script  # every example narrates
