"""Tests for the low-degree engine (Theorems 3.9-3.10) and the Gray-code
Sigma_0 enumerator (Theorem 5.5)."""

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.enumeration.bounded_degree import Pattern
from repro.enumeration.gray import Delta, Sigma0SOEnumerator, gray_flip_sequence
from repro.enumeration.low_degree import (
    DegreeProfile,
    LowDegreeEnumerator,
    count_low_degree,
    decide_low_degree,
)
from repro.errors import UnsupportedQueryError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import And, Exists, Not, RelAtom, SOAtom, SecondOrderVariable
from repro.logic.terms import Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")


def test_low_degree_engine_on_clique_plus_independent():
    db = generators.clique_plus_independent(4)
    pat = Pattern(head=(x, z), atoms=(Atom("E", [x, y]), Atom("E", [y, z])))
    got = set(LowDegreeEnumerator(pat, db))
    cq = ConjunctiveQuery([x, y, z], pat.atoms)
    expected = {(a, c) for a, b, c in evaluate_cq_naive(cq, db)}
    assert got == expected
    assert decide_low_degree(pat, db) == bool(expected)
    assert count_low_degree(pat, db) == len(evaluate_cq_naive(cq, db))


def test_degree_profile():
    db = generators.clique_plus_independent(4)
    profile = DegreeProfile.of(db)
    assert profile.size == 4 + 16
    assert profile.is_low_degree_like(epsilon=0.8)
    dense = generators.graph_database(
        [(i, j) for i in range(8) for j in range(i + 1, 8)])
    assert not DegreeProfile.of(dense).is_low_degree_like(epsilon=0.5)


# ----------------------------------------------------------------- Gray code


def test_gray_flip_sequence_visits_all_subsets():
    n = 4
    current = set()
    seen = {frozenset()}
    for flip in gray_flip_sequence(n):
        current ^= {flip}
        seen.add(frozenset(current))
    assert len(seen) == 2 ** n


def test_gray_single_flip_per_step():
    for flip in gray_flip_sequence(5):
        assert 0 <= flip < 5


def test_sigma0_solutions_match_bruteforce():
    from repro.counting.spectrum import count_so_bruteforce

    rel = Relation("P", 1, [(0,), (1,)])
    db = Database([rel], domain=[0, 1, 2])
    X = SecondOrderVariable("X", 1)
    phi = And(SOAtom(X, [x]), RelAtom("P", [x]), Not(SOAtom(X, [Constant(2)])))
    enum = Sigma0SOEnumerator(phi, db)
    sols = list(enum.solutions())
    assert len(sols) == len(set(sols))
    assert enum.count() == len(sols) == count_so_bruteforce(phi, db)


def test_sigma0_deltas_are_single_edits():
    rel = Relation("P", 1, [(0,)])
    db = Database([rel], domain=[0, 1, 2])
    X = SecondOrderVariable("X", 1)
    phi = SOAtom(X, [Constant(0)])
    enum = Sigma0SOEnumerator(phi, db)
    edits_between_emits = 0
    max_edits = 0
    for delta in enum.deltas():
        if delta.op == "emit":
            max_edits = max(max_edits, edits_between_emits)
            edits_between_emits = 0
        elif delta.op in ("add", "remove"):
            edits_between_emits += 1
    assert max_edits <= 1  # delta-constant delay within cubes


def test_sigma0_current_tracks_solution():
    rel = Relation("P", 1, [(0,)])
    db = Database([rel], domain=[0, 1])
    X = SecondOrderVariable("X", 1)
    phi = SOAtom(X, [Constant(0)])
    enum = Sigma0SOEnumerator(phi, db)
    from repro.eval.naive import evaluate_fo

    for delta in enum.deltas():
        if delta.op == "emit":
            assert evaluate_fo(phi, db, {}, {X: set(enum.current())})


def test_sigma0_with_free_fo_variable():
    rel = Relation("P", 1, [(0,), (1,)])
    db = Database([rel], domain=[0, 1])
    X = SecondOrderVariable("X", 1)
    phi = And(RelAtom("P", [x]), SOAtom(X, [x]))
    enum = Sigma0SOEnumerator(phi, db)
    sols = list(enum.solutions())
    # for each of the 2 values of x: X must contain (x,); the other tuple
    # is free -> 2 sets each
    assert len(sols) == 4
    for fo, s in sols:
        assert (fo[0],) in s


def test_sigma0_rejects_quantified_formula():
    db = Database.from_relations({"P": [(0,)]})
    X = SecondOrderVariable("X", 1)
    with pytest.raises(UnsupportedQueryError):
        Sigma0SOEnumerator(Exists([x], SOAtom(X, [x])), db)


def test_sigma0_rejects_multiple_so_vars():
    db = Database.from_relations({"P": [(0,)]})
    X = SecondOrderVariable("X", 1)
    Y = SecondOrderVariable("Y", 1)
    with pytest.raises(UnsupportedQueryError):
        Sigma0SOEnumerator(And(SOAtom(X, [Constant(0)]), SOAtom(Y, [Constant(0)])), db)


def test_sigma0_custom_universe():
    db = Database.from_relations({"P": [(0,)]})
    X = SecondOrderVariable("X", 1)
    phi = SOAtom(X, [Constant(0)])
    enum = Sigma0SOEnumerator(phi, db, universe=[(0,), (1,)])
    # X must contain (0,); (1,) free -> 2 solutions
    assert enum.count() == 2
    assert len(list(enum.solutions())) == 2


def test_sigma0_unsatisfiable_pattern():
    db = Database.from_relations({"P": [(0,)]})
    X = SecondOrderVariable("X", 1)
    phi = And(SOAtom(X, [Constant(0)]), Not(SOAtom(X, [Constant(0)])))
    enum = Sigma0SOEnumerator(phi, db, universe=[(0,), (1,)])
    assert enum.count() == 0
    assert list(enum.solutions()) == []
