"""Tests for the observability layer (repro.obs): span nesting,
Chrome-trace schema validity, counter accuracy on a known join, and
no-op-tracer parity."""

import json
import threading

import pytest

from repro import obs
from repro.core.plancache import PlanCache, clear_plan_cache, plan_cache
from repro.core.planner import count, enumerate_answers
from repro.data.generators import random_database
from repro.engine import use_engine
from repro.logic.parser import parse_cq, parse_query
from repro.obs.export import chrome_trace, metrics_dump, render_explain
from repro.obs.trace import NULL_TRACER, Tracer


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_plan_cache()
    yield
    clear_plan_cache()
    obs.disable()


FULL_QUERY = "Q(x, z, y) :- R(x, z), S(z, y)"


def _demo_db(n=200, seed=1):
    return random_database({"R": 2, "S": 2}, domain_size=50,
                           tuples_per_relation=n, seed=seed)


# ------------------------------------------------------------------ spans


def test_span_nesting_and_ordering():
    t = Tracer()
    with t.span("a") as a:
        with t.span("b"):
            pass
        with t.span("c", tag="v") as c:
            c.set("extra", 3)
    assert [s.name for s in t.roots] == ["a"]
    assert [s.name for s in a.children] == ["b", "c"]
    b, c = a.children
    assert a.start_ns <= b.start_ns <= b.end_ns <= c.start_ns <= c.end_ns
    assert c.end_ns <= a.end_ns
    assert c.attrs == {"tag": "v", "extra": 3}
    assert a.duration_ns >= b.duration_ns + c.duration_ns


def test_span_out_of_order_end():
    # generator-style usage: an inner span can outlive its opener's scope
    t = Tracer()
    outer = t.span("outer")
    inner = t.span("inner")
    outer.__enter__()
    inner.__enter__()
    outer.__exit__(None, None, None)
    inner.__exit__(None, None, None)
    assert [s.name for s in t.roots] == ["outer"]
    assert [s.name for s in t.roots[0].children] == ["inner"]
    assert all(s.end_ns is not None for s in t.spans)


def test_sibling_spans_do_not_nest():
    t = Tracer()
    with t.span("a"):
        pass
    with t.span("b"):
        pass
    assert [s.name for s in t.roots] == ["a", "b"]


def test_counters_and_gauges():
    t = Tracer()
    t.count("hits")
    t.count("hits", 4)
    t.gauge("size", 17)
    assert t.counters["hits"] == 5
    assert t.gauges["size"] == 17
    assert t.events >= 3


# ----------------------------------------------------------- chrome trace


def test_chrome_trace_schema():
    with obs.capture() as t:
        list(enumerate_answers(parse_cq(FULL_QUERY), _demo_db()))
    doc = chrome_trace(t)
    # round-trips through json and has the documented shape
    doc = json.loads(json.dumps(doc))
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert events
    complete = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    assert complete and counters
    for e in complete:
        assert isinstance(e["name"], str)
        assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
        assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0
        assert "pid" in e and "tid" in e
    # child events lie within their parent's interval (planner.enumerate
    # encloses everything in this single-query run)
    root = next(e for e in complete if e["name"] == "planner.enumerate")
    for e in complete:
        assert e["ts"] >= root["ts"] - 1e-3
        assert e["ts"] + e["dur"] <= root["ts"] + root["dur"] + 1e-3


def test_write_chrome_trace(tmp_path):
    path = tmp_path / "trace.json"
    with obs.capture() as t:
        with obs.span("only"):
            pass
    obs.write_chrome_trace(str(path), t)
    doc = json.loads(path.read_text())
    assert any(e["name"] == "only" for e in doc["traceEvents"])


# ------------------------------------------------------- counter accuracy


def test_counter_accuracy_two_atom_join():
    """Exact kernel/cache counts for a cold then warm free-connex run of
    a full 2-atom join on the columnar backend."""
    q = parse_cq(FULL_QUERY)
    db = _demo_db()
    with use_engine("columnar"):
        clear_plan_cache()
        with obs.capture() as cold:
            cold_answers = list(enumerate_answers(q, db))
        with obs.capture() as warm:
            warm_answers = list(enumerate_answers(q, db))
    assert cold_answers == warm_answers and cold_answers
    # cold: one miss each for the free_connex plan and the full_reducer
    # it runs inside; two semijoins per full-reducer pass pair
    assert cold.counters["plancache.misses"] == 2
    assert "plancache.hits" not in cold.counters
    assert cold.counters["kernel.semijoin"] == 4
    assert cold.counters["kernel.materialise_atom"] == 2
    assert cold.counters["enum.answers"] == len(cold_answers)
    # warm: the cached plan is reused — no rebuild, no kernel calls
    assert warm.counters["plancache.hits"] == 1
    assert "plancache.misses" not in warm.counters
    assert "kernel.semijoin" not in warm.counters
    assert warm.counters["enum.answers"] == len(warm_answers)


def test_semijoin_spans_carry_cardinalities():
    q = parse_cq(FULL_QUERY)
    with obs.capture() as t:
        list(enumerate_answers(q, _demo_db()))
    semis = [s for s in t.spans if s.name == "yannakakis.semijoin"]
    assert len(semis) == 2
    phases = {s.attrs["phase"] for s in semis}
    assert phases == {"bottom_up", "top_down"}
    for s in semis:
        assert s.attrs["out"] <= max(s.attrs["in_left"], s.attrs["in_right"])


def test_count_pipeline_traced():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    with obs.capture() as t:
        n = count(q, _demo_db())
    names = {s.name for s in t.spans}
    assert "planner.count" in names
    assert "count.acq" in names
    assert "count.message_passing" in names
    assert n >= 0


def test_enumerator_phase_spans():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    with obs.capture() as t:
        answers = list(enumerate_answers(q, _demo_db()))
    names = [s.name for s in t.spans]
    pre = names.index("FreeConnexEnumerator.preprocess")
    enum = names.index("FreeConnexEnumerator.enumerate")
    assert pre < enum
    enum_span = t.spans[enum]
    assert enum_span.attrs["answers"] == len(answers)


# ----------------------------------------------------------- no-op parity


@pytest.mark.parametrize("engine", ["tuple", "columnar"])
def test_noop_tracer_parity(engine):
    """Tracing must not change any answer; the disabled path records
    nothing."""
    q = parse_query("Q(x, y) :- R(x, z), S(z, y)")
    db = _demo_db(n=150, seed=3)
    with use_engine(engine):
        clear_plan_cache()
        plain = list(enumerate_answers(q, db))
        clear_plan_cache()
        with obs.capture() as t:
            traced = list(enumerate_answers(q, db))
    assert plain == traced
    assert t.spans  # the traced run recorded something
    assert not obs.enabled()
    assert obs.tracer() is NULL_TRACER
    assert NULL_TRACER.counters == {} and NULL_TRACER.spans == []


def test_null_tracer_is_inert():
    before = dict(NULL_TRACER.counters)
    with obs.span("ignored", k=1) as sp:
        sp.set("also", "ignored")
    obs.count("nothing", 5)
    obs.gauge("nothing", 5)
    assert NULL_TRACER.counters == before == {}
    assert NULL_TRACER.events == 0


# -------------------------------------------------------------- metrics


def test_metrics_dump_shape():
    with obs.capture() as t:
        list(enumerate_answers(parse_cq(FULL_QUERY), _demo_db()))
    m = metrics_dump(t)
    json.dumps(m)
    assert m["counters"]["plancache.misses"] == 2
    assert m["gauges"]["timer_overhead_ns"] >= 0
    pc = m["plan_cache"]
    for key in ("hits", "misses", "evictions", "entries", "maxsize"):
        assert key in pc


def test_plan_cache_eviction_counter():
    cache = PlanCache(maxsize=1)
    cache.put(("a",), 1)
    cache.put(("b",), 2)
    assert cache.evictions == 1
    st = cache.stats()
    assert st["evictions"] == 1
    cache.clear()
    assert cache.stats()["evictions"] == 0


def test_global_cache_eviction_in_stats():
    st = plan_cache().stats()
    assert "evictions" in st


def test_render_explain_mentions_phases():
    with obs.capture() as t:
        list(enumerate_answers(parse_cq(FULL_QUERY), _demo_db()))
    text = render_explain(t)
    assert "FreeConnexEnumerator.preprocess" in text
    assert "FreeConnexEnumerator.enumerate" in text
    assert "plan cache:" in text
    assert "plancache.misses" in text


# --------------------------------------------------- timer thread-safety


def test_timer_overhead_thread_safe():
    from repro.perf import delay

    delay.timer_overhead_ns(recalibrate=True)
    results = []

    def worker():
        results.append(delay.timer_overhead_ns())

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert len(results) == 8
    assert all(isinstance(r, int) and r >= 0 for r in results)
    assert len(set(results)) == 1  # all threads saw the published value


def test_capture_restores_previous_tracer():
    outer = obs.enable()
    try:
        with obs.capture() as inner:
            assert obs.tracer() is inner
            assert inner is not outer
        assert obs.tracer() is outer
    finally:
        obs.disable()
