"""Tests for sparsity notions: degree, shallow minors, class descriptors
(Sections 3.1-3.2, Definitions 3.4-3.5 and 3.8)."""

from repro.data import generators
from repro.mso.treedecomp import adjacency_from_database
from repro.sparse.classes import (
    BoundedDegreeClass,
    CliqueClass,
    GridClass,
    LowDegreeClass,
)
from repro.sparse.degree import (
    is_degree_bounded,
    is_low_degree_family,
    low_degree_epsilon,
    structure_degree,
)
from repro.sparse.minors import (
    ball,
    clique_minor_number,
    has_shallow_clique_minor,
    shallow_minor_clique,
)


def test_structure_degree_matches_database():
    db = generators.path_graph(10)
    assert structure_degree(db) == db.degree()
    assert is_degree_bounded(db, 4)
    assert not is_degree_bounded(db, 1)


def test_low_degree_epsilon_monotone_for_clique_family():
    """clique_plus_independent(k): degree stays k-ish while the domain is
    ~2^k, so the epsilon witnesses shrink — a low-degree family."""
    eps = [low_degree_epsilon(generators.clique_plus_independent(k))
           for k in (3, 5, 7, 9)]
    assert is_low_degree_family(eps, threshold=0.75)
    assert eps[-1] < eps[0]


def test_dense_family_is_not_low_degree():
    def clique(n):
        return generators.graph_database(
            [(i, j) for i in range(n) for j in range(i + 1, n)])

    eps = [low_degree_epsilon(clique(n)) for n in (4, 8, 12)]
    assert not is_low_degree_family(eps, threshold=0.5)


def test_ball():
    graph = adjacency_from_database(generators.path_graph(10))
    assert ball(graph, 5, 0) == {5}
    assert ball(graph, 5, 1) == {4, 5, 6}
    assert ball(graph, 5, 2) == {3, 4, 5, 6, 7}


def test_clique_has_shallow_clique_minors():
    k5 = adjacency_from_database(generators.graph_database(
        [(i, j) for i in range(5) for j in range(i + 1, 5)]))
    # the clique IS its own 0-minor
    witness = shallow_minor_clique(k5, 5, 0)
    assert witness is not None
    assert all(len(s) == 1 for s in witness)


def test_path_has_no_large_shallow_clique_minor():
    path = adjacency_from_database(generators.path_graph(8))
    assert has_shallow_clique_minor(path, 2, 0)       # an edge = K_2
    assert not has_shallow_clique_minor(path, 3, 1)   # no K_3 at depth 1
    # (K_3 needs a cycle; paths have none at any depth)
    assert not has_shallow_clique_minor(path, 3, 2)


def test_grid_k4_minor_at_depth_1():
    grid = adjacency_from_database(generators.grid_graph(3, 3))
    assert has_shallow_clique_minor(grid, 3, 1)
    # planar graphs never contain K_5 minors at any depth
    assert not has_shallow_clique_minor(grid, 5, 1)


def test_clique_minor_number():
    cycle = adjacency_from_database(generators.cycle_graph(6))
    assert clique_minor_number(cycle, 0, 4) == 2   # only edges at depth 0
    assert clique_minor_number(cycle, 2, 4) >= 3   # contract to a triangle


def test_class_descriptors_profiles():
    bd = BoundedDegreeClass(degree=3, seed=1)
    profile = bd.profile(20, r=1, max_k=4)
    assert profile["degree"] <= 6
    assert profile["expected_nowhere_dense"]

    cl = CliqueClass()
    profile = cl.profile(6, r=1, max_k=5)
    assert profile["clique_minor_number_r1"] == 5
    assert not profile["expected_nowhere_dense"]


def test_grid_class_profile():
    g = GridClass()
    profile = g.profile(9, r=1, max_k=5)
    assert profile["clique_minor_number_r1"] <= 4  # planar: K5-minor-free
    assert profile["expected_nowhere_dense"]


def test_low_degree_class_members_grow():
    ld = LowDegreeClass(seed=0)
    eps = [low_degree_epsilon(ld.member(n)) for n in (64, 256, 1024)]
    assert eps[-1] <= eps[0] + 0.05
