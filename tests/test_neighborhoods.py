"""Tests for r-neighbourhoods, ball isomorphism and Hanf censuses."""

from collections import Counter

from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.sparse.neighborhoods import (
    TypeRegistry,
    balls_isomorphic,
    extract_ball,
    full_adjacency,
    hanf_census,
    hanf_equivalent,
)


def test_extract_ball_radii():
    db = generators.path_graph(10)
    b0 = extract_ball(db, 5, 0)
    assert b0.vertices == (5,)
    b1 = extract_ball(db, 5, 1)
    assert set(b1.vertices) == {4, 5, 6}
    b2 = extract_ball(db, 5, 2)
    assert set(b2.vertices) == {3, 4, 5, 6, 7}
    # induced edges only
    assert b1.adjacency[4] == {5}


def test_ball_with_colours():
    rel = Relation("E", 2, [(1, 2), (2, 1)])
    red = Relation("Red", 1, [(1,)])
    db = Database([rel, red])
    ball = extract_ball(db, 1, 1)
    assert ball.colours[1] == frozenset({"Red"})
    assert ball.colours[2] == frozenset()


def test_isomorphism_positive_and_negative():
    path = generators.path_graph(9)
    # two interior vertices: isomorphic r=1 balls
    b1 = extract_ball(path, 3, 1)
    b2 = extract_ball(path, 5, 1)
    assert balls_isomorphic(b1, b2)
    # endpoint vs interior: not isomorphic
    b3 = extract_ball(path, 0, 1)
    assert not balls_isomorphic(b1, b3)


def test_isomorphism_respects_colours():
    e = Relation("E", 2, [(1, 2), (2, 1), (3, 4), (4, 3)])
    c = Relation("C", 1, [(1,)])
    db = Database([e, c])
    b1 = extract_ball(db, 1, 1)
    b3 = extract_ball(db, 3, 1)
    assert not balls_isomorphic(b1, b3)  # 1 is coloured, 3 is not


def test_isomorphism_centers_must_correspond():
    # a star: center vs leaf have same vertex set at r=1 from center...
    star = generators.graph_database([(0, i) for i in range(1, 4)])
    center_ball = extract_ball(star, 0, 1)
    leaf_ball = extract_ball(star, 1, 1)
    assert not balls_isomorphic(center_ball, leaf_ball)


def test_census_path():
    db = generators.path_graph(10)
    census, registry = hanf_census(db, 1)
    assert sorted(census.values()) == [2, 8]  # endpoints vs interior
    assert len(registry.representatives) == 2


def test_census_cycle_single_type():
    db = generators.cycle_graph(12)
    census, _ = hanf_census(db, 2)
    assert len(census) == 1
    assert census.most_common(1)[0][1] == 12


def test_census_registry_shared_across_structures():
    registry = TypeRegistry()
    c1, _ = hanf_census(generators.cycle_graph(10), 1, registry=registry)
    c2, _ = hanf_census(generators.cycle_graph(14), 1, registry=registry)
    # same (unique) type id in both censuses
    assert set(c1) == set(c2)


def test_hanf_equivalence_cycles():
    """Large cycles of different lengths are Hanf-equivalent at small
    radius: local FO cannot tell them apart (locality in action)."""
    c1 = generators.cycle_graph(20)
    c2 = generators.cycle_graph(27)
    assert hanf_equivalent(c1, c2, r=2, threshold=3)


def test_hanf_distinguishes_path_from_cycle():
    assert not hanf_equivalent(generators.path_graph(20),
                               generators.cycle_graph(20), r=1, threshold=1)


def test_hanf_equivalence_implies_same_local_sentences():
    """Two Hanf-equivalent structures agree on threshold sentences of
    local patterns (the Theorem 3.1 mechanism made visible)."""
    from repro.enumeration.bounded_degree import Pattern, ThresholdSentence
    from repro.logic.atoms import Atom
    from repro.logic.terms import Variable

    x, y, z = Variable("x"), Variable("y"), Variable("z")
    c1 = generators.cycle_graph(20)
    c2 = generators.cycle_graph(27)
    assert hanf_equivalent(c1, c2, r=2, threshold=3)
    # "there are at least 3 paths of length 2" — a rank-compatible local
    # sentence: both cycles satisfy it alike
    sentence = ThresholdSentence(
        Pattern(head=(), atoms=(Atom("E", [x, y]), Atom("E", [y, z]))),
        threshold=3)
    assert sentence.holds(c1) == sentence.holds(c2)


def test_full_adjacency_skips_self_loops():
    rel = Relation("E", 2, [(1, 1), (1, 2)])
    db = Database([rel])
    adj = full_adjacency(db)
    assert 1 not in adj[1]


def test_census_linear_reuse_of_adjacency():
    """One census call builds the adjacency once (smoke: big instance,
    reasonable time)."""
    import time

    db = generators.random_bounded_degree_graph(3000, 3, seed=2)
    start = time.perf_counter()
    census, _ = hanf_census(db, 1)
    elapsed = time.perf_counter() - start
    assert sum(census.values()) == db.domain_size()
    assert elapsed < 5.0
