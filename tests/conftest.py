"""Shared fixtures: small canonical databases and queries."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.parser import parse_cq


@pytest.fixture
def small_db() -> Database:
    """A small two-relation database used across the suite."""
    return Database.from_relations({
        "R": [(1, 2), (2, 3), (3, 4), (1, 3)],
        "S": [(2, 10), (3, 30), (4, 40), (3, 10)],
    })


@pytest.fixture
def path_query():
    """The path ACQ of Example 4.1 (phi_1)."""
    return parse_cq("Q(x, y, z) :- E(x, y), E(y, z)")


@pytest.fixture
def triangle_db() -> Database:
    """A graph with exactly one triangle (1, 2, 3) plus a pendant path."""
    edges = [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5)]
    rel = Relation("E", 2)
    for u, v in edges:
        rel.add((u, v))
        rel.add((v, u))
    return Database([rel])


@pytest.fixture
def figure1_query():
    """The Figure 1 query (second S atom renamed S2: the paper reuses S at
    two different arities, which a database schema cannot)."""
    return parse_cq(
        "Q(x1, x2, x3) :- R(x1, x2), S(x2, x3, y3), R(x1, y1), "
        "T(y3, y4, y5), S2(x2, y2)"
    )
