"""Tests for the Chrome trace schema lint (repro.obs.tracelint):
document shape, X-event ordering, B/E matching, trace-identity
consistency, the file/CLI entry points, and the invariant that the
repo's own exporter always produces lint-clean documents.
"""

from __future__ import annotations

import json

from repro import obs
from repro.obs.export import chrome_trace
from repro.obs.tracelint import (lint_chrome_trace, lint_chrome_trace_file,
                                 main)


def _ok_doc(trace_id="abcd"):
    return {
        "traceEvents": [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 1, "tid": 1,
             "args": {"trace_id": trace_id}},
            {"ph": "X", "name": "b", "ts": 5, "dur": 2, "pid": 1, "tid": 1},
        ],
        "otherData": {"trace_id": trace_id},
    }


def test_clean_document_passes():
    assert lint_chrome_trace(_ok_doc()) == []


def test_missing_trace_events_is_fatal():
    assert lint_chrome_trace({}) == ["traceEvents missing or not a list"]
    assert lint_chrome_trace({"traceEvents": "nope"}) \
        == ["traceEvents missing or not a list"]


def test_unknown_phase_reported():
    doc = {"traceEvents": [{"ph": "Z", "name": "x"}]}
    assert any("unknown phase" in p for p in lint_chrome_trace(doc))


def test_x_events_must_be_start_ordered():
    doc = _ok_doc()
    doc["traceEvents"].reverse()  # ts 5 then ts 0
    problems = lint_chrome_trace(doc)
    assert any("must be emitted in start order" in p for p in problems)


def test_negative_ts_and_dur_reported():
    doc = {"traceEvents": [
        {"ph": "X", "name": "a", "ts": -1, "dur": 5},
        {"ph": "X", "name": "b", "ts": 0, "dur": -3},
    ]}
    problems = lint_chrome_trace(doc)
    assert any("bad ts" in p for p in problems)
    assert any("bad dur" in p for p in problems)


def test_unmatched_b_e_pairs_reported():
    doc = {"traceEvents": [
        {"ph": "B", "name": "open", "pid": 1, "tid": 1},
        {"ph": "E", "name": "wrong", "pid": 1, "tid": 1},
        {"ph": "E", "name": "stray", "pid": 1, "tid": 1},
        {"ph": "B", "name": "never_closed", "pid": 1, "tid": 2},
    ]}
    problems = lint_chrome_trace(doc)
    assert any("closes B" in p for p in problems)
    assert any("E without B" in p for p in problems)
    assert any("unclosed B" in p for p in problems)


def test_foreign_trace_id_reported():
    doc = _ok_doc()
    doc["traceEvents"][1]["args"] = {"trace_id": "ffff"}
    problems = lint_chrome_trace(doc)
    assert any("!= document trace_id" in p for p in problems)


def test_document_trace_id_on_no_event_reported():
    doc = _ok_doc()
    for ev in doc["traceEvents"]:
        ev.pop("args", None)
    assert any("appears on no event" in p for p in lint_chrome_trace(doc))


def test_event_less_trace_with_identity_is_clean():
    # a watchdog-retained request may have done all its work outside
    # span scopes; identity without events is not a leak
    doc = {"traceEvents": [], "otherData": {"trace_id": "abcd"}}
    assert lint_chrome_trace(doc) == []


def test_exporter_output_is_always_lint_clean():
    with obs.capture() as tr:
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
    assert lint_chrome_trace(chrome_trace(tr)) == []


def test_file_and_cli_entry_points(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_ok_doc()))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")

    assert lint_chrome_trace_file(str(good)) == []
    assert lint_chrome_trace_file(str(bad))
    assert any("unreadable" in p
               for p in lint_chrome_trace_file(str(broken)))

    assert main([str(good)]) == 0
    assert "ok" in capsys.readouterr().out
    assert main([str(good), str(bad)]) == 1
    assert main([]) == 2
