"""Unit tests for the constant-delay full-join kernel."""

import pytest

from repro.enumeration.full_acyclic import FullJoinEnumerator, reduce_relations
from repro.errors import NotAcyclicError
from repro.eval.join import VarRelation
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import build_join_tree
from repro.logic.terms import Variable

x, y, z, w = (Variable(c) for c in "xyzw")


def test_basic_join_enumeration():
    r = VarRelation((x, y), [(1, 2), (2, 3)])
    s = VarRelation((y, z), [(2, 9), (3, 8), (3, 7)])
    enum = FullJoinEnumerator([r, s], (x, y, z))
    got = list(enum)
    assert sorted(got) == [(1, 2, 9), (2, 3, 7), (2, 3, 8)]
    assert len(got) == len(set(got))


def test_head_must_cover_join_variables():
    r = VarRelation((x, y), [(1, 2)])
    with pytest.raises(ValueError):
        FullJoinEnumerator([r], (x,))


def test_cyclic_schema_rejected():
    r = VarRelation((x, y), [(1, 2)])
    s = VarRelation((y, z), [(2, 3)])
    t = VarRelation((z, x), [(3, 1)])
    enum = FullJoinEnumerator([r, s, t], (x, y, z))
    with pytest.raises(NotAcyclicError):
        enum.preprocess()


def test_empty_relation_yields_nothing():
    r = VarRelation((x, y), [(1, 2)])
    s = VarRelation((y, z))
    assert list(FullJoinEnumerator([r, s], (x, y, z))) == []


def test_dangling_tuples_filtered_by_reducer():
    r = VarRelation((x, y), [(1, 2), (5, 99)])   # (5, 99) dangles
    s = VarRelation((y, z), [(2, 9)])
    got = list(FullJoinEnumerator([r, s], (x, y, z)))
    assert got == [(1, 2, 9)]


def test_no_reduce_flag_keeps_consistent_inputs_working():
    r = VarRelation((x, y), [(1, 2)])
    s = VarRelation((y, z), [(2, 9)])
    got = list(FullJoinEnumerator([r, s], (x, y, z), reduce=False))
    assert got == [(1, 2, 9)]


def test_cartesian_components():
    r = VarRelation((x,), [(1,), (2,)])
    s = VarRelation((y,), [(5,), (6,)])
    got = set(FullJoinEnumerator([r, s], (x, y)))
    assert got == {(1, 5), (1, 6), (2, 5), (2, 6)}


def test_head_order_controls_output_order_of_columns():
    r = VarRelation((x, y), [(1, 2)])
    got = list(FullJoinEnumerator([r], (y, x)))
    assert got == [(2, 1)]


def test_no_dead_ends_during_enumeration():
    """After reduction, every probe must be non-empty: instrument by
    checking the enumerator produces steadily (every consecutive pair of
    outputs exists without long stalls is covered by perf tests; here we
    assert exact output count on a bigger random instance)."""
    import random

    rng = random.Random(0)
    r = VarRelation((x, y))
    s = VarRelation((y, z))
    for _ in range(200):
        r.add((rng.randrange(20), rng.randrange(20)))
        s.add((rng.randrange(20), rng.randrange(20)))
    expected = {(a, b, c) for (a, b) in r for (b2, c) in s if b == b2}
    got = list(FullJoinEnumerator([r, s], (x, y, z)))
    assert set(got) == expected
    assert len(got) == len(expected)


def test_reduce_relations_pairwise_consistency():
    r = VarRelation((x, y), [(1, 2), (5, 99)])
    s = VarRelation((y, z), [(2, 9), (42, 1)])
    h = Hypergraph({x, y, z}, [frozenset((x, y)), frozenset((y, z))])
    tree = build_join_tree(h)
    red = reduce_relations(tree, [r, s])
    assert set(red[0]) == {(1, 2)}
    assert set(red[1]) == {(2, 9)}
