"""Dashboard rendering (:mod:`repro.obs.report`) against synthetic
history."""

import pytest

from repro.obs.observatory import Observatory, backfill_provenance, \
    make_record
from repro.obs.report import render_dashboard, trajectory_svg, \
    write_dashboard

TS = "2026-08-05T00:00:00+00:00"


def _record(case, value, exponent=0.0, expectation=None, suite="bench"):
    points = [{"n": n, "value": value * (n ** exponent),
               "preprocessing_seconds": 1e-6 * n, "outputs": 100}
              for n in (100, 1000, 10000)]
    return make_record(suite, case, "delay_p50_seconds", points,
                       expectation=expectation,
                       provenance=backfill_provenance(TS))


@pytest.fixture
def history(tmp_path):
    obs = Observatory(str(tmp_path / "history"))
    for value in (1e-6, 1.05e-6, 0.98e-6, 1.01e-6, 1.0e-6):
        obs.append(_record("fc/delay", value,
                           expectation="constant-delay"))
    obs.append(_record("hard/total", 1e-9, exponent=1.5,
                       expectation="superlinear"))
    return obs


def test_dashboard_renders_cases_and_verdicts(history):
    html = render_dashboard(history)
    assert "<svg" in html
    assert "fc/delay" in html and "hard/total" in html
    assert "constant-delay" in html and "superlinear" in html
    assert "badge-ok" in html
    assert "2 cases" in html and "6 recorded runs" in html
    assert "slope" in html


def test_dashboard_shows_regression_badge(history):
    history.append(_record("fc/delay", 2e-5,
                           expectation="constant-delay"))
    html = render_dashboard(history)
    assert "badge-regression" in html
    assert "1 regression flag" in html


def test_dashboard_shows_verdict_mismatch(tmp_path):
    obs = Observatory(str(tmp_path))
    obs.append(_record("fc/delay", 1e-9, exponent=1.0,
                       expectation="constant-delay"))
    html = render_dashboard(obs)
    assert "badge-mismatch" in html
    assert "1 verdict mismatch" in html


def test_dashboard_empty_history(tmp_path):
    html = render_dashboard(Observatory(str(tmp_path / "none")))
    assert "history is empty" in html


def test_write_dashboard_returns_regressions(history, tmp_path):
    history.append(_record("fc/delay", 5e-5,
                           expectation="constant-delay"))
    out = tmp_path / "report.html"
    path, regressions = write_dashboard(str(out), history.history_dir)
    assert out.exists()
    assert "<!DOCTYPE html>" in out.read_text()
    assert any(r.flagged for r in regressions)


def test_trajectory_svg_single_run(history):
    runs = history.cases()[("bench", "hard/total")]
    svg = trajectory_svg(runs, None)
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "<circle" in svg and "<title>" in svg


def test_svg_escapes_attrs(tmp_path):
    obs = Observatory(str(tmp_path))
    rec = _record("weird/<case>&", 1e-6)
    obs.append(rec)
    html = render_dashboard(obs)
    assert "weird/&lt;case&gt;&amp;" in html
    assert "<case>&" not in html
