"""Tests for the dynamic free-connex view (query evaluation under
updates — the extension direction flagged by the paper's conclusion)."""

import random

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.dynamic import DynamicFreeConnexView
from repro.errors import NotFreeConnexError, UnsupportedQueryError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq

QUERIES = [
    "Q(x) :- R(x, z), S(z, y)",
    "Q(x, y) :- R(x, w), S(y, u), B(u)",
    "Q() :- R(x, z), S(z, y)",
    "Q(x, y, z) :- R(x, y), S(y, z)",
    "Q(x1, x2, x3) :- R(x1, x2), S3(x2, x3, y3), R(x1, y1), T3(y3, y4, y5), S2(x2, y2)",
]


def replay_and_check(text, steps=200, seed=0, check_every=29):
    q = parse_cq(text)
    arities = q.relation_arities()
    rng = random.Random(seed)
    view = DynamicFreeConnexView(q)
    rels = {name: Relation(name, ar) for name, ar in arities.items()}
    present = {name: set() for name in arities}
    for step in range(steps):
        name = rng.choice(list(arities))
        ar = arities[name]
        if present[name] and rng.random() < 0.4:
            tup = rng.choice(sorted(present[name]))
            present[name].discard(tup)
            rels[name].discard(tup)
            view.delete(name, tup)
        else:
            tup = tuple(rng.randrange(5) for _ in range(ar))
            present[name].add(tup)
            rels[name].add(tup)
            view.insert(name, tup)
        if step % check_every == 0 or step == steps - 1:
            db = Database([r.copy() for r in rels.values()], domain=range(5))
            truth = evaluate_cq_naive(q, db)
            assert view.answers() == truth, (text, step)
            assert view.count_answers() == len(truth), (text, step)
            assert view.is_satisfiable() == bool(truth), (text, step)


@pytest.mark.parametrize("text", QUERIES)
def test_random_update_replay(text):
    replay_and_check(text)


def test_initial_load_from_database():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    db = generators.random_database({"R": 2, "S": 2}, 6, 20, seed=1)
    view = DynamicFreeConnexView(q, db)
    assert view.answers() == evaluate_cq_naive(q, db)


def test_insert_is_idempotent_and_delete_of_missing_is_noop():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    view = DynamicFreeConnexView(q)
    view.insert("R", (1, 2))
    view.insert("R", (1, 2))
    view.insert("S", (2, 9))
    assert view.answers() == {(1,)}
    view.delete("R", (7, 7))  # no-op
    assert view.answers() == {(1,)}
    view.delete("R", (1, 2))
    assert view.answers() == set()
    # deleting again is still a no-op
    view.delete("R", (1, 2))
    assert view.answers() == set()


def test_alive_propagation_chain():
    # chain R(x,z), S(z,w), T(w,y): T's tuples control aliveness two up
    q = parse_cq("Q(x) :- R(x, z), S(z, w), T(w, y)")
    view = DynamicFreeConnexView(q)
    view.insert("R", (1, 2))
    view.insert("S", (2, 3))
    assert not view.is_satisfiable()
    view.insert("T", (3, 4))
    assert view.answers() == {(1,)}
    view.delete("T", (3, 4))
    assert view.answers() == set()
    stats = view.stats()
    assert stats["stored_tuples"] == 2
    assert stats["alive_tuples"] < stats["stored_tuples"] + 1


def test_self_join_updates():
    q = parse_cq("Q(x) :- R(x, y), R(y, z)")
    view = DynamicFreeConnexView(q)
    view.insert("R", (1, 2))
    assert view.answers() == set()
    view.insert("R", (2, 3))
    assert view.answers() == {(1,)}
    view.delete("R", (2, 3))
    assert view.answers() == set()


def test_boolean_view():
    q = parse_cq("Q() :- R(x, z), S(z, y)")
    view = DynamicFreeConnexView(q)
    assert not view.is_satisfiable()
    view.insert("R", (1, 2))
    view.insert("S", (2, 3))
    assert view.is_satisfiable()
    assert view.count_answers() == 1
    view.delete("S", (2, 3))
    assert not view.is_satisfiable()
    assert view.count_answers() == 0


def test_constants_in_atoms():
    q = parse_cq("Q(y) :- R(1, y)")
    view = DynamicFreeConnexView(q)
    view.insert("R", (1, 5))
    view.insert("R", (2, 6))  # does not match the constant
    assert view.answers() == {(5,)}


def test_rejects_unsupported_queries():
    with pytest.raises(NotFreeConnexError):
        DynamicFreeConnexView(parse_cq("Q(x, y) :- R(x, z), S(z, y)"))
    with pytest.raises(UnsupportedQueryError):
        DynamicFreeConnexView(parse_cq("Q(x) :- R(x, y), x != y"))


def test_update_cost_is_localised():
    """Inserting into a relation far from the answer should not rebuild:
    measured as stats invariance of the untouched subtree."""
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    view = DynamicFreeConnexView(q)
    for i in range(50):
        view.insert("R", (i, i % 5))
    before = view.stats()["alive_tuples"]
    assert before == 0  # nothing alive yet: S is empty
    view.insert("S", (0, 99))
    after = view.stats()["alive_tuples"]
    # exactly the S tuple + the R tuples with z = 0 became alive
    assert after == 1 + sum(1 for i in range(50) if i % 5 == 0)


# -------------------------------------------------------- materialized mode


def test_materialized_counts_and_enumeration():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    view = DynamicFreeConnexView(q, materialize=True)
    view.insert("R", (1, 2))
    view.insert("R", (3, 2))
    view.insert("S", (2, 9))
    assert view.count_answers() == 2
    assert view.answers() == {(1,), (3,)}


def test_materialized_delta_stream_matches_truth():
    q = parse_cq("Q(x, y) :- R(x, w), S(y, u), B(u)")
    view = DynamicFreeConnexView(q, materialize=True)
    rng = random.Random(5)
    arities = q.relation_arities()
    rels = {n: Relation(n, a) for n, a in arities.items()}
    present = {n: set() for n in arities}
    prev = set()
    for step in range(150):
        name = rng.choice(list(arities))
        ar = arities[name]
        if present[name] and rng.random() < 0.4:
            t = rng.choice(sorted(present[name]))
            present[name].discard(t)
            rels[name].discard(t)
            view.delete(name, t)
        else:
            t = tuple(rng.randrange(4) for _ in range(ar))
            present[name].add(t)
            rels[name].add(t)
            view.insert(name, t)
        if step % 11 == 0 or step == 149:
            db = Database([r.copy() for r in rels.values()], domain=range(4))
            truth = evaluate_cq_naive(q, db)
            added, removed = view.pop_changes()
            assert set(added) == truth - prev, step
            assert set(removed) == prev - truth, step
            assert view.answers() == truth, step
            prev = truth


def test_add_remove_within_window_cancels():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    view = DynamicFreeConnexView(q, materialize=True)
    view.insert("R", (1, 2))
    view.insert("S", (2, 9))
    view.delete("S", (2, 9))
    added, removed = view.pop_changes()
    assert added == [] and removed == []


def test_boolean_materialized_deltas():
    q = parse_cq("Q() :- R(x, z), S(z, y)")
    view = DynamicFreeConnexView(q, materialize=True)
    view.insert("R", (1, 2))
    view.insert("S", (2, 3))
    assert view.pop_changes() == ([()], [])
    assert view.count_answers() == 1
    view.delete("S", (2, 3))
    assert view.pop_changes() == ([], [()])


def test_pop_changes_requires_materialize():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    view = DynamicFreeConnexView(q)
    with pytest.raises(UnsupportedQueryError):
        view.pop_changes()
