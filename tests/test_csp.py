"""Tests for the NCQ / CSP solvers (Theorem 4.31)."""

import random

import pytest

from repro.csp.cnf import (
    Clause,
    clause,
    clauses_satisfiable_bruteforce,
    cnf_to_ncq,
    is_tautology,
    ncq_to_clauses,
)
from repro.csp.davis_putnam import DPStats, davis_putnam
from repro.csp.ncq_solver import decide_ncq, ncq_answers, solve_negative_csp
from repro.data import generators
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import UnsupportedQueryError
from repro.hypergraph.acyclicity import nest_point_elimination_order
from repro.logic.parser import parse_query


def test_clause_helpers():
    assert is_tautology(clause(1, -1, 2))
    assert not is_tautology(clause(1, 2))


def test_cnf_to_ncq_roundtrip():
    cnf = [[1, -2], [2, 3], [-1, -3]]
    ncq, db = cnf_to_ncq(cnf, 3)
    clauses, index = ncq_to_clauses(ncq, db)
    assert len(clauses) == 3
    assert clauses_satisfiable_bruteforce(clauses, len(index)) == \
        clauses_satisfiable_bruteforce([frozenset(c) for c in cnf], 3)


def test_ncq_to_clauses_requires_boolean_domain():
    db = Database.from_relations({"R": [(1, 2)]})
    q = parse_query("Q() :- not R(x, y)")
    with pytest.raises(UnsupportedQueryError):
        ncq_to_clauses(q, db)


def test_ncq_to_clauses_constants_and_repeats():
    # forbidden tuple inconsistent with a repeated variable is skipped
    db = Database.from_relations({"R": [(0, 1), (0, 0)]}, domain=[0, 1])
    q = parse_query("Q() :- not R(x, x)")
    clauses, _ = ncq_to_clauses(q, db)
    assert len(clauses) == 1  # only (0, 0) matches x, x


def test_ncq_to_clauses_fully_constant_violation():
    db = Database.from_relations({"R": [(0,)], "S": [(1,)]}, domain=[0, 1])
    q = parse_query("Q() :- not R(0), not S(x)")
    clauses, _ = ncq_to_clauses(q, db)
    assert frozenset() in clauses  # not R(0) is plainly false


def test_davis_putnam_matches_bruteforce_random():
    rng = random.Random(0)
    for trial in range(30):
        n = rng.randint(3, 7)
        m = rng.randint(1, 16)
        cnf = generators.random_kcnf(n, m, k=3, seed=trial)
        clauses = [frozenset(c) for c in cnf]
        stats = DPStats()
        got = davis_putnam(clauses, list(range(1, n + 1)), stats=stats)
        truth = clauses_satisfiable_bruteforce(clauses, n)
        assert got == truth, (trial, cnf)
        assert stats.satisfiable == truth


def test_davis_putnam_empty_clause_unsat():
    assert not davis_putnam([frozenset()], [1])


def test_davis_putnam_tautologies_dropped():
    assert davis_putnam([clause(1, -1)], [1])


def test_davis_putnam_stats_recorded():
    stats = DPStats()
    davis_putnam([clause(1, 2), clause(-1, 2), clause(-2, 3)], [1, 2, 3], stats)
    assert stats.eliminations >= 1
    assert stats.peak_clauses >= 3


def test_decide_ncq_beta_acyclic_uses_dp():
    # chain clauses -> beta-acyclic -> quasi-linear path
    cnf = [[1, 2], [-2, 3], [-3, 4]]
    ncq, db = cnf_to_ncq(cnf, 4)
    assert ncq.is_beta_acyclic()
    stats = DPStats()
    assert decide_ncq(ncq, db, stats=stats)
    assert stats.satisfiable is True  # the DP route was taken


def test_decide_ncq_falls_back_on_non_beta_acyclic():
    cnf = [[1, 2], [-2, 3], [-3, -1]]
    ncq, db = cnf_to_ncq(cnf, 3)
    assert not ncq.is_beta_acyclic()
    assert decide_ncq(ncq, db) == clauses_satisfiable_bruteforce(
        [frozenset(c) for c in cnf], 3)


def test_decide_ncq_non_boolean_domain():
    # forbid the diagonal over a 3-element domain: satisfiable
    db = Database.from_relations(
        {"R": [(v, v) for v in range(3)]}, domain=range(3))
    q = parse_query("Q() :- not R(x, y)")
    assert decide_ncq(q, db)
    # forbid everything: unsatisfiable
    db2 = Database.from_relations(
        {"R": [(a, b) for a in range(2) for b in range(2)]}, domain=range(2))
    assert not decide_ncq(parse_query("Q() :- not R(x, y)"), db2)


def test_solve_negative_csp_enumerates_all():
    db = Database.from_relations({"R": [(0, 0)]}, domain=[0, 1])
    q = parse_query("Q() :- not R(x, y)")
    sols = list(solve_negative_csp(q, db))
    assert len(sols) == 3  # all pairs except (0, 0)


def test_ncq_answers_projection():
    db = Database.from_relations({"R": [(0, 0), (1, 1)]}, domain=[0, 1])
    q = parse_query("Q(x) :- not R(x, y)")
    # x = 0 works with y = 1; x = 1 works with y = 0
    assert ncq_answers(q, db) == {(0,), (1,)}


def test_nest_point_order_drives_dp_without_blowup():
    """On a beta-acyclic chain, the nest-point order keeps the peak clause
    count linear; a bad order on the same instance can be larger."""
    n = 30
    cnf = [[i, -(i + 1)] for i in range(1, n)]
    ncq, db = cnf_to_ncq(cnf, n)
    order_vars = nest_point_elimination_order(ncq.hypergraph())
    assert order_vars is not None
    clauses, index = ncq_to_clauses(ncq, db)
    stats = DPStats()
    davis_putnam(clauses, [index[v] for v in order_vars if v in index], stats)
    assert stats.peak_clauses <= len(clauses) + 2
