"""Unit tests for the synthetic generators."""

from repro.data import generators
from repro.sparse.degree import low_degree_epsilon


def test_random_relation_deterministic():
    r1 = generators.random_relation("R", 2, range(10), 20, seed=5)
    r2 = generators.random_relation("R", 2, range(10), 20, seed=5)
    assert r1 == r2


def test_random_database_schema():
    db = generators.random_database({"R": 2, "S": 3}, 8, 15, seed=1)
    assert db.relation("R").arity == 2
    assert db.relation("S").arity == 3
    assert set(db.domain) >= db.relation("R").domain_values()


def test_path_and_cycle_degree():
    assert generators.path_graph(10).degree() <= 4  # 2 neighbours x 2 orientations
    cyc = generators.cycle_graph(10)
    assert all(d == 4 for d in cyc.degrees().values())


def test_grid_graph_shape():
    db = generators.grid_graph(3, 4)
    assert db.domain_size() == 12
    # inner vertex (2,2) has 4 neighbours -> degree 8 with both orientations
    assert db.degrees()[(2, 2)] == 8


def test_bounded_degree_generator_respects_bound():
    for seed in range(3):
        db = generators.random_bounded_degree_graph(50, 3, seed=seed)
        # relational degree is twice the graph degree (both orientations)
        assert db.degree() <= 6


def test_bounded_degree_database():
    db = generators.random_bounded_degree_database(30, 4, {"R": 2, "S": 3}, seed=2)
    assert db.degree() <= 4


def test_clique_plus_independent_is_low_degree():
    db = generators.clique_plus_independent(4)
    assert db.domain_size() == 4 + 2 ** 4
    # degree ~ k on ~2^k vertices: epsilon witness well below 1
    assert low_degree_epsilon(db) < 0.8


def test_low_degree_graph():
    db = generators.low_degree_graph(256, seed=0)
    assert db.degree() <= 2 * 9  # max degree log2(256)+1, two orientations


def test_bipartite_generator():
    db, a, b = generators.random_bipartite_graph(5, 0.5, seed=3)
    assert len(a) == len(b) == 5
    for u, v in db.relation("E"):
        assert u in a and v in b


def test_matrix_encoding_roundtrip():
    a = generators.boolean_matrix(4, 0.5, seed=1)
    b = generators.boolean_matrix(4, 0.5, seed=2)
    db = generators.matrices_to_database(a, b)
    assert set(db.relation("A")) == {(i, j) for i in range(4) for j in range(4) if a[i][j]}
    assert set(db.relation("B")) == {(i, j) for i in range(4) for j in range(4) if b[i][j]}


def test_kdnf_and_kcnf_shapes():
    terms = generators.random_kdnf(10, 7, k=3, seed=4)
    assert len(terms) == 7
    assert all(len(t) == 3 for t in terms)
    assert all(1 <= abs(l) <= 10 for t in terms for l in t)
    clauses = generators.random_kcnf(10, 7, k=3, seed=4)
    assert len(clauses) == 7


def test_kdnf_no_repeated_variables_in_term():
    for term in generators.random_kdnf(6, 20, k=3, seed=9):
        variables = [abs(l) for l in term]
        assert len(variables) == len(set(variables))
