"""Tests for random-access / random-order enumeration (the [23]
extension the paper's Section 4.3 points at)."""

import pytest

from repro.data import generators
from repro.data.database import Database
from repro.enumeration.random_access import RandomAccessEnumerator
from repro.errors import NotFreeConnexError, UnsupportedQueryError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq

QUERIES = [
    "Q(x) :- R(x, z), S(z, y)",
    "Q(x, y) :- R(x, w), S(y, u), B(u)",
    "Q(x, y, z) :- R(x, y), S(y, z)",
    "Q(a) :- T(a, b, c), R(b, x), S(c, y)",
]


def make_db(seed):
    return generators.random_database({"R": 2, "S": 2, "B": 1, "T": 3},
                                      6, 14, seed=seed)


def test_count_and_in_order_match_naive():
    for text in QUERIES:
        q = parse_cq(text)
        for seed in range(4):
            db = make_db(seed)
            ra = RandomAccessEnumerator(q, db)
            truth = evaluate_cq_naive(q, db)
            assert ra.count() == len(ra) == len(truth), (text, seed)
            inorder = list(ra.in_order())
            assert len(inorder) == len(set(inorder))
            assert set(inorder) == truth, (text, seed)


def test_getitem_and_bounds():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    db = make_db(1)
    ra = RandomAccessEnumerator(q, db)
    if ra.count():
        assert ra[0] == ra.answer(0)
        assert ra[ra.count() - 1] == ra.answer(ra.count() - 1)
    with pytest.raises(IndexError):
        ra.answer(ra.count())
    with pytest.raises(IndexError):
        ra.answer(-1)


def test_answers_are_distinct_across_indexes():
    q = parse_cq("Q(x, y, z) :- R(x, y), S(y, z)")
    db = make_db(2)
    ra = RandomAccessEnumerator(q, db)
    seen = {ra.answer(j) for j in range(ra.count())}
    assert len(seen) == ra.count()


def test_random_order_is_a_permutation():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    db = make_db(3)
    ra = RandomAccessEnumerator(q, db)
    perm1 = list(ra.random_order(seed=1))
    perm2 = list(ra.random_order(seed=2))
    assert sorted(perm1) == sorted(list(ra.in_order()))
    assert len(perm1) == len(set(perm1))
    if ra.count() > 5:
        assert perm1 != perm2 or ra.count() <= 1  # different seeds differ


def test_sampling():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    db = make_db(4)
    ra = RandomAccessEnumerator(q, db)
    if ra.count() >= 3:
        sample = ra.sample(3, seed=1, replacement=False)
        assert len(sample) == len(set(sample)) == 3
        with_repl = ra.sample(10, seed=1, replacement=True)
        assert len(with_repl) == 10
        assert set(with_repl) <= set(ra.in_order())
    with pytest.raises(ValueError):
        ra.sample(ra.count() + 1, replacement=False)


def test_boolean_query():
    q = parse_cq("Q() :- R(x, z), S(z, y)")
    db = Database.from_relations({"R": [(1, 2)], "S": [(2, 3)]})
    ra = RandomAccessEnumerator(q, db)
    assert ra.count() == 1
    assert ra.answer(0) == ()
    db2 = Database.from_relations({"R": [(1, 2)], "S": [(9, 3)]})
    assert RandomAccessEnumerator(q, db2).count() == 0


def test_empty_answer_set():
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    db = Database.from_relations({"R": [(1, 2)], "S": [(9, 9)]})
    ra = RandomAccessEnumerator(q, db)
    assert ra.count() == 0
    assert list(ra.in_order()) == []


def test_rejects_non_free_connex_and_comparisons():
    db = make_db(0)
    with pytest.raises(NotFreeConnexError):
        RandomAccessEnumerator(parse_cq("Q(x, y) :- R(x, z), S(z, y)"), db)
    with pytest.raises(UnsupportedQueryError):
        RandomAccessEnumerator(parse_cq("Q(x) :- R(x, y), x != y"), db)


def test_large_instance_random_access_is_fast():
    import time

    db = generators.random_database({"R": 2, "S": 2}, 300, 5000, seed=5)
    q = parse_cq("Q(x) :- R(x, z), S(z, y)")
    ra = RandomAccessEnumerator(q, db)
    n = ra.count()
    assert n > 0
    start = time.perf_counter()
    for i in range(500):
        ra.answer((i * 2654435761) % n)
    per_access = (time.perf_counter() - start) / 500
    assert per_access < 1e-3  # far below a linear scan
