"""Tests for UCQ enumeration via union extensions (Theorem 4.13)."""

import pytest

from repro.data import generators
from repro.enumeration.ucq_union import (
    MaterialisedUnionEnumerator,
    UCQEnumerator,
    enumerate_ucq,
)
from repro.errors import NotFreeConnexError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq, parse_query
from repro.logic.ucq import UnionOfConjunctiveQueries


def equation1_ucq():
    return UnionOfConjunctiveQueries([
        parse_cq("Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w)"),
        parse_cq("Q(x, z, y) :- R1(x, z), R2(z, y)"),
    ])


def truth(ucq, db):
    out = set()
    for d in ucq:
        out |= evaluate_cq_naive(d, db)
    return out


def test_equation1_enumeration_randomized():
    ucq = equation1_ucq()
    for seed in range(6):
        db = generators.random_database({"R1": 2, "R2": 2, "R3": 2}, 6, 15,
                                        seed=seed)
        got = list(UCQEnumerator(ucq, db))
        assert len(got) == len(set(got)), seed
        assert set(got) == truth(ucq, db), seed


def test_all_free_connex_union():
    ucq = parse_query("Q(x) :- R1(x, y); Q(x) :- R2(x, y)")
    for seed in range(4):
        db = generators.random_database({"R1": 2, "R2": 2}, 6, 12, seed=seed)
        got = list(UCQEnumerator(ucq, db))
        assert set(got) == truth(ucq, db)
        assert len(got) == len(set(got))


def test_overlapping_disjuncts_deduplicated():
    ucq = parse_query("Q(x) :- R1(x, y); Q(x) :- R1(x, z)")
    db = generators.random_database({"R1": 2}, 5, 10, seed=1)
    got = list(UCQEnumerator(ucq, db))
    assert len(got) == len(set(got))
    assert set(got) == truth(ucq, db)


def test_intractable_union_raises_then_fallback_works():
    ucq = UnionOfConjunctiveQueries([
        parse_cq("Q(x, y) :- A(x, z), B(z, y)"),
        parse_cq("Q(x, y) :- C(x, z), D(z, y)"),
    ])
    db = generators.random_database({"A": 2, "B": 2, "C": 2, "D": 2}, 5, 10,
                                    seed=2)
    with pytest.raises(NotFreeConnexError):
        enum = UCQEnumerator(ucq, db)
        enum.preprocess()
    fallback = enumerate_ucq(ucq, db)
    assert isinstance(fallback, MaterialisedUnionEnumerator)
    assert set(fallback) == truth(ucq, db)


def test_enumerate_ucq_picks_fast_engine():
    ucq = equation1_ucq()
    db = generators.random_database({"R1": 2, "R2": 2, "R3": 2}, 5, 10, seed=3)
    enum = enumerate_ucq(ucq, db)
    assert isinstance(enum, UCQEnumerator)


def test_materialised_union_sorted_and_exact():
    ucq = equation1_ucq()
    db = generators.random_database({"R1": 2, "R2": 2, "R3": 2}, 5, 12, seed=4)
    got = list(MaterialisedUnionEnumerator(ucq, db))
    assert set(got) == truth(ucq, db)
    assert got == sorted(got, key=repr)


def test_three_disjunct_union():
    ucq = UnionOfConjunctiveQueries([
        parse_cq("Q(x, y, w) :- R1(x, z), R2(z, y), R3(x, w)"),
        parse_cq("Q(x, z, y) :- R1(x, z), R2(z, y)"),
        parse_cq("Q(a, b, c) :- R3(a, b), R1(b, c)"),
    ])
    for seed in range(4):
        db = generators.random_database({"R1": 2, "R2": 2, "R3": 2}, 5, 12,
                                        seed=seed)
        got = list(enumerate_ucq(ucq, db))
        assert len(got) == len(set(got))
        assert set(got) == truth(ucq, db)
