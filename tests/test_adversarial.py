"""Adversarial / failure-injection tests: odd domains, empty relations,
mixed value types, degenerate queries — every engine must stay correct
or fail loudly with the library's own exceptions."""

import pytest

from repro.core.planner import answer, count, decide, enumerate_answers
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import ReproError, SchemaMismatchError
from repro.eval.naive import evaluate_cq_naive
from repro.logic.parser import parse_cq, parse_query


def test_string_and_tuple_domains():
    db = Database.from_relations({
        "R": [("a", ("x", 1)), ("b", ("y", 2))],
        "S": [(("x", 1), 3.5)],
    })
    q = parse_cq("Q(u) :- R(u, m), S(m, w)")
    assert answer(q, db) == {("a",)}
    assert count(q, db) == 1


def test_mixed_value_types_in_one_column():
    db = Database.from_relations({"R": [(1, "one"), ("two", 2)]})
    q = parse_cq("Q(x, y) :- R(x, y)")
    assert answer(q, db) == {(1, "one"), ("two", 2)}


def test_unicode_values():
    db = Database.from_relations({"R": [("héllo", "wörld")]})
    q = parse_cq("Q(x) :- R(x, y)")
    assert answer(q, db) == {("héllo",)}


def test_empty_relations_everywhere():
    db = Database([Relation("R", 2), Relation("S", 2)], domain=[1, 2])
    for text in ["Q(x) :- R(x, z), S(z, y)",
                 "Q(x, y) :- R(x, z), S(z, y)",
                 "Q() :- R(x, y)"]:
        q = parse_cq(text)
        assert answer(q, db) == set()
        assert count(q, db) == 0
        if q.is_boolean():
            assert not decide(q, db)


def test_missing_relation_raises_schema_error():
    db = Database.from_relations({"R": [(1, 2)]})
    q = parse_cq("Q(x) :- R(x, y), Nope(y)")
    with pytest.raises(SchemaMismatchError):
        answer(q, db)


def test_arity_mismatch_raises():
    db = Database.from_relations({"R": [(1, 2)]})
    q = parse_cq("Q(x) :- R(x, y, z)")
    with pytest.raises(ReproError):
        answer(q, db)


def test_singleton_domain():
    db = Database.from_relations({"R": [(0, 0)]})
    q = parse_cq("Q(x) :- R(x, y), R(y, x)")
    assert answer(q, db) == {(0,)}


def test_wide_tuples():
    wide = tuple(range(9))
    db = Database.from_relations({"W": [wide]})
    q = parse_cq("Q(a, i) :- W(a, b, c, d, e, f, g, h, i)")
    assert answer(q, db) == {(0, 8)}


def test_all_constants_atom():
    db = Database.from_relations({"R": [(1, 2)], "S": [(5,)]})
    yes = parse_cq("Q(x) :- S(x), R(1, 2)")
    assert answer(yes, db) == {(5,)}
    no = parse_cq("Q(x) :- S(x), R(2, 1)")
    assert answer(no, db) == set()


def test_repeated_variable_throughout():
    db = Database.from_relations({"R": [(1, 1, 1), (1, 2, 1)]})
    q = parse_cq("Q(x) :- R(x, x, x)")
    assert answer(q, db) == {(1,)}


def test_none_as_a_domain_value():
    db = Database.from_relations({"R": [(None, 1), (2, None)]})
    q = parse_cq("Q(x, y) :- R(x, y)")
    assert answer(q, db) == {(None, 1), (2, None)}


def test_deep_chain_query_no_recursion_blowup():
    n = 40
    atoms = ", ".join(f"R(x{i}, x{i + 1})" for i in range(n))
    q = parse_cq(f"Q(x0) :- {atoms}")
    db = Database.from_relations({"R": [(i, i + 1) for i in range(n + 1)]})
    assert answer(q, db) == {(i,) for i in range(2)}  # chains of length 40


def test_isolated_domain_elements_matter_for_fo():
    from repro.logic.fo_parser import parse_fo
    from repro.eval.naive import model_check_fo

    db = Database.from_relations({"R": [(1, 1)]})
    db.add_domain_values([99])
    f = parse_fo("forall x. R(x, x)")
    assert not model_check_fo(f, db)  # 99 falsifies


def test_self_join_heavy_query():
    db = Database.from_relations({"R": [(1, 2), (2, 3), (3, 4)]})
    q = parse_cq("Q(a, d) :- R(a, b), R(b, c), R(c, d)")
    assert answer(q, db) == {(1, 4)}
    assert count(q, db) == 1


def test_ucq_with_empty_and_nonempty_disjuncts():
    db = Database([Relation("A", 1, [(1,)]), Relation("B", 1)])
    u = parse_query("Q(x) :- A(x); Q(x) :- B(x)")
    assert answer(u, db) == {(1,)}


def test_float_values():
    db = Database.from_relations({"R": [(1.5, 2.5), (2.5, 3.5)]})
    q = parse_cq("Q(x, z) :- R(x, y), R(y, z)")
    assert answer(q, db) == {(1.5, 3.5)}
    q2 = parse_cq("Q(x) :- R(x, y), x < y")
    assert answer(q2, db) == {(1.5,), (2.5,)}
