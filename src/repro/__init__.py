"""repro — fine-grained complexity analysis of queries, executable.

A faithful, from-scratch reproduction of Arnaud Durand, *Fine-Grained
Complexity Analysis of Queries: From Decision to Counting and
Enumeration* (PODS 2020): every structural notion, every algorithm and
every lower-bound reduction of the survey, over a pure-Python in-memory
relational engine.

Quickstart::

    from repro import Database, parse_query, classify, count, enumerate_answers

    db = Database.from_relations({
        "R": [(1, 2), (2, 3)],
        "S": [(2, 10), (3, 30)],
    })
    q = parse_query("Q(x, y) :- R(x, z), S(z, y)")
    print(classify(q))              # acyclic? free-connex? which theorem?
    print(count(q, db))             # routed to the best counting engine
    for row in enumerate_answers(q, db):
        print(row)                  # constant delay when free-connex

Subpackages: ``data`` (relations, databases, generators), ``logic``
(CQ/UCQ/NCQ/FO ASTs and parser), ``hypergraph`` (join trees, acyclicity,
free-connex, star sizes), ``eval`` (Yannakakis & baselines),
``enumeration`` (constant/linear delay engines, Gray codes),
``counting`` (star-size counting, FPRAS), ``csp`` (beta-acyclic NCQ),
``mso`` (treewidth DP), ``sparse`` (degrees & shallow minors),
``reductions`` (lower bounds), ``core`` (classifier & planner), ``perf``
(delay & scaling measurements).
"""

from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.parser import parse_query, parse_cq
from repro.logic.terms import Constant, Variable
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.core.classify import classify
from repro.core.planner import answer, count, decide, enumerate_answers
from repro.core.report import ComplexityReport, TaskVerdict
from repro.errors import (
    EnumerationError,
    MalformedQueryError,
    NotAcyclicError,
    NotFreeConnexError,
    QuerySyntaxError,
    ReproError,
    SchemaMismatchError,
    UnsupportedQueryError,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Relation",
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "NegativeConjunctiveQuery",
    "Variable",
    "Constant",
    "parse_query",
    "parse_cq",
    "classify",
    "answer",
    "count",
    "decide",
    "enumerate_answers",
    "ComplexityReport",
    "TaskVerdict",
    "ReproError",
    "QuerySyntaxError",
    "MalformedQueryError",
    "SchemaMismatchError",
    "NotAcyclicError",
    "NotFreeConnexError",
    "UnsupportedQueryError",
    "EnumerationError",
    "__version__",
]
