"""Per-output delay measurement (the empirical rendering of
Constant-Delay_lin, Section 2.3.3).

The theorems speak RAM steps; on CPython we measure wall-clock gaps
between consecutive outputs and compare their *growth in the database
size* — a constant-delay algorithm shows a flat median-delay curve while
a linear-delay one grows proportionally.  Medians (and high percentiles)
are reported instead of means because the first probe after preprocessing
may fault caches and the GC adds stray spikes.

Timing uses :func:`time.perf_counter_ns` and subtracts the measured cost
of the clock call pair itself (calibrated once per process, re-measured
lazily): the batched columnar pipeline emits answers tens of nanoseconds
apart inside a block, a regime where the ~50-100ns timer overhead of
``perf_counter()`` float arithmetic would otherwise dominate — or, after
rounding, report the delay as exactly zero.  Subtracted delays are
clamped at 0.
"""

from __future__ import annotations

import math
import statistics
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, \
    Sequence

_NS = 1e-9

#: fixed histogram bucket upper bounds, in seconds (a half-decade grid
#: from 100ns to 100ms plus an overflow bucket).  The buckets are the
#: same for every profile so histograms are comparable across runs and
#: machines — the observatory's constant-delay verdict consults them
#: because block-batched enumeration hides tail spikes in medians.
DELAY_BUCKET_BOUNDS_S = (
    1e-7, 3.16e-7, 1e-6, 3.16e-6, 1e-5, 3.16e-5,
    1e-4, 3.16e-4, 1e-3, 1e-2, 1e-1,
)

DELAY_BUCKET_LABELS = tuple(
    f"<={bound:g}s" for bound in DELAY_BUCKET_BOUNDS_S) + (">1e-01s",)

# measured cost, in ns, of one perf_counter_ns() call pair (the gap two
# back-to-back calls report when nothing happens between them); None
# until first calibration.  The lock serialises calibration so threads
# racing the lazy global (e.g. concurrent delay measurements) never see
# a torn or doubly-run calibration.
_TIMER_OVERHEAD_NS: Optional[int] = None
_TIMER_LOCK = threading.Lock()


def timer_overhead_ns(recalibrate: bool = False) -> int:
    """The calibrated per-sample clock overhead, in nanoseconds.

    Median of a few hundred back-to-back ``perf_counter_ns`` gaps — the
    median is robust against scheduler preemptions landing inside the
    calibration loop.  Thread-safe: the first caller (or a recalibrating
    one) runs the loop under a lock, everyone else reads the published
    value.  Traces record this floor as the ``timer_overhead_ns`` gauge
    in every metrics dump (:func:`repro.obs.metrics`).
    """
    global _TIMER_OVERHEAD_NS
    value = _TIMER_OVERHEAD_NS
    if value is not None and not recalibrate:
        return value
    with _TIMER_LOCK:
        if _TIMER_OVERHEAD_NS is None or recalibrate:
            clock = time.perf_counter_ns
            samples: List[int] = []
            last = clock()
            for _ in range(301):
                now = clock()
                samples.append(now - last)
                last = now
            _TIMER_OVERHEAD_NS = int(statistics.median(samples))
        return _TIMER_OVERHEAD_NS


@dataclass
class DelayProfile:
    """Timing of one enumeration run."""

    preprocessing_seconds: float
    delays_seconds: List[float] = field(default_factory=list)
    n_outputs: int = 0

    @property
    def median_delay(self) -> float:
        return statistics.median(self.delays_seconds) if self.delays_seconds else 0.0

    @property
    def mean_delay(self) -> float:
        return statistics.fmean(self.delays_seconds) if self.delays_seconds else 0.0

    @property
    def max_delay(self) -> float:
        return max(self.delays_seconds) if self.delays_seconds else 0.0

    def percentile(self, q: float) -> float:
        """q in (0, 1): the q-th delay quantile."""
        if not self.delays_seconds:
            return 0.0
        ordered = sorted(self.delays_seconds)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def p999(self) -> float:
        """The 99.9th-percentile delay — the tail statistic the
        observatory's constant-delay verdict consults (block batching
        can hide per-block spikes from the median entirely)."""
        return self.percentile(0.999)

    def histogram(self) -> Dict[str, int]:
        """Delay counts over the fixed bucket grid
        (:data:`DELAY_BUCKET_BOUNDS_S`); every bucket is present, so
        histograms from different runs line up column-for-column."""
        counts = [0] * (len(DELAY_BUCKET_BOUNDS_S) + 1)
        for delay in self.delays_seconds:
            for i, bound in enumerate(DELAY_BUCKET_BOUNDS_S):
                if delay <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        return dict(zip(DELAY_BUCKET_LABELS, counts))

    @property
    def total_seconds(self) -> float:
        return self.preprocessing_seconds + sum(self.delays_seconds)

    @property
    def throughput(self) -> float:
        """Answers per second of pure enumeration time (preprocessing
        excluded).  0.0 with no outputs; inf when every measured delay
        rounded to zero (sub-resolution emission)."""
        if self.n_outputs == 0:
            return 0.0
        enumeration = sum(self.delays_seconds)
        if enumeration <= 0.0:
            return float("inf")
        return self.n_outputs / enumeration

    def summary(self) -> Dict[str, Any]:
        """The canonical per-run statistics block of the observatory
        schema (:mod:`repro.obs.observatory`): delay percentiles up to
        p99.9, the fixed-bucket histogram, preprocessing time and
        throughput.  All values JSON-able; an unmeasurable throughput
        (every delay rounded to zero) becomes ``None`` rather than
        ``inf``."""
        throughput = self.throughput
        return {
            "outputs": self.n_outputs,
            "preprocessing_seconds": self.preprocessing_seconds,
            "delay_p50_seconds": self.percentile(0.50),
            "delay_p95_seconds": self.percentile(0.95),
            "delay_p99_seconds": self.percentile(0.99),
            "delay_p999_seconds": self.p999,
            "delay_mean_seconds": self.mean_delay,
            "delay_max_seconds": self.max_delay,
            "throughput_per_s": (throughput if math.isfinite(throughput)
                                 else None),
            "delay_histogram": self.histogram(),
        }

    def __repr__(self) -> str:
        return (
            f"DelayProfile(pre={self.preprocessing_seconds * 1e3:.2f}ms, "
            f"outputs={self.n_outputs}, median={self.median_delay * 1e6:.2f}us, "
            f"p95={self.percentile(0.95) * 1e6:.2f}us, "
            f"max={self.max_delay * 1e6:.2f}us)"
        )


def measure_enumerator(enumerator, max_outputs: Optional[int] = None) -> DelayProfile:
    """Time an object following the two-phase protocol of
    :class:`repro.enumeration.base.Enumerator`."""
    timer_overhead_ns()  # calibrate outside the timed region
    start = time.perf_counter_ns()
    enumerator.preprocess()
    pre = (time.perf_counter_ns() - start) * _NS
    return _consume(enumerator._enumerate(), pre, max_outputs)


def measure_stream(make_iterator: Callable[[], Iterator[Any]],
                   max_outputs: Optional[int] = None) -> DelayProfile:
    """Time a bare iterator factory: the factory call is the
    preprocessing phase, iteration gaps are the delays."""
    timer_overhead_ns()
    start = time.perf_counter_ns()
    iterator = make_iterator()
    pre = (time.perf_counter_ns() - start) * _NS
    return _consume(iterator, pre, max_outputs)


def _consume(iterator: Iterator[Any], pre: float,
             max_outputs: Optional[int]) -> DelayProfile:
    overhead = timer_overhead_ns()
    clock = time.perf_counter_ns
    profile = DelayProfile(preprocessing_seconds=pre)
    delays = profile.delays_seconds
    last = clock()
    for item in iterator:
        now = clock()
        gap = now - last - overhead
        delays.append(gap * _NS if gap > 0 else 0.0)
        profile.n_outputs += 1
        if max_outputs is not None and profile.n_outputs >= max_outputs:
            break
        last = now
    return profile
