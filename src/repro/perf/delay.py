"""Per-output delay measurement (the empirical rendering of
Constant-Delay_lin, Section 2.3.3).

The theorems speak RAM steps; on CPython we measure wall-clock gaps
between consecutive outputs and compare their *growth in the database
size* — a constant-delay algorithm shows a flat median-delay curve while
a linear-delay one grows proportionally.  Medians (and high percentiles)
are reported instead of means because the first probe after preprocessing
may fault caches and the GC adds stray spikes.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence


@dataclass
class DelayProfile:
    """Timing of one enumeration run."""

    preprocessing_seconds: float
    delays_seconds: List[float] = field(default_factory=list)
    n_outputs: int = 0

    @property
    def median_delay(self) -> float:
        return statistics.median(self.delays_seconds) if self.delays_seconds else 0.0

    @property
    def mean_delay(self) -> float:
        return statistics.fmean(self.delays_seconds) if self.delays_seconds else 0.0

    @property
    def max_delay(self) -> float:
        return max(self.delays_seconds) if self.delays_seconds else 0.0

    def percentile(self, q: float) -> float:
        """q in (0, 1): the q-th delay quantile."""
        if not self.delays_seconds:
            return 0.0
        ordered = sorted(self.delays_seconds)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    @property
    def total_seconds(self) -> float:
        return self.preprocessing_seconds + sum(self.delays_seconds)

    def __repr__(self) -> str:
        return (
            f"DelayProfile(pre={self.preprocessing_seconds * 1e3:.2f}ms, "
            f"outputs={self.n_outputs}, median={self.median_delay * 1e6:.2f}us, "
            f"p95={self.percentile(0.95) * 1e6:.2f}us, "
            f"max={self.max_delay * 1e6:.2f}us)"
        )


def measure_enumerator(enumerator, max_outputs: Optional[int] = None) -> DelayProfile:
    """Time an object following the two-phase protocol of
    :class:`repro.enumeration.base.Enumerator`."""
    start = time.perf_counter()
    enumerator.preprocess()
    pre = time.perf_counter() - start
    return _consume(enumerator._enumerate(), pre, max_outputs)


def measure_stream(make_iterator: Callable[[], Iterator[Any]],
                   max_outputs: Optional[int] = None) -> DelayProfile:
    """Time a bare iterator factory: the factory call is the
    preprocessing phase, iteration gaps are the delays."""
    start = time.perf_counter()
    iterator = make_iterator()
    pre = time.perf_counter() - start
    return _consume(iterator, pre, max_outputs)


def _consume(iterator: Iterator[Any], pre: float,
             max_outputs: Optional[int]) -> DelayProfile:
    profile = DelayProfile(preprocessing_seconds=pre)
    last = time.perf_counter()
    for item in iterator:
        now = time.perf_counter()
        profile.delays_seconds.append(now - last)
        profile.n_outputs += 1
        if max_outputs is not None and profile.n_outputs >= max_outputs:
            break
        last = now
    return profile
