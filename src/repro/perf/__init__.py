"""Measurement harness: per-output delay instrumentation and scaling
experiments (the empirical side of every theorem reproduction)."""

from repro.perf.delay import DelayProfile, measure_enumerator, measure_stream
from repro.perf.scaling import ScalingResult, run_scaling, loglog_slope

__all__ = [
    "DelayProfile",
    "measure_enumerator",
    "measure_stream",
    "ScalingResult",
    "run_scaling",
    "loglog_slope",
]
