"""Scaling experiments: metric-vs-size curves and log-log slopes.

The fine-grained claims of the paper are growth *shapes*: linear
model checking, pseudo-linear preprocessing, flat (constant) delay,
||D||^s counting.  :func:`run_scaling` collects a metric across instance
sizes and :func:`loglog_slope` fits the growth exponent by least squares
on log-log axes — slope ~ 0 means constant, ~ 1 linear, ~ 2 quadratic.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class ScalingResult:
    """One scaling curve: instance sizes and the measured metric."""

    label: str
    sizes: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, size: float, value: float) -> None:
        self.sizes.append(size)
        self.values.append(value)

    def slope(self) -> float:
        return loglog_slope(self.sizes, self.values)

    def rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.sizes, self.values))

    def render(self, size_name: str = "n", value_name: str = "value") -> str:
        lines = [f"# {self.label} (log-log slope = {self.slope():.3f})"]
        lines.append(f"{size_name:>12}  {value_name}")
        for s, v in self.rows():
            lines.append(f"{s:>12.0f}  {v:.6g}")
        return "\n".join(lines)


def loglog_slope(sizes: Sequence[float], values: Sequence[float],
                 floor: float = 1e-9) -> float:
    """Least-squares slope of log(value) against log(size).

    Values are clamped below by ``floor`` (timers can return ~0 for
    trivial inputs).
    """
    points = [
        (math.log(s), math.log(max(v, floor)))
        for s, v in zip(sizes, values)
        if s > 0
    ]
    if len(points) < 2:
        return 0.0
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    sxx = sum((x - mean_x) ** 2 for x, _ in points)
    if sxx == 0:
        return 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return sxy / sxx


def run_scaling(label: str, sizes: Sequence[int],
                make_instance: Callable[[int], Any],
                metric: Callable[[Any], float],
                repeats: int = 1) -> ScalingResult:
    """Build an instance per size and record min-over-repeats of the
    metric (minimum filters scheduler noise for timing metrics)."""
    result = ScalingResult(label)
    for n in sizes:
        instance = make_instance(n)
        best: Optional[float] = None
        for _ in range(max(1, repeats)):
            value = metric(instance)
            best = value if best is None else min(best, value)
        result.add(float(n), float(best))
    return result


def time_call(fn: Callable[[], Any]) -> float:
    """Wall-clock seconds of one call."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
