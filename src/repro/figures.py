"""The paper's three figures, reconstructed as executable objects.

* Figure 1 — the join tree of phi(x) = exists y R(x1,x2) /\\ S(x2,x3,y3)
  /\\ R(x1,y1) /\\ T(y3,y4,y5) /\\ S(x2,y2), with the added hyperedge
  {x2, x3} whose node roots a free-variables-only subtree.  (The paper
  reuses the symbol S at arities 3 and 2; a database schema cannot, so
  the second occurrence is named S2 here.)
* Figures 2 and 3 — a hypergraph with free variables S = {y1..y7} and
  quantified variables x1..x9, decomposing into three S-components whose
  maximum independent set of free variables has size 3 (e.g.
  {y3, y5, y6} in the central component).  The figure is reconstructed
  up to the exact edge layout (the PDF's geometry is not in the text);
  the *documented invariants* — 3 components, star size 3, the witness
  set — are asserted by tests and printed by the figure benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_cq


def figure1_query() -> ConjunctiveQuery:
    """The Figure 1 query (free variables x1, x2, x3)."""
    return parse_cq(
        "Q(x1, x2, x3) :- R(x1, x2), S(x2, x3, y3), R(x1, y1), "
        "T(y3, y4, y5), S2(x2, y2)"
    )


def figure1_added_edge() -> frozenset:
    """The hyperedge {x2, x3} the paper adds to form the free-connex join
    tree (drawn dashed in Figure 1)."""
    from repro.logic.terms import Variable

    return frozenset({Variable("x2"), Variable("x3")})


def figure2_query() -> ConjunctiveQuery:
    """An acyclic query realising the Figures 2-3 hypergraph:
    S = free(phi) = {y1..y7}, quantified x1..x9, three S-components."""
    return parse_cq(
        "Q(y1, y2, y3, y4, y5, y6, y7) :- "
        "A1(x1, y1), A2(x1, x2), A3(x2, y2), "            # left component
        "B1(x3, y3), B2(x3, x4), B3(x4, y4, y5), "        # central component
        "B4(x4, x5), B5(x5, y6), B6(x5, x6), B7(x6, x7), "
        "C1(x8, y6), C2(x8, x9), C3(x9, y7)"              # right component
    )


def figure3_expected() -> Dict[str, object]:
    """The documented invariants of Figure 3."""
    return {
        "n_components": 3,
        "star_size": 3,
        "witness_independent_set": {"y3", "y5", "y6"},
    }
