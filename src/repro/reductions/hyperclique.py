"""Triangles, hypercliques and cyclic-query hardness (Theorem 4.9,
Section 4.1.2).

The Hyperclique hypothesis: finding a (k)-hyperclique in a (k-1)-uniform
hypergraph needs n^{k - o(1)}; for k = 3 this is triangle finding in
O(n^2) being impossible.  [Brault-Baron 2013] shows that, under it, no
*cyclic* CQ is enumerable with linear preprocessing and constant delay —
closing the Theorem 4.9 dichotomy.  This module supplies the objects the
benchmarks exercise: the triangle query (the smallest cyclic CQ),
brute-force triangle/hyperclique finders, and instance generators.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_cq

V = Hashable


def triangle_query() -> ConjunctiveQuery:
    """Q(x, y, z) = E(x, y) /\\ E(y, z) /\\ E(z, x) — the canonical cyclic
    CQ (Example 4.1's phi_2)."""
    return parse_cq("Q(x, y, z) :- E(x, y), E(y, z), E(z, x)")


def boolean_triangle_query() -> ConjunctiveQuery:
    """The Boolean version: does the graph contain a triangle?"""
    return parse_cq("Q() :- E(x, y), E(y, z), E(z, x)")


def tetrahedron_query() -> ConjunctiveQuery:
    """phi_3 of Example 4.1: the triangle plus a covering ternary atom —
    acyclic again (its join tree roots at {x, y, z})."""
    return parse_cq("Q(x, y, z) :- E(x, y), E(y, z), E(z, x), T(x, y, z)")


def find_triangle(adjacency: Dict[V, Set[V]]) -> Optional[Tuple[V, V, V]]:
    """First triangle found, scanning edges and intersecting
    neighbourhoods (O(sum_e min-degree))."""
    for u in adjacency:
        for w in adjacency[u]:
            if str(w) <= str(u):
                continue
            common = adjacency[u] & adjacency[w]
            for x in common:
                if x != u and x != w:
                    return (u, w, x)
    return None


def count_triangles(adjacency: Dict[V, Set[V]]) -> int:
    """Number of triangles (each counted once)."""
    total = 0
    for u in adjacency:
        for w in adjacency[u]:
            total += len(adjacency[u] & adjacency[w])
    # each triangle counted once per ordered edge pair: 6 times
    return total // 6


def find_hyperclique(edges: Iterable[FrozenSet[V]], k: int
                     ) -> Optional[FrozenSet[V]]:
    """A k-vertex set all of whose (k-1)-subsets are hyperedges of the
    given (k-1)-uniform hypergraph, or None (brute force with pruning)."""
    edge_set = {frozenset(e) for e in edges}
    arity = k - 1
    for e in edge_set:
        if len(e) != arity:
            raise ValueError(f"hypergraph is not {arity}-uniform: edge {set(e)}")
    vertices = sorted({v for e in edge_set for v in e}, key=str)
    for candidate in combinations(vertices, k):
        cand = frozenset(candidate)
        if all(frozenset(sub) in edge_set for sub in combinations(candidate, arity)):
            return cand
    return None


def random_uniform_hypergraph(n: int, arity: int, density: float,
                              seed: Optional[int] = None) -> List[FrozenSet[int]]:
    """Random (arity)-uniform hypergraph on [n] with edge probability
    ``density``."""
    rng = random.Random(seed)
    return [
        frozenset(c)
        for c in combinations(range(n), arity)
        if rng.random() < density
    ]


def tripartite_triangle_database(n: int, density: float,
                                 seed: Optional[int] = None) -> Database:
    """A tripartite graph database for the triangle query: triangles only
    across the three parts, so the count is controllable."""
    from repro.data.relation import Relation

    rng = random.Random(seed)
    rel = Relation("E", 2)
    parts = [[("p", k, i) for i in range(n)] for k in range(3)]
    for k in range(3):
        for u in parts[k]:
            for w in parts[(k + 1) % 3]:
                if rng.random() < density:
                    rel.add((u, w))
                    rel.add((w, u))
    db = Database([rel])
    for part in parts:
        db.add_domain_values(part)
    return db
