"""Coloured grids encode computations (Section 3.3's expressiveness
remark).

MSO over coloured (m, n)-grids can describe an n-step, m-space Turing
machine computation: colours are tape symbols, rows are time steps, and
validity is a conjunction of local 2x3-window constraints — all
MSO-expressible.  That is why tractability for MSO cannot extend much
beyond bounded treewidth: grids are sparse but their MSO theory embeds
bounded computation.

This module makes the remark concrete with one-dimensional cellular
automata (a standard TM stand-in): :func:`run_automaton` produces the
space-time diagram, :func:`diagram_database` stores it as a coloured
grid database, and :func:`check_local_windows` verifies it with purely
local (hence MSO-definable) constraints — the executable content of the
encoding.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.generators import grid_graph


def rule_table(rule: int) -> Dict[Tuple[int, int, int], int]:
    """Wolfram-style rule table for an elementary cellular automaton."""
    table = {}
    for idx in range(8):
        neighbourhood = ((idx >> 2) & 1, (idx >> 1) & 1, idx & 1)
        table[neighbourhood] = (rule >> idx) & 1
    return table


def run_automaton(initial: Sequence[int], steps: int, rule: int = 110
                  ) -> List[List[int]]:
    """The space-time diagram: row 0 = initial, wrap-around boundary."""
    table = rule_table(rule)
    width = len(initial)
    rows = [list(initial)]
    for _ in range(steps):
        prev = rows[-1]
        rows.append([
            table[(prev[(i - 1) % width], prev[i], prev[(i + 1) % width])]
            for i in range(width)
        ])
    return rows


def diagram_database(diagram: Sequence[Sequence[int]]) -> Database:
    """The coloured grid: the (time, position) grid graph plus unary
    colour relations C0 / C1 — a structure on which MSO can state
    'this is a valid computation'."""
    m = len(diagram)
    n = len(diagram[0])
    db = grid_graph(m, n)
    c0 = Relation("C0", 1)
    c1 = Relation("C1", 1)
    for t, row in enumerate(diagram, start=1):
        for i, cell in enumerate(row, start=1):
            (c1 if cell else c0).add(((t, i),))
    db.add_relation(c0)
    db.add_relation(c1)
    return db


def check_local_windows(db: Database, rule: int = 110) -> bool:
    """Verify the colouring is a valid space-time diagram using only local
    window checks (each is a first-order condition on the coloured grid;
    their conjunction over all positions is what the MSO sentence of the
    Section 3.3 remark existentially guesses and checks)."""
    table = rule_table(rule)
    c1 = db.relation("C1")
    cells = {}
    max_t = max_i = 0
    for (t, i), in db.relation("C0"):
        cells[(t, i)] = 0
        max_t, max_i = max(max_t, t), max(max_i, i)
    for (t, i), in c1:
        cells[(t, i)] = 1
        max_t, max_i = max(max_t, t), max(max_i, i)
    for t in range(2, max_t + 1):
        for i in range(1, max_i + 1):
            left = cells[(t - 1, (i - 2) % max_i + 1)]
            mid = cells[(t - 1, i)]
            right = cells[(t - 1, i % max_i + 1)]
            if cells[(t, i)] != table[(left, mid, right)]:
                return False
    return True
