"""k-clique as an acyclic conjunctive query with inequalities
(Section 4.3, Theorem 4.15, after [Papadimitriou-Yannakakis 1999]).

Order comparisons let an *acyclic* query express a global, cyclic
property: with domain elements

    [i, j, b]  =  (i + j) n^3 + |i - j| n^2 + b n + i

and relations

    P([i,j,0], [i,j,1])  iff  (i,j) in E (self-loops added),
    R([i,j,1], [i,j',0]) for all i, j, j'   (row continuation),

the query (existential variables x_ij, y_ij for i, j in [k])

    /\\_{i,j} P(x_ij, y_ij)
    /\\_{i, j<k} R(y_ij, x_i(j+1))
    /\\_{i<j} x_ij < x_ji < y_ij

is acyclic — k disjoint P/R-paths, even the comparison graph is acyclic
— yet holds iff G has a k-clique: the arithmetic of the inequalities
forces x_ij = [v_i, v_j, 0], so every P-atom certifies an edge.
Evaluating ACQ< is therefore W[1]-complete, in sharp contrast with
ACQ!= (Theorem 4.20).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable


def encode_value(i: int, j: int, b: int, n: int) -> int:
    """[i, j, b] — injective for 0 <= i, j < n, b in {0, 1}."""
    return (i + j) * n ** 3 + abs(i - j) * n ** 2 + b * n + i


def clique_acq_lt_instance(edges: Sequence[Tuple[int, int]], n: int, k: int
                           ) -> Tuple[ConjunctiveQuery, Database]:
    """The Theorem 4.15 instance: (query, database) such that the Boolean
    query holds iff the graph ([n], edges) has a k-clique."""
    edge_set: Set[Tuple[int, int]] = set()
    for u, v in edges:
        edge_set.add((u, v))
        edge_set.add((v, u))
    for v in range(n):
        edge_set.add((v, v))  # the paper's self-loops

    p = Relation("P", 2)
    r = Relation("R", 2)
    for i in range(n):
        for j in range(n):
            if (i, j) in edge_set:
                p.add((encode_value(i, j, 0, n), encode_value(i, j, 1, n)))
            for j2 in range(n):
                r.add((encode_value(i, j, 1, n), encode_value(i, j2, 0, n)))
    db = Database([p, r])

    x: Dict[Tuple[int, int], Variable] = {}
    y: Dict[Tuple[int, int], Variable] = {}
    for i in range(1, k + 1):
        for j in range(1, k + 1):
            x[i, j] = Variable(f"x_{i}_{j}")
            y[i, j] = Variable(f"y_{i}_{j}")

    atoms: List[Atom] = []
    comparisons: List[Comparison] = []
    for i in range(1, k + 1):
        for j in range(1, k + 1):
            atoms.append(Atom("P", [x[i, j], y[i, j]]))
            if j < k:
                atoms.append(Atom("R", [y[i, j], x[i, j + 1]]))
    for i in range(1, k + 1):
        for j in range(i + 1, k + 1):
            comparisons.append(Comparison(x[i, j], "<", x[j, i]))
            comparisons.append(Comparison(x[j, i], "<", y[i, j]))

    query = ConjunctiveQuery([], atoms, comparisons, name="clique")
    return query, db


def has_k_clique_bruteforce(edges: Sequence[Tuple[int, int]], n: int, k: int) -> bool:
    """Ground truth for the reduction's correctness tests."""
    from itertools import combinations

    adj: Set[Tuple[int, int]] = set()
    for u, v in edges:
        adj.add((u, v))
        adj.add((v, u))
    for cand in combinations(range(n), k):
        if all((a, b) in adj for a in cand for b in cand if a < b):
            return True
    return False
