"""Conditional lower bounds, run as concrete instance transformations.

The survey's lower bounds are conditional on fine-grained hypotheses
(Mat-Mul, Hyperclique, Triangle); what a reproduction can execute is the
*reduction* itself and the cost it transfers:

* :mod:`~repro.reductions.bmm` — Boolean matrix multiplication as the
  query Pi(x, y), and the Theorem 4.8 / Example 4.7 encoding showing a
  non-free-connex ACQ computes matrix products;
* :mod:`~repro.reductions.hyperclique` — triangles and k-hypercliques
  (Theorem 4.9's hypothesis), plus the cyclic triangle query;
* :mod:`~repro.reductions.clique_inequality` — the Theorem 4.15 encoding
  of k-clique into ACQ< with the [i, j, b] arithmetic domain;
* :mod:`~repro.reductions.sat_ncq` — CNF-SAT as an alpha-acyclic NCQ
  (why Section 4.5 must retreat to beta-acyclicity);
* :mod:`~repro.reductions.grid_mso` — coloured grids encoding space-time
  diagrams (why MSO stays hard beyond bounded treewidth, Section 3.3).
"""

from repro.reductions.bmm import (
    bmm_query,
    multiply_boolean_naive,
    multiply_boolean_numpy,
    multiply_via_query,
    example_47_database,
    example_47_query,
)
from repro.reductions.hyperclique import (
    find_triangle,
    triangle_query,
    boolean_triangle_query,
    find_hyperclique,
)
from repro.reductions.clique_inequality import clique_acq_lt_instance
from repro.reductions.sat_ncq import cnf_as_acyclic_ncq

__all__ = [
    "bmm_query",
    "multiply_boolean_naive",
    "multiply_boolean_numpy",
    "multiply_via_query",
    "example_47_database",
    "example_47_query",
    "find_triangle",
    "triangle_query",
    "boolean_triangle_query",
    "find_hyperclique",
    "clique_acq_lt_instance",
    "cnf_as_acyclic_ncq",
]
