"""Boolean matrix multiplication and the free-connex lower bound
(Section 4.1.2, Theorem 4.8, Example 4.7).

``Pi(x, y) = exists z A(x, z) /\\ B(z, y)`` *is* Boolean matrix
multiplication on the database D_BM encoding two matrices: the answer set
equals the non-zero entries of A x B.  Pi is acyclic but not free-connex,
and Theorem 4.8 says (assuming Mat-Mul) no constant-delay-after-linear-
preprocessing enumeration exists for it — because such an algorithm would
multiply matrices in O(n^2).

Example 4.7 generalises: any self-join-free non-free-connex ACQ can be
fed a database built from D_BM in linear time so that its answer set is
Pi(D_BM) x {bottom}^{m-2}.  :func:`example_47_database` implements the
paper's concrete instance.  The self-join-free restriction is the
*construction's* hypothesis, not a gap in the bound: a query with
self-joins is equivalent to its homomorphic core, and when the core is
not free-connex the Mat-Mul bound lifts to the query itself
(Carmeli-Segoufin, arXiv 2206.04988) — :mod:`repro.core.classify`
states those verdicts decisively via the ``effective_*`` facts.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Set, Tuple

import numpy as np

from repro.data.database import Database
from repro.data.generators import matrices_to_database
from repro.data.relation import Relation
from repro.logic.cq import ConjunctiveQuery
from repro.logic.parser import parse_cq

Matrix = List[List[int]]

BOTTOM = "_bottom_"


def bmm_query() -> ConjunctiveQuery:
    """Pi(x, y) = exists z A(x, z) /\\ B(z, y) — acyclic, not free-connex."""
    return parse_cq("Pi(x, y) :- A(x, z), B(z, y)")


def multiply_boolean_naive(a: Matrix, b: Matrix) -> Matrix:
    """Textbook O(n^3) Boolean product (with early exit per entry)."""
    n = len(a)
    out = [[0] * n for _ in range(n)]
    for i in range(n):
        row = a[i]
        for j in range(n):
            for k in range(n):
                if row[k] and b[k][j]:
                    out[i][j] = 1
                    break
    return out


def multiply_boolean_numpy(a: Matrix, b: Matrix) -> Matrix:
    """The 'fast matrix multiplication' stand-in: numpy's optimised
    product (the role the Coppersmith-Winograd bound plays in the
    Mat-Mul hypothesis)."""
    prod = (np.array(a, dtype=np.uint8) @ np.array(b, dtype=np.uint8)) > 0
    return prod.astype(int).tolist()


def multiply_via_query(a: Matrix, b: Matrix, enumerator_factory=None) -> Matrix:
    """Compute A x B by enumerating Pi over D_BM.

    ``enumerator_factory(query, db)`` defaults to the linear-delay ACQ
    engine (the constant-delay engine refuses Pi — it is not free-connex,
    which is the point of Theorem 4.8).
    """
    if enumerator_factory is None:
        from repro.enumeration.acq_linear import LinearDelayACQEnumerator

        enumerator_factory = LinearDelayACQEnumerator
    n = len(a)
    db = matrices_to_database(a, b)
    query = bmm_query()
    out = [[0] * n for _ in range(n)]
    for i, j in enumerator_factory(query, db):
        out[i][j] = 1
    return out


# ----------------------------------------------------------- Example 4.7


def example_47_query() -> ConjunctiveQuery:
    """phi(x1, x2, x4) = exists x3 E(x2, x4) /\\ S(x1, x1, x3) /\\
    T(x3, x2, x4): self-join free, acyclic, NOT free-connex.

    The paper prints the first atom as E(x1, x4), which makes the
    hypergraph {x1,x4},{x1,x3},{x2,x3,x4} cyclic (triangle x1-x3-x4 after
    removing the lonely x2) — an evident typo, since Example 4.7 requires
    an *acyclic* query.  With E(x2, x4) the query is acyclic, not
    free-connex, and the encoding below yields exactly
    phi(D) = Pi(D_BM) x {bottom}."""
    return parse_cq("phi(x1, x2, x4) :- E(x2, x4), S(x1, x1, x3), T(x3, x2, x4)")


def example_47_database(a: Matrix, b: Matrix) -> Database:
    """The linear-time encoding of Example 4.7:
    E = {(i, bottom)}, S = {(i, i, k) : A[i][k] = 1},
    T = {(k, j, bottom) : B[k][j] = 1}; then
    phi(D) = {(i, j, bottom) : (A x B)[i][j] = 1}."""
    n = len(a)
    e = Relation("E", 2)
    s = Relation("S", 3)
    t = Relation("T", 3)
    for i in range(n):
        e.add((i, BOTTOM))
        for k in range(n):
            if a[i][k]:
                s.add((i, i, k))
            if b[i][k]:
                t.add((i, k, BOTTOM))
    db = Database([e, s, t])
    db.add_domain_values(range(n))
    return db


def product_from_example_47_answers(answers: Set[Tuple[Any, ...]], n: int) -> Matrix:
    """Strip the bottom column: answers (i, j, bottom) -> product matrix."""
    out = [[0] * n for _ in range(n)]
    for i, j, bottom in answers:
        assert bottom == BOTTOM
        out[i][j] = 1
    return out
