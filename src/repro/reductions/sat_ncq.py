"""CNF-SAT as an *alpha-acyclic* negative conjunctive query (the opening
of Section 4.5).

Negations collapse the alpha-acyclic tractability frontier: any NCQ can
be made alpha-acyclic by conjoining ``not R(all variables)`` with R
interpreted empty — the hypergraph gains a full edge (instantly
alpha-acyclic) while the semantics is untouched.  Hence SAT embeds into
alpha-acyclic NCQ evaluation, and tractability must retreat to
*beta*-acyclicity (Theorem 4.31), which the full edge does destroy.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.csp.cnf import cnf_to_ncq
from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.atoms import Atom
from repro.logic.ncq import NegativeConjunctiveQuery


def cnf_as_acyclic_ncq(clauses: Sequence[Sequence[int]], n_vars: int
                       ) -> Tuple[NegativeConjunctiveQuery, Database]:
    """The negative encoding of a CNF, *alpha-acyclified* with an empty
    full-scope relation.

    The returned query is alpha-acyclic for every input (the full edge
    absorbs everything in the GYO reduction), equivalent to the CNF, and
    beta-acyclic only when the clause structure already was — making the
    'alpha-acyclic NCQ is as hard as SAT' point executable.
    """
    ncq, db = cnf_to_ncq(clauses, n_vars)
    all_vars = list(ncq.variables())
    full = Relation("Full", len(all_vars))  # interpreted empty
    db2 = Database(list(db) + [full], domain=db.domain)
    atoms = list(ncq.atoms) + [Atom("Full", all_vars)]
    return NegativeConjunctiveQuery(ncq.head, atoms, name="sat_acyclic"), db2


def is_alpha_but_not_beta(ncq: NegativeConjunctiveQuery) -> Tuple[bool, bool]:
    """(alpha-acyclic?, beta-acyclic?) of the query hypergraph."""
    from repro.hypergraph.acyclicity import is_beta_acyclic
    from repro.hypergraph.jointree import is_alpha_acyclic

    h = ncq.hypergraph()
    return is_alpha_acyclic(h), is_beta_acyclic(h)
