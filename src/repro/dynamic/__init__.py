"""Query evaluation under updates (the survey's conclusion flags this
direction — [Berkholz-Keppeler-Schweikardt 2017], [Idris-Ugarte-
Vansummeren 2017] "Dynamic Yannakakis" — as deserving its own survey).

This subpackage is the library's beyond-the-paper extension: query
evaluation under updates.

* :class:`~repro.dynamic.view.DynamicFreeConnexView` — insert/delete
  base tuples; per-tuple *support counters* along the free-connex join
  tree keep track of which tuples still extend downward ("alive"), and
  the projections of the root's subtrees onto their free variables are
  maintained as multiplicity-counted relations, so satisfiability,
  answer counts and answer enumeration never reread the base data.
* :class:`~repro.dynamic.delta.DeltaReducer` /
  :class:`~repro.dynamic.delta.DeltaCounter` — the delta-propagation
  backend of the plan cache's incremental refresh path
  (``REPRO_INCREMENTAL``): cached full-reducer and Theorem 4.21
  counting plans caught up with per-relation
  :class:`~repro.data.relation.DeltaLog` ops instead of rebuilt.
"""

from repro.dynamic.delta import DeltaCounter, DeltaReducer
from repro.dynamic.view import DynamicFreeConnexView

__all__ = ["DeltaCounter", "DeltaReducer", "DynamicFreeConnexView"]
