"""Query evaluation under updates (the survey's conclusion flags this
direction — [Berkholz-Keppeler-Schweikardt 2017], [Idris-Ugarte-
Vansummeren 2017] "Dynamic Yannakakis" — as deserving its own survey).

This subpackage is the library's beyond-the-paper extension: a
counter-based incrementally maintained view of a free-connex ACQ.

* :class:`~repro.dynamic.view.DynamicFreeConnexView` — insert/delete
  base tuples; per-tuple *support counters* along the free-connex join
  tree keep track of which tuples still extend downward ("alive"), and
  the projections of the root's subtrees onto their free variables are
  maintained as multiplicity-counted relations, so satisfiability,
  answer counts and answer enumeration never reread the base data.
"""

from repro.dynamic.view import DynamicFreeConnexView

__all__ = ["DynamicFreeConnexView"]
