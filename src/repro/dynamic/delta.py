"""Delta propagation through cached Yannakakis and counting plans.

The plan cache (:mod:`repro.core.plancache`) keys entries on database
fingerprints, so any base-relation mutation used to cold-invalidate the
whole preprocessing investment.  This module holds the *warm* path: two
stateful plan artefacts that are built once and then caught up with the
per-relation :class:`~repro.data.relation.DeltaLog` ops a stale
fingerprint implies, in time proportional to the delta's footprint
rather than to ``||D||``.

* :class:`DeltaReducer` maintains the full-reducer fixpoint.  Per
  join-tree node it stores the materialised atom rows with two boolean
  marks — ``up`` (survives the bottom-up semijoin pass) and ``down``
  (survives the top-down pass, i.e. belongs to the reduced output) —
  plus the counter machinery of :mod:`repro.dynamic.view`'s
  ``_CountedRelation`` generalised to both passes: per-key counts of
  up/down rows, so one mark flip touches matching neighbour rows only
  when a key's support actually crosses zero.
* :class:`DeltaCounter` maintains the Theorem 4.21 counting DP: per node
  row it stores the contribution (product of child message factors) and
  per node the message (per-key contribution sums); a delta subtracts
  and re-adds exactly the contributions it touches, and value changes
  ripple to the parent only for the keys whose sums moved.

Both refreshers mutate in place and return ``None`` *before* touching
state when a delta shape is unsupported, matching the contract of
:func:`repro.core.plancache.cached_plan`; an unexpected mid-refresh
failure marks the state broken so the cache falls back to cold builds
instead of serving a corrupt plan.

Honest non-guarantee (mirroring :mod:`repro.dynamic.view`): the refresh
makes *preprocessing* incremental; enumeration delay after an update is
measured by the dynamic bench suite, not assumed constant.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.data.database import Database
from repro.engine.base import ColumnarEngine
from repro.hypergraph.jointree import JoinTree, cached_join_tree
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Variable

Tup = Tuple[Any, ...]
Ops = List[Tuple[str, Tup]]


class _AtomMap:
    """Base-tuple -> atom-row mapping (constants and repeated variables
    resolved).  On tuples it accepts, the mapping is injective: every
    position is either a fixed constant or equal to the first occurrence
    of its variable, so the row determines the tuple."""

    __slots__ = ("consts", "dups", "out")

    def __init__(self, atom):
        first_pos: Dict[Variable, int] = {}
        self.consts: List[Tuple[int, Any]] = []
        self.dups: List[Tuple[int, int]] = []
        for pos, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                self.consts.append((pos, term.value))
            elif term in first_pos:
                self.dups.append((first_pos[term], pos))
            else:
                first_pos[term] = pos
        self.out = [first_pos[v] for v in atom.variables()]

    def row_of(self, t: Tup) -> Optional[Tup]:
        for pos, value in self.consts:
            if t[pos] != value:
                return None
        for a, b in self.dups:
            if t[a] != t[b]:
                return None
        return tuple(t[p] for p in self.out)


class _Node:
    """Join-tree node skeleton shared by both delta structures."""

    __slots__ = ("index", "name", "variables", "positions", "atom_map",
                 "parent", "children", "slot", "share", "share_pos",
                 "child_key_pos", "rows", "pgroup", "cgroup")

    def __init__(self, index: int, atom):
        self.index = index
        self.name = atom.relation
        self.variables: Tuple[Variable, ...] = atom.variables()
        self.positions = {v: i for i, v in enumerate(self.variables)}
        self.atom_map = _AtomMap(atom)
        self.parent: Optional[int] = None
        self.children: List[int] = []
        self.slot = 0                       # index among parent's children
        self.share: Tuple[Variable, ...] = ()
        self.share_pos: List[int] = []      # positions of `share` in own row
        self.child_key_pos: List[List[int]] = []  # per child slot
        self.rows: Dict[Tup, Any] = {}
        # own rows grouped by parent-shared key / by child-shared key
        self.pgroup: Dict[Tup, Set[Tup]] = {}
        self.cgroup: List[Dict[Tup, Set[Tup]]] = []

    def pkey(self, row: Tup) -> Tup:
        return tuple(row[p] for p in self.share_pos)

    def ckey(self, slot: int, row: Tup) -> Tup:
        return tuple(row[p] for p in self.child_key_pos[slot])

    def group_add(self, row: Tup) -> None:
        self.pgroup.setdefault(self.pkey(row), set()).add(row)
        for slot in range(len(self.children)):
            self.cgroup[slot].setdefault(self.ckey(slot, row), set()).add(row)

    def group_remove(self, row: Tup) -> None:
        for group, key in [(self.pgroup, self.pkey(row))] + [
                (self.cgroup[s], self.ckey(s, row))
                for s in range(len(self.children))]:
            bucket = group.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del group[key]


def _build_skeleton(cq: ConjunctiveQuery, tree: JoinTree,
                    node_cls) -> List["_Node"]:
    nodes = [node_cls(i, atom) for i, atom in enumerate(cq.atoms)]
    for i, node in enumerate(nodes):
        node.parent = tree.parent[i]
        node.children = list(tree.children[i])
        node.cgroup = [{} for _ in node.children]
        if node.parent is not None:
            parent_vars = set(nodes[node.parent].variables)
            node.share = tuple(v for v in node.variables if v in parent_vars)
            node.share_pos = [node.positions[v] for v in node.share]
            node.slot = tree.children[node.parent].index(i)
    for node in nodes:
        node.child_key_pos = [
            [node.positions[v] for v in nodes[c].share]
            for c in node.children]
    return nodes


def _atoms_by_relation(nodes: Sequence[_Node]) -> Dict[str, List[int]]:
    by_rel: Dict[str, List[int]] = {}
    for node in nodes:
        by_rel.setdefault(node.name, []).append(node.index)
    return by_rel


# ------------------------------------------------------------------ reducer


class _ReducerNode(_Node):
    """Adds the up/down marks, their per-key support counters, and (in
    columnar mode) physically-appended code columns with a down mask, so
    the reduced relation is emitted by one boolean gather."""

    __slots__ = ("up", "down", "up_count", "down_count",
                 "cols", "size", "down_mask",
                 "emitted", "dirty", "added_rows", "append_only")

    def __init__(self, index: int, atom):
        super().__init__(index, atom)
        self.up: Set[Tup] = set()
        self.down: Set[Tup] = set()
        self.up_count: Dict[Tup, int] = {}
        self.down_count: List[Dict[Tup, int]] = []
        self.cols: Optional[List[np.ndarray]] = None
        self.size = 0
        self.down_mask: Optional[np.ndarray] = None
        self.emitted = None
        self.dirty = True
        self.added_rows: List[Tup] = []
        self.append_only = True

    def bump(self, counter: Dict[Tup, int], key: Tup, delta: int) -> bool:
        """Adjust a support counter; True when it crossed zero."""
        old = counter.get(key, 0)
        new = old + delta
        if new > 0:
            counter[key] = new
        else:
            counter.pop(key, None)
        return (old > 0) != (new > 0)


class DeltaReducer:
    """An incrementally maintained full-reducer plan.

    ``build`` runs the characterisation cold (every row inserted and
    rechecked); ``refreshed`` replays a per-relation delta map; and
    ``result`` emits ``(tree, reduced relations)`` byte-identical —
    contents *and* row order — to what ``_full_reduce`` computes on the
    updated database with the same engine family.
    """

    def __init__(self, cq: ConjunctiveQuery, tree: JoinTree, engine):
        self.cq = cq
        self.tree = tree
        self.nodes: List[_ReducerNode] = _build_skeleton(
            cq, tree, _ReducerNode)
        for node in self.nodes:
            node.down_count = [{} for _ in node.children]
        self._by_relation = _atoms_by_relation(self.nodes)
        self._columnar = isinstance(engine, ColumnarEngine)
        self._dict = engine.dictionary if self._columnar else None
        self._relcls = type(engine.relation(()))
        self._broken = False

    # ----------------------------------------------------------- lifecycle

    @staticmethod
    def supports(cq: ConjunctiveQuery, engine) -> bool:
        """Can this query/engine pair be maintained with order parity?

        The columnar family materialises atoms by boolean masks over the
        base columns, which the replay reproduces exactly.  The tuple
        backend materialises repeated-variable atoms through diagonal
        index buckets whose order is not the base insertion order, so
        those stay on the cold path.
        """
        if isinstance(engine, ColumnarEngine):
            return True
        for atom in cq.atoms:
            var_terms = [t for t in atom.terms if isinstance(t, Variable)]
            if len(set(var_terms)) != len(var_terms):
                return False
        return True

    @classmethod
    def build(cls, cq: ConjunctiveQuery, db: Database,
              engine) -> "DeltaReducer":
        tree = cached_join_tree(cq.hypergraph())
        state = cls(cq, tree, engine)
        seed = {name: [("+", t) for t in db.relation(name)]
                for name in cq.relation_names()}
        with obs.span("delta.reducer_build", nodes=len(state.nodes)):
            state._apply(seed)
        return state

    def refreshed(self, deltas: Dict[str, Ops]) -> Optional["DeltaReducer"]:
        """Catch the plan up; None (cold fallback) when broken."""
        if self._broken:
            return None
        try:
            self._apply(deltas)
        except Exception as exc:  # defensive: never serve a half-refreshed plan
            self._broken = True
            obs.count("delta.refresh_broken")
            obs.event("delta.refresh_broken", plan=type(self).__name__,
                      error=repr(exc))
            return None
        return self

    # ----------------------------------------------------------- the waves

    def _apply(self, deltas: Dict[str, Ops]) -> None:
        nodes = self.nodes
        recheck_up: Dict[int, Set[Tup]] = {}
        up_changed_keys: Dict[int, Set[Tup]] = {}
        down_changed_keys: Dict[Tuple[int, int], Set[Tup]] = {}
        up_flipped: Dict[int, Set[Tup]] = {}
        appended: Dict[int, List[Tup]] = {}
        n_ops = 0

        # phase A: base ops (deletes adjust counters now, inserts queue)
        for name, ops in deltas.items():
            for idx in self._by_relation.get(name, ()):
                node = nodes[idx]
                for op, t in ops:
                    row = node.atom_map.row_of(t)
                    if row is None:
                        continue
                    n_ops += 1
                    if op == "+":
                        if row in node.rows:
                            continue
                        node.rows[row] = None  # phys index assigned below
                        node.group_add(row)
                        appended.setdefault(idx, []).append(row)
                        recheck_up.setdefault(idx, set()).add(row)
                        node.added_rows.append(row)
                        node.dirty = True
                    else:
                        self._remove_row(node, row, appended.get(idx),
                                         up_changed_keys, down_changed_keys)
        obs.count("delta.ops_applied", n_ops)

        if self._columnar:
            for idx, new_rows in appended.items():
                self._append_codes(nodes[idx], new_rows)

        # phase B: bottom-up recheck of the up marks (children first, so
        # a node sees its children's final up supports)
        rechecked = 0
        for idx in self.tree.bottom_up():
            node = nodes[idx]
            pending = recheck_up.get(idx, set())
            for slot, child_idx in enumerate(node.children):
                for key in up_changed_keys.get(child_idx, ()):
                    pending |= node.cgroup[slot].get(key, set())
            added_here = set(appended.get(idx, ()))
            for row in pending:
                if row not in node.rows:
                    continue
                rechecked += 1
                new_up = True
                for slot, child_idx in enumerate(node.children):
                    if nodes[child_idx].up_count.get(
                            node.ckey(slot, row), 0) <= 0:
                        new_up = False
                        break
                if new_up == (row in node.up):
                    continue
                if new_up:
                    node.up.add(row)
                else:
                    node.up.discard(row)
                if node.bump(node.up_count, node.pkey(row),
                             1 if new_up else -1) and node.parent is not None:
                    up_changed_keys.setdefault(idx, set()).add(node.pkey(row))
                up_flipped.setdefault(idx, set()).add(row)
                if row not in added_here:
                    node.append_only = False
                node.dirty = True

        # phase C: top-down recheck of the down marks (parents first, so
        # a node sees its parent's final down supports)
        recheck_down: Dict[int, Set[Tup]] = {}
        for idx, flipped in up_flipped.items():
            recheck_down.setdefault(idx, set()).update(flipped)
        for idx, new_rows in appended.items():
            recheck_down.setdefault(idx, set()).update(new_rows)
        for idx in self.tree.top_down():
            node = nodes[idx]
            pending = recheck_down.get(idx, set())
            if node.parent is not None:
                for key in down_changed_keys.get((node.parent, node.slot),
                                                 ()):
                    pending |= node.pgroup.get(key, set())
            added_here = set(appended.get(idx, ()))
            for row in pending:
                if row not in node.rows:
                    continue
                rechecked += 1
                new_down = row in node.up
                if new_down and node.parent is not None:
                    parent = nodes[node.parent]
                    new_down = parent.down_count[node.slot].get(
                        node.pkey(row), 0) > 0
                if new_down == (row in node.down):
                    continue
                if new_down:
                    node.down.add(row)
                else:
                    node.down.discard(row)
                if self._columnar:
                    node.down_mask[node.rows[row]] = new_down
                for slot, child_idx in enumerate(node.children):
                    key = node.ckey(slot, row)
                    if node.bump(node.down_count[slot], key,
                                 1 if new_down else -1):
                        down_changed_keys.setdefault((idx, slot),
                                                     set()).add(key)
                if row not in added_here:
                    node.append_only = False
                node.dirty = True
        obs.count("delta.rows_rechecked", rechecked)

        if self._columnar:
            for node in nodes:
                self._maybe_compact(node)

    def _remove_row(self, node: _ReducerNode, row: Tup,
                    batch: Optional[List[Tup]],
                    up_changed_keys: Dict[int, Set[Tup]],
                    down_changed_keys: Dict[Tuple[int, int], Set[Tup]]
                    ) -> None:
        if row not in node.rows:
            return
        node.dirty = True
        if self._columnar and node.rows[row] is None:
            # added earlier in this very batch, not yet encoded: cancel
            # the pending append instead of tombstoning anything
            if batch is not None:
                try:
                    batch.remove(row)
                except ValueError:  # pragma: no cover - batch mirrors rows
                    pass
        else:
            node.append_only = False
        if row in node.up:
            node.up.discard(row)
            if node.bump(node.up_count, node.pkey(row), -1) \
                    and node.parent is not None:
                up_changed_keys.setdefault(node.index,
                                           set()).add(node.pkey(row))
        if row in node.down:
            node.down.discard(row)
            for slot in range(len(node.children)):
                key = node.ckey(slot, row)
                if node.bump(node.down_count[slot], key, -1):
                    down_changed_keys.setdefault((node.index, slot),
                                                 set()).add(key)
        phys = node.rows[row]
        if self._columnar and phys is not None:
            node.down_mask[phys] = False
        del node.rows[row]
        node.group_remove(row)
        try:
            node.added_rows.remove(row)
        except ValueError:
            pass

    # --------------------------------------------------------- columnar io

    def _append_codes(self, node: _ReducerNode, new_rows: List[Tup]) -> None:
        from repro.engine.columnar import _encode_rows

        width = len(node.variables)
        new_cols = _encode_rows(new_rows, width, self._dict)
        if node.cols is None:
            node.cols = new_cols if width else []
            node.down_mask = np.zeros(len(new_rows), dtype=bool)
        else:
            node.cols = [np.concatenate([old, new])
                         for old, new in zip(node.cols, new_cols)]
            node.down_mask = np.concatenate(
                [node.down_mask, np.zeros(len(new_rows), dtype=bool)])
        for i, row in enumerate(new_rows):
            node.rows[row] = node.size + i
        node.size += len(new_rows)

    def _maybe_compact(self, node: _ReducerNode) -> None:
        dead = node.size - len(node.rows)
        if dead <= max(1024, len(node.rows)):
            return
        keep = np.fromiter(node.rows.values(), dtype=np.int64,
                           count=len(node.rows))
        node.cols = [c[keep] for c in (node.cols or [])]
        node.down_mask = node.down_mask[keep]
        node.size = len(node.rows)
        for i, row in enumerate(node.rows):
            node.rows[row] = i

    # ------------------------------------------------------------ emission

    def _emit(self, node: _ReducerNode):
        if not node.dirty and node.emitted is not None:
            return node.emitted
        if not self._columnar:
            from repro.eval.join import VarRelation

            rel = VarRelation(node.variables,
                              (r for r in node.rows if r in node.down))
        else:
            prev = node.emitted
            new_alive = [r for r in node.added_rows if r in node.down]
            if (prev is not None and node.append_only
                    and len(new_alive) == len(node.added_rows)):
                if new_alive:
                    phys = np.fromiter((node.rows[r] for r in new_alive),
                                       dtype=np.int64, count=len(new_alive))
                    rel = prev.extended_with(
                        [c[phys] for c in node.cols], len(new_alive))
                    obs.count("delta.emit_appends")
                else:
                    # every change this round was an append cancelled by a
                    # same-batch delete: the emitted relation is unchanged
                    rel = prev
            else:
                # a node that never saw a row has no encoded columns yet;
                # emit one empty column per variable, not zero columns
                cols = (node.cols if node.cols is not None
                        else [np.zeros(0, dtype=np.int64)
                              for _ in node.variables])
                mask = (node.down_mask[:node.size]
                        if node.down_mask is not None
                        else np.zeros(0, dtype=bool))
                rel = self._relcls.from_codes(
                    node.variables,
                    [c[:node.size][mask] for c in cols],
                    len(node.down), self._dict)
        node.emitted = rel
        node.dirty = False
        node.added_rows = []
        node.append_only = True
        return rel

    def result(self):
        """``(tree, reduced relations)`` in atom order."""
        return self.tree, [self._emit(node) for node in self.nodes]


# ------------------------------------------------------------------ counter


class _CounterNode(_Node):
    """``rows`` maps each present row to its DP contribution (product of
    child message factors; 0 when some child key is dead); ``msg`` holds
    the per-parent-key contribution sums with zero-sum keys removed."""

    __slots__ = ("msg",)

    def __init__(self, index: int, atom):
        super().__init__(index, atom)
        self.msg: Dict[Tup, int] = {}


class DeltaCounter:
    """An incrementally maintained Theorem 4.21 counting DP.

    Engine-independent (rows and keys are plain value tuples) and exact:
    the maintained total is the same int the cold message passing
    computes, on any backend.  Unweighted only — float message sums are
    order-sensitive, so weighted counting stays cold.
    """

    def __init__(self, cq: ConjunctiveQuery, tree: JoinTree):
        self.cq = cq
        self.tree = tree
        self.nodes: List[_CounterNode] = _build_skeleton(
            cq, tree, _CounterNode)
        self._by_relation = _atoms_by_relation(self.nodes)
        self._broken = False

    @staticmethod
    def supports(cq: ConjunctiveQuery) -> bool:
        """Quantifier-free, comparison-free, no zero-ary atoms (those
        take the truth-value short-circuits of the cold kernel)."""
        if not cq.is_quantifier_free() or cq.has_comparisons():
            return False
        return all(len(atom.variables()) > 0 for atom in cq.atoms)

    @classmethod
    def build(cls, cq: ConjunctiveQuery, db: Database) -> "DeltaCounter":
        tree = cached_join_tree(cq.hypergraph())
        state = cls(cq, tree)
        seed = {name: [("+", t) for t in db.relation(name)]
                for name in cq.relation_names()}
        with obs.span("delta.counter_build", nodes=len(state.nodes)):
            state._apply(seed)
        return state

    def refreshed(self, deltas: Dict[str, Ops]) -> Optional["DeltaCounter"]:
        if self._broken:
            return None
        try:
            self._apply(deltas)
        except Exception as exc:  # defensive: never serve a half-refreshed plan
            self._broken = True
            obs.count("delta.refresh_broken")
            obs.event("delta.refresh_broken", plan=type(self).__name__,
                      error=repr(exc))
            return None
        return self

    def _adjust(self, node: _CounterNode, key: Tup, delta: int,
                changed: Dict[int, Set[Tup]]) -> None:
        if delta == 0:
            return
        new = node.msg.get(key, 0) + delta
        if new:
            node.msg[key] = new
        else:
            node.msg.pop(key, None)
        if node.parent is not None:
            changed.setdefault(node.index, set()).add(key)

    def _apply(self, deltas: Dict[str, Ops]) -> None:
        nodes = self.nodes
        recheck: Dict[int, Set[Tup]] = {}
        changed_keys: Dict[int, Set[Tup]] = {}
        n_ops = 0
        for name, ops in deltas.items():
            for idx in self._by_relation.get(name, ()):
                node = nodes[idx]
                for op, t in ops:
                    row = node.atom_map.row_of(t)
                    if row is None:
                        continue
                    n_ops += 1
                    if op == "+":
                        if row in node.rows:
                            continue
                        node.rows[row] = 0
                        node.group_add(row)
                        recheck.setdefault(idx, set()).add(row)
                    else:
                        contrib = node.rows.pop(row, None)
                        if contrib is None:
                            continue
                        node.group_remove(row)
                        self._adjust(node, node.pkey(row), -contrib,
                                     changed_keys)
        obs.count("delta.ops_applied", n_ops)

        rechecked = 0
        for idx in self.tree.bottom_up():
            node = nodes[idx]
            pending = recheck.get(idx, set())
            for slot, child_idx in enumerate(node.children):
                for key in changed_keys.get(child_idx, ()):
                    pending |= node.cgroup[slot].get(key, set())
            for row in pending:
                if row not in node.rows:
                    continue
                rechecked += 1
                contrib = 1
                for slot, child_idx in enumerate(node.children):
                    factor = nodes[child_idx].msg.get(node.ckey(slot, row), 0)
                    if factor == 0:
                        contrib = 0
                        break
                    contrib *= factor
                old = node.rows[row]
                if contrib == old:
                    continue
                node.rows[row] = contrib
                self._adjust(node, node.pkey(row), contrib - old,
                             changed_keys)
        obs.count("delta.rows_rechecked", rechecked)

    def total(self) -> int:
        """The maintained |join| (0 on an empty root message)."""
        return self.nodes[self.tree.root].msg.get((), 0)


__all__ = ["DeltaCounter", "DeltaReducer"]
