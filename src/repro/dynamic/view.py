"""A dynamically maintained free-connex view (counter-based IVM).

Structure (cf. the "Dynamic Yannakakis" line of work the paper's
conclusion cites): take the join tree of H + {free variables}, rooted at
the virtual free edge.  In that tree every free variable occurring in a
subtree already occurs in the subtree's top node (connectedness through
the root), so the answers are exactly the star join

    phi(D)  =  join over root children c of  P_c,
    P_c     =  pi_{F_c}(alive tuples of c),   F_c = vars(c) /\\ free

where a tuple is *alive* when it is present and every child of its node
has at least one alive matching tuple.  The view maintains, per node
tuple, one support counter per child; an update walks only the affected
counters upward, and the P_c projections carry multiplicities so that
deletes never rescan base data.

Guarantees (and honest non-guarantees):

* ``insert`` / ``delete`` touch only tuples whose alive status actually
  changes (plus one probe per affected parent tuple);
* ``count_answers`` / ``enumerate`` run on the maintained P_c relations
  (size <= the alive data, never the full history of updates);
* enumeration across the star is not guaranteed constant-delay after
  updates — dynamic cross-subtree consistency is exactly the hard part
  of the dynamic Yannakakis literature; the benchmarks measure the delay
  instead of assuming it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.errors import NotFreeConnexError, SchemaMismatchError, UnsupportedQueryError
from repro.eval.join import VarRelation
from repro.hypergraph.freeconnex import free_connex_join_tree
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable

Tup = Tuple[Any, ...]


class _CountedRelation:
    """A multiset of tuples with per-key indexes (the P_c projections)."""

    def __init__(self, variables: Tuple[Variable, ...]):
        self.variables = variables
        self.multiplicity: Dict[Tup, int] = {}

    def add(self, tup: Tup) -> bool:
        """Returns True when the distinct set changed (0 -> 1)."""
        m = self.multiplicity.get(tup, 0)
        self.multiplicity[tup] = m + 1
        return m == 0

    def remove(self, tup: Tup) -> bool:
        """Returns True when the distinct set changed (1 -> 0)."""
        m = self.multiplicity.get(tup, 0) - 1
        if m <= 0:
            self.multiplicity.pop(tup, None)
            return True
        self.multiplicity[tup] = m
        return False

    def contains(self, tup: Tup) -> bool:
        return tup in self.multiplicity

    def distinct(self) -> List[Tup]:
        return list(self.multiplicity)

    def as_varrelation(self) -> VarRelation:
        return VarRelation(self.variables, self.multiplicity.keys())

    def __len__(self) -> int:
        return len(self.multiplicity)


class _Node:
    """One atom node of the free-connex tree."""

    __slots__ = ("index", "atom", "variables", "parent", "children",
                 "probe_vars", "tuples", "supports", "alive",
                 "alive_index", "positions", "child_indexes")

    def __init__(self, index: int, atom, variables: Tuple[Variable, ...]):
        self.index = index
        self.atom = atom
        self.variables = variables
        self.positions = {v: i for i, v in enumerate(variables)}
        self.parent: Optional["_Node"] = None
        self.children: List["_Node"] = []
        self.probe_vars: Tuple[Variable, ...] = ()
        self.tuples: Set[Tup] = set()
        self.supports: Dict[Tup, List[int]] = {}
        self.alive: Set[Tup] = set()
        # probe-key -> set of alive tuples (key on probe_vars)
        self.alive_index: Dict[Tup, Set[Tup]] = {}
        # per child slot: child-key -> set of OWN tuples (for O(affected)
        # support propagation instead of full scans)
        self.child_indexes: List[Dict[Tup, Set[Tup]]] = []

    def key_of(self, tup: Tup) -> Tup:
        return tuple(tup[self.positions[v]] for v in self.probe_vars)


class DynamicFreeConnexView:
    """An incrementally maintained free-connex ACQ view.

    With ``materialize=True`` the view additionally keeps the answer set
    itself incrementally maintained: ``count_answers`` becomes O(1),
    ``enumerate`` streams the stored answers, and ``pop_changes`` returns
    the exact (added, removed) answer deltas since the last call — the
    classical materialised-view/IVM contract, at O(answer delta) cost per
    update.
    """

    def __init__(self, cq: ConjunctiveQuery, db: Optional[Database] = None,
                 materialize: bool = False):
        if cq.has_comparisons():
            raise UnsupportedQueryError(
                "the dynamic view supports comparison-free queries")
        if not cq.is_acyclic() or not cq.is_free_connex():
            raise NotFreeConnexError(f"{cq!r} is not free-connex")
        self.cq = cq
        self.free = tuple(cq.head)
        # the tree depends on the query alone, so views over many
        # databases (and repeated view construction) share one entry
        from repro.core.plancache import cached_plan

        tree, virtual = cached_plan(
            "free_connex_tree", cq, None, "-",
            lambda: free_connex_join_tree(cq))
        self._nodes: List[_Node] = []
        for i, atom in enumerate(cq.atoms):
            self._nodes.append(_Node(i, atom, atom.variables()))
        free_set = set(self.free)
        self._roots: List[_Node] = []
        for i, atom in enumerate(cq.atoms):
            node = self._nodes[i]
            parent_index = tree.parent[i]
            if parent_index == virtual or parent_index is None:
                node.parent = None
                node.probe_vars = tuple(
                    v for v in node.variables if v in free_set)
                self._roots.append(node)
            else:
                node.parent = self._nodes[parent_index]
                node.parent.children.append(node)
                parent_vars = set(self._nodes[parent_index].variables)
                node.probe_vars = tuple(
                    v for v in node.variables if v in parent_vars)
        # projections P_c, one per root subtree
        self._projections: Dict[int, _CountedRelation] = {
            node.index: _CountedRelation(node.probe_vars)
            for node in self._roots
        }
        # atom nodes grouped by relation name
        self._by_relation: Dict[str, List[_Node]] = {}
        for node in self._nodes:
            self._by_relation.setdefault(node.atom.relation, []).append(node)

        self._materialize = materialize
        self._answers: Optional[Set[Tup]] = set() if materialize else None
        # net answer deltas since the last pop_changes: tup -> +1 / -1
        self._delta: Dict[Tup, int] = {}
        # positions of each projection's variables within the head
        self._head_pos: Dict[int, List[int]] = {}
        head_index = {v: i for i, v in enumerate(self.free)}
        for node in self._roots:
            self._head_pos[node.index] = [head_index[v]
                                          for v in node.probe_vars]

        if db is not None:
            for name in cq.relation_names():
                for tup in db.relation(name):
                    self.insert(name, tup)

    # ------------------------------------------------------------- updates

    def insert(self, relation: str, tup: Sequence[Any]) -> None:
        """Insert one tuple into a base relation."""
        tup = tuple(tup)
        for node in self._by_relation.get(relation, []):
            if not node.atom.matches(tup):
                continue
            binding = node.atom.bind(tup)
            row = tuple(binding[v] for v in node.variables)
            if row in node.tuples:
                continue
            node.tuples.add(row)
            while len(node.child_indexes) < len(node.children):
                node.child_indexes.append({})
            supports = []
            for slot, child in enumerate(node.children):
                key = self._child_key(node, row, child)
                supports.append(self._alive_count(child, key))
                node.child_indexes[slot].setdefault(key, set()).add(row)
            node.supports[row] = supports
            if all(s > 0 for s in supports):
                self._set_alive(node, row, True)

    def delete(self, relation: str, tup: Sequence[Any]) -> None:
        """Delete one tuple from a base relation."""
        tup = tuple(tup)
        for node in self._by_relation.get(relation, []):
            if not node.atom.matches(tup):
                continue
            binding = node.atom.bind(tup)
            row = tuple(binding[v] for v in node.variables)
            if row not in node.tuples:
                continue
            if row in node.alive:
                self._set_alive(node, row, False)
            node.tuples.discard(row)
            node.supports.pop(row, None)
            for slot, child in enumerate(node.children):
                key = self._child_key(node, row, child)
                bucket = node.child_indexes[slot].get(key)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del node.child_indexes[slot][key]

    # -------------------------------------------------------- maintenance

    def _child_key(self, node: _Node, row: Tup, child: _Node) -> Tup:
        return tuple(row[node.positions[v]] for v in child.probe_vars)

    def _alive_count(self, node: _Node, key: Tup) -> int:
        return len(node.alive_index.get(key, ()))

    def _set_alive(self, node: _Node, row: Tup, alive: bool) -> None:
        if alive:
            node.alive.add(row)
            key = node.key_of(row)
            node.alive_index.setdefault(key, set()).add(row)
        else:
            node.alive.discard(row)
            key = node.key_of(row)
            bucket = node.alive_index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del node.alive_index[key]
        if node.parent is None:
            projection = self._projections[node.index]
            if alive:
                changed = projection.add(key)
            else:
                changed = projection.remove(key)
            if changed and self._materialize:
                self._apply_projection_delta(node, key, alive)
            return
        # adjust the support counters of matching parent tuples
        parent = node.parent
        delta = 1 if alive else -1
        child_slot = parent.children.index(node)
        while len(parent.child_indexes) < len(parent.children):
            parent.child_indexes.append({})
        affected = parent.child_indexes[child_slot].get(key, set())
        for parent_row in list(affected):
            supports = parent.supports[parent_row]
            was_alive = parent_row in parent.alive
            supports[child_slot] += delta
            now_alive = all(s > 0 for s in supports)
            if now_alive != was_alive:
                self._set_alive(parent, parent_row, now_alive)

    # ---------------------------------------------------- materialisation

    def _apply_projection_delta(self, node: _Node, tup: Tup,
                                added: bool) -> None:
        """One distinct-set change of a projection: join the changed tuple
        against the other projections to update the stored answer set and
        the delta stream."""
        assert self._answers is not None
        others = [n for n in self._roots if n is not node]
        if not self.free:
            # Boolean view: the answer is () iff all projections non-empty
            present = all(len(self._projections[n.index]) > 0
                          for n in self._roots)
            if present and () not in self._answers:
                self._answers.add(())
                self._bump((), +1)
            elif not present and () in self._answers:
                self._answers.discard(())
                self._bump((), -1)
            return
        template: List[Any] = [None] * len(self.free)
        for pos, value in zip(self._head_pos[node.index], tup):
            template[pos] = value

        def expand(i: int) -> Iterator[Tup]:
            if i == len(others):
                yield tuple(template)
                return
            other = others[i]
            positions = self._head_pos[other.index]
            bound = [(slot, p) for slot, p in enumerate(positions)
                     if template[p] is not None]
            for cand in self._projections[other.index].multiplicity:
                if any(cand[slot] != template[p] for slot, p in bound):
                    continue
                touched = []
                ok = True
                for slot, p in enumerate(positions):
                    if template[p] is None:
                        template[p] = cand[slot]
                        touched.append(p)
                    elif template[p] != cand[slot]:
                        ok = False
                        break
                if ok:
                    yield from expand(i + 1)
                for p in touched:
                    template[p] = None

        for answer in expand(0):
            if added:
                if answer not in self._answers:
                    self._answers.add(answer)
                    self._bump(answer, +1)
            else:
                if answer in self._answers:
                    self._answers.discard(answer)
                    self._bump(answer, -1)

    def _bump(self, answer: Tup, sign: int) -> None:
        net = self._delta.get(answer, 0) + sign
        if net == 0:
            self._delta.pop(answer, None)
        else:
            self._delta[answer] = net

    def pop_changes(self) -> Tuple[List[Tup], List[Tup]]:
        """(added, removed) answer tuples since the last call
        (``materialize=True`` views only).  Net changes: an answer that
        came and went within the window appears in neither list."""
        if not self._materialize:
            raise UnsupportedQueryError(
                "pop_changes needs DynamicFreeConnexView(materialize=True)")
        added = [a for a, net in self._delta.items() if net > 0]
        removed = [a for a, net in self._delta.items() if net < 0]
        self._delta = {}
        return added, removed

    # --------------------------------------------------------------- reads

    def is_satisfiable(self) -> bool:
        """Is phi(D) non-empty right now?"""
        return self.first_answer() is not None

    def first_answer(self) -> Optional[Tup]:
        for answer in self.enumerate():
            return answer
        return None

    def enumerate(self) -> Iterator[Tup]:
        """Enumerate the current answers (no repetition)."""
        if self._answers is not None:
            yield from list(self._answers)
            return
        if not self.free:
            # Boolean: satisfiable iff every root subtree is non-empty and
            # (there being no shared variables) that suffices
            if all(len(self._projections[n.index]) > 0 for n in self._roots):
                yield ()
            return
        relations = [self._projections[n.index].as_varrelation()
                     for n in self._roots]
        relations = [r for r in relations if len(r.variables) > 0]
        zero_ary = [self._projections[n.index] for n in self._roots
                    if not n.probe_vars]
        if any(len(p) == 0 for p in zero_ary):
            return
        if any(len(r) == 0 for r in relations):
            return
        from repro.enumeration.full_acyclic import FullJoinEnumerator

        covered = {v for r in relations for v in r.variables}
        if covered != set(self.free):  # pragma: no cover - defensive
            raise AssertionError("projections do not cover the head")
        enum = FullJoinEnumerator(relations, self.free, reduce=True)
        yield from enum

    def answers(self) -> Set[Tup]:
        return set(self.enumerate())

    def count_answers(self) -> int:
        """|phi(D)| over the maintained projections (message passing over
        the star join; cost proportional to the projections' sizes)."""
        if self._answers is not None:
            return len(self._answers)
        if not self.free:
            return 1 if self.is_satisfiable() else 0
        from repro.counting.acq_count import count_full_acyclic_join

        relations = [self._projections[n.index].as_varrelation()
                     for n in self._roots]
        for n, rel in zip(self._roots, relations):
            if not n.probe_vars and len(self._projections[n.index]) == 0:
                return 0
        relations = [r for r in relations if len(r.variables) > 0]
        if any(len(r) == 0 for r in relations):
            return 0
        # the star join can repeat F_c sets across subtrees: full-reduce
        # then count
        return count_full_acyclic_join(relations)

    def stats(self) -> Dict[str, int]:
        """Maintenance counters, for tests and benchmarks."""
        return {
            "stored_tuples": sum(len(n.tuples) for n in self._nodes),
            "alive_tuples": sum(len(n.alive) for n in self._nodes),
            "projection_size": sum(len(p) for p in self._projections.values()),
        }
