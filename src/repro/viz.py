"""Text and Graphviz-DOT renderings of the structural objects.

Everything the paper draws — query hypergraphs (Figure 2), join trees
(Figure 1), S-component decompositions (Figure 3), tree decompositions —
can be exported as DOT for rendering with ``dot -Tpng``, or as plain
text.  No graphviz dependency: the functions emit strings.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree


def _quote(label: object) -> str:
    return '"' + str(label).replace('"', '\\"') + '"'


def hypergraph_to_dot(h: Hypergraph, s_vertices: Optional[Sequence] = None,
                      name: str = "H") -> str:
    """Bipartite incidence rendering: round vertices, boxed hyperedges;
    vertices in ``s_vertices`` (e.g. the free variables) are doubled."""
    s_set = set(s_vertices or ())
    lines = [f"graph {name} {{", "  layout=neato;", "  overlap=false;"]
    for v in sorted(h.vertices, key=str):
        shape = "doublecircle" if v in s_set else "circle"
        lines.append(f"  {_quote(v)} [shape={shape}];")
    for i, e in enumerate(h.edges):
        edge_node = f"e{i}"
        label = "{" + ",".join(sorted(str(v) for v in e)) + "}"
        lines.append(f"  {edge_node} [shape=box, label={_quote(label)}];")
        for v in sorted(e, key=str):
            lines.append(f"  {edge_node} -- {_quote(v)};")
    lines.append("}")
    return "\n".join(lines)


def join_tree_to_dot(tree: JoinTree, name: str = "T",
                     highlight: Optional[Sequence[int]] = None) -> str:
    """The join tree with node labels = hyperedges; ``highlight`` node
    indexes (e.g. the free-only zone of a free-connex tree) are filled."""
    marked = set(highlight or ())
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for node in tree.nodes():
        label = "{" + ",".join(sorted(str(v) for v in tree.edge_of(node))) + "}"
        style = ', style=filled, fillcolor="lightgrey"' if node in marked else ""
        lines.append(f"  n{node} [shape=ellipse, label={_quote(label)}{style}];")
    for parent, child in tree.tree_edges():
        lines.append(f"  n{parent} -> n{child};")
    lines.append("}")
    return "\n".join(lines)


def s_components_to_dot(h: Hypergraph, s_vertices: Sequence,
                        name: str = "C") -> str:
    """Figure-3 style: one cluster per S-component (free vertices can
    appear in several clusters, as y6 does in the paper's figure)."""
    from repro.hypergraph.components import s_components

    s_set = set(s_vertices)
    lines = [f"graph {name} {{", "  overlap=false;"]
    for k, comp in enumerate(s_components(h, s_vertices)):
        lines.append(f"  subgraph cluster_{k} {{")
        lines.append(f'    label="component {k}";')
        for i in comp.edge_indexes:
            label = "{" + ",".join(sorted(str(v) for v in h.edges[i])) + "}"
            lines.append(f"    e{i} [shape=box, label={_quote(label)}];")
            for v in sorted(h.edges[i], key=str):
                shape = "doublecircle" if v in s_set else "circle"
                lines.append(f"    \"{k}_{v}\" [shape={shape}, "
                             f"label={_quote(v)}];")
                lines.append(f"    e{i} -- \"{k}_{v}\";")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def tree_decomposition_to_dot(td, name: str = "TD") -> str:
    """Bags as boxes, tree edges between them."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for i, bag in enumerate(td.bags):
        label = "{" + ",".join(sorted(str(v) for v in bag)) + "}"
        lines.append(f"  b{i} [shape=box, label={_quote(label)}];")
    for i, parent in enumerate(td.parent):
        if parent is not None:
            lines.append(f"  b{parent} -> b{i};")
    lines.append("}")
    return "\n".join(lines)


def query_to_dot(cq, name: str = "Q") -> str:
    """The query hypergraph with free variables doubled (Figure 2 style)."""
    return hypergraph_to_dot(cq.hypergraph(), cq.free_variables(), name=name)
