"""Negative conjunctive queries and CSP (Section 4.5, Theorem 4.31).

An NCQ over the Boolean domain with singleton relations is CNF-SAT in its
negative encoding; beta-acyclic NCQs are decidable in quasi-linear time by
Davis-Putnam resolution driven by a nest-point elimination order — the
two tools the paper names.  Modules:

* :mod:`~repro.csp.cnf` — clause representation, NCQ <-> CNF translation;
* :mod:`~repro.csp.davis_putnam` — ordered DP resolution with statistics;
* :mod:`~repro.csp.ncq_solver` — the decision procedure: nest-point DP
  for beta-acyclic Boolean-domain queries, backtracking otherwise.
"""

from repro.csp.cnf import Clause, ncq_to_clauses, clauses_satisfiable_bruteforce
from repro.csp.davis_putnam import davis_putnam, DPStats
from repro.csp.ncq_solver import decide_ncq, solve_negative_csp

__all__ = [
    "Clause",
    "ncq_to_clauses",
    "clauses_satisfiable_bruteforce",
    "davis_putnam",
    "DPStats",
    "decide_ncq",
    "solve_negative_csp",
]
