"""Ordered Davis-Putnam resolution (Section 4.5, Theorem 4.31).

The classical DP procedure eliminates one variable at a time: all
resolvents of clauses containing x with clauses containing -x replace
both sets.  In general the clause count can explode; the theorem's
insight is that on *beta-acyclic* instances a **nest-point elimination
order** (Duris' characterisation, see
:func:`repro.hypergraph.acyclicity.nest_point_elimination_order`) keeps
every resolvent's variable set inside an existing clause scope, so the
procedure stays quasi-linear.

The implementation maintains per-variable occurrence lists so that each
elimination touches only the clauses actually mentioning the variable —
without this, even trivially-chained instances would cost a full clause
scan per variable and the quasi-linear shape of Theorem 4.31 would be
invisible.  :class:`DPStats` records resolvent and peak-clause counts so
benchmarks can watch exactly the quantity the theorem bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.csp.cnf import Clause, is_tautology


@dataclass
class DPStats:
    """Work counters for one DP run."""

    eliminations: int = 0
    resolvents: int = 0
    peak_clauses: int = 0
    satisfiable: Optional[bool] = None


def davis_putnam(clauses: Iterable[Clause], order: Sequence[int],
                 stats: Optional[DPStats] = None) -> bool:
    """Decide satisfiability by eliminating variables in ``order``.

    ``order`` must cover every variable occurring in the clauses; extra
    variables are ignored.  Returns True iff satisfiable.
    """
    stats = stats if stats is not None else DPStats()
    current: Set[Clause] = set()
    occurrences: Dict[int, Set[Clause]] = {}

    def insert(c: Clause) -> None:
        if c in current:
            return
        current.add(c)
        for lit in c:
            occurrences.setdefault(abs(lit), set()).add(c)

    def remove(c: Clause) -> None:
        current.discard(c)
        for lit in c:
            bucket = occurrences.get(abs(lit))
            if bucket is not None:
                bucket.discard(c)

    for c in clauses:
        if not c:
            stats.satisfiable = False
            return False
        if not is_tautology(c):
            insert(c)
    stats.peak_clauses = len(current)

    for var in order:
        bucket = occurrences.get(var)
        if not bucket:
            continue
        pos = [c for c in bucket if var in c]
        neg = [c for c in bucket if -var in c]
        if not pos and not neg:
            continue
        stats.eliminations += 1
        for c in pos + neg:
            remove(c)
        for cp in pos:
            for cn in neg:
                resolvent = (cp - {var}) | (cn - {-var})
                stats.resolvents += 1
                if not resolvent:
                    stats.satisfiable = False
                    return False
                if not is_tautology(resolvent):
                    insert(resolvent)
        stats.peak_clauses = max(stats.peak_clauses, len(current))

    # all variables eliminated: with a complete order no clause remains
    stats.satisfiable = not current
    return not current
