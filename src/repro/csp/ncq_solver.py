"""Deciding negative conjunctive queries (Theorem 4.31).

* Boolean-domain, beta-acyclic NCQ: translate to clauses and run
  Davis-Putnam along a nest-point elimination order — quasi-linear.
* everything else: backtracking search over the domain avoiding the
  forbidden tuples (correct on all NCQs, exponential only in the query
  for bounded domains).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.csp.cnf import ncq_to_clauses
from repro.csp.davis_putnam import DPStats, davis_putnam
from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.hypergraph.acyclicity import nest_point_elimination_order
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.terms import Constant, Variable


def decide_ncq(ncq: NegativeConjunctiveQuery, db: Database,
               stats: Optional[DPStats] = None) -> bool:
    """Is the existential closure of the NCQ true in D?

    Uses the quasi-linear nest-point Davis-Putnam route whenever the
    query is beta-acyclic and the domain is Boolean; falls back to
    backtracking otherwise.
    """
    domain = set(db.domain)
    if domain <= {0, 1}:
        order_vars = nest_point_elimination_order(ncq.hypergraph())
        if order_vars is not None:
            clauses, index = ncq_to_clauses(ncq, db)
            order = [index[v] for v in order_vars if v in index]
            return davis_putnam(clauses, order, stats=stats)
    return next(solve_negative_csp(ncq, db), None) is not None


def solve_negative_csp(ncq: NegativeConjunctiveQuery, db: Database
                       ) -> Iterator[Dict[Variable, Any]]:
    """All assignments of the NCQ's variables avoiding every forbidden
    tuple, by backtracking (most-constrained-variable-free, fixed order).
    """
    variables = list(ncq.variables())
    domain = db.domain
    # per atom: precompute the variable positions and the forbidden set
    atoms = []
    for atom in ncq.atoms:
        rel = db.relation(atom.relation)
        atoms.append((atom, rel))

    def violated(assignment: Dict[Variable, Any]) -> bool:
        for atom, rel in atoms:
            tup = []
            complete = True
            for term in atom.terms:
                if isinstance(term, Constant):
                    tup.append(term.value)
                elif term in assignment:
                    tup.append(assignment[term])
                else:
                    complete = False
                    break
            if complete and tuple(tup) in rel:
                return True
        return False

    def backtrack(i: int, assignment: Dict[Variable, Any]
                  ) -> Iterator[Dict[Variable, Any]]:
        if violated(assignment):
            return
        if i == len(variables):
            yield dict(assignment)
            return
        v = variables[i]
        for d in domain:
            assignment[v] = d
            yield from backtrack(i + 1, assignment)
        del assignment[v]

    yield from backtrack(0, {})


def ncq_answers(ncq: NegativeConjunctiveQuery, db: Database) -> Set[Tuple[Any, ...]]:
    """phi(D) for a non-Boolean NCQ (head projections of the solutions)."""
    out: Set[Tuple[Any, ...]] = set()
    for assignment in solve_negative_csp(ncq, db):
        out.add(tuple(assignment[v] for v in ncq.head))
    return out
