"""CNF clauses and the negative encoding of Section 4.5.

A clause is a frozenset of integer literals over variables 1..n
(``v`` positive, ``-v`` negated).  The paper's observation: over the
Boolean domain, the negated atom ``not R(x_1..x_k)`` with
R = {(b_1..b_k)} is the clause ruling out exactly that assignment, i.e.
``\\/_i (x_i != b_i)``; a whole CNF is an NCQ whose relations hold one
tuple per clause.  :func:`ncq_to_clauses` generalises to relations with
several tuples (one clause per forbidden tuple) and repeated variables.
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.terms import Constant, Variable

Clause = FrozenSet[int]


def clause(*literals: int) -> Clause:
    """Build a clause from integer literals (v positive, -v negated)."""
    return frozenset(literals)


def is_tautology(c: Clause) -> bool:
    """A clause containing both v and -v is always satisfied."""
    return any(-lit in c for lit in c)


def clauses_satisfiable_bruteforce(clauses: Sequence[Clause], n_vars: int) -> bool:
    """Ground truth for small instances."""
    for bits in iproduct((False, True), repeat=n_vars):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in c)
            for c in clauses
        ):
            return True
    return False


def cnf_to_ncq(clauses: Sequence[Sequence[int]], n_vars: int
               ) -> Tuple[NegativeConjunctiveQuery, Database]:
    """The negative encoding: one relation R_j = {forbidden tuple} per
    clause, over domain {0, 1} (Section 4.5's opening example)."""
    from repro.data.relation import Relation
    from repro.logic.atoms import Atom

    atoms = []
    relations = []
    for j, cl in enumerate(clauses):
        variables = [Variable(f"x{abs(lit)}") for lit in cl]
        forbidden = tuple(0 if lit > 0 else 1 for lit in cl)
        rel = Relation(f"C{j}", len(cl))
        rel.add(forbidden)
        relations.append(rel)
        atoms.append(Atom(f"C{j}", variables))
    db = Database(relations, domain=[0, 1])
    ncq = NegativeConjunctiveQuery([], atoms, name="sat")
    return ncq, db


def ncq_to_clauses(ncq: NegativeConjunctiveQuery, db: Database
                   ) -> Tuple[List[Clause], Dict[Variable, int]]:
    """Translate a Boolean-domain NCQ decision problem into CNF.

    Requires Dom(D) <= {0, 1}.  Each forbidden tuple of each negated atom
    becomes one clause; tuples inconsistent with the atom's repeated
    variables or constants are skipped (they forbid nothing).
    """
    domain = set(db.domain)
    if not domain <= {0, 1}:
        raise UnsupportedQueryError(
            "the clause translation needs the Boolean domain {0, 1}"
        )
    variables = list(ncq.variables())
    index = {v: i + 1 for i, v in enumerate(variables)}
    clauses: List[Clause] = []
    for atom in ncq.atoms:
        rel = db.relation(atom.relation)
        for tup in rel:
            lits: Set[int] = set()
            consistent = True
            seen: Dict[Variable, int] = {}
            for term, value in zip(atom.terms, tup):
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                        break
                    continue
                if term in seen:
                    if seen[term] != value:
                        consistent = False
                        break
                    continue
                seen[term] = value
                # the clause says "differ from the forbidden tuple somewhere":
                # forbidden value 0 -> literal x (x must be 1 to differ here)
                lits.add(index[term] if value == 0 else -index[term])
            if not consistent:
                continue
            if not lits:
                # the atom forbids a fully-constant tuple that is present:
                # the query is unsatisfiable -> empty clause
                return [frozenset()], index
            clauses.append(frozenset(lits))
    return clauses, index
