"""The query classifier: the survey's decision/counting/enumeration map
as one function.

For a conjunctive query the relevant structure is (Section 4):

====================  =========================  =========================
structure             enumeration                counting
====================  =========================  =========================
free-connex ACQ       constant delay (Thm 4.6)   ||D||^O(1) via star size 1
ACQ, star size s      linear delay (Thm 4.3)     ||D||^O(s) (Thm 4.28)
ACQ, unbounded s      linear delay (Thm 4.3)     #W[1]-hard (Thm 4.28)
cyclic CQ             no CD-lin (Thm 4.9*)       #P-hard in general
ACQ!=, free-connex    constant delay (Thm 4.20)  —
ACQ<                  W[1]-hard even to decide (Thm 4.15)
====================  =========================  =========================

(*) conditional on Mat-Mul / Hyperclique; decision for any ACQ is
O(||phi|| ||D||) by Yannakakis (Thm 4.2).  UCQs classify through union
extensions (Thm 4.13), NCQs through beta-acyclicity (Thm 4.31).
"""

from __future__ import annotations

from typing import Any, Union

from repro.core.report import ComplexityReport, TaskVerdict
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import Formula
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.prefix import classify_prefix
from repro.logic.ucq import UnionOfConjunctiveQueries

QueryLike = Union[ConjunctiveQuery, UnionOfConjunctiveQueries,
                  NegativeConjunctiveQuery, Formula]


def classify(query: QueryLike) -> ComplexityReport:
    """Structural analysis + per-task verdicts for any supported query."""
    from repro.logic.signed import SignedConjunctiveQuery

    if isinstance(query, SignedConjunctiveQuery):
        return _classify_signed(query)
    if isinstance(query, ConjunctiveQuery):
        return _classify_cq(query)
    if isinstance(query, UnionOfConjunctiveQueries):
        return _classify_ucq(query)
    if isinstance(query, NegativeConjunctiveQuery):
        return _classify_ncq(query)
    if isinstance(query, Formula):
        return _classify_fo(query)
    raise TypeError(f"cannot classify object of type {type(query).__name__}")


# ------------------------------------------------------------------------- CQ


def _selfjoin_core_facts(cq: ConjunctiveQuery, facts) -> bool:
    """Carmeli–Segoufin-style structural analysis of a self-join CQ.

    A query with self-joins is equivalent to its homomorphic core
    (Chandra–Merlin), which may identify same-symbol atoms and land in
    an easier structural class — the paper's self-join-free dichotomies
    then apply to the core and transfer to the query (arXiv 2206.04988).
    Records ``core_*`` facts and returns True when the analysis ran
    (comparisons make homomorphism reasoning unsound, so disequality
    queries skip it)."""
    if facts["has_disequalities"] or facts["has_order_comparisons"]:
        return False
    from repro.logic.containment import core
    from repro.logic.selfjoin import variable_identifications

    facts["variable_identifications"] = variable_identifications(cq)
    minimal = core(cq)
    facts["core_is_proper"] = len(minimal.atoms) < len(cq.atoms)
    facts["core_atoms"] = len(minimal.atoms)
    core_acyclic = minimal.without_comparisons().is_acyclic()
    facts["core_acyclic"] = core_acyclic
    if core_acyclic:
        cstar = minimal.quantified_star_size()
        facts["core_quantified_star_size"] = cstar
        facts["core_free_connex"] = cstar <= 1
    else:
        facts["core_free_connex"] = False
    return True


def _classify_cq(cq: ConjunctiveQuery) -> ComplexityReport:
    report = ComplexityReport(query_repr=repr(cq), query_class="CQ")
    facts = report.facts
    facts["arity"] = cq.arity
    facts["self_join_free"] = cq.is_self_join_free()
    facts["quantifier_free"] = cq.is_quantifier_free()
    facts["has_order_comparisons"] = bool(cq.order_comparisons())
    facts["has_disequalities"] = bool(cq.disequalities())
    acyclic = cq.without_comparisons().is_acyclic()
    facts["acyclic"] = acyclic

    from repro.logic.selfjoin import selfjoin_signature

    facts["self_join_signature"] = selfjoin_signature(cq)
    cored = (not facts["self_join_free"]
             and _selfjoin_core_facts(cq, facts))
    # the *effective* structure is the best of the query and its core:
    # equivalent queries have identical answer sets, counts and delays,
    # so downstream consumers (obs.fitting.expected_verdict, the
    # watchdog) gate on these, not on the syntactic shape
    facts["effective_acyclic"] = acyclic or facts.get("core_acyclic", False)

    if facts["has_order_comparisons"]:
        report.query_class = "ACQ<" if acyclic else "CQ<"
        report.verdicts.append(TaskVerdict(
            "decide", False, "W[1]-complete (query size as parameter)",
            "Theorem 4.15", "repro.eval.naive.cq_is_satisfiable_naive",
            caveat="order comparisons express k-clique even on acyclic queries",
        ))
        report.verdicts.append(TaskVerdict(
            "count", False, "at least as hard as deciding", "Theorem 4.15",
            "repro.counting.acq_count.count_cq_naive"))
        report.verdicts.append(TaskVerdict(
            "enumerate", False, "no efficient enumeration known", "Theorem 4.15",
            "repro.enumeration.disequality.FallbackDisequalityEnumerator"))
        return report

    if not acyclic:
        report.query_class = "cyclic CQ"
        from repro.hypergraph.edge_covers import agm_exponent

        facts["agm_exponent"] = round(agm_exponent(cq), 4)
        if cored and facts["core_acyclic"]:
            # the query only *looks* cyclic: identifying self-join atoms
            # yields an equivalent acyclic core, and every task rides on
            # the core's structure (Carmeli–Segoufin, arXiv 2206.04988)
            report.query_class = "cyclic CQ (acyclic core)"
            cs = "Carmeli-Segoufin (arXiv 2206.04988) via homomorphic core"
            cstar = facts["core_quantified_star_size"]
            facts["effective_free_connex"] = facts["core_free_connex"]
            facts["effective_quantified_star_size"] = cstar
            report.verdicts.append(TaskVerdict(
                "decide", True, "O(||phi|| * ||D||) on the acyclic core",
                f"Theorem 4.2 + {cs}",
                "repro.eval.yannakakis.yannakakis_boolean"))
            if facts["core_free_connex"]:
                report.verdicts.append(TaskVerdict(
                    "count", True, "O(||phi|| * ||D||) on the core",
                    f"Theorems 4.21 / 4.28 + {cs}",
                    "repro.counting.acq_count.count_acq"))
                report.verdicts.append(TaskVerdict(
                    "enumerate", True,
                    "constant delay after linear preprocessing "
                    "(evaluate the free-connex core)",
                    f"Theorem 4.6 + {cs}",
                    "repro.enumeration.free_connex.FreeConnexEnumerator"))
            else:
                report.verdicts.append(TaskVerdict(
                    "count", True,
                    f"(||D|| + ||phi||)^O({cstar})  (core star size {cstar})",
                    f"Theorem 4.28 + {cs}",
                    "repro.counting.acq_count.count_acq"))
                report.verdicts.append(TaskVerdict(
                    "enumerate", False,
                    "not in Constant-Delay_lin (assuming Mat-Mul); "
                    "linear delay via the acyclic core",
                    f"Theorems 4.8 / 4.3 + {cs}",
                    "repro.enumeration.acq_linear.LinearDelayACQEnumerator",
                    caveat="conditional on Mat-Mul; the bound holds for "
                           "the query's core, hence for the query"))
            return report
        facts["effective_free_connex"] = False
        report.verdicts.append(TaskVerdict(
            "decide", None, "NP-complete in combined complexity",
            "Chandra-Merlin 1977 (Section 1)", "repro.eval.naive",
            caveat="polynomial data complexity via backtracking"))
        report.verdicts.append(TaskVerdict(
            "count", None, "#P-hard in combined complexity", "Theorem 4.22",
            "repro.counting.acq_count.count_cq_naive"))
        if facts["self_join_free"]:
            caveat = "conditional on Hyperclique"
        elif cored:
            # the core is still cyclic: no identification of self-join
            # atoms can remove the hard structure, so the self-join-free
            # lower bound transfers (Carmeli-Segoufin, arXiv 2206.04988)
            caveat = ("conditional on Hyperclique; the homomorphic core "
                      "stays cyclic, so the bound lifts to this "
                      "self-join query (Carmeli-Segoufin)")
        else:
            caveat = ("conditional lower bound; self-joins present and "
                      "comparisons block the core analysis")
        report.verdicts.append(TaskVerdict(
            "enumerate", False,
            "not in Constant-Delay_lin (assuming Hyperclique)",
            "Theorem 4.9", "repro.eval.naive",
            caveat=caveat))
        return report

    star = cq.quantified_star_size()
    free_connex = star <= 1
    facts["quantified_star_size"] = star
    facts["free_connex"] = free_connex
    # effective = best of the query and its (equivalent) core structure
    if cored and facts["core_acyclic"]:
        eff_star = min(star, facts["core_quantified_star_size"])
    else:
        eff_star = star
    facts["effective_free_connex"] = eff_star <= 1
    facts["effective_quantified_star_size"] = eff_star
    report.query_class = "ACQ" + ("!=" if facts["has_disequalities"] else "")

    report.verdicts.append(TaskVerdict(
        "decide", True, "O(||phi|| * ||D||)", "Theorem 4.2 (Yannakakis)",
        "repro.eval.yannakakis.yannakakis_boolean"))

    cs = "Carmeli-Segoufin (arXiv 2206.04988) via homomorphic core"
    thm_enum = "Theorem 4.20" if facts["has_disequalities"] else "Theorem 4.6"
    if free_connex:
        report.verdicts.append(TaskVerdict(
            "enumerate", True, "constant delay after linear preprocessing",
            thm_enum,
            "repro.enumeration.disequality.DisequalityEnumerator"
            if facts["has_disequalities"]
            else "repro.enumeration.free_connex.FreeConnexEnumerator"))
    elif cored and facts["core_free_connex"]:
        # not free-connex as written, but identifying self-join atoms
        # yields an equivalent free-connex core — decisively tractable
        report.verdicts.append(TaskVerdict(
            "enumerate", True,
            "constant delay after linear preprocessing "
            "(evaluate the free-connex core)",
            f"Theorem 4.6 + {cs}",
            "repro.enumeration.free_connex.FreeConnexEnumerator"))
    else:
        if facts["self_join_free"]:
            caveat = "conditional on Mat-Mul; linear delay achievable"
        elif cored:
            # the core is as hard as the query: the self-join-free
            # Mat-Mul bound transfers (Carmeli-Segoufin)
            caveat = ("conditional on Mat-Mul; the homomorphic core is "
                      "not free-connex, so the bound lifts to this "
                      "self-join query (Carmeli-Segoufin); linear delay "
                      "achievable")
        else:
            caveat = ("conditional on Mat-Mul; linear delay achievable "
                      "(self-joins present, comparisons block the core "
                      "analysis)")
        report.verdicts.append(TaskVerdict(
            "enumerate", False,
            "not in Constant-Delay_lin (assuming Mat-Mul); "
            "linear delay via Algorithm 2",
            "Theorems 4.8 / 4.3",
            "repro.enumeration.acq_linear.LinearDelayACQEnumerator",
            caveat=caveat))

    if facts["has_disequalities"]:
        report.verdicts.append(TaskVerdict(
            "count", None, "f(||phi||) * ||phi(D)|| * ||D||  (FPT)",
            "Section 4.3 ([69])", "repro.counting.acq_count.count_cq_naive",
            caveat="exact engine not specialised; naive baseline used"))
    elif star <= 1:
        report.verdicts.append(TaskVerdict(
            "count", True, "O(||phi|| * ||D||)", "Theorems 4.21 / 4.28",
            "repro.counting.acq_count.count_acq"))
    elif eff_star <= 1:
        report.verdicts.append(TaskVerdict(
            "count", True, "O(||phi|| * ||D||) on the core",
            f"Theorems 4.21 / 4.28 + {cs}",
            "repro.counting.acq_count.count_acq"))
    else:
        report.verdicts.append(TaskVerdict(
            "count", True,
            f"(||D|| + ||phi||)^O({eff_star})  (star size {eff_star})",
            "Theorem 4.28", "repro.counting.acq_count.count_acq",
            caveat="unbounded star size over a query class means #W[1]-hard"))
    return report


def _classify_signed(sq) -> ComplexityReport:
    """Signed queries (Section 4.5, [18]): upper bounds ride on the
    positive part's structure; the negative atoms add O(1) probes per
    candidate."""
    report = _classify_cq(sq.positive_core())
    report.query_class = "signed CQ"
    report.query_repr = repr(sq)
    report.facts["negative_atoms"] = len(sq.negative)
    for verdict in report.verdicts:
        if verdict.task == "enumerate" and verdict.tractable:
            verdict.tractable = None
            verdict.caveat = ("positive part is free-connex, but negated "
                              "atoms filter answers: only the polynomial-"
                              "delay fallback is implemented (the [18] "
                              "classification of signed queries is partial)")
            verdict.engine = "repro.logic.signed.evaluate_signed"
        elif verdict.task == "count":
            verdict.tractable = None
            verdict.engine = "repro.logic.signed.count_signed"
            verdict.caveat = "counting with negation is #SAT-flavoured"
        elif verdict.task == "decide":
            verdict.engine = "repro.logic.signed.decide_signed"
    return report


# ------------------------------------------------------------------------ UCQ


def _classify_ucq(ucq: UnionOfConjunctiveQueries) -> ComplexityReport:
    from repro.hypergraph.unionext import union_extension_plan

    report = ComplexityReport(query_repr=repr(ucq), query_class="UCQ")
    report.facts["n_disjuncts"] = len(ucq)
    all_fc = all(d.is_acyclic() and d.is_free_connex() for d in ucq
                 if not d.has_comparisons())
    report.facts["all_disjuncts_free_connex"] = all_fc and not any(
        d.has_comparisons() for d in ucq)
    plan = None
    if not any(d.has_comparisons() for d in ucq):
        try:
            plan = union_extension_plan(ucq)
        except Exception:
            plan = None
    report.facts["free_connex_ucq"] = plan is not None
    if plan is not None:
        report.verdicts.append(TaskVerdict(
            "enumerate", True,
            "constant amortised delay via union extensions",
            "Theorem 4.13", "repro.enumeration.ucq_union.UCQEnumerator",
            caveat="duplicate filtering uses output-size memory (see DESIGN.md)"))
    else:
        report.verdicts.append(TaskVerdict(
            "enumerate", None, "no free-connex union extension found",
            "Section 4.2", "repro.enumeration.ucq_union.MaterialisedUnionEnumerator",
            caveat="full UCQ classification is open (paper, Section 4.2)"))
    report.verdicts.append(TaskVerdict(
        "decide", True, "union of acyclic decisions",
        "Theorem 4.2", "repro.eval.modelcheck.model_check"))
    report.verdicts.append(TaskVerdict(
        "count", None, "no general tractable counting (inclusion-exclusion "
        "over disjuncts is exponential in k)", "Section 4.4",
        "repro.eval.naive"))
    return report


# ------------------------------------------------------------------------ NCQ


def _classify_ncq(ncq: NegativeConjunctiveQuery) -> ComplexityReport:
    report = ComplexityReport(query_repr=repr(ncq), query_class="NCQ")
    beta = ncq.is_beta_acyclic()
    from repro.hypergraph.jointree import is_alpha_acyclic

    report.facts["alpha_acyclic"] = is_alpha_acyclic(ncq.hypergraph())
    report.facts["beta_acyclic"] = beta
    if beta:
        report.verdicts.append(TaskVerdict(
            "decide", True, "quasi-linear time", "Theorem 4.31",
            "repro.csp.ncq_solver.decide_ncq",
            caveat="nest-point-driven Davis-Putnam; Boolean domains use the "
                   "clause translation"))
    else:
        report.verdicts.append(TaskVerdict(
            "decide", False, "as hard as SAT (assuming Triangle, not "
            "quasi-linear)", "Theorem 4.31 / Section 4.5",
            "repro.csp.ncq_solver.decide_ncq",
            caveat="alpha-acyclicity does not help: see "
                   "repro.reductions.sat_ncq"))
    report.verdicts.append(TaskVerdict(
        "count", None, "#SAT-hard in general", "Section 4.5",
        "repro.csp.ncq_solver.solve_negative_csp"))
    report.verdicts.append(TaskVerdict(
        "enumerate", None, "via backtracking", "Section 4.5",
        "repro.csp.ncq_solver.ncq_answers"))
    return report


# ------------------------------------------------------------------------- FO


def _classify_fo(formula: Formula) -> ComplexityReport:
    prefix = classify_prefix(formula)
    report = ComplexityReport(query_repr=repr(formula), query_class="FO")
    report.facts["prefix_class"] = prefix.name()
    report.facts["free_so_variables"] = sorted(
        s.name for s in formula.so_variables())
    report.verdicts.append(TaskVerdict(
        "decide", None,
        "PSPACE-complete combined; ||phi|| * ||D||^h data complexity; "
        "linear on bounded degree, pseudo-linear on low degree / nowhere "
        "dense",
        "Theorems 3.1 / 3.6 / 3.9", "repro.eval.naive.model_check_fo",
        caveat="sparsity engines take the local-pattern normal form "
               "(repro.enumeration.bounded_degree)"))
    if prefix.k == 0:
        report.verdicts.append(TaskVerdict(
            "count", True, "polynomial time (#Sigma_0)", "Theorem 5.3",
            "repro.counting.spectrum.count_sigma0"))
        report.verdicts.append(TaskVerdict(
            "enumerate", True,
            "delta-constant delay after polynomial precomputation",
            "Theorem 5.5", "repro.enumeration.gray.Sigma0SOEnumerator"))
    elif prefix.k == 1 and prefix.leading == "E":
        report.verdicts.append(TaskVerdict(
            "count", None, "#Sigma_1: #P-hard cases but admits an FPRAS",
            "Theorem 5.3 / Section 5.1", "repro.counting.approx.karp_luby_dnf",
            caveat="FPRAS shown for the #DNF-style fragment"))
        report.verdicts.append(TaskVerdict(
            "enumerate", True, "polynomial delay", "Theorem 5.5",
            "repro.eval.naive.fo_answers"))
    else:
        report.verdicts.append(TaskVerdict(
            "count", False, "#P-complete at Pi^rel_2 and above", "Theorem 5.3",
            "repro.counting.spectrum.count_so_bruteforce"))
        report.verdicts.append(TaskVerdict(
            "enumerate", False,
            "Pi_1 and above: not polynomial delay unless P = NP",
            "Theorem 5.5", "repro.eval.naive.fo_answers"))
    return report
