"""Cross-query plan/preprocessing cache.

Constant-delay enumeration splits work into a *preprocessing* phase
(join-tree construction, atom materialisation + dictionary encoding,
full-reducer semijoins, free-connex projections) and an *enumeration*
phase whose delay the paper bounds.  Under repeated-query workloads —
Carmeli–Segoufin's motivation of answering the same query against a
slowly changing database, the ROADMAP's "heavy traffic" scenario — the
preprocessing phase is pure recomputation.  This module caches it.

:class:`PlanCache` is a small LRU keyed on

    (kind, query, engine name, extra, database fingerprint)

where the fingerprint (:meth:`repro.data.database.Database.fingerprint`)
combines each stored relation's identity (``id``), its mutation
``version`` counter, and its cardinality, plus the domain size — so any
``add``/``discard`` on any relation invalidates every plan derived from
that database.  Because ``id()`` values are only unique among *live*
objects, every cache entry keeps strong references to the database and
its relations; an entry therefore can never refer to a dead (and
potentially recycled) id, at the price of keeping cached databases alive
until eviction.  ``maxsize`` bounds that retention.

Cached values are returned as-is: callers that hand mutable relations to
consumers must copy them first (see ``full_reducer``).  Enumerator-level
entries (prepared :class:`~repro.engine.enumerate.BlockIterator`
pipelines) are immutable after preprocessing and safely shared.

The cache is enabled by default; disable with ``REPRO_PLAN_CACHE=0``,
:func:`set_plan_cache_enabled`, or per-scope with :func:`plan_cache_disabled`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Hashable, Iterator, Optional, Tuple

from repro import obs

ENV_VAR = "REPRO_PLAN_CACHE"
DEFAULT_MAXSIZE = 256

_MISS = object()


class PlanCache:
    """An LRU mapping plan keys to preprocessing artefacts.

    Entries pin the database objects they were computed from (strong
    references stored next to the value), which makes the ``id``-based
    fingerprint sound: an id can only be reused after the object dies,
    and pinned objects stay alive for the entry's lifetime.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, Tuple[Any, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ state

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries), "maxsize": self.maxsize}

    # ----------------------------------------------------------------- lookup

    @staticmethod
    def key_for(kind: str, query: Hashable, db, engine_name: str,
                extra: Hashable = ()) -> Hashable:
        """The cache key: query canonical form + database fingerprint."""
        return (kind, query, engine_name, extra,
                db.fingerprint() if db is not None else None)

    def get(self, key: Hashable) -> Any:
        """The cached value for ``key``, or the module-private miss
        sentinel (so ``None`` is a cacheable value)."""
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self.misses += 1
            return _MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: Hashable, value: Any, pins: Any = None) -> Any:
        """Insert ``value``, pinning ``pins`` (typically the database)
        for the entry's lifetime; evicts the LRU entry beyond maxsize."""
        self._entries[key] = (value, pins)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.count("plancache.evictions")
        return value


_GLOBAL = PlanCache()
_ENABLED: Optional[bool] = None  # None -> consult the environment


def plan_cache() -> PlanCache:
    """The process-wide cache instance."""
    return _GLOBAL


def plan_cache_enabled() -> bool:
    if _ENABLED is not None:
        return _ENABLED
    env = os.environ.get(ENV_VAR, "").strip().lower()
    return env not in ("0", "false", "off", "no")


def set_plan_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the cache on/off process-wide (None resets to the
    ``REPRO_PLAN_CACHE`` environment default)."""
    global _ENABLED
    _ENABLED = enabled


@contextmanager
def plan_cache_disabled() -> Iterator[None]:
    """Temporarily bypass the cache (cold-path measurements, tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def clear_plan_cache() -> None:
    _GLOBAL.clear()


def cached_plan(kind: str, query: Hashable, db, engine_name: str,
                builder: Callable[[], Any], extra: Hashable = ()) -> Any:
    """Fetch-or-build helper used by the preprocessing entry points.

    ``builder`` runs (and its result is cached, with ``db`` pinned) only
    on a miss or when caching is disabled.  ``extra`` distinguishes
    same-query plans with different knobs — block size, and the engine's
    :meth:`~repro.engine.base.Engine.plan_key` (for the parallel backend:
    worker count and fallback threshold, since shard plans and chunk
    bounds built for one fan-out must not serve another; for the
    compiled backend: the kernel tier and radix fan-out, since cached
    relations carry probe structures built by one tier that the other
    cannot read).
    """
    if not plan_cache_enabled():
        with obs.span("plan.build", kind=kind, cache="off"):
            return builder()
    cache = _GLOBAL
    with obs.span("plan.fingerprint", kind=kind):
        key = PlanCache.key_for(kind, query, db, engine_name, extra)
    value = cache.get(key)
    if value is not _MISS:
        obs.count("plancache.hits")
        return value
    obs.count("plancache.misses")
    with obs.span("plan.build", kind=kind, cache="miss"):
        value = builder()
    return cache.put(key, value, pins=db)
