"""Cross-query plan/preprocessing cache.

Constant-delay enumeration splits work into a *preprocessing* phase
(join-tree construction, atom materialisation + dictionary encoding,
full-reducer semijoins, free-connex projections) and an *enumeration*
phase whose delay the paper bounds.  Under repeated-query workloads —
Carmeli–Segoufin's motivation of answering the same query against a
slowly changing database, the ROADMAP's "heavy traffic" scenario — the
preprocessing phase is pure recomputation.  This module caches it.

:class:`PlanCache` is a small LRU keyed on

    (kind, query, engine name, extra, database fingerprint)

where the fingerprint (:meth:`repro.data.database.Database.fingerprint`)
combines each stored relation's identity (``id``), its mutation
``version`` counter, and its cardinality, plus the domain size — so any
``add``/``discard`` on any relation invalidates every plan derived from
that database.  Because ``id()`` values are only unique among *live*
objects, every cache entry keeps strong references to the database and
its relations; an entry therefore can never refer to a dead (and
potentially recycled) id, at the price of keeping cached databases alive
until eviction.  ``maxsize`` bounds that retention.

Cached values are returned as-is: callers that hand mutable relations to
consumers must copy them first (see ``full_reducer``).  Enumerator-level
entries (prepared :class:`~repro.engine.enumerate.BlockIterator`
pipelines) are immutable after preprocessing and safely shared.

The cache is enabled by default; disable with ``REPRO_PLAN_CACHE=0``,
:func:`set_plan_cache_enabled`, or per-scope with :func:`plan_cache_disabled`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro import obs

ENV_VAR = "REPRO_PLAN_CACHE"
INCREMENTAL_ENV_VAR = "REPRO_INCREMENTAL"
DEFAULT_MAXSIZE = 256

_MISS = object()


class PlanCache:
    """An LRU mapping plan keys to preprocessing artefacts.

    Entries pin the database objects they were computed from (strong
    references stored next to the value), which makes the ``id``-based
    fingerprint sound: an id can only be reused after the object dies,
    and pinned objects stay alive for the entry's lifetime.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, Tuple[Any, Any]]" = OrderedDict()
        # (kind, query, engine, extra) -> most recent full key, so a miss
        # caused purely by a fingerprint change can find its predecessor
        # entry and refresh it instead of rebuilding from scratch
        self._latest: Dict[Hashable, Hashable] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.refreshes = 0
        self.refresh_overflows = 0
        self.refresh_fallbacks = 0

    # ------------------------------------------------------------------ state

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._latest.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.refreshes = 0
        self.refresh_overflows = 0
        self.refresh_fallbacks = 0

    def stats(self) -> dict:
        from repro.engine.symbols import sharing_enabled
        from repro.obs.registry import registry

        reg = registry()
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "refreshes": self.refreshes,
                "refresh_overflows": self.refresh_overflows,
                "refresh_fallbacks": self.refresh_fallbacks,
                "entries": len(self._entries), "maxsize": self.maxsize,
                # per-symbol work sharing rides the same repeated-query
                # motivation as the plan cache, so its counters surface
                # here (and in doctor/top) alongside the plan hit rates
                "symbol_sharing": sharing_enabled(),
                "symbol_workspace_hits":
                    reg.counter("engine.symbol_workspace_hits"),
                "symbol_workspace_misses":
                    reg.counter("engine.symbol_workspace_misses"),
                "coalesced_semijoins":
                    reg.counter("yannakakis.coalesced_semijoins")}

    # ----------------------------------------------------------------- lookup

    @staticmethod
    def key_for(kind: str, query: Hashable, db, engine_name: str,
                extra: Hashable = ()) -> Hashable:
        """The cache key: query canonical form + database fingerprint."""
        return (kind, query, engine_name, extra,
                db.fingerprint() if db is not None else None)

    def get(self, key: Hashable) -> Any:
        """The cached value for ``key``, or the module-private miss
        sentinel (so ``None`` is a cacheable value)."""
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self.misses += 1
            return _MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: Hashable, value: Any, pins: Any = None) -> Any:
        """Insert ``value``, pinning ``pins`` (typically the database)
        for the entry's lifetime; evicts the LRU entry beyond maxsize."""
        self._entries[key] = (value, pins)
        self._entries.move_to_end(key)
        if isinstance(key, tuple) and len(key) == 5:
            self._latest[key[:4]] = key
        while len(self._entries) > self.maxsize:
            evicted, _ = self._entries.popitem(last=False)
            if isinstance(evicted, tuple) and len(evicted) == 5 \
                    and self._latest.get(evicted[:4]) == evicted:
                del self._latest[evicted[:4]]
            self.evictions += 1
            obs.count("plancache.evictions")
        return value

    # ---------------------------------------------------------------- refresh

    def predecessor(self, key: Hashable) -> Tuple[Any, Any]:
        """The live entry cached for ``key``'s (kind, query, engine,
        extra) under an *older* fingerprint: ``(prev_key, value)``, or
        ``(None, _MISS)`` when there is none to refresh from."""
        if not (isinstance(key, tuple) and len(key) == 5):
            return None, _MISS
        prev_key = self._latest.get(key[:4])
        if prev_key is None or prev_key == key:
            return None, _MISS
        entry = self._entries.get(prev_key, _MISS)
        if entry is _MISS:
            return None, _MISS
        return prev_key, entry[0]

    def replace(self, prev_key: Hashable, key: Hashable, value: Any,
                pins: Any = None) -> Any:
        """Move a refreshed plan from its stale key to the current one."""
        self._entries.pop(prev_key, None)
        self.refreshes += 1
        return self.put(key, value, pins=pins)


_GLOBAL = PlanCache()
_ENABLED: Optional[bool] = None  # None -> consult the environment
_INCREMENTAL: Optional[bool] = None  # None -> consult the environment


def plan_cache() -> PlanCache:
    """The process-wide cache instance."""
    return _GLOBAL


def plan_cache_enabled() -> bool:
    if _ENABLED is not None:
        return _ENABLED
    env = os.environ.get(ENV_VAR, "").strip().lower()
    return env not in ("0", "false", "off", "no")


def set_plan_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the cache on/off process-wide (None resets to the
    ``REPRO_PLAN_CACHE`` environment default)."""
    global _ENABLED
    _ENABLED = enabled


@contextmanager
def plan_cache_disabled() -> Iterator[None]:
    """Temporarily bypass the cache (cold-path measurements, tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def incremental_enabled() -> bool:
    """Is delta-propagated plan refresh on?  Off by default: set
    ``REPRO_INCREMENTAL=1`` / ``--incremental`` (or call
    :func:`set_incremental_enabled`) to opt in."""
    if _INCREMENTAL is not None:
        return _INCREMENTAL
    env = os.environ.get(INCREMENTAL_ENV_VAR, "").strip().lower()
    return env in ("1", "true", "on", "yes")


def set_incremental_enabled(enabled: Optional[bool]) -> None:
    """Force incremental refresh on/off process-wide (None resets to
    the ``REPRO_INCREMENTAL`` environment default)."""
    global _INCREMENTAL
    _INCREMENTAL = enabled


@contextmanager
def incremental_scope(enabled: bool) -> Iterator[None]:
    """Temporarily force incremental refresh on or off (tests, CLI)."""
    global _INCREMENTAL
    previous = _INCREMENTAL
    _INCREMENTAL = enabled
    try:
        yield
    finally:
        _INCREMENTAL = previous


def clear_plan_cache() -> None:
    _GLOBAL.clear()


def _collect_deltas(db, old_fp, new_fp
                    ) -> Optional[Dict[str, List[Tuple[str, Tuple]]]]:
    """Per-relation effective ops taking ``old_fp`` to ``new_fp``.

    Returns ``None`` when the two fingerprints are not delta-comparable:
    different domain size or relation line-up (the domain and the
    relation list only change at ``add_relation``, so a mismatch means
    a structurally different database, not a tuple-level update), or
    any per-relation delta log that has overflowed.
    """
    if old_fp is None or new_fp is None or old_fp[0] != new_fp[0]:
        return None
    old_rels, new_rels = old_fp[1], new_fp[1]
    if len(old_rels) != len(new_rels):
        return None
    deltas: Dict[str, List[Tuple[str, Tuple]]] = {}
    for (oname, oid, over, _olen), (nname, nid, nver, _nlen) in zip(
            old_rels, new_rels):
        if oname != nname or oid != nid:
            return None
        if over == nver:
            continue
        ops = db.relation(oname).deltas_since(over)
        if ops is None:
            return None
        deltas[oname] = ops
    return deltas


def cached_plan(kind: str, query: Hashable, db, engine_name: str,
                builder: Callable[[], Any], extra: Hashable = (),
                refresher: Optional[Callable[[Any, Dict[str, list]], Any]]
                = None) -> Any:
    """Fetch-or-build helper used by the preprocessing entry points.

    ``builder`` runs (and its result is cached, with ``db`` pinned) only
    on a miss or when caching is disabled.  ``extra`` distinguishes
    same-query plans with different knobs — block size, and the engine's
    :meth:`~repro.engine.base.Engine.plan_key` (for the parallel backend:
    worker count and fallback threshold, since shard plans and chunk
    bounds built for one fan-out must not serve another; for the
    compiled backend: the kernel tier and radix fan-out, since cached
    relations carry probe structures built by one tier that the other
    cannot read).

    ``refresher`` opts the plan kind into delta propagation: when a
    lookup misses only because the database fingerprint moved, and
    :func:`incremental_enabled` is on, ``refresher(stale_value,
    deltas)`` is offered the predecessor entry plus the per-relation
    ``{name: [('+'|'-', tuple), ...]}`` ops that separate the two
    fingerprints.  Returning the caught-up value re-caches it under the
    new key; returning ``None`` (unsupported delta shape) — or any
    delta-log overflow — falls back to a cold ``builder`` run.
    Refreshers must validate support *before* mutating their state.
    """
    if not plan_cache_enabled():
        with obs.span("plan.build", kind=kind, cache="off"):
            return builder()
    cache = _GLOBAL
    with obs.span("plan.fingerprint", kind=kind):
        key = PlanCache.key_for(kind, query, db, engine_name, extra)
    value = cache.get(key)
    if value is not _MISS:
        obs.count("plancache.hits")
        return value
    obs.count("plancache.misses")
    if refresher is not None and db is not None and incremental_enabled():
        prev_key, stale = cache.predecessor(key)
        if stale is not _MISS:
            deltas = _collect_deltas(db, prev_key[4], key[4])
            if deltas is None:
                cache.refresh_overflows += 1
                obs.count("plancache.delta_overflow")
                obs.event("plancache.delta_overflow", kind=kind,
                          engine=engine_name)
            else:
                n_ops = sum(len(ops) for ops in deltas.values())
                with obs.span("plan.refresh", kind=kind, ops=n_ops):
                    value = refresher(stale, deltas)
                if value is None:
                    cache.refresh_fallbacks += 1
                    obs.count("plancache.refresh_fallback")
                    obs.event("plancache.refresh_fallback", kind=kind,
                              engine=engine_name, ops=n_ops)
                else:
                    obs.count("plancache.refresh")
                    obs.count("plancache.delta_applied", n_ops)
                    return cache.replace(prev_key, key, value, pins=db)
    with obs.span("plan.build", kind=kind, cache="miss"):
        value = builder()
    return cache.put(key, value, pins=db)
