"""Complexity reports: the classifier's output.

A :class:`ComplexityReport` carries the structural facts about a query
and one :class:`TaskVerdict` per task (decide / count / enumerate), each
naming the paper result it instantiates and the engine of this library
that realises it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class TaskVerdict:
    """The classifier's conclusion for one algorithmic task."""

    task: str                  # "decide" | "count" | "enumerate"
    tractable: Optional[bool]  # None = unknown / conditional
    bound: str                 # human-readable complexity bound
    theorem: str               # the paper result the verdict instantiates
    engine: str                # dotted path of the implementing engine
    caveat: str = ""           # conditionality, substitutions, fragments

    def render(self) -> str:
        status = {True: "tractable", False: "hard", None: "conditional"}[self.tractable]
        line = f"{self.task:>9}: {status:<11} {self.bound}  [{self.theorem}; {self.engine}]"
        if self.caveat:
            line += f"\n{'':>12}caveat: {self.caveat}"
        return line


@dataclass
class ComplexityReport:
    """Structural facts plus per-task verdicts for one query."""

    query_repr: str
    query_class: str                      # CQ / ACQ / UCQ / NCQ / FO / ...
    facts: Dict[str, Any] = field(default_factory=dict)
    verdicts: List[TaskVerdict] = field(default_factory=list)

    def verdict(self, task: str) -> TaskVerdict:
        for v in self.verdicts:
            if v.task == task:
                return v
        raise KeyError(f"no verdict for task {task!r}")

    def fact(self, name: str, default: Any = None) -> Any:
        return self.facts.get(name, default)

    def render(self) -> str:
        lines = [f"query: {self.query_repr}", f"class: {self.query_class}", "facts:"]
        for name, value in self.facts.items():
            lines.append(f"  {name} = {value}")
        lines.append("verdicts:")
        for v in self.verdicts:
            lines.append("  " + v.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
