"""One-call answering: route a query to the best implemented engine.

The planner consults the same structure the classifier reports on and
dispatches:

* ``decide`` — Boolean answering (Yannakakis / DP resolution / naive);
* ``count`` — star-size counting for ACQs, naive elsewhere;
* ``enumerate_answers`` — constant-delay when free-connex (with or
  without disequalities), linear-delay ACQ, union extensions for UCQs,
  with correct fallbacks everywhere else;
* ``answer`` — materialise the full answer set.
"""

from __future__ import annotations

from typing import Any, Iterator, Set, Tuple, Union

from repro import obs
from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.logic.cq import ConjunctiveQuery
from repro.logic.fo import Formula
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.ucq import UnionOfConjunctiveQueries

QueryLike = Union[ConjunctiveQuery, UnionOfConjunctiveQueries,
                  NegativeConjunctiveQuery, Formula]


def decide(query: QueryLike, db: Database) -> bool:
    """Boolean query answering (model checking)."""
    from repro.eval.modelcheck import model_check

    with obs.span("planner.decide", query=type(query).__name__):
        return model_check(query, db)


def enumerate_answers(query: QueryLike, db: Database, engine=None,
                      block_size=None) -> Iterator[Tuple[Any, ...]]:
    """Enumerate the answers with the best applicable delay guarantee.

    ``engine`` selects the relational backend (see :mod:`repro.engine`)
    and ``block_size`` the batched pipeline's amortisation block for the
    engines that support it; both default to the process-wide selection.

    When the delay-guarantee watchdog is installed
    (:func:`repro.obs.watchdog.install` / ``REPRO_WATCHDOG=1``), the
    answer stream is wrapped so delay observations recorded while it
    runs are attributed to this query's plan label and checked against
    its classifier-derived expectation.
    """
    from repro.obs.watchdog import maybe_watch

    inner = maybe_watch(query, _enumerate_answers(query, db, engine=engine,
                                                  block_size=block_size))
    if not obs.enabled():
        yield from inner
        return
    with obs.span("planner.enumerate", query=type(query).__name__):
        yield from inner


def _enumerate_answers(query: QueryLike, db: Database, engine=None,
                       block_size=None) -> Iterator[Tuple[Any, ...]]:
    if isinstance(query, ConjunctiveQuery):
        if query.order_comparisons():
            from repro.enumeration.disequality import FallbackDisequalityEnumerator

            yield from FallbackDisequalityEnumerator(query, db)
            return
        if query.disequalities():
            from repro.enumeration.disequality import enumerate_acq_disequalities
            from repro.errors import NotFreeConnexError

            try:
                yield from enumerate_acq_disequalities(query, db)
            except NotFreeConnexError:
                from repro.enumeration.disequality import FallbackDisequalityEnumerator

                yield from FallbackDisequalityEnumerator(query, db)
            return
        if query.is_acyclic():
            if query.is_free_connex():
                from repro.enumeration.free_connex import FreeConnexEnumerator

                yield from FreeConnexEnumerator(query, db, engine=engine,
                                                block_size=block_size)
            else:
                from repro.enumeration.acq_linear import LinearDelayACQEnumerator

                yield from LinearDelayACQEnumerator(query, db, engine=engine)
            return
        from repro.eval.naive import evaluate_cq_naive

        yield from sorted(evaluate_cq_naive(query, db), key=repr)
        return
    if isinstance(query, UnionOfConjunctiveQueries):
        from repro.enumeration.ucq_union import enumerate_ucq

        yield from enumerate_ucq(query, db, engine=engine,
                                 block_size=block_size)
        return
    if isinstance(query, NegativeConjunctiveQuery):
        from repro.csp.ncq_solver import ncq_answers

        yield from sorted(ncq_answers(query, db), key=repr)
        return
    if isinstance(query, Formula):
        from repro.eval.naive import fo_answers

        if query.so_variables():
            raise UnsupportedQueryError(
                "free second-order variables: use "
                "repro.enumeration.gray.Sigma0SOEnumerator"
            )
        yield from sorted(fo_answers(query, db), key=repr)
        return
    raise UnsupportedQueryError(f"cannot enumerate {type(query).__name__}")


def answer(query: QueryLike, db: Database) -> Set[Tuple[Any, ...]]:
    """The full answer set phi(D)."""
    return set(enumerate_answers(query, db))


def count(query: QueryLike, db: Database, weights=None, engine=None) -> Any:
    """|phi(D)| (or its weighted sum), via the best applicable engine.

    ``engine`` selects the relational backend for the routes that use
    one (star-size counting of ACQs); other routes ignore it.
    """
    with obs.span("planner.count", query=type(query).__name__):
        return _count(query, db, weights, engine=engine)


def _count(query: QueryLike, db: Database, weights=None, engine=None) -> Any:
    if isinstance(query, ConjunctiveQuery):
        if not query.has_comparisons() and query.is_acyclic():
            from repro.counting.acq_count import count_acq

            return count_acq(query, db, weights, engine=engine)
        if (query.disequalities() and not query.order_comparisons()
                and weights is None):
            # count through the ACQ!= enumerator when its fragment applies
            from repro.enumeration.disequality import enumerate_acq_disequalities
            from repro.errors import NotFreeConnexError

            try:
                return sum(1 for _ in enumerate_acq_disequalities(query, db))
            except NotFreeConnexError:
                pass
        from repro.counting.acq_count import count_cq_naive

        return count_cq_naive(query, db, weights)
    if isinstance(query, UnionOfConjunctiveQueries):
        if weights is not None:
            from repro.counting.weighted import sum_of_weights

            return sum_of_weights(answer(query, db), weights)
        return sum(1 for _ in enumerate_answers(query, db))
    if isinstance(query, NegativeConjunctiveQuery):
        return sum(1 for _ in enumerate_answers(query, db))
    if isinstance(query, Formula):
        from repro.eval.naive import fo_answers

        if query.so_variables():
            from repro.counting.spectrum import count_sigma0
            from repro.logic.fo import is_quantifier_free

            if is_quantifier_free(query):
                return count_sigma0(query, db)
            from repro.counting.spectrum import count_so_bruteforce

            return count_so_bruteforce(query, db)
        return len(fo_answers(query, db))
    raise UnsupportedQueryError(f"cannot count {type(query).__name__}")
