"""The paper's contribution as an executable map.

Given a query, :func:`~repro.core.classify.classify` computes the
structural facts the survey's theorems key on (acyclicity, free-
connexity, quantified star size, beta-acyclicity, prefix class, ...) and
derives per-task verdicts — can this query be decided / counted /
enumerated efficiently, by which theorem, with which engine of this
library.  :mod:`~repro.core.planner` then routes ``answer`` / ``count`` /
``enumerate_answers`` calls to the best applicable engine.
"""

from repro.core.classify import classify
from repro.core.report import ComplexityReport, TaskVerdict
from repro.core.planner import answer, count, enumerate_answers, decide

__all__ = [
    "classify",
    "ComplexityReport",
    "TaskVerdict",
    "answer",
    "count",
    "enumerate_answers",
    "decide",
]
