"""Databases: finite relational structures (paper Section 2.1).

A :class:`Database` packages a set of named :class:`~repro.data.relation.Relation`
objects together with an explicit domain.  It implements the size measure

    ||D|| = |sigma| + |Dom(D)| + sum_R |R^D| * ar(R)

and the *degree* of a structure (Section 3.1): the degree of an element is
the total number of tuples, over all relations, in which it occurs; the
degree of the structure is the maximum over its elements.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.data.relation import Relation
from repro.errors import MalformedQueryError, SchemaMismatchError


class Database:
    """A finite relational structure over an explicit domain.

    The domain always contains every value occurring in some relation;
    isolated domain elements (occurring in no tuple) are allowed and matter
    for the semantics of quantifiers and for the degree notion.
    """

    def __init__(self, relations: Optional[Iterable[Relation]] = None,
                 domain: Optional[Iterable[Any]] = None):
        self._relations: Dict[str, Relation] = {}
        self._domain: Dict[Any, None] = {}
        if relations is not None:
            for rel in relations:
                self.add_relation(rel)
        if domain is not None:
            for value in domain:
                self._domain.setdefault(value, None)

    # ----------------------------------------------------------- construction

    @classmethod
    def from_relations(cls, relations: Mapping[str, Iterable[Sequence[Any]]],
                       domain: Optional[Iterable[Any]] = None) -> "Database":
        """Build a database from ``{name: iterable of tuples}``.

        Arities are inferred from the first tuple of each relation; an empty
        iterable is rejected here because its arity is ambiguous — construct
        a :class:`Relation` explicitly for empty relations.
        """
        rels = []
        for name, tuples in relations.items():
            tuples = [tuple(t) for t in tuples]
            if not tuples:
                raise MalformedQueryError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "use Relation(name, arity) and Database.add_relation"
                )
            rels.append(Relation(name, len(tuples[0]), tuples))
        return cls(rels, domain=domain)

    def add_relation(self, rel: Relation) -> None:
        """Register a relation; its values are merged into the domain."""
        if rel.name in self._relations:
            raise MalformedQueryError(f"duplicate relation name {rel.name!r}")
        self._relations[rel.name] = rel
        for value in rel.domain_values():
            self._domain.setdefault(value, None)

    def add_domain_values(self, values: Iterable[Any]) -> None:
        for value in values:
            self._domain.setdefault(value, None)

    # ----------------------------------------------------------------- access

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaMismatchError(f"database has no relation named {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> List[str]:
        return list(self._relations)

    def relations(self) -> List[Relation]:
        return list(self._relations.values())

    @property
    def domain(self) -> List[Any]:
        """The domain in a fixed (insertion) order — the linear order the
        RAM model assumes on the input encoding."""
        return list(self._domain)

    def domain_size(self) -> int:
        return len(self._domain)

    def __contains__(self, value: Any) -> bool:
        return value in self._domain

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __repr__(self) -> str:
        rels = ", ".join(f"{r.name}/{r.arity}:{len(r)}" for r in self._relations.values())
        return f"Database(|dom|={len(self._domain)}, {rels})"

    # ------------------------------------------------------------------ sizes

    def size(self) -> int:
        """||D|| as defined in Section 2.1 of the paper."""
        return (
            len(self._relations)
            + len(self._domain)
            + sum(r.size_contribution() for r in self._relations.values())
        )

    def tuple_count(self) -> int:
        """Total number of stored tuples across all relations."""
        return sum(len(r) for r in self._relations.values())

    # ----------------------------------------------------------------- degree

    def degrees(self) -> Dict[Any, int]:
        """Degree of every domain element (number of tuples containing it).

        An element occurring several times inside one tuple is counted once
        for that tuple, matching "the total number of tuples of relations
        R_i to which x belongs".
        """
        deg: Dict[Any, int] = {value: 0 for value in self._domain}
        for rel in self._relations.values():
            for t in rel:
                for value in set(t):
                    deg[value] += 1
        return deg

    def degree(self) -> int:
        """deg(D) = max over elements of their degree (0 for empty domain)."""
        degs = self.degrees()
        return max(degs.values()) if degs else 0

    # ------------------------------------------------------------ fingerprint

    def fingerprint(self) -> Tuple:
        """A hashable snapshot identity for plan caching.

        Combines, per relation, its object identity with its mutation
        ``version`` and cardinality, plus the domain size — equal
        fingerprints mean "the same relation objects in the same state".
        Only sound while the relation objects are alive (``id`` reuse);
        :mod:`repro.core.plancache` pins them for exactly that reason.
        """
        return (
            len(self._domain),
            tuple((name, id(rel), rel.version, len(rel))
                  for name, rel in self._relations.items()),
        )

    # ------------------------------------------------------------------ misc

    def copy(self) -> "Database":
        db = Database(domain=self._domain)
        for rel in self._relations.values():
            db._relations[rel.name] = rel.copy()
        return db

    def restrict_domain(self, values: Iterable[Any]) -> "Database":
        """Induced substructure on ``values`` (keeps tuples fully inside)."""
        keep = set(values)
        rels = []
        for rel in self._relations.values():
            sub = Relation(rel.name, rel.arity)
            for t in rel:
                if all(v in keep for v in t):
                    sub.add(t)
            rels.append(sub)
        return Database(rels, domain=[v for v in self._domain if v in keep])
