"""In-memory relational database substrate.

This subpackage provides the data layer every algorithm in the library runs
against: :class:`~repro.data.relation.Relation` (a named finite set of
tuples with on-demand hash indexes), :class:`~repro.data.database.Database`
(a finite relational structure in the sense of Section 2.1 of the paper),
the functional-structure re-encoding of Section 4.3, and synthetic instance
generators used by the examples, tests and benchmarks.
"""

from repro.data.relation import Relation
from repro.data.database import Database
from repro.data.functional import FunctionalStructure, to_functional_structure
from repro.data import generators

__all__ = [
    "Relation",
    "Database",
    "FunctionalStructure",
    "to_functional_structure",
    "generators",
]
