"""Finite relations: named tuple sets with hash indexes.

A :class:`Relation` is the basic storage unit of the library.  It stores a
finite set of equal-length tuples and builds hash indexes over column
subsets lazily, so join algorithms get amortised O(1) probes without paying
for indexes they never use.

Tuples are stored in insertion order (dict-backed), which gives the linear
order on the encoding that the RAM model of the paper assumes (Section
2.3.1): iteration order is deterministic and stable.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import MalformedQueryError

Tup = Tuple[Any, ...]

DELTA_LOG_ENV_VAR = "REPRO_DELTA_LOG"
DEFAULT_DELTA_LOG_CAPACITY = 4096


def delta_log_capacity() -> int:
    """Per-relation delta-log bound (``REPRO_DELTA_LOG``, default 4096).

    Zero (or a negative value) disables delta retention entirely: every
    version gap then reads as an overflow and consumers fall back to
    cold recomputation, which is the pre-incremental behaviour.
    """
    env = os.environ.get(DELTA_LOG_ENV_VAR, "").strip()
    if not env:
        return DEFAULT_DELTA_LOG_CAPACITY
    try:
        return max(0, int(env))
    except ValueError:
        raise ValueError(
            f"{DELTA_LOG_ENV_VAR} must be an integer, got {env!r}") from None


class DeltaLog:
    """A bounded ring of effective mutations between relation versions.

    Each *effective* ``add``/``discard`` (no-ops excluded) appends one
    ``('+' | '-', tuple)`` entry; entry ``k`` from the tail corresponds
    to the mutation that produced version ``current - k + 1``.  The ring
    holds at most ``capacity`` entries, so :meth:`since` can replay any
    version gap of up to ``capacity`` mutations and returns ``None``
    beyond that — the overflow signal that sends plan-cache consumers
    down the cold-invalidation path instead of a wrong incremental one.
    """

    __slots__ = ("capacity", "_ops")

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = delta_log_capacity() if capacity is None \
            else max(0, int(capacity))
        self._ops: "deque[Tuple[str, Tup]]" = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._ops)

    def record(self, op: str, tup: Tup) -> None:
        """Append one effective mutation (the ring drops the oldest
        entry on overflow — detected later by :meth:`since`)."""
        self._ops.append((op, tup))

    def since(self, version: int, current: int
              ) -> Optional[List[Tuple[str, Tup]]]:
        """The ops taking state ``version`` to state ``current``, oldest
        first, or ``None`` when the gap fell off the ring (overflow) or
        is negative (a caller confused about version direction)."""
        gap = current - version
        if gap < 0 or gap > len(self._ops):
            return None
        if gap == 0:
            return []
        return list(itertools.islice(self._ops, len(self._ops) - gap,
                                     len(self._ops)))


class Relation:
    """A named finite relation of fixed arity.

    Parameters
    ----------
    name:
        The relation symbol this instance interprets.
    arity:
        Number of columns.  Every tuple added must have exactly this length.
    tuples:
        Optional initial contents; duplicates are silently collapsed.
    """

    __slots__ = ("name", "arity", "_tuples", "_indexes", "_colcache",
                 "_version", "_deltalog")

    def __init__(self, name: str, arity: int, tuples: Optional[Iterable[Sequence[Any]]] = None):
        if arity < 0:
            raise MalformedQueryError(f"relation {name!r}: arity must be >= 0, got {arity}")
        self.name = name
        self.arity = arity
        # dict used as an insertion-ordered set
        self._tuples: Dict[Tup, None] = {}
        # (columns) -> {key tuple -> list of full tuples}
        self._indexes: Dict[Tuple[int, ...], Dict[Tup, List[Tup]]] = {}
        # dictionary-encoded column cache of the columnar engine
        # (see repro.engine.columnar.encoded_relation_columns); the cache
        # carries the version it was built at, so mutations keep it in
        # place for delta patching instead of throwing it away
        self._colcache = None
        # bumped on every effective add/discard; (id, version, len) is the
        # plan-cache invalidation fingerprint (repro.core.plancache)
        self._version = 0
        # effective mutations since (up to) `delta_log_capacity()` versions
        # ago, for incremental plan refresh (repro.core.plancache)
        self._deltalog = DeltaLog()
        if tuples is not None:
            for t in tuples:
                self.add(t)

    # ------------------------------------------------------------------ basic

    def add(self, tup: Sequence[Any]) -> None:
        """Insert a tuple (idempotent)."""
        t = tuple(tup)
        if len(t) != self.arity:
            raise MalformedQueryError(
                f"relation {self.name!r} has arity {self.arity}, got tuple of length {len(t)}"
            )
        if t in self._tuples:
            return  # no-op: version and delta log must not move
        self._tuples[t] = None
        self._version += 1
        self._deltalog.record("+", t)
        for cols, index in self._indexes.items():
            index.setdefault(tuple(t[c] for c in cols), []).append(t)

    def discard(self, tup: Sequence[Any]) -> None:
        """Remove a tuple if present, maintaining indexes incrementally.

        Each existing index drops the tuple from its bucket (O(bucket)
        per index) instead of being thrown away wholesale, so update
        sequences (e.g. :mod:`repro.dynamic.view`) never pay a full
        index rebuild on the next probe.
        """
        t = tuple(tup)
        if t not in self._tuples:
            return  # no-op: version and delta log must not move
        del self._tuples[t]
        self._version += 1
        self._deltalog.record("-", t)
        for cols, index in self._indexes.items():
            key = tuple(t[c] for c in cols)
            bucket = index.get(key)
            if bucket is None:
                continue
            try:
                bucket.remove(t)
            except ValueError:  # pragma: no cover - buckets mirror _tuples
                continue
            if not bucket:
                del index[key]

    def __contains__(self, tup: Sequence[Any]) -> bool:
        return tuple(tup) in self._tuples

    def __iter__(self) -> Iterator[Tup]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples.keys() == other._tuples.keys()
        )

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation objects are mutable and unhashable")

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every effective add/discard."""
        return self._version

    @property
    def delta_log(self) -> DeltaLog:
        """The bounded mutation log (see :class:`DeltaLog`)."""
        return self._deltalog

    def deltas_since(self, version: int
                     ) -> Optional[List[Tuple[str, Tup]]]:
        """Effective ops taking state ``version`` to the current state
        (oldest first), or ``None`` on delta-log overflow."""
        return self._deltalog.since(version, self._version)

    def tuples(self) -> List[Tup]:
        """Return the contents as a list, in insertion order."""
        return list(self._tuples)

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Shallow copy, optionally renamed; indexes are not copied."""
        r = Relation(name or self.name, self.arity)
        r._tuples = dict(self._tuples)
        return r

    # --------------------------------------------------------------- indexing

    def index_on(self, columns: Sequence[int]) -> Dict[Tup, List[Tup]]:
        """Return (building if needed) a hash index over ``columns``.

        The index maps each distinct projection of a stored tuple on
        ``columns`` to the list of full tuples having that projection.
        Building costs one pass over the relation; subsequent calls are O(1).
        """
        cols = tuple(columns)
        for c in cols:
            if not 0 <= c < self.arity:
                raise IndexError(f"column {c} out of range for arity {self.arity}")
        if cols not in self._indexes:
            index: Dict[Tup, List[Tup]] = {}
            for t in self._tuples:
                index.setdefault(tuple(t[c] for c in cols), []).append(t)
            self._indexes[cols] = index
        return self._indexes[cols]

    def probe(self, columns: Sequence[int], key: Sequence[Any]) -> List[Tup]:
        """All tuples whose projection on ``columns`` equals ``key``."""
        return self.index_on(columns).get(tuple(key), [])

    def distinct(self, columns: Sequence[int]) -> List[Tup]:
        """Distinct projections of the relation on ``columns``."""
        return list(self.index_on(columns).keys())

    # ------------------------------------------------------------ set algebra

    def project(self, columns: Sequence[int], name: Optional[str] = None) -> "Relation":
        """Projection onto ``columns`` (duplicates removed)."""
        cols = tuple(columns)
        out = Relation(name or f"{self.name}_proj", len(cols))
        for t in self._tuples:
            out.add(tuple(t[c] for c in cols))
        return out

    def select(self, predicate, name: Optional[str] = None) -> "Relation":
        """Selection: keep tuples for which ``predicate(tuple)`` is true."""
        out = Relation(name or f"{self.name}_sel", self.arity)
        for t in self._tuples:
            if predicate(t):
                out.add(t)
        return out

    def semijoin(self, columns: Sequence[int], other: "Relation",
                 other_columns: Sequence[int]) -> "Relation":
        """Semijoin: tuples of ``self`` matching some tuple of ``other``.

        A tuple ``t`` survives iff some ``u`` in ``other`` has
        ``t[columns] == u[other_columns]``.  Runs in time linear in the two
        relations (given the indexes).
        """
        if len(tuple(columns)) != len(tuple(other_columns)):
            raise MalformedQueryError("semijoin column lists must have equal length")
        keys = other.index_on(other_columns)
        out = Relation(self.name, self.arity)
        cols = tuple(columns)
        for t in self._tuples:
            if tuple(t[c] for c in cols) in keys:
                out.add(t)
        return out

    def domain_values(self) -> set:
        """Set of all values occurring in any column."""
        vals = set()
        for t in self._tuples:
            vals.update(t)
        return vals

    def size_contribution(self) -> int:
        """Contribution of this relation to ||D|| (|R| * ar(R))."""
        return len(self._tuples) * self.arity
