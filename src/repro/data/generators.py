"""Synthetic instance generators.

The paper evaluates nothing on real data — every claim is about asymptotic
shape over *classes* of instances.  These generators produce the instance
families used throughout the examples, tests and benchmarks:

* random relations and databases of prescribed size,
* bounded-degree graphs/structures (Section 3.1),
* low-degree families: a k-clique plus 2^k isolated vertices (Section 3.2),
* (m, n)-grid graphs (Section 3.3),
* random bipartite graphs (Equation 2, perfect matchings),
* Boolean matrices encoded as binary relations (Theorem 4.8 / Mat-Mul),
* random k-DNF and k-CNF formulas (Sections 4.5 and 5.1).

Everything is deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.data.relation import Relation


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


# --------------------------------------------------------------------- random


def random_relation(name: str, arity: int, domain: Sequence[Any], n_tuples: int,
                    seed: Optional[int] = None) -> Relation:
    """Random relation with (up to) ``n_tuples`` tuples over ``domain``."""
    rng = _rng(seed)
    rel = Relation(name, arity)
    for _ in range(n_tuples):
        rel.add(tuple(rng.choice(domain) for _ in range(arity)))
    return rel


def random_database(schema: Dict[str, int], domain_size: int, tuples_per_relation: int,
                    seed: Optional[int] = None) -> Database:
    """Random database over domain {0..domain_size-1} for ``{name: arity}``."""
    rng = _rng(seed)
    domain = list(range(domain_size))
    rels = [
        random_relation(name, arity, domain, tuples_per_relation, seed=rng.randrange(2**30))
        for name, arity in schema.items()
    ]
    return Database(rels, domain=domain)


# ----------------------------------------------------------- graph structures


def graph_database(edges: Sequence[Tuple[Any, Any]], symmetric: bool = True,
                   vertices: Optional[Sequence[Any]] = None,
                   edge_name: str = "E") -> Database:
    """Wrap an edge list as a database with one binary relation ``E``.

    With ``symmetric=True`` both orientations of every edge are stored, the
    usual encoding of undirected graphs as relational structures.
    """
    rel = Relation(edge_name, 2)
    for u, v in edges:
        rel.add((u, v))
        if symmetric:
            rel.add((v, u))
    db = Database([rel])
    if vertices is not None:
        db.add_domain_values(vertices)
    return db


def path_graph(n: int) -> Database:
    """Path 0 - 1 - ... - (n-1); degree <= 2."""
    return graph_database([(i, i + 1) for i in range(n - 1)], vertices=range(n))


def cycle_graph(n: int) -> Database:
    """Cycle on n vertices; degree exactly 2."""
    edges = [(i, (i + 1) % n) for i in range(n)]
    return graph_database(edges, vertices=range(n))


def grid_graph(m: int, n: int) -> Database:
    """The (m, n)-grid of Section 3.3: vertices {1..m} x {1..n}.

    Grids have treewidth min(m, n) — the canonical family of sparse but
    unbounded-treewidth structures on which MSO stays intractable.
    """
    edges = []
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            if i < m:
                edges.append(((i, j), (i + 1, j)))
            if j < n:
                edges.append(((i, j), (i, j + 1)))
    return graph_database(edges, vertices=[(i, j) for i in range(1, m + 1)
                                           for j in range(1, n + 1)])


def random_bounded_degree_graph(n: int, degree: int, seed: Optional[int] = None) -> Database:
    """Random graph on n vertices with maximum degree <= ``degree``.

    Built by sampling candidate edges and rejecting those that would exceed
    the bound — the resulting class is of bounded degree in the sense of
    Section 3.1 and therefore enjoys linear-time FO model checking.
    """
    rng = _rng(seed)
    deg = [0] * n
    edges = set()
    attempts = 4 * n * max(degree, 1)
    for _ in range(attempts):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or (u, v) in edges or (v, u) in edges:
            continue
        # each undirected edge contributes 2 tuples, i.e. 2 to the degree of
        # each endpoint in the relational degree measure; we bound the graph
        # degree (number of neighbours)
        if deg[u] >= degree or deg[v] >= degree:
            continue
        edges.add((u, v))
        deg[u] += 1
        deg[v] += 1
    return graph_database(sorted(edges), vertices=range(n))


def random_bounded_degree_database(n: int, degree: int, schema: Dict[str, int],
                                   seed: Optional[int] = None) -> Database:
    """Random database of bounded degree: each element occurs in at most
    ``degree`` tuples overall."""
    rng = _rng(seed)
    occupancy = {x: 0 for x in range(n)}
    rels = []
    for name, arity in schema.items():
        rel = Relation(name, arity)
        for _ in range(n * degree):
            t = tuple(rng.randrange(n) for _ in range(arity))
            if all(occupancy[v] < degree for v in set(t)):
                if t not in rel:
                    rel.add(t)
                    for v in set(t):
                        occupancy[v] += 1
        rels.append(rel)
    return Database(rels, domain=range(n))


def clique_plus_independent(k: int) -> Database:
    """A k-clique plus 2^k isolated vertices (Section 3.2).

    The family {this graph : k in N} has *low degree* (degree k on
    n ~ 2^k vertices, i.e. O(log n)) but is not closed under substructures:
    the induced clique alone has unbounded relative degree.
    """
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    vertices = list(range(k + 2 ** k))
    return graph_database(edges, vertices=vertices)


def low_degree_graph(n: int, seed: Optional[int] = None) -> Database:
    """Random graph on n vertices with max degree ~ log2(n) — a member of a
    low-degree class (Definition 3.8)."""
    degree = max(2, n.bit_length())
    return random_bounded_degree_graph(n, degree, seed=seed)


def random_bipartite_graph(n: int, p: float, seed: Optional[int] = None
                           ) -> Tuple[Database, List[Any], List[Any]]:
    """Random bipartite graph A = {a_0..}, B = {b_0..}; edge prob ``p``.

    Returns (database with relation E from A to B, A, B) — the instance
    family of Equation 2 (perfect-matching counting).
    """
    rng = _rng(seed)
    a = [("a", i) for i in range(n)]
    b = [("b", i) for i in range(n)]
    rel = Relation("E", 2)
    for x in a:
        for y in b:
            if rng.random() < p:
                rel.add((x, y))
    db = Database([rel])
    db.add_domain_values(a)
    db.add_domain_values(b)
    return db, a, b


# -------------------------------------------------------------- matrix coding


def boolean_matrix(n: int, density: float, seed: Optional[int] = None) -> List[List[int]]:
    """Random n x n Boolean matrix as a list of rows."""
    rng = _rng(seed)
    return [[1 if rng.random() < density else 0 for _ in range(n)] for _ in range(n)]


def matrices_to_database(a: List[List[int]], b: List[List[int]],
                         name_a: str = "A", name_b: str = "B") -> Database:
    """Encode matrices as binary relations: (i, j) in R_A iff A[i][j] = 1.

    This is the database D_BM of Section 4.1.2 on which the matrix
    multiplication query Pi(x, y) = exists z A(x, z) and B(z, y) computes
    the Boolean product.
    """
    n = len(a)
    ra = Relation(name_a, 2)
    rb = Relation(name_b, 2)
    for i in range(n):
        for j in range(n):
            if a[i][j]:
                ra.add((i, j))
            if b[i][j]:
                rb.add((i, j))
    db = Database([ra, rb])
    db.add_domain_values(range(n))
    return db


# ------------------------------------------------------------ formula instances


def random_kdnf(n_vars: int, n_terms: int, k: int = 3, seed: Optional[int] = None
                ) -> List[List[int]]:
    """Random k-DNF over variables 1..n_vars.

    A formula is a list of terms; a term is a list of non-zero ints, where
    ``v`` means the variable v positively and ``-v`` negated.  This is the
    instance family for #DNF / the Karp-Luby FPRAS (Section 5.1).
    """
    rng = _rng(seed)
    terms = []
    for _ in range(n_terms):
        chosen = rng.sample(range(1, n_vars + 1), min(k, n_vars))
        terms.append([v if rng.random() < 0.5 else -v for v in chosen])
    return terms


def random_kcnf(n_vars: int, n_clauses: int, k: int = 3, seed: Optional[int] = None
                ) -> List[List[int]]:
    """Random k-CNF in the same literal convention as :func:`random_kdnf`."""
    rng = _rng(seed)
    clauses = []
    for _ in range(n_clauses):
        chosen = rng.sample(range(1, n_vars + 1), min(k, n_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    return clauses
