"""Functional-structure view of a database (paper Section 4.3).

A database D with relations R_1..R_s over domain D can be re-encoded as a
*functional structure*

    F = < F ; D, D_1, ..., D_s, f_1, ..., f_p >

where ``p = max arity``, each ``D_i`` is a fresh set of elements
representing the tuples of ``R_i``, the unary relation ``D`` marks the
original domain, ``bottom`` is an extra sink element, and each ``f_j`` maps
a tuple-element of ``D_i`` to its j-th coordinate (or to ``bottom`` when
``j > ar(R_i)``).

This encoding is the workhorse of two algorithms in the paper: the
quantifier-elimination procedure for bounded-degree structures (Section
3.1, Example 3.3 — bounded-degree relations become collections of partial
injective-ish unary functions) and the cover-based elimination of
disequalities (Section 4.3).  Its key property is that every conjunctive
acyclic query translates into an acyclic *functional* query whose
atoms are equalities between unary-function terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.data.database import Database

BOTTOM = "__bottom__"


@dataclass
class TupleElement:
    """An element of F representing one tuple of one relation."""

    relation: str
    tup: Tuple[Any, ...]

    def __hash__(self) -> int:
        return hash((self.relation, self.tup))

    def __repr__(self) -> str:
        return f"<{self.relation}{self.tup}>"


@dataclass
class FunctionalStructure:
    """The functional structure F built from a database.

    Attributes
    ----------
    domain_elements:
        The original database domain (interpreted by the unary predicate D).
    tuple_elements:
        ``{relation name: list of TupleElement}`` — the D_i sorts.
    max_arity:
        p, the number of projection functions f_1..f_p.
    """

    domain_elements: List[Any]
    tuple_elements: Dict[str, List[TupleElement]]
    max_arity: int
    _domain_set: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        self._domain_set = set(self.domain_elements)

    # The sorts --------------------------------------------------------------

    def is_domain(self, x: Any) -> bool:
        """Unary predicate D: x is an original domain element."""
        return x in self._domain_set

    def in_sort(self, x: Any, relation: str) -> bool:
        """Unary predicate D_i: x represents a tuple of ``relation``."""
        return isinstance(x, TupleElement) and x.relation == relation

    def sort(self, relation: str) -> List[TupleElement]:
        return self.tuple_elements[relation]

    # The projection functions -----------------------------------------------

    def f(self, j: int, x: Any) -> Any:
        """Projection f_j (1-based).  Returns BOTTOM outside its domain."""
        if not 1 <= j <= self.max_arity:
            raise IndexError(f"projection index {j} out of range 1..{self.max_arity}")
        if isinstance(x, TupleElement) and j <= len(x.tup):
            return x.tup[j - 1]
        return BOTTOM

    def all_elements(self) -> List[Any]:
        """F = D + all D_i + {bottom}."""
        out: List[Any] = list(self.domain_elements)
        for elems in self.tuple_elements.values():
            out.extend(elems)
        out.append(BOTTOM)
        return out

    def size(self) -> int:
        return len(self.domain_elements) + sum(
            len(v) for v in self.tuple_elements.values()
        ) + 1


def to_functional_structure(db: Database,
                            relations: Optional[List[str]] = None) -> FunctionalStructure:
    """Encode ``db`` (or the named subset of its relations) functionally.

    Runs in time linear in ||D||.
    """
    names = relations if relations is not None else db.relation_names()
    tuple_elements: Dict[str, List[TupleElement]] = {}
    max_arity = 1
    for name in names:
        rel = db.relation(name)
        tuple_elements[name] = [TupleElement(name, t) for t in rel]
        max_arity = max(max_arity, rel.arity)
    return FunctionalStructure(
        domain_elements=db.domain,
        tuple_elements=tuple_elements,
        max_arity=max_arity,
    )
