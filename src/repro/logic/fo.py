"""First-order logic ASTs, with optional free second-order variables.

This module covers what Sections 3 and 5 of the paper need:

* full FO formulas: relational atoms, comparisons/equalities, boolean
  connectives, first-order quantifiers;
* free *second-order* variables (Section 5): a formula ``phi(x, X)`` may
  contain :class:`SOAtom` atoms ``X(t1..tk)`` over relation variables that
  are never quantified — answers then pair a tuple of domain elements with
  a tuple of relations;
* prenex normal form and quantifier-prefix extraction, feeding the
  Sigma_k / Pi_k classification of :mod:`repro.logic.prefix`.

Formulas are immutable trees.  Evaluation of FO formulas lives in
:mod:`repro.eval.naive` (baseline semantics) and the specialised engines.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MalformedQueryError
from repro.logic.atoms import Atom, Comparison
from repro.logic.terms import Constant, Term, Variable, as_term


class SecondOrderVariable:
    """A free second-order (relation) variable of fixed arity."""

    __slots__ = ("name", "arity")
    _interned: Dict[Tuple[str, int], "SecondOrderVariable"] = {}

    def __new__(cls, name: str, arity: int) -> "SecondOrderVariable":
        key = (name, arity)
        existing = cls._interned.get(key)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        object.__setattr__(obj, "name", name)
        object.__setattr__(obj, "arity", arity)
        cls._interned[key] = obj
        return obj

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("SecondOrderVariable is immutable")

    def __repr__(self) -> str:
        return self.name


class Formula:
    """Abstract base of FO formula nodes."""

    __slots__ = ()

    def free_variables(self) -> FrozenSet[Variable]:
        raise NotImplementedError

    def so_variables(self) -> FrozenSet[SecondOrderVariable]:
        raise NotImplementedError

    def children(self) -> Tuple["Formula", ...]:
        return ()

    # connective sugar ------------------------------------------------------

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


class RelAtom(Formula):
    """Wrapper lifting a relational :class:`Atom` into the FO AST."""

    __slots__ = ("atom",)

    def __init__(self, relation_or_atom, terms: Optional[Sequence[Any]] = None):
        if isinstance(relation_or_atom, Atom):
            atom = relation_or_atom
        else:
            atom = Atom(relation_or_atom, terms or ())
        object.__setattr__(self, "atom", atom)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("RelAtom is immutable")

    def free_variables(self) -> FrozenSet[Variable]:
        return self.atom.variable_set()

    def so_variables(self) -> FrozenSet[SecondOrderVariable]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.atom)


class CompareAtom(Formula):
    """Wrapper lifting a :class:`Comparison` into the FO AST."""

    __slots__ = ("comparison",)

    def __init__(self, left: Any, op: Optional[str] = None, right: Any = None):
        if isinstance(left, Comparison) and op is None:
            comparison = left
        else:
            comparison = Comparison(left, op, right)
        object.__setattr__(self, "comparison", comparison)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("CompareAtom is immutable")

    def free_variables(self) -> FrozenSet[Variable]:
        return self.comparison.variable_set()

    def so_variables(self) -> FrozenSet[SecondOrderVariable]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.comparison)


class SOAtom(Formula):
    """X(t1, ..., tk) for a free second-order variable X."""

    __slots__ = ("so_var", "terms")

    def __init__(self, so_var: SecondOrderVariable, terms: Sequence[Any]):
        terms = tuple(as_term(t) for t in terms)
        if len(terms) != so_var.arity:
            raise MalformedQueryError(
                f"SO variable {so_var.name} has arity {so_var.arity}, got {len(terms)} terms"
            )
        object.__setattr__(self, "so_var", so_var)
        object.__setattr__(self, "terms", terms)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("SOAtom is immutable")

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def so_variables(self) -> FrozenSet[SecondOrderVariable]:
        return frozenset({self.so_var})

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.terms))
        return f"{self.so_var.name}({args})"


class Not(Formula):
    """Negation node."""

    __slots__ = ("child",)

    def __init__(self, child: Formula):
        object.__setattr__(self, "child", child)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("Not is immutable")

    def free_variables(self) -> FrozenSet[Variable]:
        return self.child.free_variables()

    def so_variables(self) -> FrozenSet[SecondOrderVariable]:
        return self.child.so_variables()

    def children(self) -> Tuple[Formula, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"~({self.child!r})"


class _Nary(Formula):
    __slots__ = ("operands",)
    symbol = "?"

    def __init__(self, *operands: Formula):
        flat: List[Formula] = []
        for op in operands:
            if isinstance(op, type(self)):
                flat.extend(op.operands)
            else:
                flat.append(op)
        if len(flat) < 1:
            raise MalformedQueryError(f"{type(self).__name__} needs at least one operand")
        object.__setattr__(self, "operands", tuple(flat))

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def free_variables(self) -> FrozenSet[Variable]:
        out: FrozenSet[Variable] = frozenset()
        for op in self.operands:
            out |= op.free_variables()
        return out

    def so_variables(self) -> FrozenSet[SecondOrderVariable]:
        out: FrozenSet[SecondOrderVariable] = frozenset()
        for op in self.operands:
            out |= op.so_variables()
        return out

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def __repr__(self) -> str:
        return f" {self.symbol} ".join(f"({op!r})" for op in self.operands)


class And(_Nary):
    """N-ary conjunction (operands flattened)."""

    __slots__ = ()
    symbol = "/\\"


class Or(_Nary):
    """N-ary disjunction (operands flattened)."""

    __slots__ = ()
    symbol = "\\/"


class _Quantifier(Formula):
    __slots__ = ("variables", "child")
    symbol = "?"

    def __init__(self, variables, child: Formula):
        if isinstance(variables, (str, Variable)):
            variables = [variables]
        var_tuple = tuple(Variable(v) if isinstance(v, str) else v for v in variables)
        for v in var_tuple:
            if not isinstance(v, Variable):
                raise MalformedQueryError(f"can only quantify first-order variables, got {v!r}")
        object.__setattr__(self, "variables", var_tuple)
        object.__setattr__(self, "child", child)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def free_variables(self) -> FrozenSet[Variable]:
        return self.child.free_variables() - frozenset(self.variables)

    def so_variables(self) -> FrozenSet[SecondOrderVariable]:
        return self.child.so_variables()

    def children(self) -> Tuple[Formula, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        names = " ".join(v.name for v in self.variables)
        return f"{self.symbol}{names}. ({self.child!r})"


class Exists(_Quantifier):
    """Existential quantification over a block of variables."""

    __slots__ = ()
    symbol = "E"


class ForAll(_Quantifier):
    """Universal quantification over a block of variables."""

    __slots__ = ()
    symbol = "A"


# --------------------------------------------------------------------- helpers


def atoms_of(formula: Formula) -> List[Atom]:
    """All relational atoms occurring in ``formula`` (with multiplicity)."""
    out: List[Atom] = []

    def walk(f: Formula) -> None:
        if isinstance(f, RelAtom):
            out.append(f.atom)
        for c in f.children():
            walk(c)

    walk(formula)
    return out


def relation_names_of(formula: Formula) -> List[str]:
    """Distinct relation symbols, in first-occurrence order."""
    seen: Dict[str, None] = {}
    for atom in atoms_of(formula):
        seen.setdefault(atom.relation, None)
    return list(seen)


def is_quantifier_free(formula: Formula) -> bool:
    """No Exists/ForAll node anywhere in the tree (the Sigma_0 test)."""
    if isinstance(formula, (Exists, ForAll)):
        return False
    return all(is_quantifier_free(c) for c in formula.children())


def quantifier_prefix(formula: Formula) -> Tuple[List[Tuple[str, Tuple[Variable, ...]]], Formula]:
    """Split a formula in prenex form into (prefix blocks, matrix).

    A block is ("E" | "A", variables).  Stops at the first non-quantifier
    node; callers that need full prenex form should call
    :func:`to_prenex` first.
    """
    blocks: List[Tuple[str, Tuple[Variable, ...]]] = []
    current = formula
    while isinstance(current, (Exists, ForAll)):
        kind = "E" if isinstance(current, Exists) else "A"
        if blocks and blocks[-1][0] == kind:
            blocks[-1] = (kind, blocks[-1][1] + current.variables)
        else:
            blocks.append((kind, current.variables))
        current = current.child
    return blocks, current


_fresh_counter = [0]


def _fresh_variable(base: Variable) -> Variable:
    _fresh_counter[0] += 1
    return Variable(f"{base.name}#{_fresh_counter[0]}")


def rename_variable(formula: Formula, old: Variable, new: Variable) -> Formula:
    """Capture-avoiding rename of a (free or bound) variable occurrence."""

    def sub_term(t: Term) -> Term:
        return new if t is old else t

    if isinstance(formula, RelAtom):
        return RelAtom(Atom(formula.atom.relation, [sub_term(t) for t in formula.atom.terms]))
    if isinstance(formula, CompareAtom):
        c = formula.comparison
        return CompareAtom(Comparison(sub_term(c.left), c.op, sub_term(c.right)))
    if isinstance(formula, SOAtom):
        return SOAtom(formula.so_var, [sub_term(t) for t in formula.terms])
    if isinstance(formula, Not):
        return Not(rename_variable(formula.child, old, new))
    if isinstance(formula, And):
        return And(*[rename_variable(c, old, new) for c in formula.operands])
    if isinstance(formula, Or):
        return Or(*[rename_variable(c, old, new) for c in formula.operands])
    if isinstance(formula, (Exists, ForAll)):
        if old in formula.variables:
            return formula  # occurrence is re-bound below; nothing free to rename
        return type(formula)(formula.variables, rename_variable(formula.child, old, new))
    raise MalformedQueryError(f"unknown formula node {formula!r}")


def to_prenex(formula: Formula) -> Formula:
    """Prenex normal form (classical equivalences; renames on capture).

    Negation is pushed through quantifiers; conjunction/disjunction pull
    quantifiers out left-to-right.
    """
    f = _push_negations(formula)
    return _pull_quantifiers(f)


def _push_negations(formula: Formula) -> Formula:
    if isinstance(formula, Not):
        child = formula.child
        if isinstance(child, Not):
            return _push_negations(child.child)
        if isinstance(child, And):
            return Or(*[_push_negations(Not(c)) for c in child.operands])
        if isinstance(child, Or):
            return And(*[_push_negations(Not(c)) for c in child.operands])
        if isinstance(child, Exists):
            return ForAll(child.variables, _push_negations(Not(child.child)))
        if isinstance(child, ForAll):
            return Exists(child.variables, _push_negations(Not(child.child)))
        return Not(_push_negations(child))
    if isinstance(formula, And):
        return And(*[_push_negations(c) for c in formula.operands])
    if isinstance(formula, Or):
        return Or(*[_push_negations(c) for c in formula.operands])
    if isinstance(formula, (Exists, ForAll)):
        return type(formula)(formula.variables, _push_negations(formula.child))
    return formula


def _pull_quantifiers(formula: Formula) -> Formula:
    if isinstance(formula, (RelAtom, CompareAtom, SOAtom)):
        return formula
    if isinstance(formula, Not):
        # negations are already pushed onto atoms
        return formula
    if isinstance(formula, (Exists, ForAll)):
        return type(formula)(formula.variables, _pull_quantifiers(formula.child))
    if isinstance(formula, (And, Or)):
        connective = type(formula)
        operands = [_pull_quantifiers(c) for c in formula.operands]
        prefix: List[Tuple[str, Variable]] = []
        matrices: List[Formula] = []
        for op in operands:
            blocks, matrix = quantifier_prefix(op)
            bound_here = [v for _, vs in blocks for v in vs]
            # avoid capture: rename bound vars clashing with other operands
            for v in bound_here:
                clash = any(
                    v in other.free_variables() for other in operands if other is not op
                ) or any(v == pv for _, pv in prefix)
                if clash:
                    nv = _fresh_variable(v)
                    matrix = rename_variable(matrix, v, nv)
                    blocks = [
                        (k, tuple(nv if b is v else b for b in vs)) for k, vs in blocks
                    ]
            for kind, vs in blocks:
                for v in vs:
                    prefix.append((kind, v))
            matrices.append(matrix)
        result: Formula = connective(*matrices)
        for kind, v in reversed(prefix):
            result = (Exists if kind == "E" else ForAll)([v], result)
        return result
    raise MalformedQueryError(f"unknown formula node {formula!r}")


def cq_to_fo(cq) -> Formula:
    """Translate a ConjunctiveQuery into an equivalent FO formula."""
    parts: List[Formula] = [RelAtom(a) for a in cq.atoms]
    parts += [CompareAtom(c) for c in cq.comparisons]
    body: Formula = And(*parts) if len(parts) > 1 else parts[0]
    existential = sorted(cq.existential_variables(), key=lambda v: v.name)
    if existential:
        return Exists(existential, body)
    return body
