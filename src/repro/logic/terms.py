"""Terms: variables and constants.

Variables are interned by name so that ``Variable("x") is Variable("x")``
holds within a process; this keeps query objects cheap to compare and lets
substitutions be plain dicts keyed by the variable itself.
"""

from __future__ import annotations

from typing import Any, Dict, Union


class Variable:
    """A first-order variable, identified by its name."""

    __slots__ = ("name",)
    _interned: Dict[str, "Variable"] = {}

    def __new__(cls, name: str) -> "Variable":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        object.__setattr__(obj, "name", name)
        cls._interned[name] = obj
        return obj

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("Variable is immutable")

    def __repr__(self) -> str:
        return self.name

    def __lt__(self, other: "Variable") -> bool:
        return self.name < other.name

    # identity-based hash/eq inherited from object is correct under interning


class Constant:
    """A constant symbol wrapping an arbitrary hashable Python value.

    Wrapping (rather than using raw values) keeps atoms unambiguous: a bare
    string argument in an atom is always a variable, a ``Constant`` is
    always a database value.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        object.__setattr__(self, "value", value)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("Constant is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))

    def __repr__(self) -> str:
        return f"{self.value!r}"


Term = Union[Variable, Constant]


def as_term(x: Any) -> Term:
    """Coerce: Variable/Constant pass through, strings become Variables,
    everything else becomes a Constant."""
    if isinstance(x, (Variable, Constant)):
        return x
    if isinstance(x, str):
        return Variable(x)
    return Constant(x)
