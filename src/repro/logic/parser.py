"""Textual query syntax.

The parser accepts a small Datalog-ish syntax:

* a conjunctive query is one rule::

      Q(x, y) :- R(x, z), S(z, y)

* comparison atoms may appear in the body: ``x < y``, ``x <= y``,
  ``x != y``, ``x = y``, ``x > y``, ``x >= y``;

* negated atoms (``not R(x, y)`` or ``!R(x, y)``) make the rule a
  *negative* conjunctive query — mixing positive and negative relational
  atoms in one rule is rejected (signed queries are out of scope, as in
  the paper);

* several rules with the same head arity, separated by newlines or ``;``,
  form a union of conjunctive queries;

* arguments are variables (identifiers), integer constants, or quoted
  string constants: ``R(x, 3, "paris")``.

``parse_query`` returns a :class:`~repro.logic.cq.ConjunctiveQuery`,
:class:`~repro.logic.ucq.UnionOfConjunctiveQueries` or
:class:`~repro.logic.ncq.NegativeConjunctiveQuery` accordingly.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.errors import QuerySyntaxError
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.terms import Constant, Variable
from repro.logic.ucq import UnionOfConjunctiveQueries

_IDENT = r"[A-Za-z_][A-Za-z_0-9']*"
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<turnstile>:-)
  | (?P<op><=|>=|!=|<|>|=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<not>\bnot\b|!)
  | (?P<number>-?\d+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9']*)
    """,
    re.VERBOSE,
)

QueryLike = Union[ConjunctiveQuery, UnionOfConjunctiveQueries, NegativeConjunctiveQuery]


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}@{self.pos}"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QuerySyntaxError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = m.lastgroup
        if kind != "ws":
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], source: str):
        self.tokens = tokens
        self.source = source
        self.i = 0

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise QuerySyntaxError(f"unexpected end of query: {self.source!r}")
        self.i += 1
        return tok

    def expect(self, kind: str) -> _Token:
        tok = self.next()
        if tok.kind != kind:
            raise QuerySyntaxError(
                f"expected {kind} at position {tok.pos}, got {tok.text!r} in {self.source!r}"
            )
        return tok

    def at_end(self) -> bool:
        return self.i >= len(self.tokens)

    # grammar ----------------------------------------------------------------

    def parse_term(self) -> Any:
        tok = self.next()
        if tok.kind == "ident":
            return Variable(tok.text)
        if tok.kind == "number":
            return Constant(int(tok.text))
        if tok.kind == "string":
            return Constant(tok.text[1:-1])
        raise QuerySyntaxError(
            f"expected a term at position {tok.pos}, got {tok.text!r} in {self.source!r}"
        )

    def parse_term_list(self) -> List[Any]:
        self.expect("lparen")
        terms: List[Any] = []
        if self.peek() is not None and self.peek().kind == "rparen":
            self.next()
            return terms
        terms.append(self.parse_term())
        while self.peek() is not None and self.peek().kind == "comma":
            self.next()
            terms.append(self.parse_term())
        self.expect("rparen")
        return terms

    def parse_body_item(self) -> Tuple[str, Any]:
        """Returns ("atom", Atom) | ("neg", Atom) | ("cmp", Comparison)."""
        tok = self.peek()
        if tok is None:
            raise QuerySyntaxError(f"unexpected end of body in {self.source!r}")
        if tok.kind == "not":
            self.next()
            name = self.expect("ident").text
            terms = self.parse_term_list()
            return ("neg", Atom(name, terms))
        # an atom or the left side of a comparison
        left = self.parse_term()
        nxt = self.peek()
        if isinstance(left, Variable) and nxt is not None and nxt.kind == "lparen":
            terms = self.parse_term_list()
            return ("atom", Atom(left.name, terms))
        if nxt is not None and nxt.kind == "op":
            op = self.next().text
            right = self.parse_term()
            return ("cmp", Comparison(left, op, right))
        raise QuerySyntaxError(
            f"expected '(' or a comparison operator after term at position "
            f"{nxt.pos if nxt else len(self.source)} in {self.source!r}"
        )

    def parse_rule(self) -> Tuple[str, List[Any], List[Tuple[str, Any]]]:
        head_name = self.expect("ident").text
        head_terms = self.parse_term_list()
        for t in head_terms:
            if not isinstance(t, Variable):
                raise QuerySyntaxError(f"head arguments must be variables in {self.source!r}")
        self.expect("turnstile")
        items = [self.parse_body_item()]
        while self.peek() is not None and self.peek().kind == "comma":
            self.next()
            items.append(self.parse_body_item())
        return head_name, head_terms, items


def _build_rule(source: str) -> QueryLike:
    parser = _Parser(_tokenize(source), source)
    head_name, head_terms, items = parser.parse_rule()
    if not parser.at_end():
        tok = parser.peek()
        raise QuerySyntaxError(f"trailing input at position {tok.pos} in {source!r}")
    atoms = [a for kind, a in items if kind == "atom"]
    negated = [a for kind, a in items if kind == "neg"]
    comparisons = [c for kind, c in items if kind == "cmp"]
    if negated and atoms:
        raise QuerySyntaxError(
            "signed queries (mixing positive and negative atoms) are not supported"
        )
    if negated:
        if comparisons:
            raise QuerySyntaxError("comparisons are not supported in negative queries")
        return NegativeConjunctiveQuery(head_terms, negated, name=head_name)
    return ConjunctiveQuery(head_terms, atoms, comparisons, name=head_name)


def parse_query(text: str) -> QueryLike:
    """Parse one or more rules; several rules form a UCQ.

    >>> parse_query("Q(x, y) :- R(x, z), S(z, y)")
    Q(x, y) :- R(x, z), S(z, y)
    """
    rules = [part.strip() for chunk in text.splitlines() for part in chunk.split(";")]
    rules = [r for r in rules if r and not r.startswith("#")]
    if not rules:
        raise QuerySyntaxError("empty query text")
    parsed = [_build_rule(r) for r in rules]
    if len(parsed) == 1:
        return parsed[0]
    if any(isinstance(p, NegativeConjunctiveQuery) for p in parsed):
        raise QuerySyntaxError("unions of negative queries are not supported")
    return UnionOfConjunctiveQueries(parsed, name=parsed[0].name)


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse and require a single conjunctive query."""
    q = parse_query(text)
    if not isinstance(q, ConjunctiveQuery):
        raise QuerySyntaxError(f"expected a single conjunctive query, got {type(q).__name__}")
    return q
