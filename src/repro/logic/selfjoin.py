"""Self-join structure of a conjunctive query.

A *self-join* names one relation symbol in more than one atom.  The
paper's dichotomies (free-connex enumeration, Theorem 4.21 counting)
are stated for self-join-free queries; Carmeli–Segoufin ("Conjunctive
Queries With Self-Joins, Towards a Fine-Grained Complexity Analysis",
arXiv 2206.04988) push the frontier past that restriction by analysing
which *variable identifications* between same-symbol atoms survive in
the query's homomorphic core.  This module computes the two structural
inputs that analysis (and the engines' per-symbol work sharing) needs:

* :func:`selfjoin_signature` — the symbol multiplicity profile, the
  plan-cache-visible fingerprint of "how self-joined" a query is;
* :func:`variable_identifications` — how many same-symbol atom pairs
  are unifiable (a most general unifier exists, constants rigid).
  Unifiable pairs are exactly the candidates a core computation may
  collapse; a self-join whose same-symbol atoms pairwise fail to unify
  behaves like a self-join-free query under every homomorphism.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Term


def selfjoin_signature(cq: ConjunctiveQuery) -> Tuple[Tuple[str, int], ...]:
    """The repeated-symbol profile: ``((symbol, multiplicity), ...)``,
    sorted, for every symbol named by two or more atoms.  Empty exactly
    when the query is self-join-free."""
    counts: Dict[str, int] = {}
    for atom in cq.atoms:
        counts[atom.relation] = counts.get(atom.relation, 0) + 1
    return tuple(sorted((name, k) for name, k in counts.items() if k >= 2))


def _unifiable(left, right) -> bool:
    """Do two same-symbol atoms admit a most general unifier?

    Positional unification with rigid constants: union the terms at each
    position; a class containing two distinct constants is a clash.
    (Occurs-check-free because terms are flat.)
    """
    parent: Dict[Term, Term] = {}

    def find(t: Term) -> Term:
        while True:
            up = parent.get(t, t)
            if up == t:
                return t
            t = up

    for a, b in zip(left.terms, right.terms):
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        if isinstance(ra, Constant) and isinstance(rb, Constant):
            return False  # two distinct constants in one class
        # keep a constant as the representative so later merges see it
        if isinstance(ra, Constant):
            parent[rb] = ra
        else:
            parent[ra] = rb
    return True


def variable_identifications(cq: ConjunctiveQuery) -> int:
    """The number of unifiable same-symbol atom pairs.

    Zero means no homomorphism can ever collapse two atoms — the query's
    self-joins are *inert* and the self-join-free analysis applies
    verbatim (its core keeps every atom).  A positive count flags the
    queries where the Carmeli–Segoufin core analysis can differ from the
    self-join-free reading.
    """
    by_symbol: Dict[str, List] = {}
    for atom in cq.atoms:
        by_symbol.setdefault(atom.relation, []).append(atom)
    pairs = 0
    for atoms in by_symbol.values():
        for i in range(len(atoms)):
            for j in range(i + 1, len(atoms)):
                if _unifiable(atoms[i], atoms[j]):
                    pairs += 1
    return pairs


__all__ = ["selfjoin_signature", "variable_identifications"]
