"""Conjunctive queries (paper Section 4).

A :class:`ConjunctiveQuery` represents

    phi(x) := exists y  /\\_i R_i(z_i)  /\\_j (t_j op t'_j)

with explicit, ordered free variables ``x`` (the head), relational atoms,
and optional comparison atoms (the ACQ< / ACQ!= extensions of Section 4.3).
Comparisons do not count towards the query hypergraph.

Structural predicates (acyclicity, free-connexity, star size) live in
:mod:`repro.hypergraph`; convenience methods here delegate to them.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MalformedQueryError
from repro.logic.atoms import Atom, Comparison
from repro.logic.terms import Constant, Variable, as_term


class ConjunctiveQuery:
    """An (extended) conjunctive query.

    Parameters
    ----------
    head:
        Ordered free variables.  Answers are tuples in this order.
    atoms:
        The relational atoms of the body (at least one).
    comparisons:
        Optional comparison atoms; their variables must occur in some
        relational atom (safety).
    name:
        Optional display name for the query ("Q" by default).
    """

    __slots__ = ("name", "head", "atoms", "comparisons", "_var_cache")

    def __init__(self, head: Sequence[Any], atoms: Sequence[Atom],
                 comparisons: Sequence[Comparison] = (), name: str = "Q"):
        head_vars: List[Variable] = []
        for h in head:
            t = as_term(h)
            if not isinstance(t, Variable):
                raise MalformedQueryError(f"head terms must be variables, got {t!r}")
            if t in head_vars:
                raise MalformedQueryError(f"duplicate head variable {t!r}")
            head_vars.append(t)
        atoms = tuple(atoms)
        if not atoms:
            raise MalformedQueryError("a conjunctive query needs at least one atom")
        comparisons = tuple(comparisons)

        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", tuple(head_vars))
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "comparisons", comparisons)
        object.__setattr__(self, "_var_cache", None)
        self._validate()

    def __setattr__(self, key: str, value: Any) -> None:
        if key == "_var_cache":
            object.__setattr__(self, key, value)
            return
        raise AttributeError("ConjunctiveQuery is immutable")

    # ------------------------------------------------------------- validation

    def _validate(self) -> None:
        arities: Dict[str, int] = {}
        for atom in self.atoms:
            seen = arities.setdefault(atom.relation, atom.arity)
            if seen != atom.arity:
                raise MalformedQueryError(
                    f"relation {atom.relation!r} used at arities {seen} and {atom.arity}"
                )
        body_vars = self.variable_set()
        for v in self.head:
            if v not in body_vars:
                raise MalformedQueryError(f"head variable {v!r} does not occur in the body")
        for comp in self.comparisons:
            for v in comp.variables():
                if v not in body_vars:
                    raise MalformedQueryError(
                        f"comparison variable {v!r} does not occur in any relational atom"
                    )

    # ----------------------------------------------------------- basic shape

    @property
    def arity(self) -> int:
        """Number of free variables."""
        return len(self.head)

    def is_boolean(self) -> bool:
        return not self.head

    def is_quantifier_free(self) -> bool:
        """No existentially quantified variables (CQ^0 in the paper)."""
        return not self.existential_variables()

    def variables(self) -> Tuple[Variable, ...]:
        """All variables, in order of first occurrence in the body."""
        if self._var_cache is None:
            seen: Dict[Variable, None] = {}
            for atom in self.atoms:
                for v in atom.variables():
                    seen.setdefault(v, None)
            object.__setattr__(self, "_var_cache", tuple(seen))
        return self._var_cache

    def variable_set(self) -> FrozenSet[Variable]:
        return frozenset(self.variables())

    def free_variables(self) -> FrozenSet[Variable]:
        return frozenset(self.head)

    def existential_variables(self) -> FrozenSet[Variable]:
        return self.variable_set() - self.free_variables()

    def relation_names(self) -> List[str]:
        out: Dict[str, None] = {}
        for atom in self.atoms:
            out.setdefault(atom.relation, None)
        return list(out)

    def relation_arities(self) -> Dict[str, int]:
        return {atom.relation: atom.arity for atom in self.atoms}

    def is_self_join_free(self) -> bool:
        """No relation symbol used more than once (Section 4, 'Queries')."""
        names = [a.relation for a in self.atoms]
        return len(names) == len(set(names))

    def has_comparisons(self) -> bool:
        return bool(self.comparisons)

    def disequalities(self) -> Tuple[Comparison, ...]:
        return tuple(c for c in self.comparisons if c.is_disequality())

    def order_comparisons(self) -> Tuple[Comparison, ...]:
        return tuple(c for c in self.comparisons if c.is_order_comparison())

    def size(self) -> int:
        """||phi||: number of symbols (atoms' arities + heads + comparisons)."""
        return (
            len(self.head)
            + sum(1 + a.arity for a in self.atoms)
            + 3 * len(self.comparisons)
        )

    # --------------------------------------------------------- structure (via
    # repro.hypergraph; imported lazily to avoid a package cycle)

    def hypergraph(self):
        """The query hypergraph H = (var(phi), atom(phi)) of Section 4."""
        from repro.hypergraph.hypergraph import Hypergraph

        edges = [atom.variable_set() for atom in self.atoms]
        return Hypergraph(self.variable_set(), edges)

    def is_acyclic(self) -> bool:
        """alpha-acyclicity (existence of a join tree, Section 4.1)."""
        from repro.hypergraph.jointree import is_alpha_acyclic

        return is_alpha_acyclic(self.hypergraph())

    def is_free_connex(self) -> bool:
        """Free-connex acyclicity (Definition 4.4)."""
        from repro.hypergraph.freeconnex import is_free_connex

        return is_free_connex(self)

    def quantified_star_size(self) -> int:
        """Quantified star size (Definition 4.26); requires acyclicity."""
        from repro.hypergraph.components import quantified_star_size

        return quantified_star_size(self)

    # ------------------------------------------------------------- rewriting

    def substitute(self, assignment: Mapping[Variable, Any]) -> "ConjunctiveQuery":
        """Instantiate some head variables with constants.

        The substituted variables disappear from the head; the body atoms
        get the corresponding constants.  This is the ``phi_a`` construction
        of Algorithm 2 (Theorem 4.3).
        """
        new_head = [v for v in self.head if v not in assignment]
        new_atoms = [a.substitute(assignment) for a in self.atoms]
        new_comps = [c.substitute(assignment) for c in self.comparisons]
        return ConjunctiveQuery(new_head, new_atoms, new_comps, name=self.name)

    def with_head(self, head: Sequence[Any]) -> "ConjunctiveQuery":
        """Same body, different head (e.g. projections psi_1 of Algorithm 2)."""
        return ConjunctiveQuery(head, self.atoms, self.comparisons, name=self.name)

    def without_comparisons(self) -> "ConjunctiveQuery":
        """The comparison-free core phi of an ACQ< / ACQ!= query."""
        return ConjunctiveQuery(self.head, self.atoms, (), name=self.name)

    def with_extra_atom(self, atom: Atom) -> "ConjunctiveQuery":
        """Append one atom (used for free-connex tests and union extensions)."""
        return ConjunctiveQuery(self.head, tuple(self.atoms) + (atom,),
                                self.comparisons, name=self.name)

    def rename_apart(self, suffix: str) -> "ConjunctiveQuery":
        """Uniformly rename all variables by appending ``suffix``."""
        mapping = {v: Variable(v.name + suffix) for v in self.variables()}

        def rename_atom(atom: Atom) -> Atom:
            return Atom(atom.relation,
                        [mapping[t] if isinstance(t, Variable) else t for t in atom.terms])

        def rename_comp(comp: Comparison) -> Comparison:
            def r(t):
                return mapping[t] if isinstance(t, Variable) else t

            return Comparison(r(comp.left), comp.op, r(comp.right))

        return ConjunctiveQuery(
            [mapping[v] for v in self.head],
            [rename_atom(a) for a in self.atoms],
            [rename_comp(c) for c in self.comparisons],
            name=self.name,
        )

    # ---------------------------------------------------------------- dunder

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self.head == other.head
            and set(self.atoms) == set(other.atoms)
            and set(self.comparisons) == set(other.comparisons)
        )

    def __hash__(self) -> int:
        return hash((self.head, frozenset(self.atoms), frozenset(self.comparisons)))

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join(map(repr, self.atoms))
        if self.comparisons:
            body += ", " + ", ".join(map(repr, self.comparisons))
        return f"{self.name}({head}) :- {body}"
