"""Negative conjunctive queries (paper Section 4.5, Definition 4.30).

An NCQ is ``phi(x) = exists y  /\\_i NOT R_i(z_i)``.  Over the Boolean
domain with singleton relations this is exactly CNF-SAT in its negative
encoding; beta-acyclic NCQs are decidable in quasi-linear time
(Theorem 4.31) by Davis-Putnam resolution driven by a nest-point
elimination order — implemented in :mod:`repro.csp`.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

from repro.errors import MalformedQueryError
from repro.logic.atoms import Atom
from repro.logic.terms import Variable, as_term


class NegativeConjunctiveQuery:
    """exists y /\\_i NOT R_i(z_i) with ordered free variables ``head``."""

    __slots__ = ("name", "head", "atoms")

    def __init__(self, head: Sequence[Any], atoms: Sequence[Atom], name: str = "Q"):
        head_vars: List[Variable] = []
        for h in head:
            t = as_term(h)
            if not isinstance(t, Variable):
                raise MalformedQueryError(f"head terms must be variables, got {t!r}")
            if t in head_vars:
                raise MalformedQueryError(f"duplicate head variable {t!r}")
            head_vars.append(t)
        atoms = tuple(atoms)
        if not atoms:
            raise MalformedQueryError("an NCQ needs at least one (negated) atom")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", tuple(head_vars))
        object.__setattr__(self, "atoms", atoms)
        body_vars = self.variable_set()
        for v in head_vars:
            if v not in body_vars:
                raise MalformedQueryError(f"head variable {v!r} does not occur in the body")

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("NegativeConjunctiveQuery is immutable")

    @property
    def arity(self) -> int:
        return len(self.head)

    def is_boolean(self) -> bool:
        return not self.head

    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for atom in self.atoms:
            for v in atom.variables():
                seen.setdefault(v, None)
        return tuple(seen)

    def variable_set(self) -> FrozenSet[Variable]:
        return frozenset(self.variables())

    def relation_names(self) -> List[str]:
        out: Dict[str, None] = {}
        for atom in self.atoms:
            out.setdefault(atom.relation, None)
        return list(out)

    def hypergraph(self):
        from repro.hypergraph.hypergraph import Hypergraph

        return Hypergraph(self.variable_set(), [a.variable_set() for a in self.atoms])

    def is_beta_acyclic(self) -> bool:
        from repro.hypergraph.acyclicity import is_beta_acyclic

        return is_beta_acyclic(self.hypergraph())

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join(f"not {a!r}" for a in self.atoms)
        return f"{self.name}({head}) :- {body}"
