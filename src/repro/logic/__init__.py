"""Query languages: terms, atoms, CQ/UCQ/NCQ and full first-order logic.

The classes here are immutable ASTs.  Conjunctive queries
(:class:`~repro.logic.cq.ConjunctiveQuery`) are the central object of
Section 4 of the paper; they optionally carry comparison atoms (<, <=, !=)
for the ACQ< / ACQ!= fragments of Section 4.3.  Unions
(:class:`~repro.logic.ucq.UnionOfConjunctiveQueries`) and negative queries
(:class:`~repro.logic.ncq.NegativeConjunctiveQuery`) cover Sections 4.2 and
4.5.  Full FO (:mod:`repro.logic.fo`) with prefix classification
(:mod:`repro.logic.prefix`) covers Sections 3 and 5.
"""

from repro.logic.terms import Variable, Constant, Term
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.parser import parse_query
from repro.logic import fo

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "NegativeConjunctiveQuery",
    "parse_query",
    "fo",
]
