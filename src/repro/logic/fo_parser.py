"""Textual syntax for first-order formulas (with free second-order
variables), complementing the Datalog-ish CQ parser:

    parse_fo("exists x y. R(x, y) & ~S(y)")
    parse_fo("forall x. X(x) -> E(x, c)")        # X upper-case: SO variable
    parse_fo("exists z. A(x, z) & B(z, y)")      # free x, y

Grammar (precedence low to high)::

    formula   := implies
    implies   := or ( '->' or )*          (right-associative)
    or        := and ( ('|' | 'or') and )*
    and       := unary ( ('&' | 'and') unary )*
    unary     := ('~' | 'not') unary | quantified | atom | '(' formula ')'
    quantified:= ('exists' | 'forall') var+ '.' formula   (max scope)
    atom      := NAME '(' terms ')' | term op term

Predicate names listed in ``so_names`` become free second-order
variables (arity inferred from first use); every other predicate is a
relation symbol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import QuerySyntaxError
from repro.logic.atoms import Atom, Comparison
from repro.logic.fo import (
    And,
    CompareAtom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelAtom,
    SOAtom,
    SecondOrderVariable,
)
from repro.logic.terms import Constant, Variable

_KEYWORDS = {"exists", "forall", "not", "and", "or"}


class _FOParser:
    """Recursive-descent parser over a regex token stream."""

    _TOKEN = None  # compiled lazily below

    @classmethod
    def build(cls, text: str, so_names: Set[str]) -> "_FOParser":
        import re

        if cls._TOKEN is None:
            cls._TOKEN = re.compile(
                r'"[^"]*"|->|!=|<=|>=|\d+|-\d+|[A-Za-z_][A-Za-z_0-9]*'
                r'|[()~|&.,<>=]'
            )
        parser = object.__new__(cls)
        parser.words = cls._TOKEN.findall(text)
        joined = "".join(parser.words)
        stripped = "".join(text.split())
        if joined != stripped:
            raise QuerySyntaxError(f"unrecognised characters in {text!r}")
        parser.pos = 0
        parser.text = text
        parser.so_names = so_names
        parser.so_vars = {}
        return parser

    # ----------------------------------------------------------- word stream

    def peek(self) -> Optional[str]:
        return self.words[self.pos] if self.pos < len(self.words) else None

    def next(self) -> str:
        w = self.peek()
        if w is None:
            raise QuerySyntaxError(f"unexpected end of formula: {self.text!r}")
        self.pos += 1
        return w

    def expect(self, word: str) -> None:
        w = self.next()
        if w != word:
            raise QuerySyntaxError(
                f"expected {word!r}, got {w!r} in {self.text!r}")

    # --------------------------------------------------------------- grammar

    def parse(self) -> Formula:
        f = self.implies()
        if self.peek() is not None:
            raise QuerySyntaxError(
                f"trailing input {self.peek()!r} in {self.text!r}")
        return f

    def implies(self) -> Formula:
        left = self.disjunction()
        if self.peek() == "->":
            self.next()
            right = self.implies()
            return Or(Not(left), right)
        return left

    def disjunction(self) -> Formula:
        parts = [self.conjunction()]
        while self.peek() in ("|", "or"):
            self.next()
            parts.append(self.conjunction())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def conjunction(self) -> Formula:
        parts = [self.unary()]
        while self.peek() in ("&", "and"):
            self.next()
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else And(*parts)

    def unary(self) -> Formula:
        w = self.peek()
        if w in ("~", "not"):
            self.next()
            return Not(self.unary())
        if w in ("exists", "forall"):
            self.next()
            variables: List[str] = []
            while self.peek() not in (".",):
                name = self.next()
                if not name.isidentifier():
                    raise QuerySyntaxError(
                        f"bad quantified variable {name!r} in {self.text!r}")
                variables.append(name)
            if not variables:
                raise QuerySyntaxError(
                    f"quantifier without variables in {self.text!r}")
            self.expect(".")
            # the quantifier scopes as far right as possible (standard)
            body = self.implies()
            return (Exists if w == "exists" else ForAll)(variables, body)
        if w == "(":
            self.next()
            f = self.implies()
            self.expect(")")
            return f
        return self.atom()

    def term(self, word: str):
        if word.lstrip("-").isdigit():
            return Constant(int(word))
        if word.startswith('"') and word.endswith('"'):
            return Constant(word[1:-1])
        if not word.isidentifier():
            raise QuerySyntaxError(f"bad term {word!r} in {self.text!r}")
        return Variable(word)

    def atom(self) -> Formula:
        name = self.next()
        if self.peek() == "(":
            self.next()
            terms = []
            while self.peek() != ")":
                terms.append(self.term(self.next()))
                if self.peek() == ",":
                    self.next()
            self.expect(")")
            if name in self.so_names:
                so = self.so_vars.get(name)
                if so is None:
                    so = SecondOrderVariable(name, len(terms))
                    self.so_vars[name] = so
                return SOAtom(so, terms)
            return RelAtom(Atom(name, terms))
        # comparison: term op term
        op = self.next()
        if op not in ("<", "<=", ">", ">=", "!=", "="):
            raise QuerySyntaxError(
                f"expected '(' or comparison after {name!r} in {self.text!r}")
        right = self.next()
        return CompareAtom(Comparison(self.term(name), op, self.term(right)))


def parse_fo(text: str, so_names: Optional[Sequence[str]] = None) -> Formula:
    """Parse a first-order formula; names in ``so_names`` become free
    second-order variables."""
    parser = _FOParser.build(text, set(so_names or ()))
    return parser.parse()
