"""Fluent programmatic query construction.

A tiny convenience layer over the AST constructors, for when a query is
assembled by code (generators, reductions) rather than parsed:

>>> from repro.logic.builder import Q
>>> q = Q("x", "y").where("R", "x", "z").where("S", "z", "y").build()
>>> q.arity
2
"""

from __future__ import annotations

from typing import Any, List

from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.ucq import UnionOfConjunctiveQueries


class QueryBuilder:
    """Accumulates atoms/comparisons, then builds an immutable query."""

    def __init__(self, *head: Any, name: str = "Q"):
        self._head = list(head)
        self._name = name
        self._atoms: List[Atom] = []
        self._negated: List[Atom] = []
        self._comparisons: List[Comparison] = []

    def where(self, relation: str, *terms: Any) -> "QueryBuilder":
        """Add a positive relational atom."""
        self._atoms.append(Atom(relation, terms))
        return self

    def where_not(self, relation: str, *terms: Any) -> "QueryBuilder":
        """Add a negated relational atom (builds an NCQ)."""
        self._negated.append(Atom(relation, terms))
        return self

    def compare(self, left: Any, op: str, right: Any) -> "QueryBuilder":
        """Add a comparison atom (<, <=, >, >=, !=, =)."""
        self._comparisons.append(Comparison(left, op, right))
        return self

    def build(self) -> ConjunctiveQuery:
        return ConjunctiveQuery(self._head, self._atoms, self._comparisons, name=self._name)

    def build_negative(self) -> NegativeConjunctiveQuery:
        return NegativeConjunctiveQuery(self._head, self._negated, name=self._name)


def Q(*head: Any, name: str = "Q") -> QueryBuilder:
    """Start building a query with the given head variables."""
    return QueryBuilder(*head, name=name)


def union(*queries: ConjunctiveQuery, name: str = "Q") -> UnionOfConjunctiveQueries:
    """Union of already-built conjunctive queries."""
    return UnionOfConjunctiveQueries(queries, name=name)
