"""Signed conjunctive queries: positive AND negative atoms (Section 4.5's
closing remark — "partial characterizations for the complexity of signed
queries ... are given in [Brault-Baron 2013]").

A signed query is

    phi(x) = exists y  /\\_i R_i(z_i)  /\\_j NOT S_j(w_j)

with the usual safety condition that every variable occurs in some
positive atom (otherwise negation quantifies over the whole domain and
the answer is not domain-independent).

Evaluation: backtracking driven by the positive atoms, with each
negative atom checked (an O(1) hash probe) as soon as its variables are
bound.  Classification per [18]'s partial picture: the positive part's
structure gives the upper bounds (the negative atoms only add constant-
time probes per candidate), while beta-acyclicity governs the purely
negative fragment (Theorem 4.31).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.data.database import Database
from repro.errors import MalformedQueryError
from repro.logic.atoms import Atom, Comparison
from repro.logic.cq import ConjunctiveQuery
from repro.logic.ncq import NegativeConjunctiveQuery
from repro.logic.terms import Constant, Variable, as_term


class SignedConjunctiveQuery:
    """exists y ( /\\ positive atoms  /\\  NOT negative atoms )."""

    __slots__ = ("name", "head", "positive", "negative")

    def __init__(self, head: Sequence[Any], positive: Sequence[Atom],
                 negative: Sequence[Atom], name: str = "Q"):
        head_vars: List[Variable] = []
        for h in head:
            t = as_term(h)
            if not isinstance(t, Variable):
                raise MalformedQueryError(f"head terms must be variables, got {t!r}")
            if t in head_vars:
                raise MalformedQueryError(f"duplicate head variable {t!r}")
            head_vars.append(t)
        positive = tuple(positive)
        negative = tuple(negative)
        if not positive:
            raise MalformedQueryError(
                "a signed query needs at least one positive atom; use "
                "NegativeConjunctiveQuery for purely negative bodies")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", tuple(head_vars))
        object.__setattr__(self, "positive", positive)
        object.__setattr__(self, "negative", negative)
        covered: Set[Variable] = set()
        for a in positive:
            covered |= a.variable_set()
        for v in head_vars:
            if v not in covered:
                raise MalformedQueryError(f"head variable {v!r} not in a positive atom")
        for a in negative:
            if not a.variable_set() <= covered:
                raise MalformedQueryError(
                    f"negated atom {a!r} uses variables outside the positive "
                    "atoms (unsafe negation)")

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("SignedConjunctiveQuery is immutable")

    @property
    def arity(self) -> int:
        return len(self.head)

    def is_boolean(self) -> bool:
        return not self.head

    def positive_core(self) -> ConjunctiveQuery:
        """The positive part as a plain CQ (drives the classification)."""
        return ConjunctiveQuery(self.head, self.positive, (), name=self.name)

    def relation_names(self) -> List[str]:
        out: Dict[str, None] = {}
        for a in self.positive + self.negative:
            out.setdefault(a.relation, None)
        return list(out)

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        parts = [repr(a) for a in self.positive]
        parts += [f"not {a!r}" for a in self.negative]
        return f"{self.name}({head}) :- " + ", ".join(parts)


def evaluate_signed(query: SignedConjunctiveQuery, db: Database
                    ) -> Set[Tuple[Any, ...]]:
    """phi(D): positive-atom backtracking + negative-atom probes."""
    out: Set[Tuple[Any, ...]] = set()
    for assignment in signed_assignments(query, db):
        out.add(tuple(assignment[v] for v in query.head))
    return out


def signed_assignments(query: SignedConjunctiveQuery, db: Database
                       ) -> Iterator[Dict[Variable, Any]]:
    """All satisfying assignments of all variables."""
    from repro.eval.naive import satisfying_assignments

    positive = ConjunctiveQuery(
        list({v: None for a in query.positive for v in a.variables()}),
        query.positive, (), name=query.name)
    # negative atoms grouped by the point where they become fully bound is
    # handled lazily: check all once an assignment is complete (the probes
    # are O(1) each; early checks are an optimisation, not a necessity)
    for assignment in satisfying_assignments(positive, db):
        ok = True
        for atom in query.negative:
            tup = tuple(
                t.value if isinstance(t, Constant) else assignment[t]
                for t in atom.terms)
            if tup in db.relation(atom.relation):
                ok = False
                break
        if ok:
            yield assignment


def decide_signed(query: SignedConjunctiveQuery, db: Database) -> bool:
    """Is the signed query satisfiable (first witness wins)?"""
    for _ in signed_assignments(query, db):
        return True
    return False


def count_signed(query: SignedConjunctiveQuery, db: Database) -> int:
    """|phi(D)| (distinct head tuples)."""
    return len(evaluate_signed(query, db))


def parse_signed(text: str) -> SignedConjunctiveQuery:
    """Parse a rule that mixes positive and ``not`` atoms."""
    from repro.logic.parser import _Parser, _tokenize

    parser = _Parser(_tokenize(text), text)
    head_name, head_terms, items = parser.parse_rule()
    positive = [a for kind, a in items if kind == "atom"]
    negative = [a for kind, a in items if kind == "neg"]
    comparisons = [c for kind, c in items if kind == "cmp"]
    if comparisons:
        raise MalformedQueryError("signed queries do not take comparisons here")
    return SignedConjunctiveQuery(head_terms, positive, negative,
                                  name=head_name)
