"""Quantifier-prefix classification: the Sigma_k / Pi_k fragments (Section 5).

For a formula in prenex normal form, the fragment is determined by the
number of quantifier alternations and the leading quantifier:

* ``Sigma_0 = Pi_0``: quantifier-free,
* ``Sigma_k``: k alternating blocks starting with exists,
* ``Pi_k``: k alternating blocks starting with forall.

The paper's Sigma^rel_k / Pi^rel_k are these fragments when free
second-order variables (all relational in this library) are allowed.
The counting hierarchy (Theorem 5.3) and enumeration hierarchy
(Theorem 5.5) are indexed by exactly this classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.logic.fo import Formula, is_quantifier_free, quantifier_prefix, to_prenex


@dataclass(frozen=True)
class PrefixClass:
    """A prefix fragment: Sigma_k or Pi_k (Sigma_0 == Pi_0).

    Attributes
    ----------
    k:
        Number of alternating quantifier blocks (0 for quantifier-free).
    leading:
        "E" or "A" for k >= 1; "" for k == 0.
    relational:
        True when the formula has free second-order variables (the
        ^rel-superscripted classes of the paper).
    """

    k: int
    leading: str
    relational: bool = False

    def name(self) -> str:
        if self.k == 0:
            base = "Sigma_0"
        else:
            base = ("Sigma_" if self.leading == "E" else "Pi_") + str(self.k)
        return base + ("^rel" if self.relational else "")

    def contains(self, other: "PrefixClass") -> bool:
        """Syntactic containment: Sigma_0 < Sigma_1, Pi_1 < Sigma_2, ...

        Sigma_k and Pi_k are each contained in both Sigma_{k+1} and
        Pi_{k+1}; neither contains the other at the same level (k >= 1).
        """
        if other.k < self.k:
            return True
        if other.k == self.k:
            return self.k == 0 or other.leading == self.leading
        return False

    def __str__(self) -> str:
        return self.name()


def classify_prefix(formula: Formula) -> PrefixClass:
    """Classify ``formula`` after conversion to prenex normal form."""
    relational = bool(formula.so_variables())
    prenex = to_prenex(formula)
    blocks, matrix = quantifier_prefix(prenex)
    if not is_quantifier_free(matrix):
        # to_prenex ought to have flattened everything; treat any residual
        # quantifier as an extra alternation to stay sound
        inner = classify_prefix(matrix)
        extra = inner.k if inner.k else 0
        return PrefixClass(len(blocks) + extra, blocks[0][0] if blocks else inner.leading,
                           relational)
    if not blocks:
        return PrefixClass(0, "", relational)
    return PrefixClass(len(blocks), blocks[0][0], relational)


def is_sigma(formula: Formula, k: int) -> bool:
    """Is the formula (syntactically, after prenexing) in Sigma_k?"""
    cls = classify_prefix(formula)
    return PrefixClass(k, "E", cls.relational).contains(cls) or (
        cls.k == k and cls.leading == "E"
    )


def is_pi(formula: Formula, k: int) -> bool:
    """Is the formula (after prenexing) in Pi_k?"""
    cls = classify_prefix(formula)
    return PrefixClass(k, "A", cls.relational).contains(cls) or (
        cls.k == k and cls.leading == "A"
    )
