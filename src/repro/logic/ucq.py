"""Unions of conjunctive queries (paper Section 4.2, Definition 4.10).

A UCQ is ``phi = phi_1 \\/ ... \\/ phi_k`` where all disjuncts share the
same head arity.  Answers are the union of the disjuncts' answer sets —
enumeration must deduplicate across disjuncts (Theorem 4.13's algorithm
handles this without materialising the union).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.errors import MalformedQueryError
from repro.logic.cq import ConjunctiveQuery


class UnionOfConjunctiveQueries:
    """phi_1 \\/ ... \\/ phi_k with a shared head arity.

    The head variable *names* may differ between disjuncts; answers from
    disjunct i are tuples ordered by ``phi_i.head``.
    """

    __slots__ = ("name", "disjuncts")

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], name: str = "Q"):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise MalformedQueryError("a UCQ needs at least one disjunct")
        arity = disjuncts[0].arity
        for d in disjuncts[1:]:
            if d.arity != arity:
                raise MalformedQueryError(
                    f"UCQ disjuncts disagree on arity: {arity} vs {d.arity}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "disjuncts", disjuncts)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("UnionOfConjunctiveQueries is immutable")

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def is_boolean(self) -> bool:
        return self.arity == 0

    def relation_names(self) -> List[str]:
        out = {}
        for d in self.disjuncts:
            for name in d.relation_names():
                out.setdefault(name, None)
        return list(out)

    def all_disjuncts_free_connex(self) -> bool:
        """Sufficient condition for constant-delay enumeration ([79])."""
        return all(d.is_acyclic() and d.is_free_connex() for d in self.disjuncts)

    def size(self) -> int:
        return sum(d.size() for d in self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    def __getitem__(self, i: int) -> ConjunctiveQuery:
        return self.disjuncts[i]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnionOfConjunctiveQueries)
            and self.disjuncts == other.disjuncts
        )

    def __hash__(self) -> int:
        return hash(self.disjuncts)

    def __repr__(self) -> str:
        return " \\/ ".join(map(repr, self.disjuncts))
