"""Atomic formulas: relational atoms and comparison atoms.

A relational :class:`Atom` is ``R(t_1, ..., t_k)`` with each ``t_i`` a
variable or constant.  A :class:`Comparison` is ``t op t'`` for
``op in {<, <=, !=, =}`` — the extensions of Section 4.3 of the paper
(ACQ<, ACQ<=, ACQ!=).  Comparisons never contribute hyperedges to the query
hypergraph ("comparisons are not taken into account to measure
acyclicity").
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.logic.terms import Constant, Term, Variable, as_term

COMPARISON_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "!=": operator.ne,
    "=": operator.eq,
}


class Atom:
    """A relational atom R(t1, ..., tk)."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation: str, terms: Sequence[Any]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(as_term(t) for t in terms))

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("Atom is immutable")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Tuple[Variable, ...]:
        """Variables in order of first occurrence."""
        seen: Dict[Variable, None] = {}
        for t in self.terms:
            if isinstance(t, Variable):
                seen.setdefault(t, None)
        return tuple(seen)

    def variable_set(self) -> FrozenSet[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> Tuple[Constant, ...]:
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def substitute(self, assignment: Mapping[Variable, Any]) -> "Atom":
        """Replace variables bound in ``assignment`` by constants."""
        new_terms = [
            Constant(assignment[t]) if isinstance(t, Variable) and t in assignment else t
            for t in self.terms
        ]
        return Atom(self.relation, new_terms)

    def matches(self, tup: Sequence[Any]) -> bool:
        """Whether a database tuple is consistent with this atom's constants
        and repeated variables."""
        if len(tup) != len(self.terms):
            return False
        binding: Dict[Variable, Any] = {}
        for term, value in zip(self.terms, tup):
            if isinstance(term, Constant):
                if term.value != value:
                    return False
            else:
                if term in binding:
                    if binding[term] != value:
                        return False
                else:
                    binding[term] = value
        return True

    def bind(self, tup: Sequence[Any]) -> Dict[Variable, Any]:
        """The variable binding induced by matching ``tup`` (assumes
        :meth:`matches` holds)."""
        binding: Dict[Variable, Any] = {}
        for term, value in zip(self.terms, tup):
            if isinstance(term, Variable):
                binding[term] = value
        return binding

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.relation == other.relation
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.terms))

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.terms))
        return f"{self.relation}({args})"


class Comparison:
    """A comparison atom ``left op right`` with op in <, <=, >, >=, !=, =."""

    __slots__ = ("op", "left", "right")

    def __init__(self, left: Any, op: str, right: Any):
        if op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", as_term(left))
        object.__setattr__(self, "right", as_term(right))

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("Comparison is immutable")

    def variables(self) -> Tuple[Variable, ...]:
        out = []
        for t in (self.left, self.right):
            if isinstance(t, Variable) and t not in out:
                out.append(t)
        return tuple(out)

    def variable_set(self) -> FrozenSet[Variable]:
        return frozenset(self.variables())

    def is_disequality(self) -> bool:
        return self.op == "!="

    def is_order_comparison(self) -> bool:
        return self.op in ("<", "<=", ">", ">=")

    def evaluate(self, assignment: Mapping[Variable, Any]) -> bool:
        """Evaluate under a (total, for this atom's variables) assignment."""

        def value_of(t: Term) -> Any:
            if isinstance(t, Constant):
                return t.value
            return assignment[t]

        return COMPARISON_OPS[self.op](value_of(self.left), value_of(self.right))

    def substitute(self, assignment: Mapping[Variable, Any]) -> "Comparison":
        def sub(t: Term) -> Term:
            if isinstance(t, Variable) and t in assignment:
                return Constant(assignment[t])
            return t

        return Comparison(sub(self.left), self.op, sub(self.right))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash((self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


def evaluate_comparisons(comparisons: Iterable[Comparison],
                         assignment: Mapping[Variable, Any]) -> bool:
    """All comparisons hold under ``assignment``."""
    return all(c.evaluate(assignment) for c in comparisons)
