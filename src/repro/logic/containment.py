"""Conjunctive-query containment, equivalence and cores (Chandra-Merlin).

The paper's introduction anchors the whole story on [Chandra-Merlin
1977]: evaluating Boolean CQs is NP-complete because it *is* the
homomorphism problem.  The same machinery gives static analysis:

* q1 is contained in q2  iff  there is a homomorphism from q2 to q1
  mapping head to head (the canonical-database argument);
* equivalence = containment both ways;
* every CQ has a unique (up to isomorphism) minimal equivalent
  subquery, its *core* — computing it removes redundant atoms, which
  matters here because structural parameters (acyclicity, free-connex,
  star size) are not invariant under redundancy: a query can be
  classified hard while its core is easy (see
  :func:`classify_up_to_equivalence`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Term, Variable


def homomorphisms(src: ConjunctiveQuery, dst: ConjunctiveQuery,
                  require_head: bool = True
                  ) -> Iterator[Dict[Variable, Term]]:
    """All homomorphisms h : var(src) -> term(dst) with R(z) in src
    implying R(h(z)) in dst; with ``require_head`` the i-th head variable
    of src must map to the i-th head variable of dst."""
    if src.has_comparisons() or dst.has_comparisons():
        raise ValueError("containment machinery handles comparison-free CQs")
    dst_by_relation: Dict[str, List[Atom]] = {}
    for atom in dst.atoms:
        dst_by_relation.setdefault(atom.relation, []).append(atom)

    base: Dict[Variable, Term] = {}
    if require_head:
        if src.arity != dst.arity:
            return
        for sv, dv in zip(src.head, dst.head):
            if sv in base and base[sv] is not dv:
                return
            base[sv] = dv

    src_atoms = list(src.atoms)

    def extend(i: int, mapping: Dict[Variable, Term]
               ) -> Iterator[Dict[Variable, Term]]:
        if i == len(src_atoms):
            yield dict(mapping)
            return
        atom = src_atoms[i]
        for candidate in dst_by_relation.get(atom.relation, []):
            if candidate.arity != atom.arity:
                continue
            added: List[Variable] = []
            ok = True
            for s_term, d_term in zip(atom.terms, candidate.terms):
                if isinstance(s_term, Constant):
                    if s_term != d_term:
                        ok = False
                        break
                    continue
                bound = mapping.get(s_term)
                if bound is None:
                    mapping[s_term] = d_term
                    added.append(s_term)
                elif bound != d_term and bound is not d_term:
                    ok = False
                    break
            if ok:
                yield from extend(i + 1, mapping)
            for v in added:
                del mapping[v]

    yield from extend(0, dict(base))


def has_homomorphism(src: ConjunctiveQuery, dst: ConjunctiveQuery,
                     require_head: bool = True) -> bool:
    """Does at least one (head-fixing) homomorphism src -> dst exist?"""
    return next(homomorphisms(src, dst, require_head), None) is not None


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """q1(D) <= q2(D) for every database D  iff  q2 -> q1 homomorphically
    (head to head)."""
    return has_homomorphism(q2, q1, require_head=True)


def are_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Semantic equivalence: containment in both directions."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def core(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core: a minimal equivalent subquery.

    Folding approach: repeatedly look for an endomorphism (head-fixing
    homomorphism of the query into itself) whose atom image is a proper
    subset of the atoms, and restrict to the image; stop at a fixpoint.
    """
    current = cq
    while True:
        atoms = list(current.atoms)
        atom_set = set(atoms)
        improved = False
        for h in homomorphisms(current, current, require_head=True):
            image = {a.substitute({}) for a in
                     (_apply(h, a) for a in atoms)}
            if image < atom_set:
                head = current.head
                current = ConjunctiveQuery(head, sorted(image, key=repr),
                                           name=current.name)
                improved = True
                break
        if not improved:
            return current


def _apply(h: Dict[Variable, Term], atom: Atom) -> Atom:
    terms = [h.get(t, t) if isinstance(t, Variable) else t for t in atom.terms]
    return Atom(atom.relation, terms)


def is_minimal(cq: ConjunctiveQuery) -> bool:
    """Is the query its own core (no redundant atoms)?"""
    return len(core(cq).atoms) == len(cq.atoms)


def classify_up_to_equivalence(cq: ConjunctiveQuery):
    """Classify the *core* of the query: structural parameters are not
    invariant under redundant atoms, so classification should be applied
    to the minimal equivalent query.

    Returns (core query, its ComplexityReport)."""
    from repro.core.classify import classify

    minimal = core(cq)
    return minimal, classify(minimal)
