"""Exception hierarchy for the repro library.

All errors raised by the library derive from :class:`ReproError`, so client
code can catch a single exception type.  Subclasses distinguish the broad
failure categories: malformed queries, schema mismatches between a query and
a database, and requests for an algorithm whose structural precondition does
not hold (e.g. asking the constant-delay enumerator to run a query that is
not free-connex).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by this library."""


class QuerySyntaxError(ReproError):
    """Raised when a textual query cannot be parsed."""


class MalformedQueryError(ReproError):
    """Raised when a query object violates a structural invariant.

    Examples: an atom whose argument count does not match the declared
    arity, a free variable that never occurs in the body, or a union of
    conjunctive queries whose disjuncts disagree on arity.
    """


class SchemaMismatchError(ReproError):
    """Raised when a query refers to relations absent from the database,
    or uses a relation at the wrong arity."""


class NotAcyclicError(ReproError):
    """Raised when an algorithm requiring an (alpha-)acyclic query is given
    a cyclic one."""


class NotFreeConnexError(ReproError):
    """Raised when a constant-delay algorithm requiring free-connexity is
    given a query that is acyclic but not free-connex."""


class UnsupportedQueryError(ReproError):
    """Raised when a query falls outside the fragment an engine supports."""


class EnumerationError(ReproError):
    """Raised when an enumeration run violates its protocol (for example,
    a phase method called out of order)."""
