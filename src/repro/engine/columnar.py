"""Columnar relational kernel: dictionary-encoded numpy columns.

A :class:`ColumnarRelation` stores one int64 numpy array per variable
(column); arbitrary Python values are mapped to dense integer codes by a
shared :class:`ValueDictionary`, so every relational operation reduces to
integer-key kernels:

* **semijoin** — joint group-id computation over the shared columns of the
  two operands, then a dense boolean membership mask (linear after the
  grouping);
* **natural join** — sort-merge on joint group ids: argsort the build
  side, ``searchsorted`` the probe side, expand matches with
  ``repeat``/``cumsum`` arithmetic (no per-tuple Python);
* **project / distinct** — group ids plus first-occurrence selection, so
  insertion order is preserved like the tuple backend;
* **group-count** — `grouped_sums` powers the vectorized acyclic counting
  message passing (Theorem 4.21) in :mod:`repro.counting.acq_count`.

The class is duck-compatible with :class:`repro.eval.join.VarRelation`
(``variables``, ``position``, ``project``, ``semijoin``, ``join``,
``index_on``, ``probe``, iteration, ...), so every join-tree algorithm
runs unmodified on either backend; hash-index probes fall back to a
decoded per-relation dict index, which keeps enumeration correct while
the bulk passes (full reducer, joins, counting) stay vectorized.

Grouping uses sorting (`np.unique`), so the kernels run in O(n log n)
worst case — a log factor over the RAM-model hash bounds of the paper,
which leaves the measured scaling *shapes* intact (see
``benchmarks/test_bench_engines.py``).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs
from repro.errors import SchemaMismatchError
from repro.logic.terms import Constant, Variable

Tup = Tuple[Any, ...]

_INT_KINDS = "iu"


class ValueDictionary:
    """A bijective value <-> int64 code dictionary shared by columns.

    Codes are assigned densely in first-seen order.  All relations taking
    part in one computation must share the dictionary so that per-column
    codes are directly comparable across relations (the default global
    dictionary makes this automatic).
    """

    __slots__ = ("_codes", "_values", "_table", "__weakref__")

    def __init__(self) -> None:
        self._codes: Dict[Any, int] = {}
        self._values: List[Any] = []
        self._table: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value: Any) -> int:
        """Code of ``value``, assigning a fresh one if needed."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def code_of(self, value: Any) -> Optional[int]:
        """Code of ``value`` or None if it was never interned."""
        return self._codes.get(value)

    def decode(self, code: int) -> Any:
        return self._values[code]

    def encode_values(self, values: Sequence[Any]) -> np.ndarray:
        """Encode a Python sequence into an int64 code array."""
        encode = self.encode
        return np.fromiter((encode(v) for v in values), dtype=np.int64,
                           count=len(values))

    def encode_column(self, column: np.ndarray) -> np.ndarray:
        """Encode one raw column, vectorized for integer dtypes.

        Integer columns are encoded through their (few) distinct values:
        one Python-level dictionary insertion per *distinct* value, one
        ``searchsorted`` gather for the bulk.
        """
        arr = np.asarray(column)
        if arr.dtype.kind in _INT_KINDS and arr.size:
            uniq, inverse = np.unique(arr, return_inverse=True)
            encode = self.encode
            codes_for_uniq = np.fromiter(
                (encode(int(v)) for v in uniq), dtype=np.int64,
                count=len(uniq))
            return codes_for_uniq[inverse.reshape(-1)]
        return self.encode_values(list(column))

    def decode_table(self) -> np.ndarray:
        """Object-array lookup table ``table[code] -> value`` (cached).

        Codes are append-only, so a cached table is valid iff its length
        still matches; the block-emission path decodes one gather per
        block instead of rebuilding the table each time.
        """
        if self._table is None or len(self._table) != len(self._values):
            table = np.empty(len(self._values), dtype=object)
            table[:] = self._values
            self._table = table
        return self._table

    def decode_column(self, codes: np.ndarray) -> np.ndarray:
        """Decode a code array into an object array of original values."""
        return self.decode_table()[codes]


_DEFAULT_DICTIONARY = ValueDictionary()


def default_dictionary() -> ValueDictionary:
    """The process-wide dictionary used when none is given explicitly."""
    return _DEFAULT_DICTIONARY


# ------------------------------------------------------------------ grouping


def group_ids(columns: Sequence[np.ndarray], length: int
              ) -> Tuple[np.ndarray, int]:
    """Dense group ids of the row tuples formed by ``columns``.

    Returns ``(ids, cardinality)`` with ``ids`` an int64 array of length
    ``length`` and every id in ``[0, cardinality)``.  Rows are in the same
    group iff they agree on every column.  Multi-column keys are packed
    pairwise with re-densification, so intermediate products never
    overflow int64.
    """
    if not columns:
        return np.zeros(length, dtype=np.int64), 1
    acc = columns[0]
    card = int(acc.max()) + 1 if acc.size else 1
    for col in columns[1:]:
        ccard = int(col.max()) + 1 if col.size else 1
        if card > 1 and ccard > (2 ** 62) // card:
            uniq, inverse = np.unique(acc, return_inverse=True)
            acc = inverse.reshape(-1)
            card = len(uniq) if len(uniq) else 1
        acc = acc * ccard + col
        card = card * ccard
    if card > max(1024, 4 * length):
        uniq, inverse = np.unique(acc, return_inverse=True)
        acc = inverse.reshape(-1)
        card = len(uniq) if len(uniq) else 1
    return acc.astype(np.int64, copy=False), int(card)


def first_occurrences(ids: np.ndarray) -> np.ndarray:
    """Indices of the first row of each group, in insertion order."""
    _uniq, first = np.unique(ids, return_index=True)
    return np.sort(first)


def grouped_sums(ids: np.ndarray, card: int,
                 values: np.ndarray) -> np.ndarray:
    """Per-group sums following the value dtype (``np.add.at`` scatter,
    not float bincount, so int64 counts stay exact up to int64 range;
    float64 weighted sums follow IEEE semantics)."""
    sums = np.zeros(card, dtype=values.dtype)
    np.add.at(sums, ids, values)
    return sums


# ----------------------------------------------------------------- relation


class ColumnarRelation:
    """A distinct set of rows over named variables, stored by column.

    Duck-compatible with :class:`repro.eval.join.VarRelation`; rows are
    kept distinct as an invariant (the constructor and every operation
    deduplicate where needed) and first-insertion order is preserved.
    """

    __slots__ = ("variables", "_positions", "_columns", "_nrows",
                 "_pending", "_indexes", "_dict", "_decoded",
                 "_probecache", "_version")

    def __init__(self, variables: Sequence[Variable],
                 tuples: Optional[Iterable[Tup]] = None,
                 dictionary: Optional[ValueDictionary] = None):
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self._positions: Dict[Variable, int] = {
            v: i for i, v in enumerate(self.variables)}
        if len(self._positions) != len(self.variables):
            raise ValueError("duplicate variables in ColumnarRelation schema")
        # `is not None`, not truthiness: an empty ValueDictionary is falsy
        # (it has __len__) but must still be honoured as the caller's
        # dictionary rather than silently aliasing the global default
        self._dict = dictionary if dictionary is not None else default_dictionary()
        self._columns: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in self.variables]
        self._nrows = 0
        self._pending: List[Tup] = []
        self._indexes: Dict[Tuple[Variable, ...], Dict[Tup, List[Tup]]] = {}
        self._decoded: Optional[List[Tup]] = None
        self._probecache: Dict[Any, Any] = {}
        self._version = 0
        if tuples is not None:
            for t in tuples:
                self.add(t)
            self._flush()

    # -------------------------------------------------------------- plumbing

    @classmethod
    def from_codes(cls, variables: Sequence[Variable],
                   columns: Sequence[np.ndarray], nrows: int,
                   dictionary: ValueDictionary,
                   dedupe: bool = False) -> "ColumnarRelation":
        """Wrap already-encoded columns (no copy unless deduping)."""
        rel = cls(variables, dictionary=dictionary)
        cols = [np.ascontiguousarray(c, dtype=np.int64) for c in columns]
        if dedupe:
            cols, nrows = _dedupe_columns(cols, nrows)
        rel._columns = cols
        rel._nrows = int(nrows)
        return rel

    def _flush(self) -> None:
        """Fold pending Python rows into the column arrays."""
        if not self._pending:
            return
        rows = self._pending
        self._pending = []
        new_cols = _encode_rows(rows, len(self.variables), self._dict)
        old_nrows = self._nrows
        if old_nrows:
            cols = [np.concatenate([old, new])
                    for old, new in zip(self._columns, new_cols)]
        else:
            cols = new_cols
        cols, nrows = _dedupe_columns(cols, old_nrows + len(rows))
        if nrows == old_nrows:
            # every pending row was already present (dedupe kept exactly
            # the old prefix): a no-op mutation keeps the old arrays, the
            # version, and every probe cache built on them warm
            return
        self._columns, self._nrows = cols, nrows
        self._invalidate()

    def _invalidate(self) -> None:
        self._indexes = {}
        self._decoded = None
        # replace, never mutate: copies sharing the old cache (see
        # ``copy``) keep their still-valid probes for the old columns
        self._probecache = {}
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter (mirrors :attr:`repro.data.relation.Relation.
        version`): bumps whenever pending rows are folded in, so derived
        structures keyed on a version snapshot self-invalidate."""
        self._flush()
        return self._version

    def cached_probe(self, key: Any, builder):
        """Memoise a derived probe structure on this relation's columns.

        ``builder`` is called once per ``key`` per column version; the
        result (e.g. a sorted-order ``_BatchProbe`` permutation) is
        reused by every consumer holding this relation *or a copy of
        it* — ``copy`` shares the cache dict, and any later mutation
        swaps in a fresh dict (:meth:`_invalidate`) rather than mutating
        the shared one, so stale entries are unreachable by
        construction.  Skips re-sorting on warm plan-cache runs and in
        repeated enumerator builds over the same reduced relations.
        """
        self._flush()
        entry = self._probecache.get(key)
        if entry is None:
            obs.count("kernel.probe_cache_misses")
            entry = builder()
            self._probecache[key] = entry
        else:
            obs.count("kernel.probe_cache_hits")
        return entry

    def batch_probe(self, probe_vars: Sequence[Variable]):
        """The batch probe structure over ``probe_vars``, memoised on the
        relation (see :func:`repro.engine.enumerate.build_probe`).

        Keyed by *column positions*, not variable names: a probe depends
        only on the column arrays, so two same-symbol atoms sharing one
        cache dict (:class:`repro.engine.symbols.SymbolWorkspace`)
        resolve ``R(x, y)`` and ``R(u, v)`` probing column 0 to the same
        entry.  The compiled subclass applies the same convention to its
        radix tables."""
        from repro.engine.enumerate import _BatchProbe

        self._flush()
        positions = tuple(self._positions[v] for v in probe_vars)
        cols = self._columns
        nrows = self._nrows
        return self.cached_probe(
            ("batch_probe", positions),
            lambda: _BatchProbe([cols[p] for p in positions], nrows))

    def column(self, v: Variable) -> np.ndarray:
        """The code column of variable ``v``."""
        self._flush()
        return self._columns[self._positions[v]]

    def code_columns(self) -> List[np.ndarray]:
        self._flush()
        return list(self._columns)

    @property
    def dictionary(self) -> ValueDictionary:
        return self._dict

    def _coerce(self, other: Any) -> "ColumnarRelation":
        """View ``other`` (columnar or tuple-backed) through this
        relation's dictionary."""
        if isinstance(other, ColumnarRelation):
            if other._dict is self._dict:
                other._flush()
                return other
            return type(self)(other.variables, iter(other),
                              dictionary=self._dict)
        return type(self)(other.variables, iter(other),
                          dictionary=self._dict)

    # ----------------------------------------------------------------- basics

    def add(self, tup: Tup) -> None:
        t = tuple(tup)
        if len(t) != len(self.variables):
            raise ValueError(
                f"tuple length {len(t)} does not match schema {self.variables}"
            )
        self._pending.append(t)

    def __len__(self) -> int:
        self._flush()
        return self._nrows

    def __iter__(self) -> Iterator[Tup]:
        return iter(self.tuples())

    def __contains__(self, tup: Tup) -> bool:
        self._flush()
        t = tuple(tup)
        if len(t) != len(self.variables):
            return False
        if not self.variables:
            return self._nrows > 0
        mask = np.ones(self._nrows, dtype=bool)
        for value, col in zip(t, self._columns):
            code = self._dict.code_of(value)
            if code is None:
                return False
            mask &= col == code
        return bool(mask.any())

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.variables)
        return f"ColumnarRelation([{names}], size={len(self)})"

    def position(self, v: Variable) -> int:
        return self._positions[v]

    def has_variable(self, v: Variable) -> bool:
        return v in self._positions

    def assignment(self, tup: Tup) -> Dict[Variable, Any]:
        return {v: tup[i] for i, v in enumerate(self.variables)}

    def tuples(self) -> List[Tup]:
        """Decode the rows into Python tuples (cached)."""
        self._flush()
        if self._decoded is None:
            if not self.variables:
                self._decoded = [()] * self._nrows
            else:
                decoded = [self._dict.decode_column(c) for c in self._columns]
                self._decoded = list(zip(*decoded)) if self._nrows else []
        return list(self._decoded)

    def copy(self) -> "ColumnarRelation":
        self._flush()
        dup = type(self).from_codes(
            self.variables, self._columns, self._nrows, self._dict)
        # identical columns -> identical probes; share the cache (a
        # mutation on either side installs a fresh dict, leaving the
        # other's view intact)
        dup._probecache = self._probecache
        return dup

    def extended_with(self, new_cols: Sequence[np.ndarray], count: int
                      ) -> "ColumnarRelation":
        """A new relation holding this one's rows plus ``count``
        appended pre-encoded rows, with every patchable sorted-probe
        cache entry migrated by merge instead of rebuilt.

        This is the append-only fast path of incremental maintenance:
        the caller guarantees the appended rows are not already present
        (so no dedupe pass), and each ``_BatchProbe`` whose packing
        tables still cover the new values is extended in
        O(count + log n) per entry (see
        :meth:`repro.engine.enumerate._BatchProbe.extended`) rather
        than re-argsorted in O(n log n).
        """
        self._flush()
        new_cols = [np.ascontiguousarray(c, dtype=np.int64)
                    for c in new_cols]
        cols = [np.concatenate([old, new])
                for old, new in zip(self._columns, new_cols)]
        out = type(self).from_codes(
            self.variables, cols, self._nrows + count, self._dict)
        for key, probe in self._probecache.items():
            if not (isinstance(key, tuple) and key
                    and key[0] == "batch_probe"):
                continue
            extend = getattr(probe, "extended", None)
            if extend is None:
                continue
            patched = extend([new_cols[p] for p in key[1]], count)
            if patched is not None:
                obs.count("kernel.probe_cache_patches")
                out._probecache[key] = patched
        return out

    def to_varrelation(self):
        """Materialise as a tuple-backed VarRelation."""
        from repro.eval.join import VarRelation

        return VarRelation(self.variables, self.tuples())

    # --------------------------------------------------------------- indexing

    def index_on(self, variables: Sequence[Variable]) -> Dict[Tup, List[Tup]]:
        """Tuple-compatible hash index (decoded); the bridge that lets
        per-tuple enumerators run unchanged on columnar data."""
        vars_key = tuple(variables)
        if vars_key not in self._indexes:
            positions = [self._positions[v] for v in vars_key]
            index: Dict[Tup, List[Tup]] = {}
            for t in self.tuples():
                index.setdefault(tuple(t[p] for p in positions), []).append(t)
            self._indexes[vars_key] = index
        return self._indexes[vars_key]

    def probe(self, variables: Sequence[Variable],
              key: Sequence[Any]) -> List[Tup]:
        return self.index_on(tuple(variables)).get(tuple(key), [])

    def probe_assignment(self, assignment: Dict[Variable, Any]) -> List[Tup]:
        bound = tuple(v for v in self.variables if v in assignment)
        key = tuple(assignment[v] for v in bound)
        return self.probe(bound, key)

    # -------------------------------------------------------------- operators

    def project(self, variables: Sequence[Variable]) -> "ColumnarRelation":
        obs.count("kernel.project")
        self._flush()
        vars_out = tuple(variables)
        cols = [self._columns[self._positions[v]] for v in vars_out]
        dedupe = set(vars_out) != set(self.variables)
        return type(self).from_codes(
            vars_out, cols, self._nrows, self._dict, dedupe=dedupe)

    def select_mask(self, mask: np.ndarray) -> "ColumnarRelation":
        """Rows where ``mask`` is True (length must equal len(self))."""
        self._flush()
        cols = [c[mask] for c in self._columns]
        nrows = len(cols[0]) if cols else int(np.count_nonzero(mask))
        return type(self).from_codes(
            self.variables, cols, nrows, self._dict)

    def semijoin(self, other: Any) -> "ColumnarRelation":
        """Rows of self matching some row of other on the shared
        variables; same degenerate-case semantics as VarRelation."""
        obs.count("kernel.semijoin")
        self._flush()
        other = self._coerce(other)
        shared = [v for v in self.variables if other.has_variable(v)]
        if not shared:
            if len(other):
                return self.copy()
            return type(self)(self.variables, dictionary=self._dict)
        n, m = self._nrows, other._nrows
        self_keys = [self._columns[self._positions[v]] for v in shared]
        other_keys = [other._columns[other._positions[v]] for v in shared]
        joint = [np.concatenate([a, b])
                 for a, b in zip(self_keys, other_keys)]
        ids, card = group_ids(joint, n + m)
        present = np.zeros(card, dtype=bool)
        present[ids[n:]] = True
        keep = present[ids[:n]]
        return self.select_mask(keep)

    def join(self, other: Any) -> "ColumnarRelation":
        """Natural join via sort-merge on joint group ids."""
        obs.count("kernel.join")
        self._flush()
        other = self._coerce(other)
        shared = [v for v in self.variables if other.has_variable(v)]
        extra = [v for v in other.variables if v not in self._positions]
        out_vars = self.variables + tuple(extra)
        n, m = self._nrows, other._nrows
        self_keys = [self._columns[self._positions[v]] for v in shared]
        other_keys = [other._columns[other._positions[v]] for v in shared]
        joint = [np.concatenate([a, b])
                 for a, b in zip(self_keys, other_keys)]
        ids, _card = group_ids(joint, n + m)
        self_ids, other_ids = ids[:n], ids[n:]
        order = np.argsort(other_ids, kind="stable")
        sorted_ids = other_ids[order]
        lo = np.searchsorted(sorted_ids, self_ids, side="left")
        hi = np.searchsorted(sorted_ids, self_ids, side="right")
        counts = hi - lo
        total = int(counts.sum())
        self_idx = np.repeat(np.arange(n, dtype=np.int64), counts)
        run_starts = np.cumsum(counts) - counts  # exclusive prefix sum
        within = np.arange(total, dtype=np.int64) - np.repeat(run_starts,
                                                              counts)
        other_idx = order[np.repeat(lo, counts) + within]
        cols = [c[self_idx] for c in self._columns]
        cols += [other._columns[other._positions[v]][other_idx]
                 for v in extra]
        # distinct inputs joined on equal keys stay distinct: no dedupe
        return type(self).from_codes(
            out_vars, cols, total, self._dict)

    def rename(self, mapping: Dict[Variable, Variable]) -> "ColumnarRelation":
        """Rename columns along ``mapping``; rows whose merged columns
        conflict are dropped (VarRelation semantics)."""
        obs.count("kernel.rename")
        self._flush()
        new_vars: List[Variable] = []
        source_pos: Dict[Variable, int] = {}
        mask = np.ones(self._nrows, dtype=bool)
        for i, v in enumerate(self.variables):
            nv = mapping.get(v, v)
            if nv in source_pos:
                mask &= self._columns[i] == self._columns[source_pos[nv]]
            else:
                source_pos[nv] = i
                new_vars.append(nv)
        cols = [self._columns[source_pos[nv]][mask] for nv in new_vars]
        nrows = int(mask.sum())
        return type(self).from_codes(
            tuple(new_vars), cols, nrows, self._dict, dedupe=True)


def _dedupe_columns(columns: List[np.ndarray], nrows: int
                    ) -> Tuple[List[np.ndarray], int]:
    """Drop duplicate rows, keeping first occurrences in order."""
    if not columns:
        return columns, min(nrows, 1)
    if nrows <= 1:
        return columns, nrows
    ids, _card = group_ids(columns, nrows)
    first = first_occurrences(ids)
    if len(first) == nrows:
        return columns, nrows
    return [c[first] for c in columns], len(first)


def _encode_rows(rows: List[Tup], width: int,
                 dictionary: ValueDictionary) -> List[np.ndarray]:
    """Encode a list of equal-length Python tuples column-wise.

    Integer-only data takes the vectorized path through a single 2-d
    array; anything else (mixed types, strings) is encoded value by
    value to avoid numpy's dtype coercion changing equality semantics.
    """
    if width == 0:
        return []
    arr = None
    try:
        candidate = np.asarray(rows)
        if candidate.ndim == 2 and candidate.dtype.kind in _INT_KINDS:
            arr = candidate
    except (ValueError, TypeError):  # ragged or unorderable rows
        arr = None
    if arr is not None:
        return [dictionary.encode_column(arr[:, j]) for j in range(width)]
    return [dictionary.encode_values([t[j] for t in rows])
            for j in range(width)]


# ------------------------------------------------------- atom materialisation


def encoded_relation_columns(rel, dictionary: ValueDictionary
                             ) -> Tuple[List[np.ndarray], int]:
    """Dictionary-encoded columns of a stored :class:`Relation`.

    Cached on the relation itself, tagged with the relation version the
    encoding was taken at.  A version-stale cache is *delta-patched*
    when incremental maintenance is on and the relation's
    :class:`~repro.data.relation.DeltaLog` still covers the gap —
    appended rows are encoded and concatenated, deleted rows tombstoned
    by one vectorized membership mask — so re-materialising a 100k-tuple
    relation after a 1% delta costs O(delta) encoding plus one O(n)
    gather instead of a full per-value re-encode.

    The cache is the symbol-level share of the encode work, so the
    ``REPRO_SYMBOL_SHARING=0`` kill-switch bypasses it: every atom (and
    every run) then pays its own per-occurrence encode, which is the
    measured baseline of ``repro bench --selfjoin-suite``.
    """
    from repro.engine.symbols import sharing_enabled

    if not sharing_enabled():
        obs.count("kernel.encode_cache_bypasses")
        rows = rel.tuples()
        return _encode_rows(rows, rel.arity, dictionary), len(rows)
    cache = getattr(rel, "_colcache", None)
    version = getattr(rel, "version", None)
    if cache is not None and len(cache) == 4 and cache[0] is dictionary:
        if cache[3] == version:
            obs.count("kernel.encode_cache_hits")
            return cache[1], cache[2]
        patched = _patch_encoded_columns(rel, dictionary, cache, version)
        if patched is not None:
            obs.count("kernel.encode_cache_patches")
            return patched[1], patched[2]
    obs.count("kernel.encode_cache_misses")
    rows = rel.tuples()
    cols = _encode_rows(rows, rel.arity, dictionary)
    try:
        rel._colcache = (dictionary, cols, len(rows), version)
    except AttributeError:  # foreign relation type without the slot
        pass
    return cols, len(rows)


def _patch_encoded_columns(rel, dictionary: ValueDictionary,
                           cache, version):
    """Catch a stale column cache up by replaying the relation's delta
    log, or ``None`` when the gap is not patchable (incremental off,
    overflowed log, zero-arity relation)."""
    from repro.core.plancache import incremental_enabled

    if not incremental_enabled() or version is None or rel.arity == 0:
        return None
    ops = getattr(rel, "deltas_since", lambda _v: None)(cache[3])
    if not ops:
        return None
    old_cols, old_n = cache[1], cache[2]
    # replay the ops against dict-of-tuples semantics: deletions of
    # pre-cache rows tombstone their old position; insertions (including
    # re-inserts of deleted rows) append at the end, preserving the
    # insertion order rel.tuples() would report
    deleted_old: set = set()
    tail: Dict[Tup, None] = {}
    for op, t in ops:
        if op == "+":
            tail[t] = None
        elif t in tail:
            del tail[t]
        else:
            deleted_old.add(t)
    width = rel.arity
    if deleted_old:
        dead_cols = _encode_rows(list(deleted_old), width, dictionary)
        joint = [np.concatenate([oc, dc])
                 for oc, dc in zip(old_cols, dead_cols)]
        ids, card = group_ids(joint, old_n + len(deleted_old))
        dead = np.zeros(card, dtype=bool)
        dead[ids[old_n:]] = True
        keep = ~dead[ids[:old_n]]
        base_cols = [c[keep] for c in old_cols]
        base_n = int(keep.sum())
    else:
        base_cols, base_n = old_cols, old_n
    if tail:
        tail_cols = _encode_rows(list(tail), width, dictionary)
        cols = [np.concatenate([b, t])
                for b, t in zip(base_cols, tail_cols)]
    else:
        cols = base_cols
    nrows = base_n + len(tail)
    if nrows != len(rel):  # bookkeeping drift: rebuild cold
        return None
    new_cache = (dictionary, cols, nrows, version)
    try:
        rel._colcache = new_cache
    except AttributeError:
        return None
    return new_cache


def _masked_atom_columns(atom, cols, nrows,
                         dictionary: ValueDictionary
                         ) -> Tuple[List[np.ndarray], int]:
    """Resolve an atom's constants and repeated variables into selected,
    projected columns (the non-base layout of
    :func:`materialise_atom_columnar`)."""
    variables = atom.variables()
    mask: Optional[np.ndarray] = None
    first_pos: Dict[Variable, int] = {}
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            code = dictionary.code_of(term.value)
            if code is None:
                cond = np.zeros(nrows, dtype=bool)
            else:
                cond = cols[pos] == code
        elif term in first_pos:
            cond = cols[pos] == cols[first_pos[term]]
        else:
            first_pos[term] = pos
            continue
        mask = cond if mask is None else mask & cond
    out_cols = [cols[first_pos[v]] for v in variables]
    if mask is not None:
        out_cols = [c[mask] for c in out_cols]
        nrows = int(mask.sum())
    return out_cols, nrows


def materialise_atom_columnar(db, atom,
                              dictionary: Optional[ValueDictionary] = None,
                              workspace=None, scope: str = "columnar"
                              ) -> ColumnarRelation:
    """Vectorized counterpart of :func:`repro.eval.join.atom_to_varrelation`:
    constants and repeated variables become boolean column masks.

    With a :class:`~repro.engine.symbols.SymbolWorkspace` (and sharing
    on), the result rides the per-symbol entry: all-distinct-variable
    atoms share the entry's base probe cache (one sorted/radix build per
    (symbol, positions, version) across every atom of the symbol), and
    masked atoms share one column set + probe cache per
    constant/dup-variable signature — ``R(x, x)`` and ``R(u, u)`` are
    materialised once.  The selected and projected columns depend only
    on the signature, never on variable names, which is what makes the
    share sound.
    """
    from repro.engine.symbols import atom_signature, sharing_enabled

    # None check, not truthiness: an empty ValueDictionary is falsy but
    # still the dictionary the caller asked to encode into
    dictionary = dictionary if dictionary is not None else default_dictionary()
    rel = db.relation(atom.relation)
    if rel.arity != atom.arity:
        raise SchemaMismatchError(
            f"atom {atom!r} has arity {atom.arity} but relation "
            f"{atom.relation!r} has arity {rel.arity}"
        )
    variables = atom.variables()
    obs.count("kernel.materialise_atom")
    cols, nrows = encoded_relation_columns(rel, dictionary)
    obs.gauge("dictionary.size", len(dictionary))
    sig = atom_signature(atom)
    shared = workspace is not None and sharing_enabled()
    entry = workspace.entry(atom.relation, rel, scope, dictionary) \
        if shared else None
    if sig is None:
        # base layout: the stored columns in term order, no copy; every
        # such atom of the symbol shares the entry's probe cache
        out = ColumnarRelation.from_codes(variables, cols, nrows, dictionary)
        if entry is not None:
            out._probecache = entry.probes
        return out
    if entry is not None:
        out_cols, out_n, probes = entry.variant(
            ("cols", sig),
            lambda: _masked_atom_columns(atom, cols, nrows, dictionary)
            + ({},))
        out = ColumnarRelation.from_codes(variables, out_cols, out_n,
                                          dictionary)
        out._probecache = probes
        return out
    out_cols, out_n = _masked_atom_columns(atom, cols, nrows, dictionary)
    # base rows are distinct, so the selected/projected rows are too
    return ColumnarRelation.from_codes(variables, out_cols, out_n, dictionary)


# --------------------------------------------------------- counting kernel


def count_acyclic_join_columnar(relations: Sequence[ColumnarRelation],
                                tree, charged: Dict[int, Tuple[Variable, ...]],
                                share_vars: Dict[int, Tuple[Variable, ...]],
                                weight_table: Optional[np.ndarray] = None
                                ) -> Any:
    """Vectorized bottom-up counting messages (Theorem 4.21).

    Mirrors the tuple-backed message passing of
    :func:`repro.counting.acq_count.count_full_acyclic_join`: a message is
    ``(key columns, per-key sums)``; child factors are fetched with
    a dense scatter/gather instead of per-tuple dict probes.

    Unweighted (``weight_table=None``) sums run in int64, exact up to
    its range.  With a per-code float64 ``weight_table``
    (:meth:`repro.counting.weighted.WeightFunction.code_table`) each
    node's charged variables contribute a gathered weight factor and
    the messages become float64 — IEEE semantics, see code_table's
    caveat.
    """
    messages: Dict[int, Tuple[List[np.ndarray], np.ndarray]] = {}
    for node in tree.bottom_up():
        rel = relations[node]
        rel._flush()
        n = len(rel)
        if weight_table is None:
            values = np.ones(n, dtype=np.int64)
        else:
            values = np.ones(n, dtype=np.float64)
            for v in charged[node]:
                values = values * weight_table[rel.column(v)]
        for child in tree.children[node]:
            mkeys, mvals = messages[child]
            probe_cols = [rel.column(v) for v in share_vars[child]]
            g = len(mvals)
            joint = [np.concatenate([mk, pc])
                     for mk, pc in zip(mkeys, probe_cols)]
            ids, card = group_ids(joint, g + n)
            factor = np.zeros(card, dtype=mvals.dtype)
            factor[ids[:g]] = mvals
            values = values * factor[ids[g:]]
        shared_cols = [rel.column(v) for v in share_vars[node]]
        ids, card = group_ids(shared_cols, n)
        sums = grouped_sums(ids, card, values)
        uniq, first = np.unique(ids, return_index=True)
        messages[node] = ([c[first] for c in shared_cols], sums[uniq])
    _keys, root_sums = messages[tree.root]
    if len(root_sums) == 0:
        return 0
    root = root_sums[0]
    return float(root) if weight_table is not None else int(root)
