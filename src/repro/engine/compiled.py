"""The ``compiled`` engine tier: radix hash kernels + per-symbol sharing.

A fourth backend (``REPRO_ENGINE=compiled`` / ``--engine compiled``)
layered on the columnar representation.  Two things change relative to
``columnar``:

1. **Kernels.**  The hot semijoin/probe/expand/group-count paths run on
   the radix-partitioned open-addressing tables of
   :mod:`repro.engine.radix`, JIT-compiled with numba when available.
   Without numba every probe structure transparently degrades to the
   sort-based ``_BatchProbe``/``group_ids`` kernels of the columnar
   backend (``REPRO_COMPILED_FALLBACK`` forces either tier), so the
   backend is always selectable and always correct — only the constant
   factors move.

2. **Per-symbol work sharing.**  The columnar backend already encodes a
   stored relation once per symbol (``encoded_relation_columns`` caches
   on the relation); this backend extends the sharing to *probe
   structures*: atoms whose terms are all-distinct variables materialise
   to the base columns in term order, so their probe tables depend only
   on (symbol, column positions) — never on variable names.  The engine
   keeps one position-keyed probe-cache dict per stored relation version
   (LRU, pinned against id reuse exactly like
   :mod:`repro.core.plancache`), and every such atom's materialisation
   shares it.  A self-join query with k atoms over one symbol builds
   each probe table once instead of k times; ``Relation.version`` bumps
   invalidate by changing the cache key.  The
   ``compiled.symbol_cache_hits``/``misses`` counters make the sharing
   observable.

Semantics are unchanged: every operation returns the same rows in the
same order as the columnar backend (the radix tables preserve insertion
order within a key group, matching the stable argsort contract), so the
parity suites compare answer *sequences*, not just sets.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.engine.base import ColumnarEngine
from repro.engine.columnar import (
    ColumnarRelation,
    count_acyclic_join_columnar,
    materialise_atom_columnar,
)
from repro.engine.radix import (
    RADIX_BITS_ENV_VAR,
    RadixTable,
    kernel_tier,
    make_probe,
)
from repro.engine.symbols import SYMBOL_WORKSPACE_LIMIT
from repro.logic.terms import Variable

#: stored relations whose probe caches the engine keeps alive (LRU) —
#: kept as a re-export: the per-symbol cache this tier pioneered now
#: lives in :class:`repro.engine.symbols.SymbolWorkspace`, shared by
#: every backend
SYMBOL_CACHE_LIMIT = SYMBOL_WORKSPACE_LIMIT


class CompiledRelation(ColumnarRelation):
    """A :class:`ColumnarRelation` whose probes are radix hash tables.

    All construction paths (``project``, ``select_mask``, ``join``, …)
    stay in-class via ``type(self)`` dispatch in the base class, so a
    pipeline that starts compiled remains compiled end to end.
    """

    __slots__ = ()

    def batch_probe(self, probe_vars: Sequence[Variable]):
        """Probe structure keyed by *column positions*, not variables.

        Two same-symbol atoms ``R(x, y)`` and ``R(u, v)`` probing their
        first column resolve to the same cache entry — the payoff of the
        shared per-symbol cache installed by
        :meth:`CompiledEngine.materialise_atom`.  The kernel tier is part
        of the key so a mid-process ``REPRO_COMPILED_FALLBACK`` flip
        cannot serve a structure built by the other tier.
        """
        self._flush()
        positions = tuple(self._positions[v] for v in probe_vars)
        cols = self._columns
        nrows = self._nrows
        return self.cached_probe(
            ("radix_probe", positions, kernel_tier()),
            lambda: make_probe([cols[p] for p in positions], nrows))

    def semijoin(self, other: Any) -> "CompiledRelation":
        """Membership via the cached probe table of ``other``.

        Unlike the base kernel (which re-groups both sides with
        ``np.unique`` on every call), the build side is memoised on
        ``other`` — so k semijoins against one relation, or one semijoin
        repeated on a warm plan, build the table once.

        Only worthwhile with the JIT tier: the fallback probe resolves
        by binary search (O(n log n), cache-miss heavy), which loses to
        the columnar engine's O(n) dense ``group_ids`` scatter even on
        a warm probe — so the numpy tier keeps the base kernel and the
        fallback is transparent in speed, not just in answers.
        """
        if kernel_tier() != "numba":
            return super().semijoin(other)
        obs.count("kernel.semijoin")
        self._flush()
        other = self._coerce(other)
        shared = [v for v in self.variables if other.has_variable(v)]
        if not shared:
            if len(other):
                return self.copy()
            return type(self)(self.variables, dictionary=self._dict)
        probe = other.batch_probe(tuple(shared))
        _lo, counts = probe.lookup(
            [self.column(v) for v in shared], self._nrows)
        return self.select_mask(counts > 0)

    def join(self, other: Any) -> "CompiledRelation":
        """Natural join through the cached probe table of ``other``.

        Output rows match the columnar sort-merge join exactly: per left
        row, the matching right rows appear in insertion order (the
        radix table's in-group order contract).  As with ``semijoin``,
        the probe path only pays off JIT-compiled; the numpy tier keeps
        the columnar sort-merge kernel."""
        if kernel_tier() != "numba":
            return super().join(other)
        obs.count("kernel.join")
        self._flush()
        other = self._coerce(other)
        shared = [v for v in self.variables if other.has_variable(v)]
        extra = [v for v in other.variables if v not in self._positions]
        out_vars = self.variables + tuple(extra)
        n = self._nrows
        probe = other.batch_probe(tuple(shared))
        lo, counts = probe.lookup([self.column(v) for v in shared], n)
        total = int(counts.sum())
        self_idx = np.repeat(np.arange(n, dtype=np.int64), counts)
        run_starts = np.cumsum(counts) - counts  # exclusive prefix sum
        within = np.arange(total, dtype=np.int64) - np.repeat(run_starts,
                                                              counts)
        other_idx = probe.order[np.repeat(lo, counts) + within]
        cols = [c[self_idx] for c in self._columns]
        cols += [other.column(v)[other_idx] for v in extra]
        # distinct inputs joined on equal keys stay distinct: no dedupe
        return type(self).from_codes(out_vars, cols, total, self._dict)


# --------------------------------------------------------- counting kernel


def count_acyclic_join_compiled(
        relations: Sequence[ColumnarRelation], tree,
        charged: Dict[int, Tuple[Variable, ...]],
        share_vars: Dict[int, Tuple[Variable, ...]],
        weight_table: Optional[np.ndarray] = None) -> Any:
    """The Theorem 4.21 message pass on radix group tables.

    Mirrors :func:`repro.engine.columnar.count_acyclic_join_columnar`
    node for node; grouping and child-factor probes go through
    :class:`RadixTable` instead of sort-based ``group_ids``.  Per-group
    accumulation order is row order in both kernels, so results are
    bit-identical (including the float64 weighted path).  Falls back to
    the columnar kernel when the numba tier is unavailable.
    """
    if kernel_tier() != "numba":
        return count_acyclic_join_columnar(relations, tree, charged,
                                           share_vars, weight_table)
    messages: Dict[int, Tuple[RadixTable, np.ndarray]] = {}
    for node in tree.bottom_up():
        rel = relations[node]
        rel._flush()
        n = len(rel)
        if weight_table is None:
            values = np.ones(n, dtype=np.int64)
        else:
            values = np.ones(n, dtype=np.float64)
            for v in charged[node]:
                values = values * weight_table[rel.column(v)]
        for child in tree.children[node]:
            mtable, mvals = messages[child]
            if len(mvals) == 0:  # empty child: every extension count is 0
                values = np.zeros(n, dtype=values.dtype)
                continue
            # message keys are distinct (one row per group), so the
            # probe's group id *is* the message row index
            gid = mtable.gids(
                [rel.column(v) for v in share_vars[child]], n)
            valid = gid >= 0
            factor = np.where(
                valid, mvals[np.where(valid, gid, 0)],
                np.zeros(1, dtype=mvals.dtype))
            values = values * factor
        share_pos = tuple(rel.position(v) for v in share_vars[node])
        share_cols = [rel.column(v) for v in share_vars[node]]
        table = rel.cached_probe(
            ("radix_group", share_pos, "numba"),
            lambda: RadixTable(share_cols, n, compiled=True))
        messages[node] = (table, table.group_sums(values))
    _table, root_sums = messages[tree.root]
    if len(root_sums) == 0:
        return 0
    root = root_sums[0]
    return float(root) if weight_table is not None else int(root)


# ------------------------------------------------------------------ engine


class CompiledEngine(ColumnarEngine):
    """The fourth backend: columnar layout, radix kernels, symbol sharing."""

    name = "compiled"

    def __init__(self, dictionary=None):
        # per-symbol sharing (probe caches, masked variants, migration)
        # lives in the base class's SymbolWorkspace since every backend
        # now shares it; this tier contributes the radix probes
        super().__init__(dictionary)
        obs.gauge("compiled.kernel_tier_numba", 1 if kernel_tier() == "numba"
                  else 0)

    def relation(self, variables, tuples=None):
        return CompiledRelation(variables, tuples,
                                dictionary=self.dictionary)

    def symbol_cache_stats(self) -> Dict[str, int]:
        """Introspection for tests/doctor: live per-symbol cache size."""
        return self.workspace.stats()

    def materialise_atom(self, db, atom):
        base = materialise_atom_columnar(db, atom, self.dictionary,
                                         workspace=self.workspace,
                                         scope=self.name)
        out = CompiledRelation.from_codes(
            base.variables, base.code_columns(), len(base), self.dictionary)
        # identical columns -> identical probes; the workspace already
        # picked the right shared dict (base layout, masked variant, or
        # a private one with sharing disabled), and the two classes'
        # probe-key namespaces do not collide
        out._probecache = base._probecache
        return out

    def from_relation(self, rel):
        if isinstance(rel, CompiledRelation) \
                and rel.dictionary is self.dictionary:
            return rel
        if isinstance(rel, ColumnarRelation) \
                and rel.dictionary is self.dictionary:
            out = CompiledRelation.from_codes(
                rel.variables, rel.code_columns(), len(rel), self.dictionary)
            # identical columns -> identical probes (key namespaces of
            # the two classes do not collide)
            out._probecache = rel._probecache
            return out
        return CompiledRelation(rel.variables, iter(rel),
                                dictionary=self.dictionary)

    def plan_key(self) -> Tuple:
        """Folds the kernel tier and fan-out into PlanCache keys: a plan
        whose cached relations carry numba radix tables must not serve a
        process that flipped to the numpy fallback, and vice versa."""
        return super().plan_key() + (
            "kernel", kernel_tier(),
            "radix_bits", os.environ.get(RADIX_BITS_ENV_VAR) or "auto")

    # hook consulted by repro.counting.acq_count (duck-typed, like the
    # parallel engine's parallel_count)
    def count_acyclic(self, relations, tree, charged, share_vars,
                      weight_table=None):
        return count_acyclic_join_compiled(relations, tree, charged,
                                           share_vars, weight_table)


__all__ = [
    "SYMBOL_CACHE_LIMIT",
    "CompiledEngine",
    "CompiledRelation",
    "count_acyclic_join_compiled",
]
