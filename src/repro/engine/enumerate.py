"""Batched columnar answer emission: block-at-a-time join-tree expansion.

The tuple-at-a-time enumerators (:mod:`repro.enumeration.full_acyclic`)
realise the paper's constant-delay bound with one Python-level hash probe
per join-tree node per answer — correct, but interpreter speed dominates.
Segoufin's habilitation frames delay as an *amortised budget*, which
licenses emitting answers in blocks: a block of B answers produced by
O(m) vectorized kernel calls costs O(m / B) interpreted steps per answer.

:class:`BlockIterator` walks the join tree in the same parent-before-child
order as the per-tuple enumerator, but carries a *batch* of partial
assignments as dictionary-encoded int64 columns:

* **preprocessing** builds, per non-root node, a :class:`_BatchProbe`:
  the node's probe columns (variables shared with its parent) are folded
  into one dense int64 key per row (pairwise packing with
  ``np.unique``-densification, so intermediates never overflow), then the
  rows are stably argsorted by key — insertion order is preserved inside
  each key group;
* **expansion** of one batch against a node is the parent-code gather +
  group-offset arithmetic of the columnar join kernel: ``searchsorted``
  the batch keys into the sorted node keys, ``repeat``/``cumsum`` the
  match runs open, and gather both sides' columns — no per-tuple Python;
* batches are re-chunked to at most ``block_size`` rows *before* each
  expansion, so the largest array ever materialised is
  ``block_size * max-fanout-per-node`` — memory stays proportional to the
  block size, not to the output;
* at the leaves the head columns are decoded through the shared
  :class:`~repro.engine.columnar.ValueDictionary` once per block and
  emitted as a list of Python tuples.

On globally consistent (fully reduced) inputs no probe comes back empty,
so every expansion makes output progress — the amortised-delay analogue
of the paper's no-dead-end argument for Theorem 4.6.  The emitted answer
*multiset* equals the tuple-at-a-time enumerator's (the order of answers
may differ: blocks follow key-sorted probe runs, not index insertion
order); ``tests/test_enum_block_parity.py`` checks this property on
random free-connex queries.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.engine.columnar import ColumnarRelation
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree, cached_join_tree
from repro.logic.terms import Variable

Tup = Tuple[Any, ...]

DEFAULT_BLOCK_SIZE = 1024
BLOCK_ENV_VAR = "REPRO_BLOCK_SIZE"


def resolve_block_size(block_size: Optional[int] = None) -> int:
    """Normalise a ``block_size`` argument.

    ``None`` consults the ``REPRO_BLOCK_SIZE`` environment variable and
    falls back to :data:`DEFAULT_BLOCK_SIZE`; zero or a negative value
    disables batching (callers then keep the tuple-at-a-time path).
    """
    if block_size is None:
        env = os.environ.get(BLOCK_ENV_VAR)
        if env:
            try:
                block_size = int(env)
            except ValueError:
                raise ValueError(
                    f"{BLOCK_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            block_size = DEFAULT_BLOCK_SIZE
    return int(block_size)


def batchable(relations: Sequence[Any]) -> bool:
    """Can ``relations`` feed the batched pipeline?  All columnar, one
    shared dictionary (codes are only comparable inside one dictionary)."""
    if not relations:
        return False
    if not all(isinstance(r, ColumnarRelation) for r in relations):
        return False
    dictionary = relations[0].dictionary
    return all(r.dictionary is dictionary for r in relations)


class _BatchProbe:
    """Sorted-key probe structure of one join-tree node.

    Folds the node's probe columns into a single dense int64 key per row
    and argsorts the rows by key, so a batch of probe keys resolves to
    (start, count) runs with two ``searchsorted`` calls per key column.
    """

    __slots__ = ("steps", "order", "sorted_keys", "nrows")

    def __init__(self, key_columns: Sequence[np.ndarray], nrows: int):
        self.nrows = nrows
        # per column: (sorted unique packed-so-far, sorted unique column)
        self.steps: List[Tuple[np.ndarray, np.ndarray]] = []
        packed = np.zeros(nrows, dtype=np.int64)
        for col in key_columns:
            cu, col_dense = np.unique(col, return_inverse=True)
            su, dense = np.unique(packed, return_inverse=True)
            packed = dense.reshape(-1) * max(len(cu), 1) + col_dense.reshape(-1)
            self.steps.append((su, cu))
        self.order = np.argsort(packed, kind="stable")
        self.sorted_keys = packed[self.order]

    def extended(self, new_key_columns: Sequence[np.ndarray], count: int
                 ) -> Optional["_BatchProbe"]:
        """A probe over this structure's rows plus ``count`` appended
        rows, built by merging instead of re-sorting.

        The packing steps are reusable only when every appended value
        (and every intermediate packed key) already occurs in the
        structure's sorted-unique tables — otherwise the densification
        would assign codes the existing ``sorted_keys`` never saw, and
        we return ``None`` so the caller falls back to a full rebuild.
        Appended rows are merged after all equal existing keys
        (``side='right'``), which is exactly where a stable argsort of
        the extended columns would put them, so lookups on the patched
        probe are indistinguishable from a cold build.
        """
        packed = np.zeros(count, dtype=np.int64)
        for (su, cu), col in zip(self.steps, new_key_columns):
            col = np.ascontiguousarray(col, dtype=np.int64)
            if len(cu) == 0 or len(su) == 0:
                return None
            ci = np.searchsorted(cu, col)
            np.clip(ci, 0, len(cu) - 1, out=ci)
            if not (cu[ci] == col).all():
                return None
            si = np.searchsorted(su, packed)
            np.clip(si, 0, len(su) - 1, out=si)
            if not (su[si] == packed).all():
                return None
            packed = si * len(cu) + ci
        pos = np.searchsorted(self.sorted_keys, packed, side="right")
        patched = _BatchProbe.__new__(_BatchProbe)
        patched.nrows = self.nrows + count
        patched.steps = self.steps
        patched.order = np.insert(
            self.order, pos,
            np.arange(self.nrows, self.nrows + count, dtype=np.int64))
        patched.sorted_keys = np.insert(self.sorted_keys, pos, packed)
        return patched

    def lookup(self, key_columns: Sequence[np.ndarray], k: int
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve a batch of ``k`` probe keys to ``(lo, counts)``:
        ``counts[i]`` matching rows starting at sorted position ``lo[i]``."""
        if self.nrows == 0:
            zeros = np.zeros(k, dtype=np.int64)
            return zeros, zeros
        packed = np.zeros(k, dtype=np.int64)
        valid = np.ones(k, dtype=bool)
        for (su, cu), col in zip(self.steps, key_columns):
            if len(cu) == 0:  # pragma: no cover - nrows == 0 handled above
                return np.zeros(k, dtype=np.int64), np.zeros(k, dtype=np.int64)
            ci = np.searchsorted(cu, col)
            np.clip(ci, 0, len(cu) - 1, out=ci)
            valid &= cu[ci] == col
            si = np.searchsorted(su, packed)
            np.clip(si, 0, len(su) - 1, out=si)
            valid &= su[si] == packed
            packed = si * len(cu) + ci
        lo = np.searchsorted(self.sorted_keys, packed, side="left")
        counts = np.searchsorted(self.sorted_keys, packed, side="right") - lo
        counts[~valid] = 0
        return lo.astype(np.int64, copy=False), counts.astype(np.int64,
                                                              copy=False)


def build_probe(rel: ColumnarRelation, probe_vars: Sequence[Variable]):
    """The node's batch probe structure, memoised on the relation.

    The probe's index (the argsort inside ``_BatchProbe``, or the radix
    table of the compiled tier) is the expensive part of probe
    construction; caching it on the relation
    (:meth:`ColumnarRelation.cached_probe`, shared across ``copy()``
    views and invalidated by the relation's version counter) means
    repeated enumerator builds over the same reduced relations — warm
    plan-cache runs, parallel enumeration workers, reruns at a different
    block size — skip the rebuild entirely.  Dispatches through
    :meth:`ColumnarRelation.batch_probe` so the compiled subclass can
    substitute its position-keyed radix table.
    """
    return rel.batch_probe(tuple(probe_vars))


class BlockIterator:
    """Batched enumeration of a consistent acyclic full join.

    Parameters
    ----------
    relations:
        :class:`ColumnarRelation` operands sharing one dictionary; their
        variable sets must form an alpha-acyclic hypergraph.
    head:
        Output variable order; must cover every join variable (genuine
        projections belong to the free-connex preprocessing, which hands
        this class projection-free inputs).
    block_size:
        Target answers per emitted block (the amortisation unit B).
    tree:
        Optional prebuilt join tree (nodes indexing ``relations``).
    reduce:
        Run the full reducer first (True unless the caller guarantees
        global consistency).

    Iterating the instance yields single answers; :meth:`blocks` yields
    lists of up to ``block_size`` answers.  Both are restartable — all
    state below is immutable after construction, so one ``BlockIterator``
    can be shared (e.g. through the plan cache) by many consumers.
    """

    def __init__(self, relations: Sequence[ColumnarRelation],
                 head: Sequence[Variable],
                 block_size: Optional[int] = None,
                 tree: Optional[JoinTree] = None,
                 reduce: bool = True):
        if not batchable(relations):
            raise TypeError(
                "BlockIterator needs ColumnarRelation operands sharing one "
                "ValueDictionary; convert via an engine first"
            )
        self._head = tuple(head)
        self.block_size = max(1, resolve_block_size(block_size))
        relations = list(relations)
        if tree is None:
            h = Hypergraph(
                {v for r in relations for v in r.variables},
                [frozenset(r.variables) for r in relations],
            )
            tree = cached_join_tree(h)
        if reduce:
            from repro.enumeration.full_acyclic import reduce_relations

            relations = reduce_relations(tree, relations)
        self._relations = relations
        self._empty = any(len(r) == 0 for r in relations)
        self._dict = relations[0].dictionary
        self._order = tree.top_down()
        # per level: probe variables (bound so far = shared with parent,
        # by the running-intersection property), fresh output variables,
        # and the sorted probe structure
        self._probe_vars: List[Tuple[Variable, ...]] = []
        self._fresh_vars: List[Tuple[Variable, ...]] = []
        self._probes: List[Optional[_BatchProbe]] = []
        bound: set = set()
        with obs.span("block_iter.build_probes", levels=len(self._order),
                      block_size=self.block_size):
            for level, node in enumerate(self._order):
                rel = relations[node]
                pv = tuple(v for v in rel.variables if v in bound)
                fresh = tuple(v for v in rel.variables if v not in bound)
                bound.update(rel.variables)
                self._probe_vars.append(pv)
                self._fresh_vars.append(fresh)
                if level == 0:
                    self._probes.append(None)
                else:
                    self._probes.append(build_probe(rel, pv))
        missing = [v for v in self._head if v not in bound]
        if missing:
            raise ValueError(
                f"head variables {[v.name for v in missing]} do not occur "
                "in any relation"
            )

    # ------------------------------------------------------------- pipeline

    def _expand(self, level: int, batch: Dict[Variable, np.ndarray],
                nrows: int) -> Tuple[Dict[Variable, np.ndarray], int]:
        """Join one batch of partial assignments against level's node.

        With tracing live, each batch probe gets its own span carrying
        the level and in/out row counts (the per-level "batch probe"
        unit of the amortised-delay argument); disabled, the cost is one
        attribute check per block — not per answer."""
        if not obs.enabled():
            return self._expand_raw(level, batch, nrows)
        with obs.span("block.expand", level=level, rows_in=nrows) as sp:
            obs.count("enum.batch_probes")
            obs.count("enum.rows_probed", nrows)
            out, total = self._expand_raw(level, batch, nrows)
            sp.set("rows_out", total)
            if total == 0:
                # a dead end: on fully reduced inputs every expansion
                # must make progress (Theorem 4.6's no-dead-end
                # invariant) — `repro analyze` flags any occurrence
                obs.count("enum.dead_ends")
            return out, total

    def _expand_raw(self, level: int, batch: Dict[Variable, np.ndarray],
                    nrows: int) -> Tuple[Dict[Variable, np.ndarray], int]:
        node = self._order[level]
        rel = self._relations[node]
        probe = self._probes[level]
        pv = self._probe_vars[level]
        lo, counts = probe.lookup([batch[v] for v in pv], nrows)
        total = int(counts.sum())
        if total == 0:
            return {}, 0
        batch_idx = np.repeat(np.arange(nrows, dtype=np.int64), counts)
        run_starts = np.cumsum(counts) - counts  # exclusive prefix sum
        within = np.arange(total, dtype=np.int64) - np.repeat(run_starts,
                                                              counts)
        rel_rows = probe.order[np.repeat(lo, counts) + within]
        out = {v: col[batch_idx] for v, col in batch.items()}
        for v in self._fresh_vars[level]:
            out[v] = rel.column(v)[rel_rows]
        return out, total

    def _walk(self, level: int, batch: Dict[Variable, np.ndarray],
              nrows: int) -> Iterator[List[Tup]]:
        """Depth-first block expansion: chunk to B rows, expand, recurse."""
        if nrows == 0:
            return
        if level == len(self._order):
            yield from self._emit(batch, nrows)
            return
        block = self.block_size
        for start in range(0, nrows, block):
            stop = min(start + block, nrows)
            chunk = {v: col[start:stop] for v, col in batch.items()}
            expanded, total = self._expand(level, chunk, stop - start)
            yield from self._walk(level + 1, expanded, total)

    def _emit(self, batch: Dict[Variable, np.ndarray], nrows: int
              ) -> Iterator[List[Tup]]:
        """Decode the head columns of a finished batch, block by block."""
        table = self._dict.decode_table()
        code_cols = [batch[v] for v in self._head]
        block = self.block_size
        if not code_cols:  # zero-ary head: nrows copies of ()
            for start in range(0, nrows, block):
                size = min(start + block, nrows) - start
                obs.count("enum.blocks")
                obs.count("enum.answers", size)
                yield [()] * size
            return
        for start in range(0, nrows, block):
            stop = min(start + block, nrows)
            decoded = [table[c[start:stop]].tolist() for c in code_cols]
            obs.count("enum.blocks")
            obs.count("enum.answers", stop - start)
            yield list(zip(*decoded))

    # -------------------------------------------------------------- iteration

    def blocks(self) -> Iterator[List[Tup]]:
        """Yield answer blocks (lists of head tuples) of size <= B.

        Each block's production gap (consumer time excluded: the clock
        restarts after the yield returns) feeds the always-on registry's
        amortised per-answer delay sketch — one ``obs.delay`` per block,
        weight = answers, so the per-answer hot path stays untouched."""
        if self._empty:
            return
        root = self._relations[self._order[0]]
        batch = {v: root.column(v) for v in root.variables}
        clock = time.perf_counter_ns
        last = clock()
        for block in self._walk(1, batch, len(root)):
            obs.delay(clock() - last, len(block))
            yield block
            last = clock()

    def __iter__(self) -> Iterator[Tup]:
        for block in self.blocks():
            yield from block


def block_enumerate(relations: Sequence[ColumnarRelation],
                    head: Sequence[Variable],
                    block_size: Optional[int] = None,
                    reduce: bool = True) -> Iterator[Tup]:
    """Convenience wrapper: flat answer stream over :class:`BlockIterator`."""
    return iter(BlockIterator(relations, head, block_size=block_size,
                              reduce=reduce))
