"""Shared-memory parallel execution: sharded semijoins, counts, enumeration.

The paper's preprocessing passes are linear scans over code columns —
embarrassingly shardable by a hash of the join keys.  This module runs
them across a pool of ``spawn``-ed worker processes with the relation
columns living in one :mod:`multiprocessing.shared_memory` block, so the
only per-task traffic is a small descriptor (column offsets, shard
number) and a small result; the O(|D|) data is mapped zero-copy into
every worker.

Three operations distribute (see :mod:`repro.engine.shard` for the
kernels and the sharding invariant):

* **full reduction** (:func:`parallel_full_reduce`) — each semijoin step
  of the Yannakakis program is split into ``S`` hash-shards of the step's
  join key; workers write survival into a shared ``alive`` mask at
  disjoint row sets, and the driver barriers between steps.  Executing
  the *same step sequence* against masked views reproduces the serial
  reduced relations byte-for-byte (rows keep their original order; a row
  survives a step iff it matches an alive row of the other side — the
  exact serial semantics).
* **counting** (:func:`parallel_count`) — each node of the Theorem 4.21
  message pass is sharded by the hash of its share-with-parent
  variables, so every message key group sits wholly inside one shard and
  the driver merges by concatenation.  The root (empty key) is sharded
  by contiguous row ranges and its partial sums added in shard order —
  exact for int64 counts; for float64 weighted counts this is the one
  place association order can differ from serial (see DESIGN.md).
* **enumeration** (:class:`ParallelBlockIterator`) — the batched block
  walk of :class:`~repro.engine.enumerate.BlockIterator` is sharded by
  contiguous ranges of the join-tree root's rows.  The emitted answer
  stream of the block walk is invariant to how the root batch is
  chunked (each root row's subtree expansion is independent and emitted
  depth-first), so streaming the per-chunk blocks back in ``(chunk,
  seq)`` order yields the *identical* answer sequence to the serial
  iterator — order-preserving shard-merge, which keeps measured delays
  meaningful (DESIGN.md's amortised-delay caveat).

Everything falls back to the serial columnar path below a tunable total
tuple-count threshold (``REPRO_PARALLEL_THRESHOLD``, default
``DEFAULT_PARALLEL_THRESHOLD``): small inputs must not pay pool latency.
Worker count resolves, in decreasing precedence: the ``workers=``
constructor argument, :func:`set_default_workers` (the ``--workers``
CLI flag), the ``REPRO_WORKERS`` environment variable, then
``os.cpu_count()``.

With tracing live, every task runs under a worker-local tracer whose
spans are shipped back and adopted into the driver's trace with the
worker's real pid (:meth:`repro.obs.trace.Tracer.adopt`), so ``repro
explain --trace`` lays the fan-out on per-process tracks.
"""

from __future__ import annotations

import atexit
import os
import queue as queue_mod
import time
import traceback
import weakref
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.engine.base import ColumnarEngine
from repro.engine.shard import (
    count_node_shard,
    merge_count_messages,
    semijoin_mask,
    shard_ids,
)
from repro.errors import ReproError

Tup = Tuple[Any, ...]

WORKERS_ENV_VAR = "REPRO_WORKERS"
THRESHOLD_ENV_VAR = "REPRO_PARALLEL_THRESHOLD"

#: below this many total input tuples the parallel engine runs the plain
#: serial columnar path — pool dispatch costs more than it saves
DEFAULT_PARALLEL_THRESHOLD = 50_000

#: per-step fast path: when one semijoin step (or one count node) is this
#: small, the driver runs the shard kernel inline instead of dispatching
STEP_SERIAL_CUTOFF = 4096

_DEFAULT_WORKERS: Optional[int] = None


class ParallelExecutionError(ReproError):
    """A pool worker failed (the worker's traceback is in the message)."""


def set_default_workers(n: Optional[int]) -> None:
    """Process-wide worker-count override (the ``--workers`` CLI flag);
    None resets to the environment/cpu_count resolution."""
    global _DEFAULT_WORKERS
    if n is not None and n < 1:
        raise ValueError(f"workers must be >= 1, got {n}")
    _DEFAULT_WORKERS = n


def default_workers() -> int:
    """Resolve the worker count: override > ``REPRO_WORKERS`` > cpu count."""
    if _DEFAULT_WORKERS is not None:
        return _DEFAULT_WORKERS
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            n = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if n < 1:
            raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {n}")
        return n
    return os.cpu_count() or 1


def default_threshold() -> int:
    """The serial-fallback tuple-count threshold (env-tunable)."""
    env = os.environ.get(THRESHOLD_ENV_VAR)
    if env:
        try:
            return int(env)
        except ValueError:
            raise ValueError(
                f"{THRESHOLD_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    return DEFAULT_PARALLEL_THRESHOLD


# ------------------------------------------------------------------- arena


_ARENA_REGISTRY: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


class ShmArena:
    """A batch of numpy arrays in one shared-memory block.

    The driver :meth:`publish`-es the code columns (and, for reduction,
    the alive masks) once per parallel operation; workers
    :meth:`attach` by name and get zero-copy views.  The descriptor —
    ``(segment name, [(dtype, length, offset), ...])`` — is tiny and
    picklable, so per-task payloads stay O(schema), not O(data).
    """

    __slots__ = ("shm", "specs", "arrays", "owner", "__weakref__")

    def __init__(self, shm: shared_memory.SharedMemory,
                 specs: List[Tuple[str, int, int]],
                 arrays: List[np.ndarray], owner: bool):
        self.shm = shm
        self.specs = specs
        self.arrays = arrays
        self.owner = owner

    @classmethod
    def publish(cls, arrays: Sequence[np.ndarray]) -> "ShmArena":
        """Copy ``arrays`` into a fresh shared segment (driver side)."""
        specs: List[Tuple[str, int, int]] = []
        offset = 0
        flat = []
        for a in arrays:
            a = np.ascontiguousarray(a)
            flat.append(a.reshape(-1))
            offset = (offset + 7) & ~7  # 8-byte alignment per array
            specs.append((str(a.dtype), int(a.size), offset))
            offset += a.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 8))
        views = cls._views(shm, specs)
        for view, a in zip(views, flat):
            view[:] = a
        arena = cls(shm, specs, views, owner=True)
        _ARENA_REGISTRY.add(arena)
        obs.count("parallel.arena_bytes", shm.size)
        return arena

    @classmethod
    def attach(cls, descriptor: Tuple[str, List[Tuple[str, int, int]]]
               ) -> "ShmArena":
        """Map an existing segment (worker side)."""
        name, specs = descriptor
        # NB: on 3.11 attaching re-registers the segment with the
        # resource tracker; pool workers are spawn children sharing the
        # driver's tracker process and registrations are a set, so this
        # is a no-op there (the 3.13 ``track=False`` flag would make it
        # explicit).  Independent attachers would need an unregister.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, specs, cls._views(shm, specs), owner=False)

    @staticmethod
    def _views(shm: shared_memory.SharedMemory,
               specs: List[Tuple[str, int, int]]) -> List[np.ndarray]:
        return [np.frombuffer(shm.buf, dtype=dtype, count=size, offset=off)
                for dtype, size, off in specs]

    @property
    def descriptor(self) -> Tuple[str, List[Tuple[str, int, int]]]:
        return (self.shm.name, self.specs)

    def dispose(self) -> None:
        """Drop views, close the mapping, unlink if owner (idempotent)."""
        self.arrays = []
        try:
            self.shm.close()
        except BufferError:
            # a live external view (e.g. still bound in the caller's
            # frame) pins the mapping; drop our handles so the mmap
            # unmaps when the last view dies, instead of letting
            # SharedMemory.__del__ retry the close and warn at GC time
            try:
                self.shm._buf = None
                self.shm._mmap = None
            except AttributeError:  # pragma: no cover - stdlib internals
                pass
        if self.owner:
            self.owner = False
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.dispose()
        except Exception:
            pass


@atexit.register
def _dispose_arenas() -> None:  # pragma: no cover - exit path
    for arena in list(_ARENA_REGISTRY):
        try:
            arena.dispose()
        except Exception:
            pass


# -------------------------------------------------------------- arena cache
#
# Publishing an arena copies O(|D|) bytes into shared memory — by far the
# dominant fixed cost of a parallel operation (BENCH_parallel's 0.29x at
# 2 workers was mostly publish + spawn).  Code columns are immutable
# (mutation builds new relations), so an arena over a given set of column
# arrays stays valid for as long as those arrays live: the cache below
# keys on the column arrays' identities — the same identity+length
# fingerprint scheme PlanCache uses for stored relations — and pins the
# arrays against id reuse.  A second operation over the same columns
# (count then reduce in one query, or any warm-plan re-run on the same
# db version) attaches to the already-published segment instead of
# copying again.  Alive masks are *mutated* during reduction, so they
# are never cached: reduction publishes a small separate mask arena per
# call and disposes it in its ``finally``.

#: distinct column sets kept published at once (LRU beyond this)
ARENA_CACHE_LIMIT = 4


class _ArenaCacheEntry:
    __slots__ = ("key", "arena", "pins", "refs", "dead")

    def __init__(self, key: Tuple, arena: ShmArena,
                 pins: List[np.ndarray]):
        self.key = key
        self.arena = arena
        self.pins = pins  # strong refs: cached ids cannot be reused
        self.refs = 0
        self.dead = False


_ARENA_CACHE: "OrderedDict[Tuple, _ArenaCacheEntry]" = OrderedDict()


def _acquire_column_arena(relations: Sequence[Any]
                          ) -> Tuple[_ArenaCacheEntry, List[List[int]]]:
    """The shared-memory arena holding every relation's code columns.

    Returns ``(entry, col_index)`` with ``col_index[r][p]`` the flat
    arena slot of relation ``r``'s column ``p``.  The entry's refcount
    is incremented; callers must pair with :func:`_release_arena`
    (unlink of an evicted segment is deferred to the last release).
    """
    cols_per_rel = [rel.code_columns() for rel in relations]
    flat: List[np.ndarray] = []
    col_index: List[List[int]] = []
    # dedupe by array identity: shared per-symbol materialisations (see
    # repro.engine.symbols) make a k-atom self-join's relations alias the
    # same ndarray objects, so the arena publishes one segment slot per
    # symbol column rather than one per atom occurrence
    slot_of: Dict[int, int] = {}
    for cols in cols_per_rel:
        idx = []
        for c in cols:
            slot = slot_of.get(id(c))
            if slot is None:
                slot = len(flat)
                slot_of[id(c)] = slot
                flat.append(c)
            else:
                obs.count("parallel.arena_shared_columns")
            idx.append(slot)
        col_index.append(idx)
    key = tuple((id(c), len(c)) for c in flat)
    entry = _ARENA_CACHE.get(key)
    if entry is not None:
        _ARENA_CACHE.move_to_end(key)
        entry.refs += 1
        obs.count("parallel.arena_cache_hits")
        return entry, col_index
    obs.count("parallel.arena_cache_misses")
    with obs.span("parallel.arena_publish", arrays=len(flat)):
        arena = ShmArena.publish(flat)
    entry = _ArenaCacheEntry(key, arena, flat)
    entry.refs = 1
    _ARENA_CACHE[key] = entry
    while len(_ARENA_CACHE) > ARENA_CACHE_LIMIT:
        _old_key, old = _ARENA_CACHE.popitem(last=False)
        obs.count("parallel.arena_cache_evictions")
        old.dead = True
        if old.refs <= 0:
            old.arena.dispose()
    return entry, col_index


def _release_arena(entry: Optional[_ArenaCacheEntry]) -> None:
    """Drop one reference; disposes evicted/invalidated segments once
    the last in-flight operation lets go."""
    if entry is None:
        return
    entry.refs -= 1
    if entry.dead and entry.refs <= 0:
        entry.arena.dispose()


def invalidate_arena_cache() -> None:
    """Explicitly drop every cached arena (segments with in-flight
    operations are unlinked at their release).  Called on pool respawn
    and shutdown so a crashed worker generation never pins stale
    shared-memory registrations through the atexit cleanup."""
    while _ARENA_CACHE:
        _key, entry = _ARENA_CACHE.popitem(last=False)
        entry.dead = True
        if entry.refs <= 0:
            entry.arena.dispose()


def arena_cache_stats() -> Dict[str, Any]:
    """Live cache inventory (doctor/metrics surfaces and tests)."""
    return {
        "entries": len(_ARENA_CACHE),
        "bytes": sum(e.arena.shm.size for e in _ARENA_CACHE.values()),
        "refs": {i: e.refs for i, e in enumerate(_ARENA_CACHE.values())},
        "limit": ARENA_CACHE_LIMIT,
    }


# ------------------------------------------------------------------ workers


def _serialise_span(span) -> Dict[str, Any]:
    return {
        "name": span.name,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "tid": span.tid,
        "attrs": dict(span.attrs),
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "children": [_serialise_span(c) for c in span.children],
    }


def _revive_span(data: Dict[str, Any], pid: int):
    from repro.obs.trace import Span

    span = Span(data["name"], data["start_ns"], data["tid"], pid=pid)
    span.end_ns = data["end_ns"] if data["end_ns"] is not None \
        else data["start_ns"]
    span.attrs.update(data["attrs"])
    span.trace_id = data.get("trace_id")
    span.span_id = data.get("span_id")
    span.parent_id = data.get("parent_id")
    span.children = [_revive_span(c, pid) for c in data["children"]]
    return span


def _propagation_ctx() -> Optional[Dict[str, Any]]:
    """The driver's current trace context in wire form, for payloads.

    Called *inside* the dispatch span (``parallel.full_reduce`` /
    ``parallel.count`` / ``parallel.enumerate``), so the context's
    ``span_id`` names that span and adopted worker subtrees graft under
    it.  ``None`` when tracing is off or unsampled — workers then run
    exactly the pre-propagation path."""
    ctx = obs.propagation_context()
    return ctx.to_dict() if ctx is not None else None


def _worker_tracer(ctx_data: Optional[Dict[str, Any]]):
    """A worker-side tracer adopting the driver's propagated trace
    context.  Worker span ids are pid-prefixed, so they cannot collide
    with driver ids, and the worker root span's parent_id points at the
    driver span that dispatched the wave — :meth:`Tracer.adopt` uses it
    to graft the worker subtree into the request tree."""
    from repro.obs.trace import TraceContext, Tracer

    ctx = TraceContext.from_dict(ctx_data) if ctx_data else None
    return Tracer(context=ctx)


def _task_meta(tracer=None) -> Optional[Dict[str, Any]]:
    """Build one result message's metadata, worker side.

    The worker's always-on registry delta (counters/gauges/sketches
    accumulated since the last ship) rides on *every* result — this is
    the piggyback on the existing wave round-trips that lets one driver
    registry cover all engine tiers.  Spans and tracer counters are
    attached only when the task was traced."""
    meta: Dict[str, Any] = {}
    state = obs.registry().drain()
    if state:
        meta["registry"] = state
    if tracer is not None:
        meta["pid"] = os.getpid()
        meta["spans"] = [_serialise_span(s) for s in tracer.roots]
        meta["counters"] = dict(tracer.counters)
    return meta or None


def _absorb_meta(meta: Optional[Dict[str, Any]]) -> None:
    """Fold one task's worker-side telemetry into the driver: registry
    deltas always (merge is order-independent), the trace graft
    (spans + counters, real worker pid) when the driver is tracing."""
    if not meta:
        return
    state = meta.get("registry")
    if state:
        obs.registry().merge_state(state)
    if "spans" not in meta or not obs.enabled():
        return
    tracer = obs.tracer()
    pid = meta["pid"]
    for data in meta["spans"]:
        tracer.adopt(_revive_span(data, pid))
    for name, value in meta["counters"].items():
        tracer.count(name, value)


# worker-process state: attached arenas (LRU) and built enum probes
_WORKER_ARENAS: "OrderedDict[str, ShmArena]" = OrderedDict()
_WORKER_PROBES: "OrderedDict[Tuple[str, int], Any]" = OrderedDict()
_WORKER_ARENA_LIMIT = 8


def _worker_arena(descriptor) -> ShmArena:
    name = descriptor[0]
    arena = _WORKER_ARENAS.get(name)
    if arena is not None:
        _WORKER_ARENAS.move_to_end(name)
        return arena
    arena = ShmArena.attach(descriptor)
    _WORKER_ARENAS[name] = arena
    while len(_WORKER_ARENAS) > _WORKER_ARENA_LIMIT:
        old_name, old = _WORKER_ARENAS.popitem(last=False)
        for key in [k for k in _WORKER_PROBES if k[0] == old_name]:
            del _WORKER_PROBES[key]
        old.dispose()
    return arena


def _task_reduce_step(payload: Dict[str, Any], _results, _tid) -> Dict[str, Any]:
    """One shard of one semijoin step: kill non-matching alive left rows.

    Columns come from the (cached, immutable) column arena; the alive
    masks live in a small per-operation mask arena (``marena``) because
    they are mutated in place."""
    arr = _worker_arena(payload["arena"]).arrays
    masks = _worker_arena(payload["marena"]).arrays
    left_keys = [arr[i] for i in payload["left_keys"]]
    left_mask = masks[payload["left_mask"]]
    right_keys = [arr[i] for i in payload["right_keys"]]
    right_mask = masks[payload["right_mask"]]
    num_shards, shard = payload["shards"], payload["shard"]
    with obs.span("parallel.reduce_step", phase=payload["phase"],
                  node=payload["node"], shard=shard):
        left_sel = left_mask & (shard_ids(left_keys, num_shards) == shard)
        left_idx = np.flatnonzero(left_sel)
        if left_idx.size == 0:
            return {"kept": 0}
        right_sel = right_mask & (shard_ids(right_keys, num_shards) == shard)
        keep = semijoin_mask([c[left_idx] for c in left_keys],
                             [c[right_sel] for c in right_keys])
        left_mask[left_idx[~keep]] = False
        return {"kept": int(np.count_nonzero(keep))}


def _task_count_node(payload: Dict[str, Any], _results, _tid
                     ) -> Tuple[List[np.ndarray], np.ndarray]:
    """One shard of one counting-DP node message."""
    arena = _worker_arena(payload["arena"])
    arr = arena.arrays
    cols = [arr[i] for i in payload["cols"]]
    share_pos = payload["share_pos"]
    with obs.span("parallel.count_node", node=payload["node"],
                  shard=payload["shard"]):
        if payload["range"] is not None:
            start, stop = payload["range"]
            select: Any = slice(start, stop)
        else:
            key_cols = [cols[p] for p in share_pos]
            select = shard_ids(key_cols, payload["shards"]) == payload["shard"]
        return count_node_shard(
            cols, select, share_pos, payload["charged_pos"],
            payload["children"], payload["weight_table"])


def _task_enum_chunk(payload: Dict[str, Any], results, tid) -> Dict[str, Any]:
    """Walk one contiguous root-row range, streaming answer blocks back.

    Blocks go onto the result queue as ``("block", tid, chunk, seq,
    columns)`` messages the moment they exist; the final ``ok`` result
    carries the block count so the driver knows when a chunk is drained.
    """
    arena = _worker_arena(payload["arena"])
    arr = arena.arrays
    plan = payload["plan"]
    chunk, start, stop = payload["chunk"], payload["start"], payload["stop"]
    block = plan["block_size"]
    levels = plan["levels"]
    head_slots = plan["head_slots"]
    arena_name = payload["arena"][0]

    probes = []
    for li, level in enumerate(levels):
        # keyed on (segment, column slots, rows): cached column arenas
        # are immutable, so any plan over the same columns — a different
        # iterator, a warm re-run — reuses the built probe
        key = (arena_name, tuple(level["probe_cols"]), level["nrows"])
        probe = _WORKER_PROBES.get(key)
        if probe is None:
            from repro.engine.enumerate import _BatchProbe

            probe = _BatchProbe([arr[i] for i in level["probe_cols"]],
                                level["nrows"])
            _WORKER_PROBES[key] = probe
            while len(_WORKER_PROBES) > 64:
                _WORKER_PROBES.popitem(last=False)
        probes.append(probe)

    seq = 0

    def emit(batch: List[Optional[np.ndarray]], nrows: int) -> None:
        nonlocal seq
        for s0 in range(0, nrows, block):
            s1 = min(s0 + block, nrows)
            if head_slots:
                out = [np.ascontiguousarray(batch[si][s0:s1])
                       for si in head_slots]
            else:
                out = s1 - s0  # zero-ary head: just the multiplicity
            results.put(("block", tid, chunk, seq, out))
            seq += 1

    def walk(level: int, batch: List[Optional[np.ndarray]],
             nrows: int) -> None:
        if nrows == 0:
            return
        if level == len(levels):
            emit(batch, nrows)
            return
        lv = levels[level]
        probe = probes[level]
        for s0 in range(0, nrows, block):
            s1 = min(s0 + block, nrows)
            piece = [a[s0:s1] if a is not None else None for a in batch]
            lo, counts = probe.lookup(
                [piece[si] for si in lv["probe_slots"]], s1 - s0)
            total = int(counts.sum())
            if total == 0:
                continue
            batch_idx = np.repeat(np.arange(s1 - s0, dtype=np.int64), counts)
            run_starts = np.cumsum(counts) - counts
            within = np.arange(total, dtype=np.int64) - np.repeat(run_starts,
                                                                  counts)
            rel_rows = probe.order[np.repeat(lo, counts) + within]
            out = [a[batch_idx] if a is not None else None for a in piece]
            for ci, si in zip(lv["fresh_cols"], lv["fresh_slots"]):
                out[si] = arr[ci][rel_rows]
            walk(level + 1, out, total)

    with obs.span("parallel.enum_chunk", chunk=chunk, rows=stop - start):
        root_batch: List[Optional[np.ndarray]] = [None] * plan["nslots"]
        for ci, si in zip(plan["root_cols"], plan["root_slots"]):
            root_batch[si] = arr[ci][start:stop]
        walk(0, root_batch, stop - start)
    return {"blocks": seq, "chunk": chunk}


def _task_ping(payload: Dict[str, Any], _results, _tid) -> Dict[str, Any]:
    return {"pid": os.getpid(), "worker": payload.get("worker")}


_HANDLERS = {
    "reduce_step": _task_reduce_step,
    "count_node": _task_count_node,
    "enum_chunk": _task_enum_chunk,
    "ping": _task_ping,
}


def _worker_main(worker_index: int, tasks, results) -> None:
    """Pool worker loop (spawn entry point; must be importable)."""
    obs.disable()  # the driver owns the trace; per-task capture below
    while True:
        msg = tasks.get()
        if msg[0] == "shutdown":
            _WORKER_PROBES.clear()
            while _WORKER_ARENAS:
                _name, arena = _WORKER_ARENAS.popitem()
                arena.dispose()
            break
        kind, tid, payload = msg
        try:
            if kind == "batch":
                # one queue message, several tasks: run them sequentially
                # and ship one result list back (one round-trip per wave)
                if any(p.get("trace") for _k, p in payload):
                    ctx_data = next(
                        (p.get("trace_ctx") for _k, p in payload
                         if p.get("trace_ctx")), None)
                    with obs.capture(_worker_tracer(ctx_data)) as tracer:
                        with obs.span("parallel.worker", worker=worker_index,
                                      task="batch", items=len(payload)):
                            outs = [_HANDLERS[k](p, results, tid)
                                    for k, p in payload]
                    meta = _task_meta(tracer)
                else:
                    outs = [_HANDLERS[k](p, results, tid) for k, p in payload]
                    meta = _task_meta()
                results.put(("ok", tid, outs, meta))
                continue
            handler = _HANDLERS[kind]
            if payload.get("trace"):
                with obs.capture(
                        _worker_tracer(payload.get("trace_ctx"))) as tracer:
                    with obs.span("parallel.worker", worker=worker_index,
                                  task=kind):
                        out = handler(payload, results, tid)
                meta = _task_meta(tracer)
            else:
                out = handler(payload, results, tid)
                meta = _task_meta()
            results.put(("ok", tid, out, meta))
        except Exception:
            results.put(("err", tid, traceback.format_exc(), None))


class WorkerPool:
    """A fixed pool of ``spawn``-ed processes fed by one task queue.

    ``spawn`` (not ``fork``) so workers never inherit the driver's numpy
    thread state, open tracers or shared-memory handles — the only
    coupling is the explicit queues and the arenas workers attach by
    name.  Task ids are monotonically unique across the pool's lifetime;
    receive loops discard messages for unknown ids, so an abandoned
    streaming enumeration cannot poison the next operation.
    """

    def __init__(self, workers: int):
        ctx = mp.get_context("spawn")
        self.workers = workers
        self.tasks = ctx.Queue()
        self.results = ctx.Queue()
        self._next_id = 0
        # never let workers inherit REPRO_TRACE: each would install its
        # own atexit Chrome dump clobbering the driver's trace file
        saved = os.environ.pop(obs.ENV_VAR, None)
        try:
            self.procs = [
                ctx.Process(target=_worker_main, args=(i, self.tasks,
                                                       self.results),
                            daemon=True, name=f"repro-worker-{i}")
                for i in range(workers)
            ]
            for p in self.procs:
                p.start()
        finally:
            if saved is not None:
                os.environ[obs.ENV_VAR] = saved

    def post(self, kind: str, payload: Dict[str, Any]) -> int:
        tid = self._next_id
        self._next_id += 1
        self.tasks.put((kind, tid, payload))
        obs.count("parallel.tasks")
        return tid

    def post_batch(self, items: Sequence[Tuple[str, Dict[str, Any]]]) -> int:
        """One queue message carrying several tasks for one worker, run
        sequentially there; the result payload is the list of per-item
        results in item order."""
        tid = self._next_id
        self._next_id += 1
        self.tasks.put(("batch", tid, list(items)))
        obs.count("parallel.batches")
        obs.count("parallel.tasks", len(items))
        return tid

    def gather_batches(self, batches: Sequence[Sequence[
            Tuple[str, Dict[str, Any]]]]) -> List[List[Any]]:
        """Run one batch per entry (normally one per worker), returning
        per-batch result lists in batch order.  A whole semijoin wave
        costs one queue round-trip per worker instead of one per task."""
        expected: Dict[int, int] = {}
        for i, items in enumerate(batches):
            expected[self.post_batch(items)] = i
        out: List[Any] = [None] * len(batches)
        remaining = len(expected)
        while remaining:
            msg = self.recv()
            if msg[0] == "block":  # stale stream from an abandoned iterator
                continue
            status, tid = msg[0], msg[1]
            if tid not in expected:
                continue
            if status == "err":
                raise ParallelExecutionError(
                    f"parallel batch failed in a pool worker:\n{msg[2]}")
            out[expected.pop(tid)] = msg[2]
            _absorb_meta(msg[3])
            remaining -= 1
        return out

    def recv(self) -> Tuple:
        """Next result message; raises if a worker process died."""
        while True:
            try:
                return self.results.get(timeout=1.0)
            except queue_mod.Empty:
                dead = [p for p in self.procs if not p.is_alive()]
                if dead:
                    raise ParallelExecutionError(
                        f"worker process(es) died: "
                        f"{[p.name for p in dead]}") from None

    def gather(self, tasks: Sequence[Tuple[str, Dict[str, Any]]]) -> List[Any]:
        """Run a fixed task set, returning payloads in task order."""
        expected: Dict[int, int] = {}
        for i, (kind, payload) in enumerate(tasks):
            expected[self.post(kind, payload)] = i
        out: List[Any] = [None] * len(tasks)
        remaining = len(expected)
        while remaining:
            msg = self.recv()
            if msg[0] == "block":  # stale stream from an abandoned iterator
                continue
            status, tid = msg[0], msg[1]
            if tid not in expected:
                continue
            if status == "err":
                raise ParallelExecutionError(
                    f"parallel task failed in a pool worker:\n{msg[2]}")
            out[expected.pop(tid)] = msg[2]
            _absorb_meta(msg[3])
            remaining -= 1
        return out

    def alive(self) -> bool:
        return all(p.is_alive() for p in self.procs)

    def shutdown(self) -> None:
        for _ in self.procs:
            try:
                self.tasks.put(("shutdown",))
            except Exception:  # pragma: no cover - queue already closed
                pass
        for p in self.procs:
            p.join(timeout=2.0)
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
                p.join(timeout=1.0)
        for q in (self.tasks, self.results):
            q.close()
            q.join_thread()


_POOLS: Dict[int, WorkerPool] = {}


def get_pool(workers: int) -> WorkerPool:
    """The shared pool with ``workers`` processes (created on first use,
    respawned if its processes died)."""
    pool = _POOLS.get(workers)
    if pool is not None and pool.alive():
        obs.count("parallel.pool_reuse")
        return pool
    if pool is not None:  # pragma: no cover - crashed pool
        # a dead worker generation may still hold attachments to cached
        # segments; drop the cache so its shared-memory registrations
        # cannot leak into the next generation's lifetime
        obs.count("parallel.pool_respawn")
        obs.event("pool.respawn", workers=workers,
                  dead=[p.name for p in pool.procs if not p.is_alive()])
        invalidate_arena_cache()
        pool.shutdown()
    else:
        obs.count("parallel.pool_spawn")
        obs.event("pool.spawn", workers=workers)
    with obs.span("parallel.pool_start", workers=workers):
        pool = WorkerPool(workers)
        # synchronise on worker imports finishing, so the first real
        # operation's timing is not charged the interpreter start-up
        pool.gather([("ping", {"worker": i, "trace": False})
                     for i in range(workers)])
    _POOLS[workers] = pool
    obs.gauge("parallel.pool_workers", workers)
    return pool


def pool_stats() -> Dict[str, Any]:
    """Live pool inventory (for doctor/metrics surfaces)."""
    return {
        "pools": sorted(_POOLS),
        "alive": {w: p.alive() for w, p in _POOLS.items()},
        "default_workers": default_workers(),
        "threshold": default_threshold(),
        "arena_cache": arena_cache_stats(),
    }


@atexit.register
def shutdown_pools() -> None:
    """Stop every pool and drop cached arenas (atexit; also callable
    from tests)."""
    invalidate_arena_cache()
    for pool in list(_POOLS.values()):
        try:
            pool.shutdown()
        except Exception:  # pragma: no cover - exit path
            pass
    _POOLS.clear()


# --------------------------------------------------------------- operations


def parallel_full_reduce(tree, relations: Sequence[Any], *,
                         engine: "ParallelEngine") -> List[Any]:
    """The Yannakakis semijoin program, hash-sharded in batched waves.

    Serial step order (bottom-up then top-down) is preserved *as
    observed*: consecutive steps are grouped into a wave while they
    touch disjoint state — a step joins the wave only if its written
    relation is neither written nor read by the wave and its read
    relation is not written by it, so every step still sees exactly the
    masks the serial program would have shown it.  One wave is one queue
    round-trip per worker (``WorkerPool.gather_batches``) instead of one
    per step, and the relation columns come from the process-wide arena
    cache — only the small mutable alive masks are published per call.
    The final masked relations are byte-identical to the serial
    reducer's output (same rows, same original order).
    """
    from repro.engine.columnar import ColumnarRelation

    relations = list(relations)
    num_shards = engine.workers
    pool = get_pool(num_shards)
    trace = obs.enabled()

    steps: List[Tuple[int, int, str]] = []
    for node in tree.bottom_up():
        parent = tree.parent[node]
        if parent is not None:
            steps.append((parent, node, "bottom_up"))
    for node in tree.top_down():
        for child in tree.children[node]:
            steps.append((child, node, "top_down"))

    with obs.span("parallel.full_reduce", nodes=len(relations),
                  workers=num_shards, steps=len(steps)):
        trace_ctx = _propagation_ctx()
        entry, col_index = _acquire_column_arena(relations)
        arena = entry.arena
        mask_arena = ShmArena.publish(
            [np.ones(len(r), dtype=bool) for r in relations])
        try:
            mask_views = mask_arena.arrays
            counts = [len(r) for r in relations]

            # the pending wave: per step, one payload per shard
            wave: List[Tuple[int, List[Dict[str, Any]]]] = []
            writers: set = set()
            readers: set = set()

            def flush() -> None:
                if not wave:
                    return
                batches: List[List[Tuple[str, Dict[str, Any]]]] = \
                    [[] for _ in range(num_shards)]
                for _left, payloads in wave:
                    for shard, p in enumerate(payloads):
                        batches[shard].append(("reduce_step", p))
                with obs.span("parallel.reduce_wave", steps=len(wave),
                              workers=num_shards):
                    results = pool.gather_batches(batches)
                obs.count("parallel.waves")
                for i, (left, _payloads) in enumerate(wave):
                    counts[left] = sum(results[s][i]["kept"]
                                       for s in range(num_shards))
                wave.clear()
                writers.clear()
                readers.clear()

            for left, right, phase in steps:
                if left in writers or left in readers or right in writers:
                    flush()
                lrel, rrel = relations[left], relations[right]
                shared = [v for v in lrel.variables
                          if rrel.has_variable(v)]
                if not shared:
                    # serial semantics: semijoin against a nonempty
                    # disjoint relation is the identity; against an
                    # empty one it annihilates
                    if counts[right] == 0:
                        mask_views[left][:] = False
                        counts[left] = 0
                    continue
                if counts[left] == 0:
                    continue
                if counts[right] == 0:
                    mask_views[left][:] = False
                    counts[left] = 0
                    continue
                left_keys = [col_index[left][lrel.position(v)]
                             for v in shared]
                right_keys = [col_index[right][rrel.position(v)]
                              for v in shared]
                if counts[left] + counts[right] <= STEP_SERIAL_CUTOFF:
                    # tiny step, run inline: it conflicts with nothing
                    # pending (checked above), so it commutes with the
                    # open wave
                    lm, rm = mask_views[left], mask_views[right]
                    li = np.flatnonzero(lm)
                    keep = semijoin_mask(
                        [arena.arrays[i][li] for i in left_keys],
                        [arena.arrays[i][rm] for i in right_keys])
                    lm[li[~keep]] = False
                    counts[left] = int(np.count_nonzero(keep))
                    obs.count("parallel.inline_steps")
                    continue
                wave.append((left, [{
                    "arena": arena.descriptor,
                    "marena": mask_arena.descriptor,
                    "left_keys": left_keys,
                    "left_mask": left,
                    "right_keys": right_keys,
                    "right_mask": right,
                    "shard": shard,
                    "shards": num_shards,
                    "phase": phase,
                    "node": left,
                    "trace": trace,
                    "trace_ctx": trace_ctx,
                } for shard in range(num_shards)]))
                writers.add(left)
                readers.add(right)
            flush()
            reduced = []
            for rel, mask in zip(relations, mask_views):
                if isinstance(rel, ColumnarRelation):
                    reduced.append(rel.select_mask(np.array(mask)))
                else:  # pragma: no cover - guarded by should_parallelise
                    raise TypeError("parallel reduce needs columnar inputs")
            return reduced
        finally:
            mask_arena.dispose()
            _release_arena(entry)


def parallel_count(relations: Sequence[Any], tree,
                   charged: Dict[int, Tuple],
                   share_vars: Dict[int, Tuple],
                   weight_table: Optional[np.ndarray] = None, *,
                   engine: "ParallelEngine") -> Any:
    """The Theorem 4.21 counting DP with every node's message sharded.

    Nodes with share variables shard by the key hash (key groups never
    split, so per-key sums are final within a shard and the merge is a
    concatenation); empty-key nodes (the root, cross-product components)
    shard by contiguous row ranges and add partials in shard order.
    """
    num_shards = engine.workers
    pool = get_pool(num_shards)
    trace = obs.enabled()
    with obs.span("parallel.count", nodes=len(relations),
                  workers=num_shards):
        trace_ctx = _propagation_ctx()
        entry, col_index = _acquire_column_arena(relations)
        arena = entry.arena
        try:
            # siblings at one tree depth are independent (a node needs
            # only its children's merged messages), so each depth is one
            # batched wave: worker ``s`` runs shard ``s`` of every node
            # of the level in one queue round-trip
            depth = {tree.root: 0}
            for node in tree.top_down():
                for child in tree.children[node]:
                    depth[child] = depth[node] + 1
            levels: Dict[int, List[int]] = {}
            for node in tree.bottom_up():
                levels.setdefault(depth[node], []).append(node)
            messages: Dict[int, Tuple[List[np.ndarray], np.ndarray]] = {}
            for d in sorted(levels, reverse=True):
                pending: List[Tuple[int, int, int]] = []  # node, nshare, parts
                batches: List[List[Tuple[str, Dict[str, Any]]]] = \
                    [[] for _ in range(num_shards)]
                where: Dict[Tuple[int, int], Tuple[int, int]] = {}
                for node in levels[d]:
                    rel = relations[node]
                    n = len(rel)
                    share_pos = [rel.position(v) for v in share_vars[node]]
                    charged_pos = [rel.position(v) for v in charged[node]]
                    children = [
                        ([rel.position(v) for v in share_vars[c]],
                         messages[c][0], messages[c][1])
                        for c in tree.children[node]
                    ]
                    if n <= STEP_SERIAL_CUTOFF:
                        obs.count("parallel.inline_steps")
                        messages[node] = count_node_shard(
                            rel.code_columns(), None, share_pos, charged_pos,
                            children, weight_table)
                        continue
                    if share_pos:
                        specs = [{"range": None, "shard": s}
                                 for s in range(num_shards)]
                    else:
                        bounds = [n * i // num_shards
                                  for i in range(num_shards + 1)]
                        specs = [{"range": (bounds[i], bounds[i + 1]),
                                  "shard": i}
                                 for i in range(num_shards)
                                 if bounds[i] < bounds[i + 1]]
                    for s, spec in enumerate(specs):
                        where[(node, s)] = (s, len(batches[s]))
                        batches[s].append(("count_node", {
                            "arena": arena.descriptor,
                            "cols": col_index[node],
                            "share_pos": share_pos,
                            "charged_pos": charged_pos,
                            "children": children,
                            "weight_table": weight_table,
                            "shards": num_shards,
                            "node": node,
                            "trace": trace,
                            "trace_ctx": trace_ctx,
                            **spec,
                        }))
                    pending.append((node, len(share_pos), len(specs)))
                if not pending:
                    continue
                # worker s's batch holds shard s of each pending node in
                # pending order; nodes with fewer parts (contiguous
                # ranges) simply stop contributing to higher workers
                rows = {s: i for i, s in enumerate(
                    s for s, b in enumerate(batches) if b)}
                with obs.span("parallel.count_wave", depth=d,
                              nodes=len(pending)):
                    results = pool.gather_batches(
                        [b for b in batches if b])
                obs.count("parallel.waves")
                for node, nshare, nparts in pending:
                    parts = []
                    for s in range(nparts):  # shard order, as the merge needs
                        shard, pos = where[(node, s)]
                        parts.append(results[rows[shard]][pos])
                    messages[node] = merge_count_messages(parts, nshare)
            _keys, root_sums = messages[tree.root]
            if len(root_sums) == 0:
                return 0
            root = root_sums[0]
            return float(root) if weight_table is not None else int(root)
        finally:
            _release_arena(entry)


# -------------------------------------------------------------- enumeration


class ParallelBlockIterator:
    """Order-preserving parallel counterpart of :class:`BlockIterator`.

    The join-tree root's rows are split into ``workers`` contiguous
    chunks; each worker runs the same depth-first block walk over its
    chunk against shared-memory columns and streams answer blocks back;
    the driver replays them in ``(chunk, seq)`` order.  Because the
    serial walk's answer stream is the concatenation of the per-root-row
    streams (chunking only moves *block boundaries*, never answers), the
    flat answer sequence is identical to the serial iterator's — the
    deterministic shard-merge the delay measurements rely on.

    Restartable like the serial iterator: ``blocks()`` re-dispatches the
    chunk tasks; the arena and worker-side probes are built once and
    reused across runs.
    """

    def __init__(self, relations: Sequence[Any], head: Sequence,
                 block_size: Optional[int] = None, tree=None,
                 reduce: bool = True,
                 engine: Optional["ParallelEngine"] = None):
        from repro.engine.enumerate import batchable, resolve_block_size
        from repro.hypergraph.hypergraph import Hypergraph
        from repro.hypergraph.jointree import cached_join_tree

        if engine is None:
            engine = ParallelEngine()
        self._engine = engine
        if not batchable(relations):
            raise TypeError(
                "ParallelBlockIterator needs ColumnarRelation operands "
                "sharing one ValueDictionary; convert via an engine first")
        self._head = tuple(head)
        self.block_size = max(1, resolve_block_size(block_size))
        relations = list(relations)
        if tree is None:
            h = Hypergraph(
                {v for r in relations for v in r.variables},
                [frozenset(r.variables) for r in relations],
            )
            tree = cached_join_tree(h)
        if reduce:
            from repro.enumeration.full_acyclic import reduce_relations

            relations = reduce_relations(tree, relations, engine=engine)
        self._relations = relations
        self._empty = any(len(r) == 0 for r in relations)
        self._dict = relations[0].dictionary
        self._order = tree.top_down()

        # slot assignment: one column slot per variable, bound at the
        # root or at the level introducing it — workers carry batches as
        # slot-indexed array lists, no Variable objects cross processes
        self._slots: Dict[Any, int] = {}
        root_rel = relations[self._order[0]]
        for v in root_rel.variables:
            self._slots[v] = len(self._slots)
        self._levels: List[Dict[str, Any]] = []
        bound = set(root_rel.variables)
        for node in self._order[1:]:
            rel = relations[node]
            pv = tuple(v for v in rel.variables if v in bound)
            fresh = tuple(v for v in rel.variables if v not in bound)
            bound.update(rel.variables)
            for v in fresh:
                self._slots[v] = len(self._slots)
            self._levels.append({"node": node, "probe_vars": pv,
                                 "fresh_vars": fresh})
        missing = [v for v in self._head if v not in bound]
        if missing:
            raise ValueError(
                f"head variables {[v.name for v in missing]} do not occur "
                "in any relation")
        self._entry: Optional[_ArenaCacheEntry] = None
        self._plan: Optional[Dict[str, Any]] = None

    def _ensure_plan(self) -> Tuple[ShmArena, Dict[str, Any]]:
        if self._entry is not None:
            return self._entry.arena, self._plan
        entry, col_index = _acquire_column_arena(self._relations)
        root = self._order[0]
        root_rel = self._relations[root]
        plan = {
            "block_size": self.block_size,
            "nslots": len(self._slots),
            "root_cols": [col_index[root][root_rel.position(v)]
                          for v in root_rel.variables],
            "root_slots": [self._slots[v] for v in root_rel.variables],
            "head_slots": [self._slots[v] for v in self._head],
            "levels": [],
        }
        for level in self._levels:
            rel = self._relations[level["node"]]
            plan["levels"].append({
                "nrows": len(rel),
                "probe_cols": [col_index[level["node"]][rel.position(v)]
                               for v in level["probe_vars"]],
                "probe_slots": [self._slots[v]
                                for v in level["probe_vars"]],
                "fresh_cols": [col_index[level["node"]][rel.position(v)]
                               for v in level["fresh_vars"]],
                "fresh_slots": [self._slots[v]
                                for v in level["fresh_vars"]],
            })
        self._entry, self._plan = entry, plan
        return entry.arena, plan

    def blocks(self) -> Iterator[List[Tup]]:
        """Yield answer blocks in the serial iterator's exact order."""
        if self._empty:
            return
        nroot = len(self._relations[self._order[0]])
        if nroot == 0:
            return
        arena, plan = self._ensure_plan()
        pool = get_pool(self._engine.workers)
        trace = obs.enabled()
        nchunks = min(self._engine.workers, nroot)
        bounds = [nroot * i // nchunks for i in range(nchunks + 1)]
        with obs.span("parallel.enumerate", chunks=nchunks,
                      workers=self._engine.workers,
                      block_size=self.block_size):
            trace_ctx = _propagation_ctx()
            expected: Dict[int, int] = {}
            for chunk in range(nchunks):
                tid = pool.post("enum_chunk", {
                    "arena": arena.descriptor,
                    "plan": plan,
                    "chunk": chunk,
                    "start": bounds[chunk],
                    "stop": bounds[chunk + 1],
                    "trace": trace,
                    "trace_ctx": trace_ctx,
                })
                expected[tid] = chunk
            yield from self._merge_stream(pool, expected, nchunks)

    def _merge_stream(self, pool: WorkerPool, expected: Dict[int, int],
                      nchunks: int) -> Iterator[List[Tup]]:
        table = self._dict.decode_table()
        pending: Dict[Tuple[int, int], Any] = {}
        totals: Dict[int, int] = {}
        next_chunk, next_seq = 0, 0
        # block-gap clock for the always-on delay sketch: one reading per
        # merged block, consumer time excluded (restart after the yield)
        clock = time.perf_counter_ns
        last = clock()
        while next_chunk < nchunks:
            if next_chunk in totals and next_seq >= totals[next_chunk]:
                next_chunk += 1
                next_seq = 0
                continue
            key = (next_chunk, next_seq)
            if key in pending:
                payload = pending.pop(key)
                next_seq += 1
                obs.count("enum.blocks")
                if isinstance(payload, int):  # zero-ary head
                    obs.count("enum.answers", payload)
                    obs.delay(clock() - last, payload)
                    yield [()] * payload
                else:
                    obs.count("enum.answers", len(payload[0]))
                    decoded = [table[c].tolist() for c in payload]
                    obs.delay(clock() - last, len(payload[0]))
                    yield list(zip(*decoded))
                last = clock()
                continue
            msg = pool.recv()
            if msg[0] == "block":
                _tag, tid, chunk, seq, payload = msg
                if tid in expected:
                    pending[(chunk, seq)] = payload
                continue
            status, tid = msg[0], msg[1]
            if tid not in expected:
                continue
            if status == "err":
                raise ParallelExecutionError(
                    f"parallel enumeration failed in a pool worker:\n{msg[2]}")
            totals[expected[tid]] = msg[2]["blocks"]
            _absorb_meta(msg[3])

    def __iter__(self) -> Iterator[Tup]:
        for block in self.blocks():
            yield from block

    def __del__(self) -> None:  # pragma: no cover - GC timing
        entry = getattr(self, "_entry", None)
        if entry is not None:
            try:
                _release_arena(entry)
            except Exception:
                pass


# ------------------------------------------------------------------- engine


class ParallelEngine(ColumnarEngine):
    """The third backend: columnar kernels plus the worker-pool layer.

    Materialisation and per-operator kernels are inherited unchanged from
    :class:`ColumnarEngine` (so any code path the parallel layer does not
    cover behaves exactly like ``columnar``); the full reducer, the
    counting DP and block enumeration consult :meth:`should_parallelise`
    and dispatch to the pool above the tuple-count threshold.
    """

    name = "parallel"

    def __init__(self, dictionary=None, workers: Optional[int] = None,
                 threshold: Optional[int] = None):
        super().__init__(dictionary)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._threshold = threshold

    @property
    def workers(self) -> int:
        return self._workers if self._workers is not None \
            else default_workers()

    @property
    def threshold(self) -> int:
        return self._threshold if self._threshold is not None \
            else default_threshold()

    def plan_key(self) -> Tuple:
        """Folds the shard plan into PlanCache keys: a cached plan built
        for one worker count must not serve a run with another (worker
        probes, chunk bounds and arena layouts all depend on it)."""
        return super().plan_key() + (
            "workers", self.workers, "threshold", self.threshold)

    def should_parallelise(self, relations: Sequence[Any]) -> bool:
        """Pool dispatch is worth it: >1 worker, columnar operands on one
        dictionary, and enough total tuples to beat task latency."""
        from repro.engine.enumerate import batchable

        if self.workers <= 1 or not batchable(relations):
            return False
        total = sum(len(r) for r in relations)
        if total < self.threshold:
            obs.count("parallel.fallback_serial")
            return False
        return True

    # hooks the algorithm layers call (duck-typed: absent on serial engines)

    def parallel_reduce(self, tree, relations: Sequence[Any]) -> List[Any]:
        return parallel_full_reduce(tree, relations, engine=self)

    def parallel_count(self, relations: Sequence[Any], tree, charged,
                       share_vars, weight_table=None) -> Any:
        return parallel_count(relations, tree, charged, share_vars,
                              weight_table, engine=self)

    def parallel_enumerator(self, relations: Sequence[Any], head,
                            block_size=None, tree=None,
                            reduce: bool = True) -> ParallelBlockIterator:
        return ParallelBlockIterator(relations, head, block_size=block_size,
                                     tree=tree, reduce=reduce, engine=self)
