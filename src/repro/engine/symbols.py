"""Engine-wide per-symbol work sharing: the :class:`SymbolWorkspace`.

The unit of repeated work in a self-join query is the relation *symbol*,
not the atom: ``R(x, y), R(y, z), R(z, x)`` names one stored relation
three times, and every per-atom artefact — the dictionary encoding, the
sorted/radix probe structures, the constant/duplicate-variable masks —
depends only on the stored rows and the *positions* involved, never on
the variable names the atom happens to use.  The compiled tier proved
the idea for all-distinct-variable atoms; this module generalises it so
every backend (tuple, columnar, parallel, compiled) shares one build per
(symbol, database version):

* one **entry** per (symbol, stored-relation identity, version), LRU'd
  and pinned exactly like :mod:`repro.core.plancache` (an id can only be
  reused after the pinned object dies, so the key is sound);
* per entry, one shared position-keyed **probe cache** served to every
  all-distinct-variable atom over the symbol (``_BatchProbe`` and radix
  tables key on column positions, so ``R(x, y)`` and ``R(u, v)`` probing
  column 0 resolve to the same structure);
* per entry, a **variant** table keyed by the atom's constant/dup-var
  *signature* — ``R(x, x)`` and ``R(u, u)`` share one masked column set
  (and its own probe cache); ``R(3, x)`` and ``R(3, y)`` likewise —
  closing the gap where masked atoms silently bypassed all sharing.

Because shared materialisations reuse the *same ndarray objects*, the
parallel engine's arena cache (keyed on column identity) collapses to
one published segment per symbol automatically, and the semijoin
coalescing in :mod:`repro.eval.yannakakis` can prove two reduction
passes identical by comparing column identities.

``REPRO_SYMBOL_SHARING=0`` (or :func:`sharing_scope`) force-disables
every layer of the sharing — per-atom encodes, private probe caches, no
coalescing — which is both the parity-test baseline and the measured
"per-atom" arm of ``repro bench --selfjoin-suite``.  The flag folds
into every engine's ``plan_key`` so plans built under one mode never
serve the other.

Counters: ``engine.symbol_workspace_{hits,misses,patches}`` aggregate
across backends; ``<engine>.symbol_cache_{hits,misses,patches}`` keep
the per-backend view (the compiled tier's historical names), and
``engine.symbol_workspace_variant_{hits,misses}`` track the masked-atom
variants.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Optional, Tuple

from repro import obs

#: kill-switch: set to "0" to disable all symbol-level work sharing
SHARING_ENV_VAR = "REPRO_SYMBOL_SHARING"

#: stored-relation versions whose shared artefacts stay alive (LRU)
SYMBOL_WORKSPACE_LIMIT = 64

_SHARING_OVERRIDE: Optional[bool] = None


def sharing_enabled() -> bool:
    """Is per-symbol work sharing on? (env kill-switch + scoped override)"""
    if _SHARING_OVERRIDE is not None:
        return _SHARING_OVERRIDE
    return os.environ.get(SHARING_ENV_VAR, "1") != "0"


@contextmanager
def sharing_scope(enabled: bool):
    """Force sharing on/off for a ``with`` block (bench baselines, parity
    tests); nests, and restores the previous override on exit."""
    global _SHARING_OVERRIDE
    previous = _SHARING_OVERRIDE
    _SHARING_OVERRIDE = bool(enabled)
    try:
        yield
    finally:
        _SHARING_OVERRIDE = previous


def atom_signature(atom) -> Optional[Tuple]:
    """The constant/duplicate-variable layout of an atom, by position.

    ``None`` for the *base* layout (all terms distinct variables): such
    atoms materialise to the stored columns in term order, so they all
    share the entry's base probe cache.  Otherwise a hashable tuple of
    ``('const', pos, value)`` / ``('dup', pos, first_pos)`` markers:
    two atoms with equal signatures select and project exactly the same
    rows and columns regardless of their variable names, so their
    materialisations (and probe caches) are shareable.
    """
    from repro.logic.terms import Constant

    first_pos: Dict[Any, int] = {}
    marks = []
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            marks.append(("const", pos, term.value))
        elif term in first_pos:
            marks.append(("dup", pos, first_pos[term]))
        else:
            first_pos[term] = pos
    return tuple(marks) if marks else None


class _SymbolEntry:
    """Shared artefacts of one (symbol, stored relation, version)."""

    __slots__ = ("rel", "probes", "variants")

    def __init__(self, rel: Any, probes: Optional[Dict[Any, Any]] = None):
        self.rel = rel  # pin: keeps id(rel) from being reused while cached
        #: position-keyed probe cache for the base (all-distinct) layout;
        #: installed as the materialised relations' ``_probecache``
        self.probes: Dict[Any, Any] = probes if probes is not None else {}
        #: signature -> backend-specific payload (masked column sets,
        #: projected row lists, ...) plus their own shared probe caches
        self.variants: Dict[Any, Any] = {}

    def variant(self, key: Any, builder) -> Any:
        """Memoise one masked/derived materialisation on the entry."""
        payload = self.variants.get(key)
        if payload is None:
            obs.count("engine.symbol_workspace_variant_misses")
            payload = builder()
            self.variants[key] = payload
        else:
            obs.count("engine.symbol_workspace_variant_hits")
        return payload


class SymbolWorkspace:
    """Per-engine registry of shared per-symbol artefacts.

    Keys are (symbol, id(stored relation), version); a mutation bumps the
    stored relation's version, making the stale entry unreachable (it
    ages out by LRU, or migrates its patchable probes forward on an
    append-only delta, mirroring the plan cache's refresh path).
    """

    def __init__(self, limit: int = SYMBOL_WORKSPACE_LIMIT):
        self.limit = int(limit)
        self._entries: "OrderedDict[Tuple[str, int, int], _SymbolEntry]" = \
            OrderedDict()

    def entry(self, name: str, rel: Any, scope: str,
              dictionary: Any = None) -> _SymbolEntry:
        """The live entry for ``rel``'s current version (hit), or a fresh
        one seeded from its stale predecessor where sound (miss)."""
        key = (name, id(rel), rel.version)
        found = self._entries.get(key)
        if found is not None:
            self._entries.move_to_end(key)
            obs.count("engine.symbol_workspace_hits")
            obs.count(f"{scope}.symbol_cache_hits")
            return found
        obs.count("engine.symbol_workspace_misses")
        obs.count(f"{scope}.symbol_cache_misses")
        stale = [k for k in self._entries
                 if k[0] == name and k[1] == id(rel)]
        probes: Dict[Any, Any] = {}
        if stale and dictionary is not None:
            probes = self._migrated_probes(
                rel, max(stale, key=lambda k: k[2]), dictionary, scope)
        for k in stale:
            del self._entries[k]
        made = _SymbolEntry(rel, probes)
        self._entries[key] = made
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
        return made

    def _migrated_probes(self, rel: Any, stale_key: Tuple,
                         dictionary: Any, scope: str) -> Dict[Any, Any]:
        """Seed a fresh base probe cache from its stale predecessor.

        Only on an *append-only* delta (every effective op since the
        stale version is an insert, so the new column layout is exactly
        the old rows plus the appended ones at the end): each
        position-keyed probe entry with a merge path (sorted
        ``_BatchProbe``'s ``extended``) is carried forward in
        O(delta + log n).  Radix tables have no merge path and rebuild
        lazily; deletes or delta-log overflow migrate nothing — a cold
        rebuild is always sound.  Masked variants are never migrated:
        appended rows change their selections unpredictably.
        """
        from repro.core.plancache import incremental_enabled

        if not incremental_enabled():
            return {}
        ops = rel.deltas_since(stale_key[2])
        if not ops or any(op != "+" for op, _t in ops):
            return {}
        old_probes = self._entries[stale_key].probes
        added = [t for _op, t in ops]
        columns: Dict[int, Any] = {}
        migrated: Dict[Any, Any] = {}
        for pkey, probe in old_probes.items():
            extend = getattr(probe, "extended", None)
            if extend is None or not (
                    isinstance(pkey, tuple) and pkey
                    and pkey[0] in ("radix_probe", "batch_probe")):
                continue
            cols = []
            for p in pkey[1]:
                col = columns.get(p)
                if col is None:
                    col = dictionary.encode_values([t[p] for t in added])
                    columns[p] = col
                cols.append(col)
            patched = extend(cols, len(added))
            if patched is not None:
                migrated[pkey] = patched
                obs.count("engine.symbol_workspace_patches")
                obs.count(f"{scope}.symbol_cache_patches")
        return migrated

    def stats(self) -> Dict[str, int]:
        """Introspection for tests/doctor: live workspace inventory."""
        return {
            "entries": len(self._entries),
            "probes": sum(len(e.probes) for e in self._entries.values()),
            "variants": sum(len(e.variants)
                            for e in self._entries.values()),
        }

    def clear(self) -> None:
        self._entries.clear()


__all__ = [
    "SHARING_ENV_VAR",
    "SYMBOL_WORKSPACE_LIMIT",
    "SymbolWorkspace",
    "atom_signature",
    "sharing_enabled",
    "sharing_scope",
]
