"""Hash-sharding kernels for the parallel execution layer.

Everything in this module is a pure function over numpy code columns —
no processes, no shared memory, no engine objects — so the exact same
kernels run in the driver (for the below-threshold serial fallback and
for tiny per-step fast paths) and in pool workers (attached to
shared-memory views).  :mod:`repro.engine.parallel` owns the process
plumbing; this module owns the mathematics:

* :func:`shard_ids` — a deterministic multiplicative hash of one or more
  join-key columns onto ``[0, num_shards)``.  Determinism matters twice:
  the driver and every worker must agree on the partition (they hash
  independently), and re-running a query must shard identically so the
  plan cache and the parity suites stay meaningful.  The hash is pure
  uint64 arithmetic — independent of ``PYTHONHASHSEED`` and of the
  process it runs in.
* :func:`semijoin_mask` — the membership kernel of the columnar
  semijoin, factored out so a worker can compute "which of my shard's
  left rows have a right match" without building relation objects.
* :func:`count_node_shard` — one node's share of the counting message
  pass (Theorem 4.21): charged-weight gather, child-factor probes and
  the per-key group-sum, restricted to a row selection.  Sharding by the
  share-variable hash keeps every key group inside one shard, so the
  per-key sums a shard computes are *final* — the driver concatenates
  shard messages instead of re-aggregating them.

The sharding invariant the parallel layer leans on throughout: rows
agreeing on the key columns land in the same shard.  Semijoin survival
of a row depends only on same-key rows of the other side, and a count
message key's sum depends only on same-key rows of the node — so both
operations distribute over shards with no cross-shard communication.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.columnar import group_ids, grouped_sums

# splitmix64 constants: a well-mixed multiplicative finaliser, so codes
# that differ in low bits spread over shards instead of striping
_MIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _mix(h: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser over a uint64 array (wrapping arithmetic)."""
    h = h ^ (h >> np.uint64(30))
    h = h * _MIX_MULT_1
    h = h ^ (h >> np.uint64(27))
    h = h * _MIX_MULT_2
    return h ^ (h >> np.uint64(31))


def shard_ids(columns: Sequence[np.ndarray], num_shards: int) -> np.ndarray:
    """Shard id in ``[0, num_shards)`` per row of the key ``columns``.

    Rows that agree on every key column get the same shard id — in any
    process, on any run.  With no key columns every row goes to shard 0
    (the degenerate no-shared-variable case is handled by the caller).
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if not columns:
        return np.zeros(0, dtype=np.int64)
    n = len(columns[0])
    h = np.full(n, _GOLDEN, dtype=np.uint64)
    for col in columns:
        h = _mix(h ^ col.astype(np.uint64))
    return (h % np.uint64(num_shards)).astype(np.int64)


def semijoin_mask(left_keys: Sequence[np.ndarray],
                  right_keys: Sequence[np.ndarray]) -> np.ndarray:
    """Boolean survival mask of the left rows under a semijoin.

    ``left_keys``/``right_keys`` are parallel lists of key columns (same
    variables, same order).  Exactly the membership step of
    :meth:`ColumnarRelation.semijoin`, minus the relation plumbing.
    """
    n = len(left_keys[0]) if left_keys else 0
    m = len(right_keys[0]) if right_keys else 0
    if n == 0:
        return np.zeros(0, dtype=bool)
    if m == 0:
        return np.zeros(n, dtype=bool)
    joint = [np.concatenate([a, b]) for a, b in zip(left_keys, right_keys)]
    ids, card = group_ids(joint, n + m)
    present = np.zeros(card, dtype=bool)
    present[ids[n:]] = True
    return present[ids[:n]]


# ------------------------------------------------------------- counting shard


def count_node_shard(
    columns: Sequence[np.ndarray],
    select: Optional[np.ndarray],
    share_pos: Sequence[int],
    charged_pos: Sequence[int],
    children: Sequence[Tuple[Sequence[int], List[np.ndarray], np.ndarray]],
    weight_table: Optional[np.ndarray] = None,
) -> Tuple[List[np.ndarray], np.ndarray]:
    """One shard of a node's counting message (Theorem 4.21's DP step).

    Parameters
    ----------
    columns:
        The node relation's full code columns.
    select:
        Row selection for this shard (bool mask or index array); None
        means all rows.
    share_pos / charged_pos:
        Column positions of the share-with-parent and charged variables.
    children:
        Per child: ``(key_positions, message_keys, message_values)`` —
        the child's already-merged message and where its key variables
        sit in this node's schema.
    weight_table:
        Optional per-code float64 weight table (weighted counting).

    Returns the shard's message ``(key_columns, sums)``: per distinct
    share-variable key (first-occurrence order within the shard), the
    sum of weighted extension counts.  Mirrors
    :func:`repro.engine.columnar.count_acyclic_join_columnar` exactly —
    same kernels, same accumulation order within the selection — so
    per-key sums are bit-identical to the serial pass whenever the
    selection keeps whole key groups together.
    """
    if select is None:
        cols = list(columns)
    else:
        cols = [c[select] for c in columns]
    n = len(cols[0]) if cols else 0
    if weight_table is None:
        values = np.ones(n, dtype=np.int64)
    else:
        values = np.ones(n, dtype=np.float64)
        for p in charged_pos:
            values = values * weight_table[cols[p]]
    for key_pos, mkeys, mvals in children:
        probe_cols = [cols[p] for p in key_pos]
        g = len(mvals)
        joint = [np.concatenate([mk, pc])
                 for mk, pc in zip(mkeys, probe_cols)]
        ids, card = group_ids(joint, g + n)
        factor = np.zeros(card, dtype=mvals.dtype)
        factor[ids[:g]] = mvals
        values = values * factor[ids[g:]]
    shared_cols = [cols[p] for p in share_pos]
    ids, card = group_ids(shared_cols, n)
    sums = grouped_sums(ids, card, values)
    uniq, first = np.unique(ids, return_index=True)
    return [c[first] for c in shared_cols], sums[uniq]


def merge_count_messages(
    parts: Sequence[Tuple[List[np.ndarray], np.ndarray]],
    num_keys: int,
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Concatenate per-shard count messages into one node message.

    With ``num_keys > 0`` the shards hold disjoint key sets (hash
    sharding on the key columns), so concatenation *is* the merge.  With
    ``num_keys == 0`` every shard's message is the scalar ``()`` group;
    the partial sums are added in shard order (the one place the
    parallel weighted count can differ from serial float accumulation —
    see DESIGN.md's note).
    """
    parts = [p for p in parts if len(p[1])]
    if not parts:
        empty = np.zeros(0, dtype=np.int64)
        return [empty.copy() for _ in range(num_keys)], empty
    if num_keys == 0:
        total = parts[0][1][:1].copy()
        for _keys, vals in parts[1:]:
            total[0] += vals[0]
        return [], total
    keys = [np.concatenate([p[0][i] for p in parts])
            for i in range(num_keys)]
    vals = np.concatenate([p[1] for p in parts])
    return keys, vals
