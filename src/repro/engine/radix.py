"""Radix-partitioned hash-join kernels for the ``compiled`` engine tier.

The columnar backend's probe structures are sort-based: ``_BatchProbe``
packs the key columns into one dense int64 key per row and argsorts
(:mod:`repro.engine.enumerate`), and the semijoin re-groups both sides
with ``np.unique`` on every call.  Sorting costs an O(log n) factor the
paper's RAM-model bounds do not pay, and ``searchsorted`` probes take a
cache miss per binary-search level.  This module replaces both with the
classic radix-partitioned hash join:

1. **hash** every row with the splitmix64 finaliser already used for
   shard assignment (:mod:`repro.engine.shard` — same constants, same
   per-column fold, so one mixing function serves sharding and joining);
2. **partition** rows by the top ``bits`` hash bits into cache-sized
   buckets (fan-out chosen so a partition's table fits ~L2);
3. build one **open-addressing table** per partition (linear probing,
   load factor <= 1/2), assigning dense group ids in row order;
4. **probe** by re-hashing the probe side and walking only its row's
   partition.

Everything hot is written as a plain-Python loop nest over preallocated
numpy arrays in the numba-compatible subset and JIT-compiled with
``numba.njit`` when numba is importable.  Without numba the loops would
run interpreted — orders of magnitude too slow — so the engine layer
falls back to the existing vectorized sort-based kernels instead
(:class:`~repro.engine.enumerate._BatchProbe` et al.); the uncompiled
kernels stay importable and are exercised on small inputs by the test
suite, which pins the radix algorithm against the sort-based reference
without needing numba in the container.

Knobs
-----
``REPRO_COMPILED_FALLBACK``
    ``auto`` (default: numba when importable, else the numpy fallback),
    ``numpy`` (force the fallback even with numba present — the parity
    escape hatch), ``numba`` (require the JIT; raise when absent).
``REPRO_RADIX_BITS``
    Explicit partition fan-out (``2**bits`` partitions) overriding the
    cache-sized default of :func:`radix_bits`.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.engine.shard import _GOLDEN, _MIX_MULT_1, _MIX_MULT_2

FALLBACK_ENV_VAR = "REPRO_COMPILED_FALLBACK"
RADIX_BITS_ENV_VAR = "REPRO_RADIX_BITS"

#: target rows per partition: 8192 rows of int64 keys ~= 64 KiB per key
#: column, sized so one partition's table stays L2-resident
_PARTITION_TARGET_ROWS = 8192

#: fan-out ceiling — beyond 2**12 partitions the counting-sort passes
#: start paying more than the locality wins
_MAX_RADIX_BITS = 12

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:  # the container default: fall back to numpy kernels
    _numba = None
    HAVE_NUMBA = False


def kernel_tier() -> str:
    """Resolve the active kernel tier: ``"numba"`` or ``"numpy"``.

    Consults ``REPRO_COMPILED_FALLBACK`` on every call so tests and
    subprocesses can flip the tier without touching code (mirrors how
    ``REPRO_ENGINE`` is resolved).
    """
    mode = os.environ.get(FALLBACK_ENV_VAR, "").strip().lower() or "auto"
    if mode == "auto":
        return "numba" if HAVE_NUMBA else "numpy"
    if mode in ("numpy", "fallback"):
        return "numpy"
    if mode in ("numba", "jit"):
        if not HAVE_NUMBA:
            raise ValueError(
                f"{FALLBACK_ENV_VAR}={mode!r} requires numba, which is not "
                "importable in this environment")
        return "numba"
    raise ValueError(
        f"{FALLBACK_ENV_VAR} must be auto, numpy or numba, got {mode!r}")


def radix_bits(nrows: int) -> int:
    """Partition fan-out exponent for a build side of ``nrows`` rows.

    ``REPRO_RADIX_BITS`` overrides; the default grows the fan-out so a
    partition holds about :data:`_PARTITION_TARGET_ROWS` rows, clamped
    to ``[1, _MAX_RADIX_BITS]``.
    """
    env = os.environ.get(RADIX_BITS_ENV_VAR)
    if env:
        try:
            bits = int(env)
        except ValueError:
            raise ValueError(
                f"{RADIX_BITS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        return min(max(bits, 1), 16)
    bits = 1
    while (nrows >> bits) > _PARTITION_TARGET_ROWS and bits < _MAX_RADIX_BITS:
        bits += 1
    return bits


# ----------------------------------------------------------------- kernels
#
# Plain-Python loop nests in the numba-compatible subset; ``_jit`` below
# wraps them with ``numba.njit`` when available.  All uint64 arithmetic
# wraps (callers silence numpy's scalar-overflow warning when running
# the uncompiled versions).


def _hash_rows_kernel(keys: np.ndarray, out: np.ndarray) -> None:
    """splitmix64 per row of a (n, k) int64 key matrix — the same
    per-column ``_mix(h ^ col)`` fold as :func:`repro.engine.shard
    .shard_ids`, one row at a time."""
    n, k = keys.shape
    for i in range(n):
        h = _GOLDEN
        for j in range(k):
            h = h ^ np.uint64(keys[i, j])
            h = h ^ (h >> np.uint64(30))
            h = h * _MIX_MULT_1
            h = h ^ (h >> np.uint64(27))
            h = h * _MIX_MULT_2
            h = h ^ (h >> np.uint64(31))
        out[i] = h


def _build_kernel(keys: np.ndarray, hashes: np.ndarray, bits: int
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                             np.ndarray, np.ndarray, np.ndarray]:
    """Partition + per-partition open-addressing build.

    Returns ``(slots, tstart, group_of, gfirst, gstart, order)``:

    * ``slots``/``tstart`` — the flat table: partition ``p`` owns slots
      ``[tstart[p], tstart[p+1])`` (a power-of-two region, load <= 1/2),
      each slot holding a group id or -1;
    * ``group_of[i]`` — dense group id of row ``i``, assigned in first-
      seen row order (deterministic across runs and processes);
    * ``gfirst[g]`` — representative row of group ``g`` (key equality is
      checked against it, so hash collisions are exact);
    * ``gstart``/``order`` — rows regrouped contiguously per group,
      insertion order preserved inside a group (the same contract as the
      stable argsort in ``_BatchProbe``).
    """
    n, k = keys.shape
    npart = 1 << bits
    shift = np.uint64(64 - bits)
    part = np.empty(n, np.int64)
    psize = np.zeros(npart, np.int64)
    for i in range(n):
        p = np.int64(hashes[i] >> shift)
        part[i] = p
        psize[p] += 1
    tstart = np.empty(npart + 1, np.int64)
    tstart[0] = 0
    for p in range(npart):
        cap = 2
        while cap < 2 * psize[p]:
            cap <<= 1
        tstart[p + 1] = tstart[p] + cap
    slots = np.full(tstart[npart], -1, np.int64)
    group_of = np.empty(n, np.int64)
    gfirst = np.empty(n if n else 1, np.int64)
    gsize = np.zeros(n if n else 1, np.int64)
    ngroups = 0
    for i in range(n):
        base = tstart[part[i]]
        cap = tstart[part[i] + 1] - base
        capmask = np.uint64(cap - 1)
        s = np.int64(hashes[i] & capmask)
        while True:
            g = slots[base + s]
            if g == -1:
                slots[base + s] = ngroups
                gfirst[ngroups] = i
                group_of[i] = ngroups
                gsize[ngroups] += 1
                ngroups += 1
                break
            r = gfirst[g]
            same = True
            for j in range(k):
                if keys[i, j] != keys[r, j]:
                    same = False
                    break
            if same:
                group_of[i] = g
                gsize[g] += 1
                break
            s += 1
            if s == cap:
                s = 0
    gstart = np.empty(ngroups + 1, np.int64)
    gstart[0] = 0
    for g in range(ngroups):
        gstart[g + 1] = gstart[g] + gsize[g]
    fill = gstart[:ngroups].copy()
    order = np.empty(n, np.int64)
    for i in range(n):
        g = group_of[i]
        order[fill[g]] = i
        fill[g] += 1
    return slots, tstart, group_of, gfirst[:ngroups], gstart, order


def _probe_kernel(keys: np.ndarray, slots: np.ndarray, tstart: np.ndarray,
                  gfirst: np.ndarray, bits: int, pkeys: np.ndarray,
                  phashes: np.ndarray, out: np.ndarray) -> None:
    """Group id per probe row (-1 when the key is absent) — walk only
    the probe hash's partition, exact key comparison per candidate."""
    n, k = pkeys.shape
    shift = np.uint64(64 - bits)
    for i in range(n):
        h = phashes[i]
        p = np.int64(h >> shift)
        base = tstart[p]
        cap = tstart[p + 1] - base
        capmask = np.uint64(cap - 1)
        s = np.int64(h & capmask)
        res = np.int64(-1)
        while True:
            g = slots[base + s]
            if g == -1:
                break
            r = gfirst[g]
            same = True
            for j in range(k):
                if pkeys[i, j] != keys[r, j]:
                    same = False
                    break
            if same:
                res = g
                break
            s += 1
            if s == cap:
                s = 0
        out[i] = res
    return None


def _group_sums_kernel(group_of: np.ndarray, values: np.ndarray,
                       sums: np.ndarray) -> None:
    """Scatter-add ``values`` per group (int64 exact / float64 IEEE,
    following the dtype of ``sums``)."""
    for i in range(len(group_of)):
        sums[group_of[i]] += values[i]


_PY_KERNELS = (_hash_rows_kernel, _build_kernel, _probe_kernel,
               _group_sums_kernel)

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _JIT_KERNELS = tuple(
        _numba.njit(cache=True, nogil=True)(fn) for fn in _PY_KERNELS)
else:
    _JIT_KERNELS = _PY_KERNELS


def _kernels(compiled: bool):
    return _JIT_KERNELS if (compiled and HAVE_NUMBA) else _PY_KERNELS


# ------------------------------------------------------------------- table


class RadixTable:
    """Build-side radix hash table over one or more key columns.

    Duck-compatible with :class:`repro.engine.enumerate._BatchProbe`
    (``lookup(key_columns, k) -> (lo, counts)`` into :attr:`order`), plus
    the membership and grouping views the semijoin and counting kernels
    need.  Construction and probing run through the numba kernels when
    ``compiled=True`` (the default resolves :func:`kernel_tier`); the
    uncompiled loops are only meant for small inputs (tests).
    """

    __slots__ = ("nrows", "bits", "keys", "slots", "tstart", "gfirst",
                 "gstart", "group_of", "order", "ngroups", "_compiled")

    def __init__(self, key_columns: Sequence[np.ndarray], nrows: int,
                 compiled: Optional[bool] = None):
        if compiled is None:
            compiled = kernel_tier() == "numba"
        self._compiled = bool(compiled)
        k = len(key_columns)
        keys = np.empty((nrows, k), dtype=np.int64)
        for j, col in enumerate(key_columns):
            keys[:, j] = col
        self.nrows = nrows
        self.keys = keys
        self.bits = radix_bits(nrows)
        hash_rows, build, _probe, _sums = _kernels(self._compiled)
        obs.count("kernel.radix_build")
        obs.count("kernel.radix_build_rows", nrows)
        hashes = np.empty(nrows, dtype=np.uint64)
        with np.errstate(over="ignore"):
            hash_rows(keys, hashes)
            (self.slots, self.tstart, self.group_of, self.gfirst,
             self.gstart, self.order) = build(keys, hashes, self.bits)
        self.ngroups = len(self.gfirst)

    def gids(self, key_columns: Sequence[np.ndarray], k: int) -> np.ndarray:
        """Dense group id per probe row; -1 where the key is absent."""
        hash_rows, _build, probe, _sums = _kernels(self._compiled)
        pkeys = np.empty((k, len(key_columns)), dtype=np.int64)
        for j, col in enumerate(key_columns):
            pkeys[:, j] = col
        phashes = np.empty(k, dtype=np.uint64)
        out = np.empty(k, dtype=np.int64)
        obs.count("kernel.radix_probe_rows", k)
        with np.errstate(over="ignore"):
            hash_rows(pkeys, phashes)
            probe(self.keys, self.slots, self.tstart, self.gfirst,
                  self.bits, pkeys, phashes, out)
        return out

    def member_mask(self, key_columns: Sequence[np.ndarray],
                    k: int) -> np.ndarray:
        """Boolean semijoin-survival mask of ``k`` probe rows."""
        if self.nrows == 0:
            return np.zeros(k, dtype=bool)
        return self.gids(key_columns, k) >= 0

    def lookup(self, key_columns: Sequence[np.ndarray], k: int
               ) -> Tuple[np.ndarray, np.ndarray]:
        """``_BatchProbe``-compatible batch probe: ``counts[i]`` matching
        rows starting at :attr:`order` position ``lo[i]``."""
        if self.nrows == 0:
            zeros = np.zeros(k, dtype=np.int64)
            return zeros, zeros
        g = self.gids(key_columns, k)
        valid = g >= 0
        gc = np.where(valid, g, 0)
        lo = self.gstart[gc]
        counts = np.where(valid, self.gstart[gc + 1] - lo, 0)
        lo = np.where(valid, lo, 0)
        return (lo.astype(np.int64, copy=False),
                counts.astype(np.int64, copy=False))

    def group_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-group sums of ``values`` (one value per build row)."""
        _hash, _build, _probe, sums_kernel = _kernels(self._compiled)
        sums = np.zeros(self.ngroups, dtype=values.dtype)
        sums_kernel(self.group_of, values, sums)
        return sums

    def group_keys(self) -> List[np.ndarray]:
        """One key column set with a single row per group (group order)."""
        return [self.keys[self.gfirst, j]
                for j in range(self.keys.shape[1])]


def make_probe(key_columns: Sequence[np.ndarray], nrows: int):
    """The probe structure for the active kernel tier: a
    :class:`RadixTable` under numba, the sort-based ``_BatchProbe``
    otherwise (the transparent numpy fallback)."""
    if kernel_tier() == "numba":
        return RadixTable(key_columns, nrows, compiled=True)
    from repro.engine.enumerate import _BatchProbe

    return _BatchProbe(key_columns, nrows)


__all__ = [
    "FALLBACK_ENV_VAR",
    "RADIX_BITS_ENV_VAR",
    "HAVE_NUMBA",
    "RadixTable",
    "kernel_tier",
    "make_probe",
    "radix_bits",
]
