"""Engine protocol: how algorithms obtain and convert relations.

An *engine* is a factory for the relation representation the join-tree
algorithms operate on.  Both backends produce objects sharing the
``VarRelation`` duck interface (``variables``, ``position``, ``project``,
``semijoin``, ``join``, ``index_on``, ``probe``, iteration, ``add``), so
:func:`repro.eval.yannakakis.full_reducer`,
:func:`repro.counting.acq_count.count_acq` and the free-connex
preprocessing run unmodified on either; only materialisation and
conversion go through the engine.

* :class:`TupleEngine` — the seed behaviour: Python tuples in hash-indexed
  dicts (:class:`repro.eval.join.VarRelation`).
* :class:`ColumnarEngine` — dictionary-encoded numpy columns
  (:class:`repro.engine.columnar.ColumnarRelation`).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.logic.atoms import Atom
from repro.logic.terms import Variable

Tup = Tuple[Any, ...]


class Engine:
    """Abstract backend: relation construction, materialisation, conversion."""

    name: str = "abstract"

    def relation(self, variables: Sequence[Variable],
                 tuples: Optional[Iterable[Tup]] = None):
        """A fresh relation over ``variables`` holding ``tuples``."""
        raise NotImplementedError

    def materialise_atom(self, db: Database, atom: Atom):
        """Materialise one atom against the database (constants and
        repeated variables resolved)."""
        raise NotImplementedError

    def from_relation(self, rel):
        """Convert a relation of any backend into this backend
        (no copy when it already belongs here)."""
        raise NotImplementedError

    def plan_key(self) -> Tuple[Any, ...]:
        """Extra plan-cache key material beyond the engine name.

        Serial backends contribute nothing; the parallel backend folds
        its worker count and shard configuration in, so plans built for
        one fan-out never serve another (see
        :meth:`repro.engine.parallel.ParallelEngine.plan_key`)."""
        return ()

    def to_varrelation(self, rel):
        """Convert a relation of this backend into a tuple-backed
        :class:`~repro.eval.join.VarRelation`."""
        from repro.eval.join import VarRelation

        if isinstance(rel, VarRelation):
            return rel
        return VarRelation(rel.variables, iter(rel))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class TupleEngine(Engine):
    """The tuple-at-a-time dict backend (exact seed behaviour)."""

    name = "tuple"

    def relation(self, variables: Sequence[Variable],
                 tuples: Optional[Iterable[Tup]] = None):
        from repro.eval.join import VarRelation

        return VarRelation(variables, tuples)

    def materialise_atom(self, db: Database, atom: Atom):
        from repro.eval.join import atom_to_varrelation

        return atom_to_varrelation(db, atom)

    def from_relation(self, rel):
        from repro.eval.join import VarRelation

        if isinstance(rel, VarRelation):
            return rel
        return VarRelation(rel.variables, iter(rel))


class ColumnarEngine(Engine):
    """The numpy columnar backend (see :mod:`repro.engine.columnar`)."""

    name = "columnar"

    def __init__(self, dictionary=None):
        from repro.engine.columnar import default_dictionary

        # explicit None check: a freshly created (empty) ValueDictionary
        # is falsy, and silently swapping it for the process-global one
        # would leak every value the session ever encoded into callers
        # that asked for isolation
        self.dictionary = (dictionary if dictionary is not None
                           else default_dictionary())

    def relation(self, variables: Sequence[Variable],
                 tuples: Optional[Iterable[Tup]] = None):
        from repro.engine.columnar import ColumnarRelation

        return ColumnarRelation(variables, tuples,
                                dictionary=self.dictionary)

    def materialise_atom(self, db: Database, atom: Atom):
        from repro.engine.columnar import materialise_atom_columnar

        return materialise_atom_columnar(db, atom, self.dictionary)

    def from_relation(self, rel):
        from repro.engine.columnar import ColumnarRelation

        if isinstance(rel, ColumnarRelation) and rel.dictionary is self.dictionary:
            return rel
        return ColumnarRelation(rel.variables, iter(rel),
                                dictionary=self.dictionary)
