"""Engine protocol: how algorithms obtain and convert relations.

An *engine* is a factory for the relation representation the join-tree
algorithms operate on.  Both backends produce objects sharing the
``VarRelation`` duck interface (``variables``, ``position``, ``project``,
``semijoin``, ``join``, ``index_on``, ``probe``, iteration, ``add``), so
:func:`repro.eval.yannakakis.full_reducer`,
:func:`repro.counting.acq_count.count_acq` and the free-connex
preprocessing run unmodified on either; only materialisation and
conversion go through the engine.

* :class:`TupleEngine` — the seed behaviour: Python tuples in hash-indexed
  dicts (:class:`repro.eval.join.VarRelation`).
* :class:`ColumnarEngine` — dictionary-encoded numpy columns
  (:class:`repro.engine.columnar.ColumnarRelation`).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.logic.atoms import Atom
from repro.logic.terms import Variable

Tup = Tuple[Any, ...]


class Engine:
    """Abstract backend: relation construction, materialisation, conversion."""

    name: str = "abstract"

    def relation(self, variables: Sequence[Variable],
                 tuples: Optional[Iterable[Tup]] = None):
        """A fresh relation over ``variables`` holding ``tuples``."""
        raise NotImplementedError

    def materialise_atom(self, db: Database, atom: Atom):
        """Materialise one atom against the database (constants and
        repeated variables resolved)."""
        raise NotImplementedError

    def from_relation(self, rel):
        """Convert a relation of any backend into this backend
        (no copy when it already belongs here)."""
        raise NotImplementedError

    def plan_key(self) -> Tuple[Any, ...]:
        """Extra plan-cache key material beyond the engine name.

        Every backend folds the symbol-sharing mode in: a plan whose
        relations carry shared per-symbol probe caches must not serve a
        run with ``REPRO_SYMBOL_SHARING=0`` (and vice versa — the two
        modes are deliberately comparable arms, never interchangeable
        artefacts).  The parallel backend additionally folds its worker
        count and shard configuration in, so plans built for one fan-out
        never serve another (see
        :meth:`repro.engine.parallel.ParallelEngine.plan_key`)."""
        from repro.engine.symbols import sharing_enabled

        return ("symsharing", 1 if sharing_enabled() else 0)

    def to_varrelation(self, rel):
        """Convert a relation of this backend into a tuple-backed
        :class:`~repro.eval.join.VarRelation`."""
        from repro.eval.join import VarRelation

        if isinstance(rel, VarRelation):
            return rel
        return VarRelation(rel.variables, iter(rel))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class TupleEngine(Engine):
    """The tuple-at-a-time dict backend (exact seed behaviour)."""

    name = "tuple"

    def __init__(self):
        from repro.engine.symbols import SymbolWorkspace

        self.workspace = SymbolWorkspace()

    def relation(self, variables: Sequence[Variable],
                 tuples: Optional[Iterable[Tup]] = None):
        from repro.eval.join import VarRelation

        return VarRelation(variables, tuples)

    def materialise_atom(self, db: Database, atom: Atom):
        """Materialise via :func:`repro.eval.join.atom_to_varrelation`;
        atoms with constants or repeated variables share one projected
        row list per (symbol, signature, version) through the workspace,
        so a self-join pair like ``E(x, x), E(y, y)`` pays the selection
        scan once (the per-relation hash structures stay per-atom — they
        key on variable names and are mutated by consumers)."""
        from repro.engine.symbols import atom_signature, sharing_enabled
        from repro.eval.join import VarRelation, atom_to_varrelation

        sig = atom_signature(atom)
        if sig is None or not sharing_enabled():
            return atom_to_varrelation(db, atom)
        rel = db.relation(atom.relation)
        entry = self.workspace.entry(atom.relation, rel, self.name)
        rows = entry.variant(
            ("rows", sig),
            lambda: atom_to_varrelation(db, atom).tuples())
        return VarRelation(atom.variables(), rows)

    def from_relation(self, rel):
        from repro.eval.join import VarRelation

        if isinstance(rel, VarRelation):
            return rel
        return VarRelation(rel.variables, iter(rel))


class ColumnarEngine(Engine):
    """The numpy columnar backend (see :mod:`repro.engine.columnar`)."""

    name = "columnar"

    def __init__(self, dictionary=None):
        from repro.engine.columnar import default_dictionary
        from repro.engine.symbols import SymbolWorkspace

        # explicit None check: a freshly created (empty) ValueDictionary
        # is falsy, and silently swapping it for the process-global one
        # would leak every value the session ever encoded into callers
        # that asked for isolation
        self.dictionary = (dictionary if dictionary is not None
                           else default_dictionary())
        self.workspace = SymbolWorkspace()

    def relation(self, variables: Sequence[Variable],
                 tuples: Optional[Iterable[Tup]] = None):
        from repro.engine.columnar import ColumnarRelation

        return ColumnarRelation(variables, tuples,
                                dictionary=self.dictionary)

    def materialise_atom(self, db: Database, atom: Atom):
        from repro.engine.columnar import materialise_atom_columnar

        return materialise_atom_columnar(db, atom, self.dictionary,
                                         workspace=self.workspace,
                                         scope=self.name)

    def from_relation(self, rel):
        from repro.engine.columnar import ColumnarRelation

        if isinstance(rel, ColumnarRelation) and rel.dictionary is self.dictionary:
            return rel
        return ColumnarRelation(rel.variables, iter(rel),
                                dictionary=self.dictionary)
