"""Pluggable relational engine backends.

The join-tree algorithms (Yannakakis, the full reducer, acyclic counting,
free-connex preprocessing) are written against a small relation duck
interface; this package selects which concrete representation they run
on:

* ``tuple``    — Python tuples in hash-indexed dicts (the default, exact
  seed behaviour);
* ``columnar`` — dictionary-encoded numpy int64 columns with vectorized
  sort/radix-grouped kernels (typically >= 3x faster on 100k-tuple
  acyclic joins; see ``benchmarks/test_bench_engines.py``);
* ``parallel`` — the columnar kernels fanned out over a spawn-based
  worker pool with shared-memory code columns (hash-sharded semijoins,
  counting and order-preserving block enumeration; serial fallback
  below a tuple-count threshold — see :mod:`repro.engine.parallel`);
* ``compiled`` — the columnar layout on radix-partitioned hash kernels,
  JIT-compiled with numba when installed (transparent numpy fallback
  otherwise — ``REPRO_COMPILED_FALLBACK``), with probe structures shared
  per relation *symbol* across self-join atoms (see
  :mod:`repro.engine.compiled` and :mod:`repro.engine.radix`).

Selection, in decreasing precedence:

1. an explicit ``engine=`` argument to the algorithm entry points
   (an :class:`Engine`, or a backend name);
2. :func:`set_engine` / the :func:`use_engine` context manager;
3. the ``REPRO_ENGINE`` environment variable;
4. the default, ``tuple``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from repro.engine.base import ColumnarEngine, Engine, TupleEngine
from repro.engine.compiled import CompiledEngine, CompiledRelation
from repro.engine.enumerate import (
    BLOCK_ENV_VAR,
    DEFAULT_BLOCK_SIZE,
    BlockIterator,
    batchable,
    block_enumerate,
    resolve_block_size,
)
from repro.engine.parallel import (
    DEFAULT_PARALLEL_THRESHOLD,
    THRESHOLD_ENV_VAR,
    WORKERS_ENV_VAR,
    ParallelBlockIterator,
    ParallelEngine,
    default_threshold,
    default_workers,
    pool_stats,
    set_default_workers,
    shutdown_pools,
)
from repro.engine.radix import (
    FALLBACK_ENV_VAR,
    HAVE_NUMBA,
    RADIX_BITS_ENV_VAR,
    kernel_tier,
)

DEFAULT_ENGINE = "tuple"
ENV_VAR = "REPRO_ENGINE"

_REGISTRY: Dict[str, Engine] = {}
_SELECTED: Optional[str] = None


def register_engine(engine: Engine, replace: bool = False) -> Engine:
    """Register a backend under ``engine.name``."""
    if engine.name in _REGISTRY and not replace:
        raise ValueError(f"engine {engine.name!r} is already registered")
    _REGISTRY[engine.name] = engine
    return engine


def available_engines() -> List[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


def get_engine(name: Optional[str] = None) -> Engine:
    """The engine named ``name``, or the currently selected one.

    With no explicit selection the ``REPRO_ENGINE`` environment variable
    is consulted on every call, so tests and subprocesses can flip the
    backend without touching code.
    """
    if name is None:
        name = _SELECTED or os.environ.get(ENV_VAR) or DEFAULT_ENGINE
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None


def set_engine(name: Optional[str]) -> None:
    """Select the process-wide default backend (None resets to env/default)."""
    if name is not None and name not in _REGISTRY:
        raise ValueError(
            f"unknown engine {name!r}; available: {available_engines()}")
    global _SELECTED
    _SELECTED = name


@contextmanager
def use_engine(name: str) -> Iterator[Engine]:
    """Temporarily select a backend."""
    global _SELECTED
    previous = _SELECTED
    set_engine(name)
    try:
        yield _REGISTRY[name]
    finally:
        _SELECTED = previous


def resolve_engine(engine: Union[Engine, str, None]) -> Engine:
    """Normalise an ``engine=`` argument: Engine instance, name, or None
    (= current selection)."""
    if isinstance(engine, Engine):
        return engine
    return get_engine(engine)


register_engine(TupleEngine())
register_engine(ColumnarEngine())
register_engine(ParallelEngine())
register_engine(CompiledEngine())

__all__ = [
    "Engine",
    "TupleEngine",
    "ColumnarEngine",
    "CompiledEngine",
    "CompiledRelation",
    "ParallelEngine",
    "kernel_tier",
    "HAVE_NUMBA",
    "FALLBACK_ENV_VAR",
    "RADIX_BITS_ENV_VAR",
    "ParallelBlockIterator",
    "default_workers",
    "default_threshold",
    "set_default_workers",
    "shutdown_pools",
    "pool_stats",
    "DEFAULT_PARALLEL_THRESHOLD",
    "WORKERS_ENV_VAR",
    "THRESHOLD_ENV_VAR",
    "register_engine",
    "available_engines",
    "get_engine",
    "set_engine",
    "use_engine",
    "resolve_engine",
    "DEFAULT_ENGINE",
    "ENV_VAR",
    "BlockIterator",
    "batchable",
    "block_enumerate",
    "resolve_block_size",
    "DEFAULT_BLOCK_SIZE",
    "BLOCK_ENV_VAR",
]
