"""Finite hypergraphs H = (V, E) with E a multiset of vertex sets.

The hypergraph of a query has the query's variables as vertices and one
hyperedge per atom (Section 4, "Hypergraph of a query").  Several atoms may
share the same variable set, so edges are kept as an indexed list rather
than a set; most structural notions only depend on the set of distinct
edges, and helpers expose both views.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

V = Hashable


class Hypergraph:
    """A hypergraph with vertex set ``vertices`` and an ordered list of edges.

    Isolated vertices (in no edge) are allowed and preserved.
    """

    __slots__ = ("vertices", "edges")

    def __init__(self, vertices: Iterable[V], edges: Iterable[AbstractSet[V]]):
        self.vertices: FrozenSet[V] = frozenset(vertices)
        self.edges: Tuple[FrozenSet[V], ...] = tuple(frozenset(e) for e in edges)
        for e in self.edges:
            if not e <= self.vertices:
                raise ValueError(f"edge {set(e)!r} contains vertices outside the vertex set")

    # ------------------------------------------------------------------ views

    def distinct_edges(self) -> List[FrozenSet[V]]:
        seen: Dict[FrozenSet[V], None] = {}
        for e in self.edges:
            seen.setdefault(e, None)
        return list(seen)

    def edges_containing(self, v: V) -> List[FrozenSet[V]]:
        return [e for e in self.edges if v in e]

    def incidence(self) -> Dict[V, List[int]]:
        """vertex -> indexes of edges containing it."""
        inc: Dict[V, List[int]] = {v: [] for v in self.vertices}
        for i, e in enumerate(self.edges):
            for v in e:
                inc[v].append(i)
        return inc

    def __len__(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        shown = ", ".join("{" + ",".join(map(str, sorted(e, key=str))) + "}" for e in self.edges)
        return f"Hypergraph(|V|={len(self.vertices)}, E=[{shown}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self.vertices == other.vertices and sorted(
            self.edges, key=lambda e: sorted(map(str, e))
        ) == sorted(other.edges, key=lambda e: sorted(map(str, e)))

    def __hash__(self) -> int:
        return hash((self.vertices, frozenset(self.edges)))

    # -------------------------------------------------------------- induction

    def induced_by_edges(self, edge_indexes: Iterable[int]) -> "Hypergraph":
        """H[E'] — sub-hypergraph on a subset of edges; vertex set is the
        union of those edges (paper Section 4.4)."""
        chosen = [self.edges[i] for i in edge_indexes]
        verts: Set[V] = set()
        for e in chosen:
            verts |= e
        return Hypergraph(verts, chosen)

    def induced_by_vertices(self, vertex_subset: Iterable[V]) -> "Hypergraph":
        """H[V'] — restrict each edge to V', dropping emptied edges."""
        keep = frozenset(vertex_subset)
        edges = [e & keep for e in self.edges if e & keep]
        return Hypergraph(keep & self.vertices, edges)

    def with_edge(self, edge: AbstractSet[V]) -> "Hypergraph":
        """H plus one extra edge (used by the free-connex test)."""
        edge = frozenset(edge)
        return Hypergraph(self.vertices | edge, list(self.edges) + [edge])

    # ---------------------------------------------------------------- queries

    def primal_graph(self) -> Dict[V, Set[V]]:
        """Gaifman/primal graph: u ~ v iff they co-occur in some edge."""
        adj: Dict[V, Set[V]] = {v: set() for v in self.vertices}
        for e in self.edges:
            es = list(e)
            for i, u in enumerate(es):
                for w in es[i + 1:]:
                    adj[u].add(w)
                    adj[w].add(u)
        return adj

    def is_independent(self, subset: Iterable[V]) -> bool:
        """No edge contains two distinct vertices of ``subset``."""
        sub = set(subset)
        for e in self.edges:
            if len(e & sub) >= 2:
                return False
        return True

    def connected_components(self) -> List[Set[V]]:
        """Components of the primal graph (isolated vertices are singleton
        components)."""
        adj = self.primal_graph()
        seen: Set[V] = set()
        comps: List[Set[V]] = []
        for start in self.vertices:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            seen.add(start)
            while stack:
                u = stack.pop()
                for w in adj[u]:
                    if w not in seen:
                        seen.add(w)
                        comp.add(w)
                        stack.append(w)
            comps.append(comp)
        return comps

    def is_k_uniform(self, k: int) -> bool:
        """All edges have exactly k vertices (Section 4.1.2)."""
        return all(len(e) == k for e in self.edges)
