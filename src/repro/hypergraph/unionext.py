"""Union extensions for UCQs (Section 4.2, Definitions 4.11-4.12).

A disjunct phi_1 of a union may fail to be free-connex and still be
efficiently enumerable, because another disjunct phi_2 *provides* some of
its variables (Definition 4.11): a body homomorphism h from phi_2 to phi_1
whose relevant preimages are free in phi_2 and S-connex there.  Adding a
fresh atom P(V_1) over the provided variables yields a *union extension*
phi_1^+ which may be free-connex (Definition 4.12); semantically P is
interpreted by the S-projection of phi_2's answers transported along h, so
phi_1^+ is equivalent to phi_1 on every database — Equation (1) of the
paper is the canonical example.

This module finds body homomorphisms, provided variable sets (with their
provenance) and free-connex union extensions; the enumerator in
:mod:`repro.enumeration.ucq_union` materialises the fresh relations and
runs the constant-delay free-connex engine on the extended disjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Variable
from repro.logic.ucq import UnionOfConjunctiveQueries
from repro.hypergraph.freeconnex import is_free_connex, is_s_connex


def body_homomorphisms(src: ConjunctiveQuery, dst: ConjunctiveQuery
                       ) -> Iterator[Dict[Variable, Variable]]:
    """All body homomorphisms h : var(src) -> var(dst).

    h must map every atom R(z) of ``src`` onto an atom R(h(z)) of ``dst``
    (constants must match exactly).  Backtracking over the atoms of src;
    the search space is parameter-sized (query sizes only).
    """
    dst_by_relation: Dict[str, List[Atom]] = {}
    for atom in dst.atoms:
        dst_by_relation.setdefault(atom.relation, []).append(atom)

    src_atoms = list(src.atoms)

    def extend(i: int, mapping: Dict[Variable, Variable]) -> Iterator[Dict[Variable, Variable]]:
        if i == len(src_atoms):
            yield dict(mapping)
            return
        atom = src_atoms[i]
        for candidate in dst_by_relation.get(atom.relation, []):
            if candidate.arity != atom.arity:
                continue
            new_bindings: List[Variable] = []
            ok = True
            for s_term, d_term in zip(atom.terms, candidate.terms):
                if isinstance(s_term, Constant):
                    if s_term != d_term:
                        ok = False
                        break
                    continue
                if isinstance(d_term, Constant):
                    ok = False  # variables must map to variables
                    break
                bound = mapping.get(s_term)
                if bound is None:
                    mapping[s_term] = d_term
                    new_bindings.append(s_term)
                elif bound is not d_term:
                    ok = False
                    break
            if ok:
                yield from extend(i + 1, mapping)
            for v in new_bindings:
                del mapping[v]

    yield from extend(0, {})


@dataclass(frozen=True)
class ProvidedSet:
    """A provided variable set with its provenance.

    Attributes
    ----------
    variables:
        V_1 subset of var(target), in a deterministic order.
    provider_index:
        Which disjunct of the union provides it.
    homomorphism:
        The body homomorphism h : var(provider) -> var(target).
    s_vars:
        The S with h^{-1}(V_1) <= S <= free(provider), provider S-connex.
    """

    variables: Tuple[Variable, ...]
    provider_index: int
    homomorphism: Tuple[Tuple[Variable, Variable], ...]
    s_vars: FrozenSet[Variable]
    # True when the provider is the (already resolved) union extension of
    # disjunct provider_index rather than the original disjunct — the
    # recursive clause of Definition 4.12.  Drives materialisation order.
    from_extension: bool = False

    def hom_dict(self) -> Dict[Variable, Variable]:
        return dict(self.homomorphism)


def provided_sets(provider: ConjunctiveQuery, provider_index: int,
                  target: ConjunctiveQuery,
                  from_extension: bool = False) -> List[ProvidedSet]:
    """All maximal variable sets ``provider`` provides to ``target``.

    For each body homomorphism h and each S <= free(provider) with the
    provider S-connex, the set V_1 = h(S) is provided when no quantified
    variable of the provider maps into it.  Subsets of a provided set are
    provided too (shrink S), so only the sets arising from maximal valid S
    are returned.
    """
    free = sorted(provider.free_variables(), key=lambda v: v.name)
    quantified = provider.existential_variables()
    results: Dict[Tuple[Variable, ...], ProvidedSet] = {}
    for hom in body_homomorphisms(provider, target):
        # iterate subsets of free variables, larger first, keeping maximal
        for r in range(len(free), 0, -1):
            for subset in combinations(free, r):
                s = frozenset(subset)
                image = frozenset(hom[v] for v in s)
                # h^{-1}(V_1) must avoid quantified provider variables
                if any(hom[q] in image for q in quantified):
                    continue
                if not is_s_connex(provider, s):
                    continue
                key = tuple(sorted(image, key=lambda v: v.name))
                if key not in results:
                    results[key] = ProvidedSet(
                        variables=key,
                        provider_index=provider_index,
                        homomorphism=tuple(sorted(hom.items(),
                                                  key=lambda kv: kv[0].name)),
                        s_vars=s,
                        from_extension=from_extension,
                    )
    return list(results.values())


@dataclass
class DisjunctExtension:
    """A (possibly trivial) union extension of one disjunct.

    ``extended`` is the disjunct with fresh atoms P_0, P_1, ... appended;
    ``fresh`` maps each fresh relation name to the :class:`ProvidedSet`
    whose transported answers interpret it; ``rank`` is the resolution
    round (providers always come from strictly earlier ranks or are
    original disjuncts).
    """

    original: ConjunctiveQuery
    extended: ConjunctiveQuery
    fresh: Dict[str, ProvidedSet]
    rank: int = 0

    def is_trivial(self) -> bool:
        return not self.fresh


def _try_extend(target: ConjunctiveQuery, index: int,
                candidates: List[ProvidedSet], max_added_atoms: int
                ) -> Optional[DisjunctExtension]:
    """Search candidate subsets making the target free-connex."""
    candidates = sorted(candidates,
                        key=lambda p: (-len(p.variables),
                                       [v.name for v in p.variables]))
    for r in range(1, min(max_added_atoms, len(candidates)) + 1):
        for chosen in combinations(candidates, r):
            extended = target
            fresh: Dict[str, ProvidedSet] = {}
            for k, prov in enumerate(chosen):
                name = f"__P{index}_{k}"
                extended = extended.with_extra_atom(Atom(name, prov.variables))
                fresh[name] = prov
            if is_free_connex(extended):
                return DisjunctExtension(target, extended, fresh)
    return None


def find_free_connex_extension(ucq: UnionOfConjunctiveQueries, index: int,
                               max_added_atoms: int = 3
                               ) -> Optional[DisjunctExtension]:
    """A free-connex union extension of disjunct ``index``, if one exists
    with the *original* disjuncts as providers (one recursion level; the
    full recursive search of Definition 4.12 is
    :func:`union_extension_plan`)."""
    target = ucq.disjuncts[index]
    if is_free_connex(target):
        return DisjunctExtension(target, target, {})
    candidates: List[ProvidedSet] = []
    for j, provider in enumerate(ucq.disjuncts):
        if j == index:
            continue
        candidates.extend(provided_sets(provider, j, target))
    return _try_extend(target, index, candidates, max_added_atoms)


def is_free_connex_ucq(ucq: UnionOfConjunctiveQueries) -> bool:
    """Definition 4.12: every disjunct admits a free-connex union
    extension (providers may themselves be extensions — the recursive
    clause)."""
    return union_extension_plan(ucq) is not None


def union_extension_plan(ucq: UnionOfConjunctiveQueries,
                         max_added_atoms: int = 3
                         ) -> Optional[List[DisjunctExtension]]:
    """Free-connex extensions for all disjuncts, or None when some
    disjunct has none.

    Resolution proceeds in rounds and resolved *extensions* join the
    provider pool (Definition 4.12's recursive clause);
    ``DisjunctExtension.rank`` records the round, which is the
    materialisation order for the fresh relations.  Note the recursion's
    reach here is limited: a body homomorphism must map every provider
    atom — including its fresh P-atoms — into the target, so extension
    providers only fire against targets that already carry matching
    atoms.  The full Carmeli-Kroell recursion (extending targets
    incrementally and matching fresh atoms across extensions) is future
    work; the paper itself notes the complete UCQ classification is open.
    """
    n = len(ucq.disjuncts)
    plan: List[Optional[DisjunctExtension]] = [None] * n
    # providers: original disjuncts always; resolved extensions once known
    for i, d in enumerate(ucq.disjuncts):
        if is_free_connex(d):
            ext = DisjunctExtension(d, d, {})
            ext.rank = 0
            plan[i] = ext
    rank = 1
    changed = True
    while changed and any(p is None for p in plan):
        changed = False
        for i in range(n):
            if plan[i] is not None:
                continue
            target = ucq.disjuncts[i]
            candidates: List[ProvidedSet] = []
            for j in range(n):
                if j == i:
                    continue
                candidates.extend(provided_sets(ucq.disjuncts[j], j, target))
                resolved = plan[j]
                if resolved is not None and not resolved.is_trivial():
                    # the recursive clause: the extension provides too
                    candidates.extend(
                        provided_sets(resolved.extended, j, target,
                                      from_extension=True))
            ext = _try_extend(target, i, candidates, max_added_atoms)
            if ext is not None:
                ext.rank = rank
                plan[i] = ext
                changed = True
        rank += 1
    if any(p is None for p in plan):
        return None
    return plan  # type: ignore[return-value]
