"""Hypergraph machinery: join trees, acyclicity notions, free-connexity,
S-components and star sizes, union extensions.

This subpackage implements every structural notion Section 4 of the paper
builds on:

* :mod:`~repro.hypergraph.hypergraph` — the query hypergraph;
* :mod:`~repro.hypergraph.jointree` — GYO reduction, join trees,
  alpha-acyclicity (Section 4.1);
* :mod:`~repro.hypergraph.acyclicity` — beta-acyclicity and nest-point
  elimination orders (Definition 4.29, Section 4.5);
* :mod:`~repro.hypergraph.freeconnex` — free-connexity (Definition 4.4)
  and free-connex join trees with a free-only root subtree (Figure 1);
* :mod:`~repro.hypergraph.components` — S-components, S-star size and
  quantified star size (Definitions 4.23-4.26, Figures 2-3);
* :mod:`~repro.hypergraph.unionext` — body homomorphisms, provided
  variables and union extensions for UCQs (Definitions 4.11-4.12).
"""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree, gyo_reduction, is_alpha_acyclic, build_join_tree
from repro.hypergraph.acyclicity import is_beta_acyclic, nest_point_elimination_order
from repro.hypergraph.freeconnex import is_free_connex, free_connex_join_tree
from repro.hypergraph.components import (
    s_components,
    s_star_size,
    quantified_star_size,
    max_independent_subset,
)

__all__ = [
    "Hypergraph",
    "JoinTree",
    "gyo_reduction",
    "is_alpha_acyclic",
    "build_join_tree",
    "is_beta_acyclic",
    "nest_point_elimination_order",
    "is_free_connex",
    "free_connex_join_tree",
    "s_components",
    "s_star_size",
    "quantified_star_size",
    "max_independent_subset",
]
