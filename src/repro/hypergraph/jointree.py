"""Join trees and alpha-acyclicity via GYO reduction (Section 4.1).

A *join tree* of H = (V, E) is a tree whose nodes are the hyperedges of H
such that for every vertex v, the nodes containing v form a connected
subtree (the "running intersection" / connectedness condition).  H is
*alpha-acyclic* iff it has a join tree, iff the Graham / Yu-Ozsoyoglu (GYO)
reduction empties it.

The GYO reduction repeats two operations until neither applies:

1. delete a vertex that occurs in at most one edge (an "isolated" vertex);
2. delete an edge that is contained in another (distinct) edge, recording
   the container as its *witness*.

The witnesses assemble into a join tree over the original edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import NotAcyclicError
from repro.hypergraph.hypergraph import Hypergraph

V = Hashable


class JoinTree:
    """A join tree over edge *indexes* of a hypergraph.

    Nodes are indexes into ``hypergraph.edges`` so that several atoms with
    identical variable sets stay distinct nodes.
    """

    def __init__(self, hypergraph: Hypergraph, root: int,
                 parent: Dict[int, Optional[int]]):
        self.hypergraph = hypergraph
        self.root = root
        self.parent = dict(parent)
        self.children: Dict[int, List[int]] = {i: [] for i in parent}
        for node, par in parent.items():
            if par is not None:
                self.children[par].append(node)

    # -------------------------------------------------------------- traversal

    def nodes(self) -> List[int]:
        return list(self.parent)

    def edge_of(self, node: int) -> FrozenSet[V]:
        return self.hypergraph.edges[node]

    def bottom_up(self) -> List[int]:
        """Nodes in an order where every node precedes its parent."""
        order: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self.children[node])
        order.reverse()
        return order

    def top_down(self) -> List[int]:
        return list(reversed(self.bottom_up()))

    def leaves(self) -> List[int]:
        return [n for n, ch in self.children.items() if not ch]

    def tree_edges(self) -> List[Tuple[int, int]]:
        return [(par, node) for node, par in self.parent.items() if par is not None]

    def rerooted(self, new_root: int) -> "JoinTree":
        """The same tree rooted at another node."""
        adjacency: Dict[int, Set[int]] = {n: set() for n in self.parent}
        for par, node in self.tree_edges():
            adjacency[par].add(node)
            adjacency[node].add(par)
        parent: Dict[int, Optional[int]] = {new_root: None}
        stack = [new_root]
        while stack:
            u = stack.pop()
            for w in adjacency[u]:
                if w not in parent:
                    parent[w] = u
                    stack.append(w)
        return JoinTree(self.hypergraph, new_root, parent)

    # ------------------------------------------------------------- invariants

    def is_valid(self) -> bool:
        """Check the connectedness condition for every vertex."""
        if set(self.parent) != set(range(len(self.hypergraph.edges))):
            return False
        adjacency: Dict[int, Set[int]] = {n: set() for n in self.parent}
        for par, node in self.tree_edges():
            adjacency[par].add(node)
            adjacency[node].add(par)
        for v in self.hypergraph.vertices:
            holding = [i for i, e in enumerate(self.hypergraph.edges) if v in e]
            if len(holding) <= 1:
                continue
            holding_set = set(holding)
            start = holding[0]
            seen = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for w in adjacency[u]:
                    if w in holding_set and w not in seen:
                        seen.add(w)
                        stack.append(w)
            if seen != holding_set:
                return False
        return True

    def __repr__(self) -> str:
        def fmt(node: int, depth: int) -> List[str]:
            label = "{" + ",".join(sorted(map(str, self.edge_of(node)))) + "}"
            lines = ["  " * depth + label]
            for child in self.children[node]:
                lines.extend(fmt(child, depth + 1))
            return lines

        return "\n".join(fmt(self.root, 0))


def gyo_reduction(h: Hypergraph) -> Tuple[List[FrozenSet[V]], Dict[int, int]]:
    """Run the GYO reduction.

    Returns ``(residual_edges, witness)`` where ``residual_edges`` is what
    remains (empty or a single empty-ish edge iff H is alpha-acyclic) and
    ``witness`` maps each removed edge index to the edge index it was
    absorbed into.
    """
    # current contents of each edge; None = removed
    current: List[Optional[Set[V]]] = [set(e) for e in h.edges]
    witness: Dict[int, int] = {}
    changed = True
    while changed:
        changed = False
        # count occurrences of each vertex among live edges
        occurrences: Dict[V, int] = {}
        for e in current:
            if e is None:
                continue
            for v in e:
                occurrences[v] = occurrences.get(v, 0) + 1
        # rule 1: drop vertices occurring in at most one live edge
        for e in current:
            if e is None:
                continue
            lonely = {v for v in e if occurrences[v] <= 1}
            if lonely:
                e -= lonely
                changed = True
        # rule 2: absorb an edge contained in another live edge
        live = [(i, e) for i, e in enumerate(current) if e is not None]
        for i, e in live:
            for j, f in live:
                if i != j and current[i] is not None and current[j] is not None:
                    if current[i] <= current[j]:
                        witness[i] = j
                        current[i] = None
                        changed = True
                        break
    residual = [frozenset(e) for e in current if e is not None and e]
    # fully-emptied edges (by rule 1) that were never absorbed are harmless
    return residual, witness


def is_alpha_acyclic(h: Hypergraph) -> bool:
    """H has a join tree iff the GYO reduction leaves nothing non-empty."""
    if not h.edges:
        return True
    residual, _ = gyo_reduction(h)
    return not residual


def build_join_tree(h: Hypergraph) -> JoinTree:
    """Build a join tree of H, or raise :class:`NotAcyclicError`.

    The witness map of the GYO reduction links each absorbed edge to its
    absorber; edges emptied by vertex deletion without being absorbed are
    attached to an arbitrary surviving edge (they share no vertex with
    anything at that point, so any attachment preserves connectedness).
    """
    if not h.edges:
        raise NotAcyclicError("cannot build a join tree of an edgeless hypergraph")
    residual, witness = gyo_reduction(h)
    if residual:
        raise NotAcyclicError(f"hypergraph is cyclic: residual edges {residual}")
    n = len(h.edges)
    # find a root: an edge never absorbed (there is at least one)
    unabsorbed = [i for i in range(n) if i not in witness]
    root = unabsorbed[0]
    parent: Dict[int, Optional[int]] = {root: None}
    for i in range(n):
        if i == root:
            continue
        if i in witness:
            parent[i] = witness[i]
        else:
            # emptied by vertex deletions: attach to the root
            parent[i] = root
    # compress: witnesses may point at other absorbed edges, which is fine —
    # the structure is a forest rooted at `root` plus stray unabsorbed edges
    for i in unabsorbed[1:]:
        parent[i] = root
    tree = JoinTree(h, root, parent)
    if not tree.is_valid():  # pragma: no cover - defensive
        raise NotAcyclicError("internal error: GYO produced an invalid join tree")
    return tree


_TREE_CACHE: Dict[Tuple[FrozenSet[V], Tuple[FrozenSet[V], ...]], JoinTree] = {}
_TREE_CACHE_LIMIT = 256


def cached_join_tree(h: Hypergraph) -> JoinTree:
    """Build (or reuse) a join tree, memoised on the hypergraph.

    Keyed on ``(vertices, ordered edges)`` — two structurally identical
    hypergraphs (e.g. the same query evaluated against many databases)
    share one tree, so repeated ``yannakakis()`` calls skip the GYO
    reduction entirely.  A :class:`JoinTree` is never mutated by its
    consumers, so sharing is safe.
    """
    key = (h.vertices, h.edges)
    tree = _TREE_CACHE.get(key)
    if tree is None:
        tree = build_join_tree(h)
        if len(_TREE_CACHE) >= _TREE_CACHE_LIMIT:
            _TREE_CACHE.clear()
        _TREE_CACHE[key] = tree
    return tree


def join_tree_of_query(cq) -> JoinTree:
    """Join tree of a conjunctive query's hypergraph; node i = atom i."""
    return cached_join_tree(cq.hypergraph())
