"""Beta-acyclicity and nest-point elimination orders (Definition 4.29).

A hypergraph is *beta-acyclic* iff it is alpha-acyclic and every
sub-hypergraph (subset of its edges) is also alpha-acyclic.  The practical
characterisation used here (and by the Davis-Putnam solver of Section 4.5,
Theorem 4.31) is via *nest points* [Duris 2012]:

    a vertex v is a nest point if the set of edges containing v is
    linearly ordered by inclusion;

    H is beta-acyclic iff repeatedly removing nest points (deleting the
    vertex from every edge) empties the vertex set.

The removal order is a *nest-point elimination order*; it drives the
choice of resolution variable in the quasi-linear NCQ decision procedure.
The implementation keeps per-vertex incidence lists and only re-examines
the neighbourhood of an eliminated vertex, so chains and other shallow
structures are processed in near-linear time (the shape Theorem 4.31
needs).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph

V = Hashable


def _is_nest_point(v: V, incidence: Dict[V, Set[int]],
                   edges: List[Set[V]]) -> bool:
    """Edges containing v form a chain under inclusion."""
    holding = [edges[i] for i in incidence[v]]
    distinct: List[Set[V]] = []
    for e in holding:
        if all(e != d for d in distinct):
            distinct.append(e)
    distinct.sort(key=len)
    for small, big in zip(distinct, distinct[1:]):
        if not small <= big:
            return False
    return True


def nest_point_elimination_order(h: Hypergraph) -> Optional[List[V]]:
    """A nest-point elimination order of all vertices, or None if H is not
    beta-acyclic.

    Greedy correctness: removing a nest point never destroys
    beta-acyclicity, so any greedy choice succeeds iff one exists.  The
    candidate queue re-examines a vertex only when one of its edges
    changed.
    """
    edges: List[Set[V]] = [set(e) for e in h.edges]
    incidence: Dict[V, Set[int]] = {v: set() for v in h.vertices}
    for i, e in enumerate(edges):
        for v in e:
            incidence[v].add(i)

    order: List[V] = []
    # vertices in no edge can always go first
    pending: List[V] = sorted((v for v in h.vertices if not incidence[v]),
                              key=str)
    remaining: Set[V] = set(h.vertices) - set(pending)
    order.extend(pending)

    candidates: List[V] = sorted(remaining, key=str)
    in_queue: Set[V] = set(candidates)
    stuck: Set[V] = set()

    while remaining:
        if not candidates:
            if stuck:
                return None  # nobody is a nest point: not beta-acyclic
            candidates = sorted(remaining, key=str)
            in_queue = set(candidates)
        v = candidates.pop(0)
        in_queue.discard(v)
        if v not in remaining:
            continue
        if not incidence[v]:
            order.append(v)
            remaining.discard(v)
            stuck.discard(v)
            continue
        if not _is_nest_point(v, incidence, edges):
            stuck.add(v)
            if not candidates and stuck == remaining:
                return None
            continue
        # eliminate v
        order.append(v)
        remaining.discard(v)
        touched: Set[V] = set()
        for i in list(incidence[v]):
            edges[i].discard(v)
            touched |= edges[i]
        incidence[v] = set()
        # neighbours may have become nest points: re-queue them
        for u in touched:
            if u in remaining and u not in in_queue:
                candidates.append(u)
                in_queue.add(u)
            stuck.discard(u)
        stuck -= touched
    return order


def is_beta_acyclic(h: Hypergraph) -> bool:
    """Definition 4.29, decided via nest-point elimination."""
    return nest_point_elimination_order(h) is not None


def all_subhypergraphs_alpha_acyclic(h: Hypergraph) -> bool:
    """Brute-force check of Definition 4.29 (exponential — for tests only).

    Enumerates every subset of edges and tests alpha-acyclicity; agreement
    with :func:`is_beta_acyclic` is a property test of the nest-point
    characterisation.
    """
    from itertools import combinations

    from repro.hypergraph.jointree import is_alpha_acyclic

    n = len(h.edges)
    for r in range(1, n + 1):
        for subset in combinations(range(n), r):
            sub = h.induced_by_edges(subset)
            if not is_alpha_acyclic(sub):
                return False
    return True
