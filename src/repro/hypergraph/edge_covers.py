"""Edge covers, fractional edge covers and the AGM output bound.

The survey's closing thread (Section 4.5) points at "new measures based
on hypergraph decompositions" governing tractability; the most basic of
these measures is the *fractional edge cover number* rho*(H): assign a
weight to every hyperedge so that each vertex is covered by total weight
>= 1, minimising the weight sum.  Atserias-Grohe-Marx: the number of
answers of a full conjunctive query is at most

    prod_i |R_i| ^ x_i        (AGM bound)

for any fractional edge cover x — so ||D||^{rho*} bounds every output,
and the triangle query's famous rho* = 3/2 explains why its output can
reach n^{1.5} while any acyclic join tree would promise at most n^2
intermediates.  Computed exactly with scipy's LP solver.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.hypergraph.hypergraph import Hypergraph

V = Hashable


def fractional_edge_cover(h: Hypergraph,
                          edge_costs: Optional[Sequence[float]] = None
                          ) -> Tuple[float, List[float]]:
    """(optimal objective, per-edge weights) via linear programming.

    With the default unit costs the objective is rho*(H); passing
    ``edge_costs = [log |R_e|]`` minimises the *AGM objective*
    sum x_e log|R_e|, whose exponential is the tightest AGM bound for the
    given relation sizes.

    Vertices in no edge make the LP infeasible; they are excluded (they
    cannot be covered and carry no join constraint).
    """
    edges = list(h.edges)
    if not edges:
        return 0.0, []
    covered = {v for e in edges for v in e}
    vertices = sorted(covered, key=str)
    if not vertices:
        return 0.0, [0.0] * len(edges)
    # minimise c . x  s.t.  for each v: sum_{e containing v} x_e >= 1
    a_ub = np.zeros((len(vertices), len(edges)))
    for i, v in enumerate(vertices):
        for j, e in enumerate(edges):
            if v in e:
                a_ub[i, j] = -1.0
    b_ub = -np.ones(len(vertices))
    c = np.ones(len(edges)) if edge_costs is None else np.array(edge_costs,
                                                                dtype=float)
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * len(edges),
                     method="highs")
    if not result.success:  # pragma: no cover - LP is always feasible here
        raise RuntimeError(f"edge cover LP failed: {result.message}")
    return float(result.fun), [float(x) for x in result.x]


def fractional_edge_cover_number(h: Hypergraph) -> float:
    """rho*(H)."""
    return fractional_edge_cover(h)[0]


def integral_edge_cover_number(h: Hypergraph) -> int:
    """rho(H): the smallest number of hyperedges covering all covered
    vertices (exact search, parameter-sized)."""
    from itertools import combinations

    edges = h.distinct_edges()
    covered = {v for e in edges for v in e}
    if not covered:
        return 0
    for r in range(1, len(edges) + 1):
        for subset in combinations(edges, r):
            if covered <= frozenset().union(*subset):
                return r
    raise AssertionError("edges must cover their own vertices")


def agm_bound(cq, db) -> float:
    """The tightest AGM bound on |phi(D)|: min over fractional edge
    covers x of prod |R_i|^{x_i}, i.e. exp of the LP with costs
    log |R_i|.  For queries with projections the bound still caps the
    number of satisfying assignments (hence of answers).
    """
    import math

    h = cq.hypergraph()
    sizes = [len(db.relation(atom.relation)) for atom in cq.atoms]
    if any(s == 0 for s in sizes):
        return 0.0  # an unsatisfiable atom: no answers at all
    costs = [math.log(s) for s in sizes]
    objective, _weights = fractional_edge_cover(h, edge_costs=costs)
    return math.exp(objective)


def agm_exponent(cq) -> float:
    """rho*(H_phi): the exponent of the worst-case output size in terms
    of the largest relation (AGM)."""
    return fractional_edge_cover_number(cq.hypergraph())
