"""Alternative characterisations of alpha-acyclicity (Section 4.1's
"admitting a number of alternative characterizations", after
[Beeri-Fagin-Maier-Yannakakis 1983]):

    H is alpha-acyclic  iff  H is conformal and its primal graph is
    chordal.

* conformal: every clique of the primal (Gaifman) graph is contained in
  some hyperedge;
* chordal: every cycle of length >= 4 in the primal graph has a chord
  (tested via a perfect elimination ordering, maximum-cardinality
  search).

These are exported both as standalone graph-theory utilities and as a
cross-check of the GYO reduction — a property test asserts the
equivalence on random hypergraphs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph

V = Hashable


def maximal_cliques(adjacency: Dict[V, Set[V]]) -> List[FrozenSet[V]]:
    """Bron-Kerbosch with pivoting (fine for query-sized graphs)."""
    cliques: List[FrozenSet[V]] = []

    def expand(r: Set[V], p: Set[V], x: Set[V]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda u: len(adjacency[u] & p))
        for v in list(p - adjacency[pivot]):
            expand(r | {v}, p & adjacency[v], x & adjacency[v])
            p.discard(v)
            x.add(v)

    expand(set(), set(adjacency), set())
    return cliques


def is_conformal(h: Hypergraph) -> bool:
    """Every maximal clique of the primal graph lies inside a hyperedge."""
    adjacency = h.primal_graph()
    edges = h.distinct_edges()
    for clique in maximal_cliques(adjacency):
        if len(clique) <= 1:
            continue
        if not any(clique <= e for e in edges):
            return False
    return True


def perfect_elimination_ordering(adjacency: Dict[V, Set[V]]
                                 ) -> Optional[List[V]]:
    """A perfect elimination ordering via maximum-cardinality search, or
    None when the graph is not chordal."""
    order: List[V] = []
    weight: Dict[V, int] = {v: 0 for v in adjacency}
    remaining: Set[V] = set(adjacency)
    while remaining:
        v = max(sorted(remaining, key=str), key=lambda u: weight[u])
        order.append(v)
        remaining.discard(v)
        for u in adjacency[v]:
            if u in remaining:
                weight[u] += 1
    order.reverse()
    position = {v: i for i, v in enumerate(order)}
    # verify: later neighbours of each vertex form a clique
    for i, v in enumerate(order):
        later = [u for u in adjacency[v] if position[u] > i]
        if not later:
            continue
        first = min(later, key=lambda u: position[u])
        rest = set(later) - {first}
        if not rest <= adjacency[first] | {first}:
            return None
    return order


def is_chordal(adjacency: Dict[V, Set[V]]) -> bool:
    """Every cycle of length >= 4 has a chord (via a PEO)."""
    return perfect_elimination_ordering(adjacency) is not None


def is_alpha_acyclic_bfmy(h: Hypergraph) -> bool:
    """The Beeri-Fagin-Maier-Yannakakis characterisation: conformal and
    chordal primal graph.  Must agree with the GYO reduction on every
    hypergraph (property-tested)."""
    return is_conformal(h) and is_chordal(h.primal_graph())
