"""S-components, S-star size and quantified star size (Definitions
4.23-4.26, Figures 2 and 3).

Given a hypergraph H = (V, E) and a set S of vertices (the free variables
of a query), the quantified vertices V - S split into connected components
of H[V - S]; each edge not fully inside S belongs to the component its
quantified part touches, and the groups of edges so obtained are the
*S-components* of H.

The *S-star size* is the maximum, over S-components, of the size of an
independent set of S-vertices of that component — how widely the free
variables are "spread" around each quantified cluster.  The *quantified
star size* of an acyclic query is the S-star size of its hypergraph for
S = free variables.  Star size 1 is equivalent to free-connexity, and the
counting problem #ACQ is solvable in time ||D||^O(star size)
(Theorem 4.28).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph

V = Hashable


@dataclass
class SComponent:
    """One S-component: the edges (by index) and the vertices they span."""

    edge_indexes: Tuple[int, ...]
    vertices: FrozenSet[V]
    s_vertices: FrozenSet[V]

    def subhypergraph(self, h: Hypergraph) -> Hypergraph:
        return h.induced_by_edges(self.edge_indexes)


def s_components(h: Hypergraph, s_vars: Sequence[V]) -> List[SComponent]:
    """Decompose H into S-components (Definition 4.23).

    Edges fully contained in S belong to no component (they form the
    free-only part psi_0 of the query).  Every edge with at least one
    vertex outside S belongs to exactly one component: the quantified
    vertices of an edge are pairwise connected in H[V - S] through that
    very edge, so they sit in a single connected component of H[V - S].
    """
    s = frozenset(s_vars)
    quantified = h.vertices - s
    # connected components of H[V - S] via union-find over quantified verts
    parent: Dict[V, V] = {v: v for v in quantified}

    def find(v: V) -> V:
        while parent[v] is not v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def union(a: V, b: V) -> None:
        ra, rb = find(a), find(b)
        if ra is not rb:
            parent[ra] = rb

    for e in h.edges:
        quant = [v for v in e if v not in s]
        for a, b in zip(quant, quant[1:]):
            union(a, b)

    groups: Dict[V, List[int]] = {}
    for i, e in enumerate(h.edges):
        quant = [v for v in e if v not in s]
        if not quant:
            continue  # edge fully inside S
        groups.setdefault(find(quant[0]), []).append(i)

    components: List[SComponent] = []
    for edge_indexes in groups.values():
        verts: Set[V] = set()
        for i in edge_indexes:
            verts |= h.edges[i]
        components.append(
            SComponent(tuple(edge_indexes), frozenset(verts), frozenset(verts & s))
        )
    components.sort(key=lambda c: c.edge_indexes)
    return components


def max_independent_subset(h: Hypergraph, candidates: Sequence[V]) -> FrozenSet[V]:
    """A maximum independent subset of ``candidates`` in H.

    Independence in the hypergraph sense: no edge contains two chosen
    vertices — equivalently, an independent set of the primal graph.
    Exact branch-and-bound; queries are parameter-sized so the exponent is
    bounded by the query, not the data.
    """
    cand = [v for v in candidates if v in h.vertices]
    adj = h.primal_graph()
    best: List[V] = []

    def branch(chosen: List[V], rest: List[V]) -> None:
        nonlocal best
        if len(chosen) + len(rest) <= len(best):
            return
        if not rest:
            if len(chosen) > len(best):
                best = list(chosen)
            return
        v = rest[0]
        # include v
        branch(chosen + [v], [u for u in rest[1:] if u not in adj[v]])
        # exclude v
        branch(chosen, rest[1:])

    branch([], cand)
    return frozenset(best)


def s_star_size(h: Hypergraph, s_vars: Sequence[V]) -> int:
    """Definition 4.25: max independent set of S-vertices over S-components.

    Returns 0 when there are no S-components (e.g. a quantifier-free or
    Boolean query hypergraph).
    """
    s = frozenset(s_vars)
    best = 0
    for comp in s_components(h, s):
        sub = comp.subhypergraph(h)
        ind = max_independent_subset(sub, sorted(comp.s_vertices, key=str))
        best = max(best, len(ind))
    return best


def quantified_star_size(cq) -> int:
    """Definition 4.26: S-star size of the query hypergraph, S = free vars.

    Star size <= 1 iff the (acyclic) query is free-connex.
    """
    return s_star_size(cq.hypergraph(), cq.free_variables())


def free_cover_atoms(h: Hypergraph, component: SComponent) -> List[int]:
    """A minimum set of the component's edges covering its S-vertices.

    By conformality of acyclic hypergraphs, an S-component of star size s
    has its S-vertices covered by s edges (paper, discussion after
    Definition 4.26).  Exact search over edge subsets, smallest first —
    parameter-sized.
    """
    from itertools import combinations

    targets = component.s_vertices
    if not targets:
        return []
    idxs = list(component.edge_indexes)
    for r in range(1, len(idxs) + 1):
        for subset in combinations(idxs, r):
            covered: Set[V] = set()
            for i in subset:
                covered |= h.edges[i]
            if targets <= covered:
                return list(subset)
    raise AssertionError("component edges must cover their own S-vertices")
