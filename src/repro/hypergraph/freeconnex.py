"""Free-connex acyclic queries (Definition 4.4, Figure 1).

An acyclic conjunctive query phi(x) is *free-connex* iff its hypergraph
remains alpha-acyclic after adding the hyperedge {x} (the set of free
variables).  Boolean queries and queries with a single free variable are
free-connex by definition — and the test below agrees, because adding an
empty or singleton edge never creates a cycle.

:func:`free_connex_join_tree` builds the witness structure the
constant-delay enumerator uses: a join tree of H + {x} rooted at the added
free edge.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import NotAcyclicError, NotFreeConnexError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree, build_join_tree, is_alpha_acyclic


def is_free_connex(cq) -> bool:
    """Definition 4.4: phi acyclic and H + {free(phi)} acyclic."""
    h = cq.hypergraph()
    if not is_alpha_acyclic(h):
        return False
    return is_alpha_acyclic(h.with_edge(cq.free_variables()))


def is_s_connex(cq, s_vars) -> bool:
    """phi is S-connex: H + {S} is acyclic (used by Definition 4.11).

    Note: unlike free-connexity this does not require S = free(phi); the
    union-extension machinery quantifies over subsets S of the free
    variables.
    """
    h = cq.hypergraph()
    if not is_alpha_acyclic(h):
        return False
    return is_alpha_acyclic(h.with_edge(frozenset(s_vars)))


def free_connex_join_tree(cq) -> Tuple[JoinTree, int]:
    """Join tree of H + {x} rooted at the added free edge.

    Returns ``(tree, virtual_index)`` where ``virtual_index`` is the node
    index of the added edge (== number of atoms); all other node indexes
    coincide with atom positions in ``cq.atoms``.

    Raises :class:`NotFreeConnexError` if the query is not free-connex.
    """
    h = cq.hypergraph()
    if not is_alpha_acyclic(h):
        raise NotAcyclicError(f"query {cq!r} is not acyclic")
    extended = h.with_edge(cq.free_variables())
    virtual = len(cq.atoms)
    try:
        tree = build_join_tree(extended)
    except NotAcyclicError:
        raise NotFreeConnexError(f"query {cq!r} is acyclic but not free-connex") from None
    return tree.rerooted(virtual), virtual
