"""Counting first-order answers over sparse structures (Theorem 3.2).

Thin facade over the local-pattern machinery of
:mod:`repro.enumeration.bounded_degree`: on bounded-degree (and, with
pseudo-linear cost, low-degree) classes, counting the satisfying
assignments or the distinct answers of a local pattern is linear in
||D|| for a fixed pattern.

Purely positive patterns (no negated atoms, no disequalities) whose
atom set is alpha-acyclic are a plain ACQ in disguise; those are routed
through the star-size counting engine (:func:`repro.counting.acq_count.
count_acq`), which honours the ``engine`` argument — on the columnar
backend the count runs through the vectorized group-sum message passing
instead of the per-component anchored search.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.data.database import Database
from repro.enumeration.bounded_degree import (
    Pattern,
    count_pattern,
    model_check_pattern,
)


def _as_acyclic_cq(pattern: Pattern, head) -> Optional["object"]:
    """The pattern as an acyclic CQ with the given head, or None when
    the pattern needs the local-search machinery (negation,
    disequalities, or a cyclic positive part)."""
    if pattern.negated or pattern.disequalities:
        return None
    from repro.errors import MalformedQueryError
    from repro.logic.cq import ConjunctiveQuery

    try:
        cq = ConjunctiveQuery(tuple(head), pattern.atoms, name=pattern.name)
    except MalformedQueryError:
        return None
    return cq if cq.is_acyclic() else None


def count_assignments(pattern: Pattern, db: Database, engine=None) -> int:
    """Number of satisfying assignments of all pattern variables —
    Theorem 3.2's counting statement, linear time on bounded degree."""
    cq = _as_acyclic_cq(pattern, pattern.variables())
    if cq is not None:
        from repro.counting.acq_count import count_acq

        obs.count("fo_count.acq_route")
        return count_acq(cq, db, engine=engine)
    obs.count("fo_count.pattern_route")
    return count_pattern(pattern, db, distinct_head=False)


def count_answers(pattern: Pattern, db: Database, engine=None) -> int:
    """Number of distinct head tuples (requires no cross-component
    disequalities — see count_pattern)."""
    cq = _as_acyclic_cq(pattern, pattern.head)
    if cq is not None:
        from repro.counting.acq_count import count_acq

        obs.count("fo_count.acq_route")
        return count_acq(cq, db, engine=engine)
    obs.count("fo_count.pattern_route")
    return count_pattern(pattern, db, distinct_head=True)


def decide(pattern: Pattern, db: Database, engine=None) -> bool:
    """Theorem 3.1: linear-time model checking on bounded degree."""
    if not pattern.negated and not pattern.disequalities:
        from repro.errors import NotAcyclicError
        from repro.eval.yannakakis import yannakakis_boolean
        from repro.logic.cq import ConjunctiveQuery

        try:
            cq = ConjunctiveQuery((), pattern.atoms, name=pattern.name)
            if cq.is_acyclic():
                return yannakakis_boolean(cq, db, engine=engine)
        except NotAcyclicError:  # pragma: no cover - guarded by is_acyclic
            pass
    return model_check_pattern(pattern, db)
