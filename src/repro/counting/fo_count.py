"""Counting first-order answers over sparse structures (Theorem 3.2).

Thin facade over the local-pattern machinery of
:mod:`repro.enumeration.bounded_degree`: on bounded-degree (and, with
pseudo-linear cost, low-degree) classes, counting the satisfying
assignments or the distinct answers of a local pattern is linear in
||D|| for a fixed pattern.
"""

from __future__ import annotations

from repro.data.database import Database
from repro.enumeration.bounded_degree import Pattern, count_pattern, model_check_pattern


def count_assignments(pattern: Pattern, db: Database) -> int:
    """Number of satisfying assignments of all pattern variables —
    Theorem 3.2's counting statement, linear time on bounded degree."""
    return count_pattern(pattern, db, distinct_head=False)


def count_answers(pattern: Pattern, db: Database) -> int:
    """Number of distinct head tuples (requires no cross-component
    disequalities — see count_pattern)."""
    return count_pattern(pattern, db, distinct_head=True)


def decide(pattern: Pattern, db: Database) -> bool:
    """Theorem 3.1: linear-time model checking on bounded degree."""
    return model_check_pattern(pattern, db)
