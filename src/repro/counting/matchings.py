"""Perfect matchings and the hardness of one quantifier (Section 4.4,
Equation 2, Theorem 4.22).

The survey's point: the quantifier-free star query

    phi(x_1..x_n)  =  /\\_i E(a_i, x_i)

is counted in polynomial time (Theorem 4.21), while its one-quantifier
cousin

    psi(x_1..x_n)  =  exists t /\\_i E(a_i, x_i) /\\ E(t, x_i)

has quantified star size n, and counting relates to #PerfectMatching —
so #ACQ is #P-complete already with a single quantified variable.

This module makes the connection executable:

* :func:`count_perfect_matchings_bruteforce` — Ryser's permanent formula
  (the ground truth, 2^n terms);
* :func:`count_perfect_matchings_via_acq` — the same permanent computed
  through 2^n *oracle calls to the tractable counting problem* #ACQ^0:
  for every subset S of the right-hand side, Π_i |N(a_i) ∩ S| is
  exactly the answer count of phi on the database restricted to S.  Each
  call is polynomial (Theorem 4.21); the exponential number of calls is
  where the #P-hardness lives;
* :func:`star_query` / :func:`product_query` — the two queries of
  Equation 2 as objects, for star-size inspection and benchmarks.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Dict, List, Sequence, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.atoms import Atom
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Constant, Variable


def product_query(a_side: Sequence[Any], edge_name: str = "E") -> ConjunctiveQuery:
    """phi(x_1..x_n) = /\\_i E(a_i, x_i): quantifier-free, acyclic,
    free-connex (star size 0 — no quantified variables at all)."""
    head = [Variable(f"x{i}") for i in range(len(a_side))]
    atoms = [Atom(edge_name, [Constant(a), head[i]]) for i, a in enumerate(a_side)]
    return ConjunctiveQuery(head, atoms, name="phi")


def star_query(a_side: Sequence[Any], edge_name: str = "E") -> ConjunctiveQuery:
    """psi(x_1..x_n) = exists t /\\_i E(a_i, x_i) /\\ E(t, x_i): one
    quantified variable, quantified star size n (Example 4.27)."""
    head = [Variable(f"x{i}") for i in range(len(a_side))]
    t = Variable("t")
    atoms = [Atom(edge_name, [Constant(a), head[i]]) for i, a in enumerate(a_side)]
    atoms += [Atom(edge_name, [t, head[i]]) for i in range(len(a_side))]
    return ConjunctiveQuery(head, atoms, name="psi")


def _neighbourhoods(db: Database, a_side: Sequence[Any], edge_name: str = "E"
                    ) -> List[set]:
    rel = db.relation(edge_name)
    neigh: Dict[Any, set] = {a: set() for a in a_side}
    for u, v in rel:
        if u in neigh:
            neigh[u].add(v)
    return [neigh[a] for a in a_side]


def count_perfect_matchings_bruteforce(db: Database, a_side: Sequence[Any],
                                       b_side: Sequence[Any],
                                       edge_name: str = "E") -> int:
    """Ryser's formula: perm(M) = (-1)^n sum_{S<=B} (-1)^{|S|}
    prod_i |N(a_i) /\\ S|."""
    n = len(a_side)
    if n != len(b_side):
        return 0
    neigh = _neighbourhoods(db, a_side, edge_name)
    total = 0
    b_list = list(b_side)
    for r in range(n + 1):
        for subset in combinations(b_list, r):
            s = set(subset)
            prod = 1
            for nb in neigh:
                prod *= len(nb & s)
                if prod == 0:
                    break
            total += (-1) ** r * prod
    return (-1) ** n * total


def count_perfect_matchings_via_acq(db: Database, a_side: Sequence[Any],
                                    b_side: Sequence[Any],
                                    edge_name: str = "E") -> int:
    """The same permanent, with every term obtained as the answer count of
    the quantifier-free acyclic query phi on a restricted database —
    2^n calls to the Theorem 4.21 counting engine."""
    from repro.counting.acq_count import count_quantifier_free_acyclic

    n = len(a_side)
    if n != len(b_side):
        return 0
    phi = product_query(a_side, edge_name)
    rel = db.relation(edge_name)
    b_list = list(b_side)
    total = 0
    for r in range(n + 1):
        for subset in combinations(b_list, r):
            keep = set(subset)
            restricted = Relation(edge_name, 2)
            for u, v in rel:
                if v in keep:
                    restricted.add((u, v))
            sub_db = Database([restricted], domain=list(a_side) + list(subset))
            total += (-1) ** r * count_quantifier_free_acyclic(phi, sub_db)
    return (-1) ** n * total
