"""Exact polynomial-time counting for #Sigma_0 with free second-order
variables (Theorem 5.3, bottom of the hierarchy).

A quantifier-free formula phi(x, X_1..X_r) observes the membership of
only the tuples it syntactically mentions — at most ||phi|| per
second-order variable, once the first-order variables are fixed.  The
answer count therefore decomposes cube-wise:

    |phi(D)| = sum over assignments a of x,
               sum over satisfying membership patterns p,
               prod_j 2^{ |Dom^{ar(X_j)}| - #mentioned_j }

Every factor is computable in polynomial time (the exponent is a binary
number; we return exact Python integers), which is the content of
"every function in #Sigma^rel_0 is computable in polynomial time".
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.errors import UnsupportedQueryError
from repro.eval.naive import evaluate_fo
from repro.logic.fo import Formula, SOAtom, SecondOrderVariable, is_quantifier_free
from repro.logic.terms import Constant, Variable


def count_sigma0(formula: Formula, db: Database,
                 universes: Optional[Dict[SecondOrderVariable, int]] = None) -> int:
    """Exact |{(a, A) : D |= phi(a, A)}| for quantifier-free phi.

    ``universes`` optionally overrides, per second-order variable, the
    size of its tuple universe (default |Dom|^arity) — used by tests to
    keep brute-force cross-checks feasible.  Note the *count* only needs
    the universe size, not its enumeration: the free part contributes a
    power of two.
    """
    if not is_quantifier_free(formula):
        raise UnsupportedQueryError("count_sigma0 needs a quantifier-free formula")
    so_vars = sorted(formula.so_variables(), key=lambda s: s.name)
    fo_vars = tuple(sorted(formula.free_variables(), key=lambda v: v.name))
    domain = db.domain
    n = len(domain)

    def universe_size(so: SecondOrderVariable) -> int:
        if universes is not None and so in universes:
            return universes[so]
        return n ** so.arity

    total = 0
    assignments = (
        iproduct(domain, repeat=len(fo_vars)) if fo_vars else [()]
    )
    for values in assignments:
        assignment = dict(zip(fo_vars, values))
        mentioned: Dict[SecondOrderVariable, List[Tuple[Any, ...]]] = {
            so: [] for so in so_vars
        }
        _collect_mentioned(formula, assignment, mentioned)
        free_factor = 1
        for so in so_vars:
            free_factor *= 1 << (universe_size(so) - len(mentioned[so]))
        pattern_spaces = [
            list(iproduct((False, True), repeat=len(mentioned[so]))) for so in so_vars
        ]
        for combo in iproduct(*pattern_spaces):
            interp: Dict[SecondOrderVariable, Set[Tuple[Any, ...]]] = {}
            for so, bits in zip(so_vars, combo):
                interp[so] = {
                    t for t, b in zip(mentioned[so], bits) if b
                }
            if evaluate_fo(formula, db, dict(assignment), interp):
                total += free_factor
    return total


def _collect_mentioned(formula: Formula, assignment: Dict[Variable, Any],
                       out: Dict[SecondOrderVariable, List[Tuple[Any, ...]]]) -> None:
    if isinstance(formula, SOAtom):
        ground = tuple(
            t.value if isinstance(t, Constant) else assignment[t]
            for t in formula.terms
        )
        bucket = out[formula.so_var]
        if ground not in bucket:
            bucket.append(ground)
    for child in formula.children():
        _collect_mentioned(child, assignment, out)


def count_so_bruteforce(formula: Formula, db: Database,
                        universe: Optional[Sequence[Tuple[Any, ...]]] = None) -> int:
    """Ground truth for small instances: enumerate every interpretation of
    every free second-order variable over the (shared) tuple universe."""
    from itertools import combinations

    so_vars = sorted(formula.so_variables(), key=lambda s: s.name)
    fo_vars = tuple(sorted(formula.free_variables(), key=lambda v: v.name))
    domain = db.domain
    if universe is None:
        arities = {so.arity for so in so_vars}
        if len(arities) > 1:
            raise UnsupportedQueryError("provide a universe for mixed arities")
        arity = arities.pop() if arities else 1
        universe = list(iproduct(domain, repeat=arity))
    universe = [tuple(t) for t in universe]

    def all_subsets(items: List[Tuple[Any, ...]]):
        for r in range(len(items) + 1):
            yield from (set(c) for c in combinations(items, r))

    total = 0
    assignments = iproduct(domain, repeat=len(fo_vars)) if fo_vars else [()]
    for values in assignments:
        assignment = dict(zip(fo_vars, values))
        spaces = [list(all_subsets(universe)) for _ in so_vars]
        for combo in iproduct(*spaces):
            interp = dict(zip(so_vars, combo))
            if evaluate_fo(formula, db, dict(assignment), interp):
                total += 1
    return total
