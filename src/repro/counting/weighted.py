"""F-weight functions (paper Section 4.4).

A weight function maps domain elements into a field F (any Python
numeric type with + and *); the weight of an answer tuple is the product
of its coordinates' weights.  The *weighted counting problem* #F-CQ asks
for the sum of the weights of all answers — ordinary counting is the
special case w = 1.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Union


class WeightFunction:
    """w : Dom(D) -> F, with product lifting to tuples.

    Built from a mapping (missing elements default to ``default``) or a
    callable.
    """

    def __init__(self, source: Union[Mapping[Any, Any], Callable[[Any], Any], None] = None,
                 default: Any = 1):
        self._default = default
        self._trivial = source is None and default == 1
        self._table_cache: Optional[Any] = None
        if source is None:
            self._fn: Callable[[Any], Any] = lambda _x: default
        elif callable(source):
            self._fn = source
        else:
            mapping = dict(source)
            self._fn = lambda x: mapping.get(x, default)

    def __call__(self, element: Any) -> Any:
        return self._fn(element)

    def is_ones(self) -> bool:
        """True when this is the plain counting weight (w = 1 everywhere),
        letting backends take exact integer fast paths."""
        return self._trivial

    def tuple_weight(self, tup: Iterable[Any]) -> Any:
        """w(a) = prod_i w(a_i)."""
        weight: Any = 1
        for value in tup:
            weight = weight * self._fn(value)
        return weight

    @classmethod
    def ones(cls) -> "WeightFunction":
        """The counting weight (every element weighs 1)."""
        return cls(None, default=1)

    def code_table(self, dictionary) -> Optional[Any]:
        """Per-code float64 weight table for the columnar counting kernel.

        Maps every value interned in ``dictionary``
        (:class:`repro.engine.columnar.ValueDictionary`) through the
        weight function into a numpy float64 array indexed by code.
        Returns None — "use the exact per-tuple path" — as soon as any
        weight is not a machine numeric exactly representable in float64
        (bools, floats, and ints with |w| <= 2^53 qualify; Fractions,
        Decimals and other field elements do not).

        Float64 caveat: each *weight* is exact, but the kernel's sums
        and products are float64 arithmetic, so results of magnitude
        beyond 2^53 may round where the per-tuple path (arbitrary
        precision ints) would not.  Callers convert integral results
        back to int when every weight is integer-valued.

        The table (including a None verdict) is memoised per dictionary
        state — it is rebuilt only when the dictionary has interned new
        values since the last call, so repeated weighted counts (and the
        parallel backend, which ships the table to every worker task)
        pay the per-code evaluation loop once.
        """
        import numpy as np

        from repro import obs

        n = len(dictionary)
        if self._table_cache is not None:
            ref, size, cached = self._table_cache
            if ref() is dictionary and size == n:
                return cached
        table: Optional[Any] = np.empty(n, dtype=np.float64)
        fn = self._fn
        for code in range(n):
            w = fn(dictionary.decode(code))
            if isinstance(w, bool) or isinstance(w, int):
                if abs(w) > 2 ** 53:
                    table = None
                    break
            elif not isinstance(w, float):
                table = None
                break
            table[code] = w
        if table is not None:
            obs.gauge("weights.code_table_size", n)
        self._table_cache = (weakref.ref(dictionary), n, table)
        return table


def sum_of_weights(answers: Iterable[Iterable[Any]],
                   weights: Optional[WeightFunction] = None) -> Any:
    """Reference implementation: sum of tuple weights over an answer set."""
    w = weights or WeightFunction.ones()
    total: Any = 0
    for tup in answers:
        total = total + w.tuple_weight(tup)
    return total
