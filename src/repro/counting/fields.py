"""Finite fields GF(p) for weighted counting (Section 4.4: "Let F be a
field and ... a F-weight function").

The #F-ACQ problem is stated over an arbitrary field; the counting
engines of :mod:`repro.counting.acq_count` only use ``+`` and ``*``, so
any Python type implementing them works.  :class:`GF` provides modular
prime fields, making the "arbitrary field" claim executable — e.g.
counting answers modulo p, or evaluating polynomial aggregates in GF(p)
(the paper's pointer [20] studies exactly weighted counting for
beta-acyclic CSP over semirings).
"""

from __future__ import annotations

from typing import Any, Union


def _is_probable_prime(n: int) -> bool:
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


class GF:
    """An element of GF(p).  Construct via :func:`gf` or ``GF(value, p)``."""

    __slots__ = ("value", "p")

    def __init__(self, value: int, p: int):
        if not _is_probable_prime(p):
            raise ValueError(f"{p} is not prime")
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "value", value % p)

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("GF elements are immutable")

    def _coerce(self, other: Union["GF", int]) -> "GF":
        if isinstance(other, GF):
            if other.p != self.p:
                raise ValueError(f"mixed fields GF({self.p}) and GF({other.p})")
            return other
        if isinstance(other, int):
            return GF(other, self.p)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return GF(self.value + other.value, self.p)

    __radd__ = __add__

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return GF(self.value * other.value, self.p)

    __rmul__ = __mul__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return GF(self.value - other.value, self.p)

    def __rsub__(self, other):
        return self._coerce(other).__sub__(self)

    def __neg__(self):
        return GF(-self.value, self.p)

    def inverse(self) -> "GF":
        if self.value == 0:
            raise ZeroDivisionError("0 has no inverse in GF(p)")
        return GF(pow(self.value, self.p - 2, self.p), self.p)

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __pow__(self, exponent: int):
        return GF(pow(self.value, exponent, self.p), self.p)

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.value == other % self.p
        return isinstance(other, GF) and self.p == other.p \
            and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.value, self.p))

    def __repr__(self) -> str:
        return f"{self.value} (mod {self.p})"

    def __int__(self) -> int:
        return self.value


def gf(p: int):
    """A constructor for GF(p) elements: ``five = gf(7)(5)``."""
    def make(value: int) -> GF:
        return GF(value, p)

    return make


def count_mod_p(cq, db, p: int) -> GF:
    """|phi(D)| mod p via the weighted counting engine with weight 1 in
    GF(p) — the 'arbitrary field' instantiation of Theorem 4.21/4.28."""
    from repro.counting.acq_count import count_acq
    from repro.counting.weighted import WeightFunction

    one = GF(1, p)
    result = count_acq(cq, db, WeightFunction(lambda _v: one))
    if isinstance(result, int):  # empty/boolean shortcuts return ints
        return GF(result, p)
    return result
