"""Counting answers of acyclic conjunctive queries (Section 4.4).

Three levels, matching the paper's tractability ladder:

* :func:`count_full_acyclic_join` — weighted message passing over a join
  tree: the #F-ACQ^0 algorithm behind Theorem 4.21.  One bottom-up DP
  pass; each node aggregates its children's sums through hash probes, so
  the cost is O(||phi|| * ||D||) (better than the O(||phi|| * ||D||^2)
  the theorem quotes).
* :func:`count_quantifier_free_acyclic` — the same on a query + database.
* :func:`count_acq` — general ACQs via the quantified-star-size
  decomposition of Theorem 4.28: S-components are collapsed to relations
  over their free variables (candidate generation over a covering set of
  s = star-size atoms, then per-candidate satisfiability filtering), and
  the resulting quantifier-free acyclic query is counted by the DP.
  Total time ||D||^{O(s)}.

Cross-validation baseline: :func:`count_cq_naive`.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.data.database import Database
from repro.counting.weighted import WeightFunction
from repro.errors import NotAcyclicError, UnsupportedQueryError
from repro.eval.join import VarRelation
from repro.eval.naive import cq_is_satisfiable_naive, evaluate_cq_naive
from repro.eval.yannakakis import full_reducer, yannakakis_boolean
from repro.hypergraph.components import free_cover_atoms, s_components
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import build_join_tree, cached_join_tree
from repro.logic.cq import ConjunctiveQuery
from repro.logic.terms import Variable


def count_full_acyclic_join(relations: Sequence[VarRelation],
                            weights: Optional[WeightFunction] = None,
                            engine=None) -> Any:
    """Weighted number of tuples in the natural join of ``relations``.

    The relations' variable sets must form an acyclic hypergraph.  Message
    passing: for each node tuple, the number (weight) of extensions into
    its subtree; each variable's weight is charged at the unique top node
    of its occurrence subtree.

    When every relation is columnar and the weight is the plain counting
    weight, the messages are computed by vectorized group-sums
    (:func:`repro.engine.columnar.count_acyclic_join_columnar`; exact up
    to the int64 range) instead of per-tuple dict probes.  An ``engine``
    with worker-pool hooks additionally shards each node's message across
    the pool when the inputs clear its tuple-count threshold (per-key
    sums are bit-identical to the serial DP; see
    :func:`repro.engine.parallel.parallel_count`).
    """
    w = weights or WeightFunction.ones()
    relations = list(relations)
    if not relations:
        return 1
    if any(len(r.variables) == 0 for r in relations):
        # zero-ary relations are just truth values
        for r in relations:
            if len(r.variables) == 0 and len(r) == 0:
                return 0
        relations = [r for r in relations if len(r.variables) > 0]
        if not relations:
            return 1
    h = Hypergraph(
        {v for r in relations for v in r.variables},
        [frozenset(r.variables) for r in relations],
    )
    tree = cached_join_tree(h)

    # variables charged at each node: those absent from the parent
    charged: Dict[int, Tuple[Variable, ...]] = {}
    seen_top: Set[Variable] = set()
    for node in tree.top_down():
        parent = tree.parent[node]
        here = relations[node].variables
        if parent is None:
            mine = tuple(here)
        else:
            parent_vars = set(relations[parent].variables)
            mine = tuple(v for v in here if v not in parent_vars and v not in seen_top)
        charged[node] = mine
        seen_top.update(mine)

    # variables each node shares with its parent (the message key schema)
    share_vars: Dict[int, Tuple[Variable, ...]] = {}
    for node in tree.bottom_up():
        parent = tree.parent[node]
        if parent is None:
            share_vars[node] = ()
        else:
            parent_vars = set(relations[parent].variables)
            share_vars[node] = tuple(
                v for v in relations[node].variables if v in parent_vars)

    from repro.engine.columnar import ColumnarRelation, count_acyclic_join_columnar

    unweighted = weights is None or (
        isinstance(weights, WeightFunction) and weights.is_ones())
    if all(isinstance(r, ColumnarRelation)
           and r.dictionary is relations[0].dictionary
           for r in relations):
        from repro.engine import resolve_engine

        eng = resolve_engine(engine)
        par = getattr(eng, "parallel_count", None)
        sharded = par is not None and eng.should_parallelise(relations)
        # serial kernel override (the compiled engine's radix group
        # tables); duck-typed like parallel_count
        ckernel = getattr(eng, "count_acyclic", None)
        if unweighted:
            if sharded:
                return par(relations, tree, charged, share_vars)
            if ckernel is not None:
                with obs.span("count.message_passing", backend=eng.name,
                              nodes=len(relations)):
                    return ckernel(relations, tree, charged, share_vars)
            with obs.span("count.message_passing", backend="columnar",
                          nodes=len(relations)):
                return count_acyclic_join_columnar(relations, tree, charged,
                                                   share_vars)
        if isinstance(weights, WeightFunction):
            # weighted vectorized path: per-code weight gather; falls back
            # to the exact per-tuple DP when the weights aren't machine
            # floats (see WeightFunction.code_table)
            import numpy as np

            table = weights.code_table(relations[0].dictionary)
            if table is not None:
                if sharded:
                    total = par(relations, tree, charged, share_vars,
                                weight_table=table)
                elif ckernel is not None:
                    with obs.span("count.message_passing",
                                  backend=f"{eng.name}_weighted",
                                  nodes=len(relations)):
                        total = ckernel(relations, tree, charged,
                                        share_vars, weight_table=table)
                else:
                    with obs.span("count.message_passing",
                                  backend="columnar_weighted",
                                  nodes=len(relations)):
                        total = count_acyclic_join_columnar(
                            relations, tree, charged, share_vars,
                            weight_table=table)
                integral_weights = bool(np.all(table == np.floor(table)))
                if integral_weights and float(total).is_integer():
                    return int(total)
                return total

    # messages[child]: key over shared-with-parent vars -> sum of weights
    with obs.span("count.message_passing", backend="tuple",
                  nodes=len(relations)):
        messages: Dict[int, Dict[Tuple[Any, ...], Any]] = {}
        for node in tree.bottom_up():
            rel = relations[node]
            shared = share_vars[node]
            charged_pos = [rel.position(v) for v in charged[node]]
            shared_pos = [rel.position(v) for v in shared]
            child_info = [
                (messages[c],
                 [rel.position(v) for v in share_vars[c]])
                for c in tree.children[node]
            ]
            msg: Dict[Tuple[Any, ...], Any] = {}
            for t in rel:
                value: Any = 1
                for v_pos in charged_pos:
                    value = value * w(t[v_pos])
                dead = False
                for child_msg, key_pos in child_info:
                    factor = child_msg.get(tuple(t[p] for p in key_pos))
                    if factor is None:
                        dead = True
                        break
                    value = value * factor
                if dead:
                    continue
                key = tuple(t[p] for p in shared_pos)
                msg[key] = msg.get(key, 0) + value
            messages[node] = msg

        root_msg = messages[tree.root]
        return root_msg.get((), 0)


def count_quantifier_free_acyclic(cq: ConjunctiveQuery, db: Database,
                                  weights: Optional[WeightFunction] = None,
                                  engine=None) -> Any:
    """#F-ACQ^0 (Theorem 4.21): weighted count of a projection-free ACQ."""
    if not cq.is_quantifier_free():
        raise UnsupportedQueryError(
            "count_quantifier_free_acyclic needs a quantifier-free query; "
            "use count_acq for projections"
        )
    if cq.has_comparisons():
        raise UnsupportedQueryError("comparisons are not supported in counting")
    unweighted = weights is None or (
        isinstance(weights, WeightFunction) and weights.is_ones())
    if unweighted:
        from repro.core.plancache import (cached_plan, incremental_enabled,
                                          plan_cache_enabled)

        if incremental_enabled() and plan_cache_enabled():
            from repro.dynamic.delta import DeltaCounter

            # delta-propagated DP: the cached artefact is a DeltaCounter
            # whose maintained total is the exact int the cold message
            # passing computes (any backend), refreshed through the
            # per-relation delta logs.  Engine-independent, so the state
            # is cached under a fixed pseudo-engine name and shared
            # across backends.
            if DeltaCounter.supports(cq):
                state = cached_plan(
                    "count_state", cq, db, "-",
                    lambda: DeltaCounter.build(cq, db),
                    refresher=lambda st, deltas: st.refreshed(deltas))
                return state.total()
    from repro.eval.yannakakis import materialise_atoms

    return count_full_acyclic_join(materialise_atoms(cq, db, engine), weights,
                                   engine=engine)


def derive_counting_join(cq: ConjunctiveQuery, db: Database, engine=None
                         ) -> Optional[List[VarRelation]]:
    """The star-size decomposition behind Theorem 4.28.

    Returns derived relations over free variables whose join *is* phi(D),
    or None when the query is unsatisfiable.  Cost ||D||^{O(s)}, s the
    quantified star size: per component, candidates come from joining the
    s covering atoms' (reduced) relations and each candidate is verified
    by one Boolean satisfiability check of the component.

    The decomposition (the expensive, per-database part) is served from
    the plan cache on repeats; returned relations are shallow copies.
    """
    from repro.core.plancache import cached_plan
    from repro.engine import resolve_engine

    eng = resolve_engine(engine)
    derived = cached_plan("counting_join", cq, db, eng.name,
                          lambda: _derive_counting_join(cq, db, eng),
                          extra=eng.plan_key())
    if derived is None:
        return None
    return [r.copy() for r in derived]


def _derive_counting_join(cq: ConjunctiveQuery, db: Database, engine
                          ) -> Optional[List[VarRelation]]:
    free = cq.free_variables()
    h = cq.hypergraph()
    tree, reduced = full_reducer(cq, db, engine=engine)
    if any(len(r) == 0 for r in reduced):
        return None

    derived: List[VarRelation] = []
    for i, atom in enumerate(cq.atoms):
        if atom.variable_set() <= free:
            derived.append(reduced[i])

    for comp in s_components(h, free):
        f_vars = tuple(sorted(comp.s_vertices, key=lambda v: v.name))
        if not f_vars:
            continue  # satisfiability already enforced by the full reducer
        cover = free_cover_atoms(h, comp)
        # fast path: a single covering atom (star size 1 locally) — its
        # reduced relation projects exactly onto pi_{F_i}(phi(D))
        if len(cover) == 1:
            derived.append(reduced[cover[0]].project(f_vars))
            continue
        # candidates: join of the covering atoms' reduced relations
        candidate_rel = reduced[cover[0]]
        for j in cover[1:]:
            candidate_rel = candidate_rel.join(reduced[j])
        candidates = candidate_rel.project(f_vars)
        obs.count("count.candidates", len(candidates))
        # verify each candidate against the whole component, probing the
        # already-reduced relations (no re-materialisation per candidate)
        comp_relations = [reduced[j] for j in comp.edge_indexes]
        from repro.engine import resolve_engine

        verified = resolve_engine(engine).relation(f_vars)
        for t in candidates:
            if _component_satisfiable(comp_relations, dict(zip(f_vars, t))):
                verified.add(t)
        derived.append(verified)
    return derived


def _component_satisfiable(relations: List[VarRelation],
                           assignment: Dict[Variable, Any]) -> bool:
    """Does the candidate assignment of the component's free variables
    extend to all component atoms?  Backtracking over the (reduced)
    relations with hash probes — most-bound-first order."""
    remaining = list(relations)
    order: List[VarRelation] = []
    bound = set(assignment)
    while remaining:
        best = max(remaining,
                   key=lambda r: sum(1 for v in r.variables if v in bound))
        remaining.remove(best)
        order.append(best)
        bound.update(best.variables)

    def backtrack(i: int, env: Dict[Variable, Any]) -> bool:
        if i == len(order):
            return True
        rel = order[i]
        for t in rel.probe_assignment(env):
            added = []
            ok = True
            for v, val in zip(rel.variables, t):
                if v in env:
                    if env[v] != val:
                        ok = False
                        break
                else:
                    env[v] = val
                    added.append(v)
            if ok and backtrack(i + 1, env):
                for v in added:
                    del env[v]
                return True
            for v in added:
                del env[v]
        return False

    return backtrack(0, dict(assignment))


def count_acq(cq: ConjunctiveQuery, db: Database,
              weights: Optional[WeightFunction] = None,
              engine=None) -> Any:
    """#ACQ via quantified star size (Theorem 4.28): weighted count of the
    *answers* (distinct head tuples) of an acyclic CQ.

    Weights apply to the free variables (answers are tuples over the
    head), matching the #F-CQ definition of Section 4.4.
    """
    if cq.has_comparisons():
        raise UnsupportedQueryError("comparisons are not supported in counting")
    if not cq.is_acyclic():
        raise NotAcyclicError(f"query {cq!r} is not acyclic; use count_cq_naive")
    if cq.is_quantifier_free():
        from repro.core.plancache import incremental_enabled, plan_cache_enabled

        if incremental_enabled() and plan_cache_enabled():
            from repro.dynamic.delta import DeltaCounter

            # quantifier-free answers are exactly the join rows, so the
            # star-size decomposition is the identity here; route
            # straight to the maintained Theorem 4.21 DP
            unweighted = weights is None or (
                isinstance(weights, WeightFunction) and weights.is_ones())
            if unweighted and DeltaCounter.supports(cq):
                return count_quantifier_free_acyclic(cq, db, weights,
                                                     engine=engine)
    with obs.span("count.acq", atoms=len(cq.atoms)):
        derived = derive_counting_join(cq, db, engine=engine)
        if derived is None:
            return 0
        if cq.is_boolean():
            return 1  # satisfiable (derived is not None), the only answer is ()
        if any(len(r) == 0 for r in derived):
            return 0
        return count_full_acyclic_join(derived, weights, engine=engine)


def count_cq_naive(cq: ConjunctiveQuery, db: Database,
                   weights: Optional[WeightFunction] = None) -> Any:
    """Ground truth: materialise the answers, sum the weights."""
    w = weights or WeightFunction.ones()
    total: Any = 0
    for tup in evaluate_cq_naive(cq, db):
        total = total + w.tuple_weight(tup)
    return total
