"""Counting algorithms (Sections 3.2, 4.4 and 5.1).

* :mod:`~repro.counting.weighted` — F-weight functions (Section 4.4);
* :mod:`~repro.counting.acq_count` — join-tree DP counting for
  quantifier-free ACQs (Theorem 4.21) and the star-size algorithm for
  general ACQs (Theorem 4.28);
* :mod:`~repro.counting.fo_count` — counting over bounded/low-degree
  structures (Theorem 3.2);
* :mod:`~repro.counting.matchings` — the perfect-matching connection of
  Equation 2 / Theorem 4.22 (one quantifier makes #ACQ #P-hard);
* :mod:`~repro.counting.approx` — the Karp-Luby FPRAS for #DNF and the
  #Sigma^rel_1 classes (Section 5.1, Definition 5.4);
* :mod:`~repro.counting.spectrum` — exact polynomial-time counting for
  #Sigma_0 with free second-order variables (Theorem 5.3).
"""

from repro.counting.weighted import WeightFunction
from repro.counting.acq_count import (
    count_full_acyclic_join,
    count_quantifier_free_acyclic,
    count_acq,
    count_cq_naive,
)
from repro.counting.approx import karp_luby_dnf, exact_dnf_count

__all__ = [
    "WeightFunction",
    "count_full_acyclic_join",
    "count_quantifier_free_acyclic",
    "count_acq",
    "count_cq_naive",
    "karp_luby_dnf",
    "exact_dnf_count",
]
