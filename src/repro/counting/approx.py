"""Randomised approximate counting (Section 5.1, Definition 5.4).

The Karp-Luby-Madras estimator for #DNF — the celebrated FPRAS the paper
cites as the inspiration for approximating the #Sigma^rel_1 classes:

* sample a term T_i with probability proportional to |sat(T_i)| = 2^{n-k_i};
* sample an assignment uniformly among those satisfying T_i;
* the assignment is *accepted* when T_i is its first satisfying term;
  the acceptance probability is exactly #DNF / sum_i |sat(T_i)|.

With m terms the acceptance ratio is >= 1/m, so
O(m / eps^2) samples give relative error eps with constant probability;
a median of independent estimates drives the failure probability below
1/4 as Definition 5.4 requires.

Also here: the Example 5.1 encoding of a 3-DNF formula as a sigma_3DNF
structure with the Sigma^rel_1 formula Phi_0(T), and a brute-force
#Sigma^rel_1 counter used to validate it: satisfying assignments of phi
(viewed as the sets T of variables made true) correspond 1-1 to the
relations T with A_phi |= Phi_0(T).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product as iproduct
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.logic.fo import And, Exists, Formula, Not, Or, RelAtom, SOAtom, SecondOrderVariable
from repro.logic.terms import Variable

Term = List[int]  # positive literal v > 0, negative literal -v


def term_satisfied(term: Sequence[int], assignment: Sequence[bool]) -> bool:
    """assignment is 0-indexed: variable v reads assignment[v-1]."""
    return all(
        assignment[abs(lit) - 1] == (lit > 0)
        for lit in term
    )


def dnf_satisfied(terms: Sequence[Sequence[int]], assignment: Sequence[bool]) -> bool:
    """Does the assignment satisfy some term of the DNF?"""
    return any(term_satisfied(t, assignment) for t in terms)


def exact_dnf_count(terms: Sequence[Sequence[int]], n_vars: int) -> int:
    """Brute force over 2^n assignments — ground truth for small n."""
    count = 0
    for bits in iproduct((False, True), repeat=n_vars):
        if dnf_satisfied(terms, bits):
            count += 1
    return count


def exact_dnf_count_inclusion_exclusion(terms: Sequence[Sequence[int]],
                                        n_vars: int) -> int:
    """Inclusion-exclusion over terms (2^m terms) — a second ground truth,
    exact for any n when m is small."""
    from itertools import combinations

    m = len(terms)
    total = 0
    for r in range(1, m + 1):
        for subset in combinations(range(m), r):
            merged: Dict[int, bool] = {}
            consistent = True
            for i in subset:
                for lit in terms[i]:
                    v, sign = abs(lit), lit > 0
                    if merged.get(v, sign) != sign:
                        consistent = False
                        break
                    merged[v] = sign
                if not consistent:
                    break
            if consistent:
                total += (-1) ** (r + 1) * (1 << (n_vars - len(merged)))
    return total


def _sample_estimate(terms: Sequence[Sequence[int]], n_vars: int,
                     n_samples: int, rng: random.Random) -> float:
    """One Karp-Luby estimate of #DNF."""
    weights = [1 << (n_vars - len(set(abs(l) for l in t))) for t in terms]
    total_weight = sum(weights)
    if total_weight == 0:
        return 0.0
    cumulative: List[int] = []
    acc = 0
    for w in weights:
        acc += w
        cumulative.append(acc)
    hits = 0
    for _ in range(n_samples):
        # pick a term proportionally to its satisfying-set size
        r = rng.randrange(total_weight)
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] > r:
                hi = mid
            else:
                lo = mid + 1
        i = lo
        # uniform satisfying assignment of term i
        assignment = [rng.random() < 0.5 for _ in range(n_vars)]
        for lit in terms[i]:
            assignment[abs(lit) - 1] = lit > 0
        # accept iff i is the first satisfied term (canonical representative)
        first = next(j for j, t in enumerate(terms) if term_satisfied(t, assignment))
        if first == i:
            hits += 1
    return total_weight * hits / n_samples


def karp_luby_dnf(terms: Sequence[Sequence[int]], n_vars: int, epsilon: float,
                  seed: Optional[int] = None, medians: int = 9) -> float:
    """FPRAS for #DNF (Definition 5.4).

    Returns an estimate within relative error ``epsilon`` with probability
    > 3/4: a median of ``medians`` independent estimates, each with
    O(m / epsilon^2) samples; runtime polynomial in m, n and 1/epsilon.
    """
    if not terms:
        return 0.0
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    rng = random.Random(seed)
    m = len(terms)
    n_samples = max(1, int(8 * m / (epsilon * epsilon)))
    estimates = sorted(
        _sample_estimate(terms, n_vars, n_samples, rng) for _ in range(medians)
    )
    return estimates[len(estimates) // 2]


# --------------------------------------------------- Example 5.1: #3DNF in
# #Sigma^rel_1


@dataclass
class DNFEncoding:
    """The sigma_3DNF structure A_phi and the formula Phi_0(T) of
    Example 5.1, for a 3-DNF formula."""

    db: Database
    formula: Formula
    so_var: SecondOrderVariable
    n_vars: int


def encode_3dnf(terms: Sequence[Sequence[int]], n_vars: int) -> DNFEncoding:
    """Build A_phi over universe {1..n_vars} with D_i(x1,x2,x3) holding iff
    the disjunct 'first i literals negative, rest positive' on (x1,x2,x3)
    appears in phi; and the Sigma^rel_1 sentence Phi_0(T).

    Satisfying assignments of phi (as sets T of true variables) are
    exactly the T with A_phi |= Phi_0(T).
    """
    rels = {f"D{i}": Relation(f"D{i}", 3) for i in range(4)}
    for term in terms:
        if len(term) != 3:
            raise ValueError("encode_3dnf needs exactly-3-literal terms")
        # normalise: negatives first (the D_i convention of Example 5.1)
        negs = sorted(-l for l in term if l < 0)
        poss = sorted(l for l in term if l > 0)
        i = len(negs)
        rels[f"D{i}"].add(tuple(negs + poss))
    db = Database(rels.values(), domain=range(1, n_vars + 1))

    T = SecondOrderVariable("T", 1)
    x, y, z = Variable("x"), Variable("y"), Variable("z")

    def t(v: Variable) -> Formula:
        return SOAtom(T, [v])

    disjuncts = [
        And(RelAtom("D0", [x, y, z]), t(x), t(y), t(z)),
        And(RelAtom("D1", [x, y, z]), Not(t(x)), t(y), t(z)),
        And(RelAtom("D2", [x, y, z]), Not(t(x)), Not(t(y)), t(z)),
        And(RelAtom("D3", [x, y, z]), Not(t(x)), Not(t(y)), Not(t(z))),
    ]
    formula = Exists([x, y, z], Or(*disjuncts))
    return DNFEncoding(db=db, formula=formula, so_var=T, n_vars=n_vars)


def count_so_models_bruteforce(encoding: DNFEncoding) -> int:
    """|{T <= [n] : A_phi |= Phi_0(T)}| by brute force (2^n checks) — the
    #Sigma^rel_1 counting problem of Example 5.1, used to validate the
    bijection with DNF satisfying assignments."""
    from itertools import combinations

    from repro.eval.naive import model_check_fo

    universe = list(range(1, encoding.n_vars + 1))
    count = 0
    for r in range(len(universe) + 1):
        for subset in combinations(universe, r):
            interp = {encoding.so_var: {(v,) for v in subset}}
            if model_check_fo(encoding.formula, encoding.db, interp):
                count += 1
    return count
