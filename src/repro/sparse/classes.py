"""Instance-family descriptors packaging the sparsity dichotomy
(Theorems 3.6/3.7: nowhere dense = tractable FO, somewhere dense closed
under subgraphs = AW[*]-complete).

A class descriptor generates members of a parameterised instance family
and reports the structural facts the dichotomy keys on — degree growth
and shallow-clique-minor content — so tests and benchmarks can verify
the families sit on the intended side of the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.data.database import Database
from repro.data import generators
from repro.mso.treedecomp import Graph, adjacency_from_database
from repro.sparse.degree import low_degree_epsilon, structure_degree
from repro.sparse.minors import clique_minor_number


@dataclass
class ClassDescriptor:
    """A named family of graph databases indexed by a size parameter."""

    name: str
    make: Callable[[int], Database]
    expected_nowhere_dense: bool
    closed_under_subgraphs: bool

    def member(self, n: int) -> Database:
        return self.make(n)

    def profile(self, n: int, r: int = 1, max_k: int = 5) -> Dict[str, object]:
        """Structural facts for the size-n member."""
        db = self.make(n)
        graph: Graph = adjacency_from_database(db)
        return {
            "name": self.name,
            "n": n,
            "size": db.size(),
            "degree": structure_degree(db),
            "low_degree_epsilon": low_degree_epsilon(db),
            "clique_minor_number_r%d" % r: clique_minor_number(graph, r, max_k),
            "expected_nowhere_dense": self.expected_nowhere_dense,
        }


def BoundedDegreeClass(degree: int = 3, seed: int = 0) -> ClassDescriptor:
    """Random graphs of maximum degree <= ``degree`` — bounded degree,
    hence nowhere dense, hence FO-tractable (Theorems 3.1/3.2/3.6)."""
    return ClassDescriptor(
        name=f"bounded-degree({degree})",
        make=lambda n: generators.random_bounded_degree_graph(n, degree, seed=seed + n),
        expected_nowhere_dense=True,
        closed_under_subgraphs=True,
    )


def LowDegreeClass(seed: int = 0) -> ClassDescriptor:
    """Graphs of degree O(log n) — low degree (Definition 3.8), pseudo-
    linear FO (Theorems 3.9/3.10), but NOT closed under substructures."""
    return ClassDescriptor(
        name="low-degree(log n)",
        make=lambda n: generators.low_degree_graph(n, seed=seed + n),
        expected_nowhere_dense=True,
        closed_under_subgraphs=False,
    )


def GridClass() -> ClassDescriptor:
    """Square grids — sparse, unbounded treewidth, nowhere dense (planar
    graphs exclude K_5 minors at every depth); the MSO frontier family of
    Section 3.3."""
    import math

    def make(n: int) -> Database:
        side = max(2, int(math.isqrt(n)))
        return generators.grid_graph(side, side)

    return ClassDescriptor(
        name="grid",
        make=make,
        expected_nowhere_dense=True,
        closed_under_subgraphs=False,
    )


def CliqueClass() -> ClassDescriptor:
    """Complete graphs — the canonical somewhere-dense family: K_n is an
    r-minor of itself for every r, so no N_r exists (Definition 3.5); its
    subgraph closure is AW[*]-complete for FO (Theorem 3.7)."""

    def make(n: int) -> Database:
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        return generators.graph_database(edges, vertices=range(n))

    return ClassDescriptor(
        name="clique",
        make=make,
        expected_nowhere_dense=False,
        closed_under_subgraphs=False,
    )
