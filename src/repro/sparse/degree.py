"""Degree of relational structures (Section 3.1) and the low-degree
condition (Definition 3.8).

The degree of an element is the number of tuples (over all relations)
containing it; the degree of a structure is the maximum.  A class is of
*bounded degree* when a single constant bounds all members, and of *low
degree* when for every epsilon > 0 all large enough members have degree
at most |G|^epsilon.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.data.database import Database


def structure_degree(db: Database) -> int:
    """deg(D) (Section 3.1)."""
    return db.degree()


def is_degree_bounded(db: Database, bound: int) -> bool:
    """Membership witness for a bounded-degree class with constant
    ``bound``."""
    return db.degree() <= bound


def low_degree_epsilon(db: Database) -> float:
    """The smallest epsilon with deg(D) <= |Dom|^epsilon on this instance
    (log_n d).  A family is low-degree iff this tends to 0 along it."""
    n = max(db.domain_size(), 2)
    d = max(db.degree(), 1)
    return math.log(d) / math.log(n)


def is_low_degree_family(epsilons: Iterable[float], threshold: float = 0.5) -> bool:
    """Heuristic family check used in tests: the epsilon witnesses of a
    growing instance family are (eventually) decreasing and below
    ``threshold``."""
    values = list(epsilons)
    if not values:
        return False
    tail = values[len(values) // 2:]
    return all(e <= threshold for e in tail) and (
        len(values) < 2 or tail[-1] <= values[0] + 1e-9
    )
