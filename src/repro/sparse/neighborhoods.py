"""r-neighbourhoods, isomorphism types and Hanf censuses (Section 3.1).

The engine room of FO locality on sparse structures: on a degree-<= c
graph, the radius-r ball around any vertex has at most c^{r+1} vertices,
so its isomorphism type is one of finitely many.  Hanf's theorem says two
structures satisfying the same *census* ("how many vertices have ball
type tau", counted up to a threshold) satisfy the same FO sentences of
corresponding quantifier rank — which is why model checking reduces to
one linear census pass (Theorem 3.1's engine, here made explicit).

Supported structures: graph databases — one binary edge relation plus
any number of unary colour relations.  Isomorphism of the (small) balls
is decided exactly by backtracking with degree/colour invariants.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database

V = Hashable


@dataclass
class BallStructure:
    """The induced substructure on a radius-r ball, with its center."""

    center: V
    radius: int
    vertices: Tuple[V, ...]
    adjacency: Dict[V, Set[V]]
    colours: Dict[V, FrozenSet[str]]

    def size(self) -> int:
        return len(self.vertices)

    def invariant(self) -> Tuple:
        """A cheap isomorphism invariant: sorted refined colour profile.

        One round of colour refinement seeded with (distance-from-center,
        colours, degree) — complete enough to bucket candidates before
        the exact check."""
        dist = _distances(self.adjacency, self.center)
        base = {
            v: (dist.get(v, -1), tuple(sorted(self.colours[v])),
                len(self.adjacency[v]))
            for v in self.vertices
        }
        refined = {
            v: (base[v], tuple(sorted(base[u] for u in self.adjacency[v])))
            for v in self.vertices
        }
        return tuple(sorted(refined.values()))


def _distances(adjacency: Dict[V, Set[V]], source: V) -> Dict[V, int]:
    dist = {source: 0}
    frontier = [source]
    while frontier:
        nxt: List[V] = []
        for u in frontier:
            for w in adjacency.get(u, ()):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    nxt.append(w)
        frontier = nxt
    return dist


def full_adjacency(db: Database, edge_name: str = "E") -> Dict[V, Set[V]]:
    """Undirected adjacency of the whole graph (self-loops dropped)."""
    adjacency: Dict[V, Set[V]] = {}
    for u, w in db.relation(edge_name):
        if u != w:
            adjacency.setdefault(u, set()).add(w)
            adjacency.setdefault(w, set()).add(u)
    return adjacency


def extract_ball(db: Database, center: V, r: int, edge_name: str = "E",
                 adjacency: Optional[Dict[V, Set[V]]] = None,
                 colour_names: Optional[List[str]] = None) -> BallStructure:
    """The induced coloured subgraph on N_r(center).

    Pass a precomputed ``adjacency`` (from :func:`full_adjacency`) when
    extracting many balls — the census does, keeping it one linear pass.
    """
    if adjacency is None:
        adjacency = full_adjacency(db, edge_name)
    # BFS to depth r
    inside = {center}
    frontier = [center]
    for _ in range(r):
        nxt: List[V] = []
        for u in frontier:
            for w in adjacency.get(u, ()):
                if w not in inside:
                    inside.add(w)
                    nxt.append(w)
        frontier = nxt
    induced = {v: (adjacency.get(v, set()) & inside) for v in inside}
    if colour_names is None:
        colour_names = [rel.name for rel in db if rel.arity == 1]
    colours = {
        v: frozenset(name for name in colour_names
                     if (v,) in db.relation(name))
        for v in inside
    }
    return BallStructure(center=center, radius=r,
                         vertices=tuple(sorted(inside, key=str)),
                         adjacency=induced, colours=colours)


def balls_isomorphic(a: BallStructure, b: BallStructure) -> bool:
    """Exact isomorphism of two balls, centers mapped to centers."""
    if a.size() != b.size() or a.invariant() != b.invariant():
        return False
    # backtracking with (distance, colours, degree) signatures
    dist_a = _distances(a.adjacency, a.center)
    dist_b = _distances(b.adjacency, b.center)

    def signature(ball: BallStructure, dist: Dict[V, int], v: V) -> Tuple:
        return (dist.get(v, -1), tuple(sorted(ball.colours[v])),
                len(ball.adjacency[v]))

    sig_b: Dict[Tuple, List[V]] = {}
    for v in b.vertices:
        sig_b.setdefault(signature(b, dist_b, v), []).append(v)

    order = sorted(a.vertices, key=lambda v: (dist_a.get(v, -1), str(v)))
    mapping: Dict[V, V] = {}
    used: Set[V] = set()

    def extend(i: int) -> bool:
        if i == len(order):
            return True
        v = order[i]
        for w in sig_b.get(signature(a, dist_a, v), []):
            if w in used:
                continue
            if (v == a.center) != (w == b.center):
                continue
            # edges to already-mapped vertices must agree
            ok = True
            for u in a.adjacency[v]:
                if u in mapping and mapping[u] not in b.adjacency[w]:
                    ok = False
                    break
            if ok:
                for u, mu in mapping.items():
                    if v in a.adjacency[u]:
                        continue
                    if w in b.adjacency[mu] and v not in a.adjacency[u]:
                        ok = False
                        break
            if not ok:
                continue
            mapping[v] = w
            used.add(w)
            if extend(i + 1):
                return True
            del mapping[v]
            used.discard(w)
        return False

    return extend(0)


class TypeRegistry:
    """Interns ball types: equal types share an integer id."""

    def __init__(self) -> None:
        self._buckets: Dict[Tuple, List[Tuple[int, BallStructure]]] = {}
        self._next = 0
        self.representatives: Dict[int, BallStructure] = {}

    def type_of(self, ball: BallStructure) -> int:
        key = (ball.size(), ball.invariant())
        for type_id, rep in self._buckets.get(key, []):
            if balls_isomorphic(ball, rep):
                return type_id
        type_id = self._next
        self._next += 1
        self._buckets.setdefault(key, []).append((type_id, ball))
        self.representatives[type_id] = ball
        return type_id


def hanf_census(db: Database, r: int, edge_name: str = "E",
                registry: Optional[TypeRegistry] = None
                ) -> Tuple[Counter, TypeRegistry]:
    """The r-ball type census of the structure: Counter(type id -> how
    many vertices realise it).  Linear in ||D|| for fixed r on bounded
    degree (each ball has constant size)."""
    registry = registry or TypeRegistry()
    census: Counter = Counter()
    adjacency = full_adjacency(db, edge_name)
    colour_names = [rel.name for rel in db if rel.arity == 1]
    for v in db.domain:
        ball = extract_ball(db, v, r, edge_name, adjacency=adjacency,
                            colour_names=colour_names)
        census[registry.type_of(ball)] += 1
    return census, registry


def hanf_equivalent(db1: Database, db2: Database, r: int, threshold: int,
                    edge_name: str = "E") -> bool:
    """Hanf equivalence: the two censuses agree on every type up to
    ``threshold`` (counts above it are indistinguishable).  Structures
    equivalent at radius 3^q and threshold q x (max ball size) satisfy
    the same FO sentences of quantifier rank q."""
    registry = TypeRegistry()
    census1, _ = hanf_census(db1, r, edge_name, registry)
    census2, _ = hanf_census(db2, r, edge_name, registry)
    types = set(census1) | set(census2)
    return all(
        min(census1.get(t, 0), threshold) == min(census2.get(t, 0), threshold)
        for t in types
    )
