"""Shallow (r-)minors and clique-minor search (Definitions 3.4-3.5).

A graph H is an r-minor of G when H's vertices map to pairwise disjoint
*branch sets* S_i of G, each containing its center a_i and contained in
the radius-r ball around it (we additionally require each S_i connected,
the standard reading), with H-edges exactly where branch sets touch.

A class C is *nowhere dense* iff for every r some clique K_{N_r} is NOT
an r-minor of any member (Definition 3.5); grids are nowhere dense
(planar: no K_5 minor at any depth), cliques are somewhere dense.  The
exact search here is exponential — the notion is a structural witness,
not an algorithm the paper runs on data — and is meant for the small
instances of the tests and EXPERIMENTS.md.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.mso.treedecomp import Graph

V = Hashable


def ball(graph: Graph, center: V, r: int) -> Set[V]:
    """N_r(center): vertices within distance r (center included)."""
    seen = {center}
    frontier = {center}
    for _ in range(r):
        nxt: Set[V] = set()
        for u in frontier:
            nxt |= graph.get(u, set())
        nxt -= seen
        if not nxt:
            break
        seen |= nxt
        frontier = nxt
    return seen


def _connected(graph: Graph, vertices: Set[V]) -> bool:
    if not vertices:
        return False
    start = next(iter(vertices))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for w in graph.get(u, set()):
            if w in vertices and w not in seen:
                seen.add(w)
                stack.append(w)
    return seen == vertices


def _touching(graph: Graph, a: Set[V], b: Set[V]) -> bool:
    return any(w in b for u in a for w in graph.get(u, set()))


def shallow_minor_clique(graph: Graph, k: int, r: int
                         ) -> Optional[List[Set[V]]]:
    """Branch sets witnessing K_k as an r-minor of G, or None.

    Exact backtracking: choose k centers, then assign each remaining
    ball vertex to one branch set (or none), checking connectivity,
    radius and pairwise adjacency at the leaves.  Exponential — intended
    for small witness instances.
    """
    vertices = sorted(graph, key=str)
    if k <= 0:
        return []
    for centers in combinations(vertices, k):
        balls = [ball(graph, c, r) for c in centers]
        # candidate pool: vertices in some ball, excluding the centers
        pool = sorted(
            {v for b in balls for v in b} - set(centers), key=str
        )
        assignment: Dict[V, int] = {c: i for i, c in enumerate(centers)}

        def sets_now() -> List[Set[V]]:
            out: List[Set[V]] = [set() for _ in range(k)]
            for v, i in assignment.items():
                out[i].add(v)
            return out

        def feasible_leaf() -> Optional[List[Set[V]]]:
            branch_sets = sets_now()
            for i, s in enumerate(branch_sets):
                if centers[i] not in s or not s <= balls[i]:
                    return None
                if not _connected(graph, s):
                    return None
            for i in range(k):
                for j in range(i + 1, k):
                    if not _touching(graph, branch_sets[i], branch_sets[j]):
                        return None
            return branch_sets

        def backtrack(idx: int) -> Optional[List[Set[V]]]:
            if idx == len(pool):
                return feasible_leaf()
            v = pool[idx]
            # leave v unused
            result = backtrack(idx + 1)
            if result is not None:
                return result
            for i in range(k):
                if v in balls[i]:
                    assignment[v] = i
                    result = backtrack(idx + 1)
                    del assignment[v]
                    if result is not None:
                        return result
            return None

        witness = backtrack(0)
        if witness is not None:
            return witness
    return None


def has_shallow_clique_minor(graph: Graph, k: int, r: int) -> bool:
    """K_k in G (down-arrow) r — Definition 3.4/3.5 membership test."""
    return shallow_minor_clique(graph, k, r) is not None


def clique_minor_number(graph: Graph, r: int, max_k: int) -> int:
    """The largest k <= max_k with K_k an r-minor of G (0 if none)."""
    best = 0
    for k in range(1, max_k + 1):
        if has_shallow_clique_minor(graph, k, r):
            best = k
        else:
            break
    return best
