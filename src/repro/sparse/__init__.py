"""Sparsity notions (Sections 3.1-3.2): degree, shallow minors,
nowhere-dense / somewhere-dense classes, low degree.

* :mod:`~repro.sparse.degree` — degree of structures, bounded/low-degree
  tests (Definitions in Sections 3.1-3.2);
* :mod:`~repro.sparse.minors` — r-shallow minors and clique-minor search
  (Definitions 3.4-3.5);
* :mod:`~repro.sparse.classes` — class descriptors packaging the
  dichotomy of Theorems 3.6/3.7 as checkable witnesses on instances.
"""

from repro.sparse.degree import structure_degree, is_degree_bounded, low_degree_epsilon
from repro.sparse.minors import shallow_minor_clique, has_shallow_clique_minor
from repro.sparse.classes import (
    BoundedDegreeClass,
    LowDegreeClass,
    GridClass,
    CliqueClass,
)

__all__ = [
    "structure_degree",
    "is_degree_bounded",
    "low_degree_epsilon",
    "shallow_minor_clique",
    "has_shallow_clique_minor",
    "BoundedDegreeClass",
    "LowDegreeClass",
    "GridClass",
    "CliqueClass",
]
