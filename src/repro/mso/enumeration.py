"""Enumeration of MSO answer sets over bounded treewidth (Theorem 3.12).

Free *set* variables make constant delay impossible in general — two
consecutive answers can differ in Omega(n) elements (the Section 3.3.1
two-cluster example, reproduced by :func:`two_cluster_example`) — so the
right guarantee is delay linear in the *output size*.  The enumerator here
achieves a delay linear in the decomposition size: a preprocessing pass
mirrors the counting DP of :mod:`repro.mso.courcelle` but records, per
node and state, the predecessor states that reach it; the enumeration
phase then walks root-to-leaves through predecessors only, so it never
hits a dead end, and each solution costs one tree traversal.

Every distinct solution corresponds to exactly one state path (the bag
labels are determined by the solution set), so no deduplication is
needed.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Iterator, List, Optional, Tuple

from repro.data.database import Database
from repro.mso.courcelle import PropertySpec, State, _state
from repro.mso.treedecomp import (
    Graph,
    NiceTreeDecomposition,
    make_nice,
    tree_decomposition,
)

V = Hashable

# predecessor records: introduce -> (child_state, label); forget ->
# child_state; join -> (left_state, right_state); leaf -> None
Pred = Any


def _traced_pass(graph: Graph, spec: PropertySpec, nice: NiceTreeDecomposition
                 ) -> List[Dict[State, List[Pred]]]:
    tables: List[Dict[State, List[Pred]]] = [dict() for _ in nice.nodes]
    for i in nice.bottom_up():
        node = nice.nodes[i]
        table: Dict[State, List[Pred]] = {}
        if node.kind == "leaf":
            table[_state({})] = [None]
        elif node.kind == "introduce":
            child = tables[node.children[0]]
            v = node.vertex
            neighbours = [u for u in graph.get(v, ()) if u in node.bag and u != v]
            for state in child:
                for label in spec.labels:
                    updated = spec.introduce_labels(v, label, dict(state), neighbours)
                    if updated is None:
                        continue
                    table.setdefault(_state(updated), []).append((state, label))
        elif node.kind == "forget":
            child = tables[node.children[0]]
            v = node.vertex
            for state in child:
                bag_state = dict(state)
                label = bag_state.pop(v)
                if not spec.forget_ok(v, label, bag_state):
                    continue
                table.setdefault(_state(bag_state), []).append(state)
        elif node.kind == "join":
            left = tables[node.children[0]]
            right = tables[node.children[1]]
            for lstate in left:
                lmap = dict(lstate)
                for rstate in right:
                    rmap = dict(rstate)
                    combined: Dict[V, Any] = {}
                    ok = True
                    for v2 in lmap:
                        merged = spec.join_compatible(lmap[v2], rmap[v2])
                        if merged is None:
                            ok = False
                            break
                        combined[v2] = merged
                    if ok:
                        table.setdefault(_state(combined), []).append((lstate, rstate))
        tables[i] = table
    return tables


def enumerate_labelings(graph: Graph, spec: PropertySpec,
                        nice: Optional[NiceTreeDecomposition] = None
                        ) -> Iterator[Dict[V, Any]]:
    """All satisfying full labelings, one tree walk per solution."""
    if nice is None:
        nice = make_nice(tree_decomposition(graph))
    tables = _traced_pass(graph, spec, nice)
    root = nice.root
    root_states = list(tables[root].keys())

    def walk(node_index: int, state: State, labeling: Dict[V, Any]
             ) -> Iterator[Dict[V, Any]]:
        node = nice.nodes[node_index]
        preds = tables[node_index][state]
        if node.kind == "leaf":
            yield labeling
            return
        if node.kind == "introduce":
            for child_state, label in preds:
                labeling[node.vertex] = label
                yield from walk(node.children[0], child_state, labeling)
            labeling.pop(node.vertex, None)
            return
        if node.kind == "forget":
            for child_state in preds:
                yield from walk(node.children[0], child_state, labeling)
            return
        if node.kind == "join":
            for lstate, rstate in preds:
                for _partial in walk(node.children[0], lstate, labeling):
                    yield from walk(node.children[1], rstate, labeling)
            return
        raise AssertionError(node.kind)

    for state in root_states:
        yield from (dict(lab) for lab in walk(root, state, {}))


def enumerate_solutions(graph: Graph, spec: PropertySpec,
                        nice: Optional[NiceTreeDecomposition] = None
                        ) -> Iterator[FrozenSet[V]]:
    """All solution *sets* (vertices whose label is a solution label) —
    the answers of the set query, e.g. all independent sets."""
    solution = set(spec.solution_labels())
    for labeling in enumerate_labelings(graph, spec, nice):
        yield frozenset(v for v, lab in labeling.items() if lab in solution)


# ------------------------------------------------ the Section 3.3.1 example


def two_cluster_example(n: int) -> Tuple[Database, List[FrozenSet[int]]]:
    """The paper's example showing constant delay is impossible for free
    set variables: D over domain {1..2n} with
    E = {(a,1) : a <= n} + {(a,2) : a > n} and

        phi(X) = exists x  (forall y in X:  E(y, x))
                           (forall y not in X:  not E(y, x))

    has exactly two answers, {1..n} and {n+1..2n} — disjoint sets, so any
    enumerator must spend Omega(n) between the two outputs.

    Returns the database and the answer list (computed by definition).
    """
    from repro.data.relation import Relation

    rel = Relation("E", 2)
    for a in range(1, n + 1):
        rel.add((a, 1))
    for a in range(n + 1, 2 * n + 1):
        rel.add((a, 2))
    db = Database([rel], domain=range(1, 2 * n + 1))

    answers: List[FrozenSet[int]] = []
    domain = list(range(1, 2 * n + 1))
    for x in db.domain:
        in_x = frozenset(a for a in domain if (a, x) in rel)
        out_ok = all((a, x) not in rel for a in domain if a not in in_x)
        if in_x and out_ok and in_x not in answers:
            answers.append(in_x)
    return db, answers
