"""The Courcelle-style DP harness over nice tree decompositions.

A :class:`PropertySpec` (see :mod:`repro.mso.properties`) describes a
vertex-labelled property: states are assignments of a finite label set to
the current bag, with transition rules for introduce/forget/join nodes.
The harness runs one bottom-up pass maintaining, per node, a table

    state -> semiring value

with three instantiations of the value semiring:

* decision — "is the table non-empty at the root" (Theorem 3.11);
* counting — number of labelings reaching each state (the counting
  extension of Courcelle's theorem, [6] in the paper);
* optimisation — best solution size (min or max) with multiplicity.

All passes are linear in the number of decomposition nodes for a fixed
width, i.e. linear in ||G|| — the bound of Theorem 3.11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.mso.treedecomp import (
    Graph,
    NiceTreeDecomposition,
    TreeDecomposition,
    make_nice,
    tree_decomposition,
)

V = Hashable
# a state assigns a label to every bag vertex, as a sorted tuple of pairs
State = Tuple[Tuple[V, Any], ...]


def _state(mapping: Dict[V, Any]) -> State:
    return tuple(sorted(mapping.items(), key=lambda kv: str(kv[0])))


class PropertySpec:
    """A vertex-labelling property, defined by its local transition rules.

    Subclasses define ``labels`` plus the three hooks; see
    :mod:`repro.mso.properties` for the canonical instances.
    """

    labels: Tuple[Any, ...] = ()

    def introduce_labels(self, vertex: V, label: Any, bag_state: Dict[V, Any],
                         neighbours: Iterable[V]) -> Optional[Dict[V, Any]]:
        """Return the updated bag labelling when ``vertex`` gets ``label``
        (neighbours = already-present bag neighbours), or None if locally
        inconsistent."""
        raise NotImplementedError

    def forget_ok(self, vertex: V, label: Any, bag_state: Dict[V, Any]) -> bool:
        """May ``vertex`` leave the bag with this label? (e.g. dominating
        set requires a forgotten vertex to be dominated)."""
        return True

    def join_compatible(self, label_left: Any, label_right: Any) -> Optional[Any]:
        """Combine the labels of one vertex from two subtrees, or None."""
        return label_left if label_left == label_right else None

    def accept_root(self) -> bool:
        return True

    def solution_labels(self) -> Tuple[Any, ...]:
        """Labels meaning 'vertex belongs to the solution set' (for size
        accounting and enumeration)."""
        return ()

    def join_size_overlap(self, state: Dict[V, Any]) -> int:
        """Solution-set size counted twice at a join (bag vertices in the
        solution), to subtract once."""
        sol = set(self.solution_labels())
        return sum(1 for lab in state.values() if lab in sol)


@dataclass
class DPTables:
    """The result of a bottom-up pass: per node,
    state -> (count, min solution size, max solution size)."""

    nice: NiceTreeDecomposition
    tables: List[Dict[State, Tuple[int, int, int]]]

    def root_table(self) -> Dict[State, Tuple[int, int, int]]:
        return self.tables[self.nice.root]


def run_dp(graph: Graph, spec: PropertySpec,
           nice: Optional[NiceTreeDecomposition] = None,
           track_counts: bool = True) -> DPTables:
    """One bottom-up pass computing, per reachable state, the number of
    labelings reaching it together with the smallest and largest
    solution-set size among them.  Linear in the decomposition size for a
    fixed width and label set.

    ``track_counts=False`` clamps every count to 1: the exact counts of
    natural properties have Theta(n) bits, so Python's exact arithmetic
    makes counting inherently ~quadratic on real hardware (the paper's
    RAM model charges unit cost per operation); decision and optimisation
    queries do not need the counts and stay truly linear.
    """
    if nice is None:
        nice = make_nice(tree_decomposition(graph))
    tables: List[Dict[State, Tuple[int, int, int]]] = [dict() for _ in nice.nodes]

    for i in nice.bottom_up():
        node = nice.nodes[i]
        table: Dict[State, Tuple[int, int, int]] = {}
        if node.kind == "leaf":
            table[_state({})] = (1, 0, 0)
        elif node.kind == "introduce":
            child_table = tables[node.children[0]]
            v = node.vertex
            neighbours = [u for u in graph.get(v, ()) if u in node.bag and u != v]
            sol = set(spec.solution_labels())
            for state, (count, lo, hi) in child_table.items():
                bag_state = dict(state)
                for label in spec.labels:
                    updated = spec.introduce_labels(v, label, dict(bag_state), neighbours)
                    if updated is None:
                        continue
                    delta = 1 if label in sol else 0
                    key = _state(updated)
                    old = table.get(key)
                    if old is None:
                        table[key] = (count, lo + delta, hi + delta)
                    else:
                        table[key] = (old[0] + count, min(old[1], lo + delta),
                                      max(old[2], hi + delta))
        elif node.kind == "forget":
            child_table = tables[node.children[0]]
            v = node.vertex
            for state, (count, lo, hi) in child_table.items():
                bag_state = dict(state)
                label = bag_state.pop(v)
                if not spec.forget_ok(v, label, bag_state):
                    continue
                key = _state(bag_state)
                old = table.get(key)
                if old is None:
                    table[key] = (count, lo, hi)
                else:
                    table[key] = (old[0] + count, min(old[1], lo), max(old[2], hi))
        elif node.kind == "join":
            left = tables[node.children[0]]
            right = tables[node.children[1]]
            for lstate, (lc, llo, lhi) in left.items():
                lmap = dict(lstate)
                for rstate, (rc, rlo, rhi) in right.items():
                    rmap = dict(rstate)
                    combined: Dict[V, Any] = {}
                    ok = True
                    for v2 in lmap:
                        merged = spec.join_compatible(lmap[v2], rmap[v2])
                        if merged is None:
                            ok = False
                            break
                        combined[v2] = merged
                    if not ok:
                        continue
                    overlap = spec.join_size_overlap(combined)
                    key = _state(combined)
                    count = lc * rc if track_counts else 1
                    lo = llo + rlo - overlap
                    hi = lhi + rhi - overlap
                    old = table.get(key)
                    if old is None:
                        table[key] = (count, lo, hi)
                    else:
                        table[key] = (old[0] + count, min(old[1], lo),
                                      max(old[2], hi))
        else:  # pragma: no cover
            raise ValueError(f"unknown nice node kind {node.kind!r}")
        if not track_counts:
            # clamp at every node: additions would otherwise regrow big ints
            table = {k: (1, lo, hi) for k, (_c, lo, hi) in table.items()}
        tables[i] = table
    return DPTables(nice, tables)


def decide(graph: Graph, spec: PropertySpec) -> bool:
    """Theorem 3.11: linear-time model checking of the property."""
    tables = run_dp(graph, spec, track_counts=False)
    return bool(tables.root_table())


def count_solutions(graph: Graph, spec: PropertySpec) -> int:
    """Number of satisfying labelings (e.g. proper 3-colourings,
    independent sets) — the counting extension of Courcelle's theorem."""
    tables = run_dp(graph, spec)
    return sum(count for count, _lo, _hi in tables.root_table().values())


def optimise(graph: Graph, spec: PropertySpec, maximise: bool = False
             ) -> Optional[int]:
    """Best solution-set size (min by default, max with ``maximise``),
    or None when the property is unsatisfiable on the graph.
    """
    tables = run_dp(graph, spec, track_counts=False)
    root = tables.root_table()
    if not root:
        return None
    if maximise:
        return max(hi for _c, _lo, hi in root.values())
    return min(lo for _c, lo, _hi in root.values())
