"""Connectivity over bounded treewidth: counting/deciding *connected*
vertex sets.

Connectivity is the canonical MSO property whose tree-decomposition DP
needs *partition* states (which blocks of the bag's chosen vertices are
already connected below) rather than independent per-vertex labels — so
it lives outside the :class:`~repro.mso.courcelle.PropertySpec` interface
and gets its own dynamic program here.  It rounds out the Section 3.3
reproduction with a property of genuinely different state complexity
(Bell-number-many states per bag instead of labels^|bag|).

State: (partition of the in-solution bag vertices into connectivity
blocks, done) where ``done`` records that one connected component has
already been completed (closed off by forgetting its last vertex); any
later solution vertex would make the set disconnected.

``count_connected_sets`` counts the *non-empty* connected vertex sets;
``largest_connected_set`` maximises their size (with graphs' max
connected induced subgraph = its largest connected component, a handy
cross-check).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.mso.treedecomp import (
    Graph,
    NiceTreeDecomposition,
    make_nice,
    tree_decomposition,
)

V = Hashable
# partition: frozenset of frozensets of bag vertices; done: bool
State = Tuple[FrozenSet[FrozenSet[V]], bool]


def _merge_with(partition: FrozenSet[FrozenSet[V]], vertex: V,
                neighbours: List[V]) -> FrozenSet[FrozenSet[V]]:
    """Add ``vertex``, merging every block containing one of its
    in-solution bag neighbours."""
    merged = {vertex}
    rest = []
    neighbour_set = set(neighbours)
    for block in partition:
        if block & neighbour_set:
            merged |= block
        else:
            rest.append(block)
    return frozenset(rest + [frozenset(merged)])


def _blocks_of(partition: FrozenSet[FrozenSet[V]]) -> Dict[V, FrozenSet[V]]:
    out: Dict[V, FrozenSet[V]] = {}
    for block in partition:
        for v in block:
            out[v] = block
    return out


def _join_partitions(left: FrozenSet[FrozenSet[V]],
                     right: FrozenSet[FrozenSet[V]]
                     ) -> FrozenSet[FrozenSet[V]]:
    """The finest partition coarser than both (union-find merge)."""
    parent: Dict[V, V] = {}

    def find(v: V) -> V:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for partition in (left, right):
        for block in partition:
            items = list(block)
            for v in items:
                parent.setdefault(v, v)
            for a, b in zip(items, items[1:]):
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb
    groups: Dict[V, set] = {}
    for v in parent:
        groups.setdefault(find(v), set()).add(v)
    return frozenset(frozenset(g) for g in groups.values())


def _in_vertices(partition: FrozenSet[FrozenSet[V]]) -> FrozenSet[V]:
    out: set = set()
    for block in partition:
        out |= block
    return frozenset(out)


def connected_sets_dp(graph: Graph,
                      nice: Optional[NiceTreeDecomposition] = None
                      ) -> Dict[State, Tuple[int, int]]:
    """The root table: state -> (count, max size) over non-empty partial
    solutions; the accepting states at the (empty-bag) root are
    ({}, done=True)."""
    if nice is None:
        nice = make_nice(tree_decomposition(graph))
    tables: List[Dict[State, Tuple[int, int]]] = [dict() for _ in nice.nodes]

    def bump(table: Dict[State, Tuple[int, int]], state: State,
             count: int, size: int) -> None:
        old = table.get(state)
        if old is None:
            table[state] = (count, size)
        else:
            table[state] = (old[0] + count, max(old[1], size))

    for i in nice.bottom_up():
        node = nice.nodes[i]
        table: Dict[State, Tuple[int, int]] = {}
        if node.kind == "leaf":
            table[(frozenset(), False)] = (1, 0)
        elif node.kind == "introduce":
            child = tables[node.children[0]]
            v = node.vertex
            neighbours = [u for u in graph.get(v, ()) if u in node.bag and u != v]
            for (partition, done), (count, size) in child.items():
                # v stays out
                bump(table, (partition, done), count, size)
                # v joins the solution (not allowed once a component closed)
                if not done:
                    in_neigh = [u for u in neighbours
                                if any(u in b for b in partition)]
                    new_partition = _merge_with(partition, v, in_neigh)
                    bump(table, (new_partition, False), count, size + 1)
        elif node.kind == "forget":
            child = tables[node.children[0]]
            v = node.vertex
            for (partition, done), (count, size) in child.items():
                blocks = _blocks_of(partition)
                if v not in blocks:
                    bump(table, (partition, done), count, size)
                    continue
                block = blocks[v]
                if len(block) > 1:
                    rest = frozenset(
                        b if b is not block else frozenset(block - {v})
                        for b in partition)
                    bump(table, (rest, done), count, size)
                else:
                    # v's block closes; valid only if it was the only one
                    if len(partition) == 1:
                        bump(table, (frozenset(), True), count, size)
                    # else: a permanently disconnected block -> reject
        elif node.kind == "join":
            left = tables[node.children[0]]
            right = tables[node.children[1]]
            for (lp, ld), (lc, ls) in left.items():
                lin = _in_vertices(lp)
                for (rp, rd), (rc, rs) in right.items():
                    if _in_vertices(rp) != lin:
                        continue
                    if ld and rd:
                        continue  # two completed components
                    if (ld or rd) and lin:
                        continue  # a completed component plus live blocks
                    merged = _join_partitions(lp, rp)
                    bump(table, (merged, ld or rd),
                         lc * rc, ls + rs - len(lin))
        else:  # pragma: no cover
            raise ValueError(node.kind)
        tables[i] = table
    return tables[nice.root]


def count_connected_sets(graph: Graph) -> int:
    """Number of non-empty vertex sets inducing a connected subgraph."""
    root = connected_sets_dp(graph)
    return sum(count for (partition, done), (count, _size) in root.items()
               if done and not partition)


def largest_connected_set(graph: Graph) -> int:
    """Maximum size of a connected vertex set (= size of the largest
    connected component of the graph)."""
    root = connected_sets_dp(graph)
    sizes = [size for (partition, done), (_count, size) in root.items()
             if done and not partition]
    return max(sizes, default=0)


def has_connected_set_of_size(graph: Graph, k: int) -> bool:
    """Is there a connected vertex set with at least k vertices?"""
    return largest_connected_set(graph) >= k
