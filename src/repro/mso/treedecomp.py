"""Tree decompositions of graphs.

A tree decomposition of G = (V, E) is a tree of *bags* (vertex subsets)
such that every vertex appears in some bag, every edge is inside some
bag, and each vertex's bags form a connected subtree; its width is the
largest bag size minus one.  Treewidth is the minimum width over all
decompositions — the parameter of Courcelle's theorem (Section 3.3).

Decompositions are built from elimination orders (min-degree or min-fill
heuristics — exact on trees, cycles and other small-treewidth staples),
validated against the three conditions, and normalised into *nice* form
(leaf / introduce / forget / join nodes) for the DP harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.data.database import Database

V = Hashable
Graph = Dict[V, Set[V]]


def adjacency_from_database(db: Database, edge_name: str = "E") -> Graph:
    """Undirected adjacency from a binary edge relation."""
    adj: Graph = {v: set() for v in db.domain}
    for u, w in db.relation(edge_name):
        if u != w:
            adj[u].add(w)
            adj[w].add(u)
    return adj


@dataclass
class TreeDecomposition:
    """Bags + rooted tree structure (parent indexes; root has parent None)."""

    bags: List[FrozenSet[V]]
    parent: List[Optional[int]]

    def __post_init__(self) -> None:
        self.children: List[List[int]] = [[] for _ in self.bags]
        self.root = 0
        for i, p in enumerate(self.parent):
            if p is None:
                self.root = i
            else:
                self.children[p].append(i)

    @property
    def width(self) -> int:
        return max((len(b) for b in self.bags), default=1) - 1

    def bottom_up(self) -> List[int]:
        order: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self.children[node])
        order.reverse()
        return order

    def is_valid(self, graph: Graph) -> bool:
        """The three tree-decomposition conditions."""
        vertices = set(graph)
        covered: Set[V] = set()
        for b in self.bags:
            covered |= b
        if not vertices <= covered:
            return False
        for u in graph:
            for w in graph[u]:
                if not any(u in b and w in b for b in self.bags):
                    return False
        # connectivity of each vertex's bag set
        adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(self.bags))}
        for i, p in enumerate(self.parent):
            if p is not None:
                adjacency[i].add(p)
                adjacency[p].add(i)
        for v in vertices:
            holding = [i for i, b in enumerate(self.bags) if v in b]
            if not holding:
                return False
            seen = {holding[0]}
            stack = [holding[0]]
            holding_set = set(holding)
            while stack:
                i = stack.pop()
                for j in adjacency[i]:
                    if j in holding_set and j not in seen:
                        seen.add(j)
                        stack.append(j)
            if seen != holding_set:
                return False
        return True


def _elimination_order(graph: Graph, strategy: str) -> List[V]:
    if strategy == "min_degree":
        return _min_degree_order(graph)
    adj: Graph = {v: set(ns) for v, ns in graph.items()}
    order: List[V] = []
    remaining = set(adj)
    while remaining:
        if strategy == "min_fill":
            def fill(u: V) -> int:
                ns = list(adj[u])
                return sum(
                    1
                    for i in range(len(ns))
                    for j in range(i + 1, len(ns))
                    if ns[j] not in adj[ns[i]]
                )

            v = min(remaining, key=lambda u: (fill(u), len(adj[u]), str(u)))
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        order.append(v)
        neighbours = list(adj[v])
        for i in range(len(neighbours)):
            for j in range(i + 1, len(neighbours)):
                adj[neighbours[i]].add(neighbours[j])
                adj[neighbours[j]].add(neighbours[i])
        for u in neighbours:
            adj[u].discard(v)
        del adj[v]
        remaining.discard(v)
    return order


def _min_degree_order(graph: Graph) -> List[V]:
    """Heap-based min-degree elimination: near-linear on sparse graphs."""
    import heapq

    adj: Graph = {v: set(ns) for v, ns in graph.items()}
    heap = [(len(ns), str(v), v) for v, ns in adj.items()]
    heapq.heapify(heap)
    eliminated: Set[V] = set()
    order: List[V] = []
    while heap:
        degree, _key, v = heapq.heappop(heap)
        if v in eliminated:
            continue
        if degree != len(adj[v]):
            heapq.heappush(heap, (len(adj[v]), str(v), v))
            continue
        order.append(v)
        eliminated.add(v)
        neighbours = list(adj[v])
        for i in range(len(neighbours)):
            for j in range(i + 1, len(neighbours)):
                a, b = neighbours[i], neighbours[j]
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
        for u in neighbours:
            adj[u].discard(v)
            heapq.heappush(heap, (len(adj[u]), str(u), u))
        del adj[v]
    return order


def tree_decomposition(graph: Graph, strategy: str = "min_degree") -> TreeDecomposition:
    """Elimination-order decomposition (classic construction).

    For elimination order v_1..v_n, bag(v_i) = {v_i} + its neighbours
    among v_{i+1}..v_n in the fill-in graph; bag(v_i)'s parent is the bag
    of the earliest-eliminated vertex of bag(v_i) - {v_i}.
    """
    if not graph:
        return TreeDecomposition([frozenset()], [None])
    order = _elimination_order(graph, strategy)
    position = {v: i for i, v in enumerate(order)}
    adj: Graph = {v: set(ns) for v, ns in graph.items()}
    bags: List[FrozenSet[V]] = []
    higher_neighbours: List[List[V]] = []
    for v in order:
        later = [u for u in adj[v] if position[u] > position[v]]
        bags.append(frozenset([v] + later))
        higher_neighbours.append(later)
        for i in range(len(later)):
            for j in range(i + 1, len(later)):
                adj[later[i]].add(later[j])
                adj[later[j]].add(later[i])
        for u in later:
            adj[u].discard(v)
    parent: List[Optional[int]] = [None] * len(bags)
    for i, later in enumerate(higher_neighbours):
        if later:
            first = min(later, key=lambda u: position[u])
            parent[i] = position[first]
    # ensure a single root: attach stray roots (disconnected components)
    roots = [i for i, p in enumerate(parent) if p is None]
    for extra in roots[1:]:
        parent[extra] = roots[0]
    # re-root at roots[0]
    td = TreeDecomposition(bags, parent)
    return td


# ------------------------------------------------------------- nice form


@dataclass
class NiceNode:
    """kind in {'leaf', 'introduce', 'forget', 'join'}; ``vertex`` set for
    introduce/forget; children indexes."""

    kind: str
    bag: FrozenSet[V]
    vertex: Optional[V] = None
    children: Tuple[int, ...] = ()


@dataclass
class NiceTreeDecomposition:
    nodes: List[NiceNode]
    root: int

    @property
    def width(self) -> int:
        return max((len(n.bag) for n in self.nodes), default=1) - 1

    def bottom_up(self) -> List[int]:
        order: List[int] = []
        stack = [self.root]
        while stack:
            i = stack.pop()
            order.append(i)
            stack.extend(self.nodes[i].children)
        order.reverse()
        return order


def make_nice(td: TreeDecomposition) -> NiceTreeDecomposition:
    """Normalise into leaf/introduce/forget/join nodes with the root bag
    empty (standard construction)."""
    nodes: List[NiceNode] = []

    def add(node: NiceNode) -> int:
        nodes.append(node)
        return len(nodes) - 1

    def chain_to(bag_from: FrozenSet[V], bag_to: FrozenSet[V], child: int) -> int:
        """Forget then introduce, one vertex at a time, from child upward."""
        current_bag = bag_from
        current = child
        for v in sorted(bag_from - bag_to, key=str):
            current_bag = current_bag - {v}
            current = add(NiceNode("forget", current_bag, vertex=v, children=(current,)))
        for v in sorted(bag_to - current_bag, key=str):
            current_bag = current_bag | {v}
            current = add(NiceNode("introduce", current_bag, vertex=v, children=(current,)))
        return current

    # iterative post-order build (graphs can be deep paths)
    built: Dict[int, int] = {}
    stack: List[Tuple[int, bool]] = [(td.root, False)]
    while stack:
        i, expanded = stack.pop()
        if not expanded:
            stack.append((i, True))
            for c in td.children[i]:
                stack.append((c, False))
            continue
        bag = td.bags[i]
        kids = td.children[i]
        if not kids:
            current = add(NiceNode("leaf", frozenset()))
            built[i] = chain_to(frozenset(), bag, current)
            continue
        sub = [chain_to(td.bags[c], bag, built[c]) for c in kids]
        current = sub[0]
        for other in sub[1:]:
            current = add(NiceNode("join", bag, children=(current, other)))
        built[i] = current

    top = built[td.root]
    # forget everything so the root bag is empty
    current = top
    bag = td.bags[td.root]
    for v in sorted(bag, key=str):
        bag = bag - {v}
        current = add(NiceNode("forget", bag, vertex=v, children=(current,)))
    return NiceTreeDecomposition(nodes, current)
