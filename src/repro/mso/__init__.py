"""MSO on bounded-treewidth structures (Section 3.3).

Courcelle's theorem (3.11) and its counting/enumeration extensions (3.12)
are reproduced through a *pluggable dynamic-programming framework* over
tree decompositions: compiling arbitrary MSO into tree automata is
non-elementary and not exercised by the survey's claims, so — as recorded
in DESIGN.md — each canonical MSO property (k-colourability, independent
set, vertex cover, dominating set) ships as a DP specification, and the
framework delivers exactly the behaviours the theorems assert: linear-time
decision and counting, and enumeration of the (set-valued!) answers with
delay linear in the output size.

* :mod:`~repro.mso.treedecomp` — tree decompositions: heuristics
  (min-degree / min-fill), validation, nice-form normalisation;
* :mod:`~repro.mso.courcelle` — the DP harness over nice decompositions;
* :mod:`~repro.mso.properties` — the property specifications;
* :mod:`~repro.mso.enumeration` — DP-guided enumeration of all satisfying
  vertex sets (Theorem 3.12), including the Section 3.3.1 example showing
  why constant delay is impossible for free set variables.
"""

from repro.mso.treedecomp import TreeDecomposition, tree_decomposition
from repro.mso.courcelle import run_dp, count_solutions, decide, optimise
from repro.mso.properties import (
    IndependentSetProperty,
    VertexCoverProperty,
    DominatingSetProperty,
    ColoringProperty,
)
from repro.mso.enumeration import enumerate_solutions

__all__ = [
    "TreeDecomposition",
    "tree_decomposition",
    "run_dp",
    "count_solutions",
    "decide",
    "optimise",
    "IndependentSetProperty",
    "VertexCoverProperty",
    "DominatingSetProperty",
    "ColoringProperty",
    "enumerate_solutions",
]
