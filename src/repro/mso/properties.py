"""Canonical MSO-definable properties as DP specifications.

Each class instantiates :class:`~repro.mso.courcelle.PropertySpec` with the
textbook bounded-treewidth dynamic program:

* :class:`IndependentSetProperty` — X independent: labels in/out, an
  introduced vertex may not be 'in' next to an 'in' bag neighbour.  MSO:
  forall u, v (X(u) /\\ X(v) -> not E(u, v)).
* :class:`VertexCoverProperty` — X covers every edge: an introduced
  vertex 'out' may not see an 'out' neighbour.
* :class:`DominatingSetProperty` — labels in / dominated / undominated;
  a vertex may only be forgotten once dominated.
* :class:`ColoringProperty` — proper k-colouring: labels 0..k-1,
  adjacent bag vertices must differ.  MSO: the existence of a partition
  into k independent sets (3-colourability for k = 3).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Optional, Tuple

from repro.mso.courcelle import PropertySpec

V = Hashable

IN = "in"
OUT = "out"
DOMINATED = "dom"
UNDOMINATED = "und"


class IndependentSetProperty(PropertySpec):
    """Vertex sets X with no edge inside X."""

    labels = (IN, OUT)

    def introduce_labels(self, vertex: V, label: Any, bag_state: Dict[V, Any],
                         neighbours: Iterable[V]) -> Optional[Dict[V, Any]]:
        if label == IN and any(bag_state.get(u) == IN for u in neighbours):
            return None
        bag_state[vertex] = label
        return bag_state

    def solution_labels(self) -> Tuple[Any, ...]:
        return (IN,)


class VertexCoverProperty(PropertySpec):
    """Vertex sets X meeting every edge."""

    labels = (IN, OUT)

    def introduce_labels(self, vertex: V, label: Any, bag_state: Dict[V, Any],
                         neighbours: Iterable[V]) -> Optional[Dict[V, Any]]:
        if label == OUT and any(bag_state.get(u) == OUT for u in neighbours):
            return None
        bag_state[vertex] = label
        return bag_state

    def solution_labels(self) -> Tuple[Any, ...]:
        return (IN,)


class DominatingSetProperty(PropertySpec):
    """Vertex sets X with every vertex in X or adjacent to X."""

    labels = (IN, DOMINATED, UNDOMINATED)

    def introduce_labels(self, vertex: V, label: Any, bag_state: Dict[V, Any],
                         neighbours: Iterable[V]) -> Optional[Dict[V, Any]]:
        neighbours = list(neighbours)
        if label == IN:
            # the new member dominates its bag neighbours
            for u in neighbours:
                if bag_state[u] == UNDOMINATED:
                    bag_state[u] = DOMINATED
            bag_state[vertex] = IN
            return bag_state
        dominated = any(bag_state[u] == IN for u in neighbours)
        bag_state[vertex] = DOMINATED if (dominated or label == DOMINATED) else UNDOMINATED
        # the label argument picks the *claimed* status; only the
        # consistent claim survives (claiming DOMINATED without a bag
        # witness is allowed: a future neighbour may still dominate —
        # soundness is enforced at forget time via the actual flag)
        if label == DOMINATED and not dominated:
            # cannot claim domination that has not happened yet
            return None
        if label == UNDOMINATED and dominated:
            return None
        return bag_state

    def forget_ok(self, vertex: V, label: Any, bag_state: Dict[V, Any]) -> bool:
        return label in (IN, DOMINATED)

    def join_compatible(self, label_left: Any, label_right: Any) -> Optional[Any]:
        if (label_left == IN) != (label_right == IN):
            return None  # membership in X must agree
        if label_left == IN:
            return IN
        if DOMINATED in (label_left, label_right):
            return DOMINATED
        return UNDOMINATED

    def solution_labels(self) -> Tuple[Any, ...]:
        return (IN,)


class ColoringProperty(PropertySpec):
    """Proper k-colourings (k independent sets partitioning V)."""

    def __init__(self, k: int = 3):
        self.k = k
        self.labels = tuple(range(k))

    def introduce_labels(self, vertex: V, label: Any, bag_state: Dict[V, Any],
                         neighbours: Iterable[V]) -> Optional[Dict[V, Any]]:
        if any(bag_state.get(u) == label for u in neighbours):
            return None
        bag_state[vertex] = label
        return bag_state

    def solution_labels(self) -> Tuple[Any, ...]:
        return ()  # colourings have no distinguished 'solution set' size
