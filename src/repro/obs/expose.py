"""Exposure surfaces for the always-on registry.

Three ways out of the process, all stdlib-only:

* :func:`openmetrics_text` — the registry rendered in OpenMetrics /
  Prometheus text exposition format; :func:`start_metrics_server`
  serves it on ``/metrics`` via ``http.server`` (``repro
  metrics-serve``), and :class:`MetricsFlusher` writes it (plus a JSON
  snapshot) to a file on a timer for scrape-less deployments.
* :class:`EventLog` — rotating NDJSON structured event log for
  *discrete* events that do not belong in a counter: pool respawns,
  delta-log overflows, refresh fallbacks, guarantee violations.  Every
  event also lands in an in-memory ring so ``repro top`` and tests can
  read recent events without a file.

Naming: registry names are dotted (``plancache.hits``); exposition
names are the same words with dots flattened to underscores and a
``repro_`` prefix (``repro_plancache_hits_total``).  Counters carry
the OpenMetrics-mandated ``_total`` suffix; sketches render as
``summary`` metrics with ``quantile`` labels plus ``_count``/``_sum``.
"""

from __future__ import annotations

import collections
import io
import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Deque, Dict, List, Optional, Tuple

from .registry import registry

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8")

#: quantiles exposed for every sketch (matches ``QuantileSketch.summary``)
QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99, 0.999)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: label-value escaping table from the OpenMetrics text-format spec
#: (ABNF ``escaped-char``): inside double-quoted label values exactly
#: three characters are escaped, each to a two-character sequence.
_LABEL_ESCAPES: Dict[str, str] = {
    "\\": "\\\\",  # backslash      -> '\\'
    '"': '\\"',    # double quote   -> '\"'
    "\n": "\\n",   # line feed      -> '\n'
}
_LABEL_UNESCAPES = {v[1]: k for k, v in _LABEL_ESCAPES.items()}


def escape_label_value(value: str) -> str:
    """Escape a label value for exposition (backslash first, so the
    escape characters themselves never double-escape)."""
    value = value.replace("\\", "\\\\")
    value = value.replace('"', '\\"')
    return value.replace("\n", "\\n")


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value`; unknown escape sequences pass
    through with the backslash dropped, per the spec's parser guidance."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            out.append(_LABEL_UNESCAPES.get(value[i + 1], value[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def metric_name(raw: str) -> str:
    """Registry name → exposition name: ``plancache.hits`` →
    ``repro_plancache_hits``."""
    name = "repro_" + _SANITIZE.sub("_", raw)
    if not _NAME_OK.match(name):  # pragma: no cover - prefix guarantees it
        name = "repro_invalid"
    return name


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return "0"


def openmetrics_text(extra_info: Optional[Dict[str, str]] = None) -> str:
    """The whole registry in OpenMetrics text format (ends in ``# EOF``).

    Includes plan-cache stats as gauges so one scrape covers the full
    namespace the issue asks for: counters, per-enumerator delay and
    per-phase latency quantiles, plan-cache/delta-refresh/arena-cache
    rates."""
    reg = registry()
    out = io.StringIO()

    if extra_info:
        labels = ",".join(
            f'{_SANITIZE.sub("_", k)}="{escape_label_value(str(v))}"'
            for k, v in sorted(extra_info.items()))
        out.write("# TYPE repro_build_info gauge\n")
        out.write(f"repro_build_info{{{labels}}} 1\n")

    snap = reg.snapshot()
    for raw in sorted(snap["counters"]):
        name = metric_name(raw)
        out.write(f"# TYPE {name} counter\n")
        out.write(f"{name}_total {snap['counters'][raw]}\n")

    for raw in sorted(snap["gauges"]):
        value = snap["gauges"][raw]
        if not isinstance(value, (int, float, bool)):
            continue
        name = metric_name(raw)
        out.write(f"# TYPE {name} gauge\n")
        out.write(f"{name} {_fmt(value)}\n")

    # plan-cache stats live on the cache object, not in the registry —
    # export them as gauges under their own prefix
    try:
        from ..core.plancache import plan_cache
        stats = plan_cache().stats()
    except Exception:  # pragma: no cover - import-order safety
        stats = {}
    for key in sorted(stats):
        name = metric_name(f"plancache_state.{key}")
        out.write(f"# TYPE {name} gauge\n")
        out.write(f"{name} {_fmt(stats[key])}\n")

    for raw, sketch in sorted(reg.sketches().items()):
        name = metric_name(raw)
        out.write(f"# TYPE {name} summary\n")
        for q in QUANTILES:
            line = f'{name}{{quantile="{q}"}} {sketch.quantile(q)!r}'
            if q >= 0.99:
                # OpenMetrics exemplar syntax: the tail quantiles carry
                # the trace_id of the most recent traced observation in
                # their bucket, so a p99 outlier links to its request
                ex = sketch.exemplar(q)
                if ex is not None:
                    ts, trace_id, value = ex
                    line += (f' # {{trace_id='
                             f'"{escape_label_value(trace_id)}"}}'
                             f' {value} {ts!r}')
            out.write(line + "\n")
        out.write(f"{name}_count {sketch.count}\n")
        out.write(f"{name}_sum {sketch.total}\n")

    out.write("# EOF\n")
    return out.getvalue()


_SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'            # metric name
    r'(\{.*?\})?\s+(\S+)'                     # optional labels, value
    r'(?:\s+#\s+(\{.*?\})\s+(\S+)(?:\s+(\S+))?)?$')  # optional exemplar
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_labels(labelstr: Optional[str]) -> Dict[str, str]:
    if not labelstr:
        return {}
    return {k: unescape_label_value(v)
            for k, v in _LABEL.findall(labelstr)}


def parse_openmetrics(text: str) -> Dict[str, Any]:
    """Parse exposition text back into structured form.

    The inverse of :func:`openmetrics_text` for the subset this module
    emits — used by ``repro top --url`` to render a remote endpoint and
    by the exposition lint test.  Label values are unescaped per the
    spec table, so the round-trip preserves ``\\n``, ``"`` and ``\\``.
    Returns ``{"types": {name: type}, "counters": {base: value},
    "gauges": {name: value}, "summaries": {base: {"quantiles": {q: v},
    "count": n, "sum": s, "exemplars": {q: {...}}}},
    "build_info": {label: value}, "eof": bool}``.
    """
    types: Dict[str, str] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    summaries: Dict[str, Dict[str, Any]] = {}
    build_info: Dict[str, str] = {}
    saw_eof = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE.match(line)
        if not m:
            raise ValueError(f"unparseable sample line: {line!r}")
        name, labelstr, rawval, exlabels, exval, exts = m.groups()
        value = float(rawval)
        labels = _parse_labels(labelstr)
        exemplar = None
        if exlabels is not None:
            exemplar = {"labels": _parse_labels(exlabels),
                        "value": float(exval),
                        "ts": float(exts) if exts is not None else None}
        if name == "repro_build_info":
            build_info = labels
        elif name.endswith("_total") and types.get(name[:-6]) == "counter":
            counters[name[:-6]] = value
        elif name.endswith("_count") and types.get(name[:-6]) == "summary":
            summaries.setdefault(name[:-6], {"quantiles": {}})["count"] = value
        elif name.endswith("_sum") and types.get(name[:-4]) == "summary":
            summaries.setdefault(name[:-4], {"quantiles": {}})["sum"] = value
        elif "quantile" in labels and types.get(name) == "summary":
            entry = summaries.setdefault(name, {"quantiles": {}})
            q = float(labels["quantile"])
            entry["quantiles"][q] = value
            if exemplar is not None:
                entry.setdefault("exemplars", {})[q] = exemplar
        else:
            gauges[name] = value
    return {"types": types, "counters": counters, "gauges": gauges,
            "summaries": summaries, "build_info": build_info,
            "eof": saw_eof}


# ---------------------------------------------------------------- HTTP


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?")[0] in ("/metrics", "/"):
            body = openmetrics_text(
                getattr(self.server, "extra_info", None)).encode()
            self.send_response(200)
            self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_response(404)
            self.end_headers()

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # scrapes every few seconds would spam stderr


def start_metrics_server(host: str = "127.0.0.1", port: int = 9464,
                         extra_info: Optional[Dict[str, str]] = None,
                         ) -> ThreadingHTTPServer:
    """Start the ``/metrics`` endpoint on a daemon thread; returns the
    server (``.server_address`` has the bound port — pass port=0 for an
    ephemeral one; ``.shutdown()`` stops it)."""
    server = ThreadingHTTPServer((host, port), _MetricsHandler)
    server.daemon_threads = True
    server.extra_info = extra_info  # type: ignore[attr-defined]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics", daemon=True)
    thread.start()
    return server


# ---------------------------------------------------------------- flusher


class MetricsFlusher:
    """Periodically write the exposition text (and a JSON snapshot) to
    a file — the scrape-less variant of the HTTP endpoint.  Writes are
    atomic (tmp + rename) so readers never see a torn file."""

    def __init__(self, path: str, interval: float = 10.0) -> None:
        self.path = path
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def flush_once(self) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(openmetrics_text())
        os.replace(tmp, self.path)
        json_path = self.path + ".json"
        tmp = json_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(registry().snapshot(), fh, indent=2, default=str)
        os.replace(tmp, json_path)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.flush_once()
            except OSError:  # pragma: no cover - disk-full etc.
                pass

    def start(self) -> "MetricsFlusher":
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-flush", daemon=True)
        self._thread.start()
        return self

    def stop(self, final_flush: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        if final_flush:
            self.flush_once()


# ---------------------------------------------------------------- events


class EventLog:
    """Structured discrete-event log: in-memory ring always, NDJSON
    file with size-based rotation when a path is configured.

    Rotation: when the file exceeds ``max_bytes`` it is renamed to
    ``<path>.1`` (replacing any previous ``.1``) and a fresh file is
    started — two generations bound disk use at ~2x ``max_bytes``."""

    def __init__(self, path: Optional[str] = None,
                 max_bytes: int = 4 * 1024 * 1024,
                 ring_size: int = 256) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self.ring: Deque[Dict[str, Any]] = collections.deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._written = 0
        if path and os.path.exists(path):
            self._written = os.path.getsize(path)

    def emit(self, name: str, **fields: Any) -> Dict[str, Any]:
        event = {"ts": time.time(), "event": name, "pid": os.getpid()}
        event.update(fields)
        line = json.dumps(event, default=str, sort_keys=True)
        with self._lock:
            self.ring.append(event)
            if self.path:
                if self._written + len(line) + 1 > self.max_bytes:
                    self._rotate()
                try:
                    with open(self.path, "a") as fh:
                        fh.write(line + "\n")
                    self._written += len(line) + 1
                except OSError:  # pragma: no cover - disk-full etc.
                    pass
        return event

    def _rotate(self) -> None:
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:  # pragma: no cover
            pass
        self._written = 0

    def recent(self, name: Optional[str] = None,
               limit: int = 50) -> List[Dict[str, Any]]:
        with self._lock:
            events = list(self.ring)
        if name is not None:
            events = [e for e in events if e["event"] == name]
        return events[-limit:]

    def clear(self) -> None:
        with self._lock:
            self.ring.clear()


_EVENT_LOG = EventLog()


def event_log() -> EventLog:
    """The process-wide event log (ring-only until configured)."""
    return _EVENT_LOG


def configure_event_log(path: Optional[str],
                        max_bytes: int = 4 * 1024 * 1024) -> EventLog:
    """Point the process event log at an NDJSON file (None → ring-only).
    Registry counter ``events.emitted`` still tracks volume either way."""
    global _EVENT_LOG
    ring = _EVENT_LOG.ring
    _EVENT_LOG = EventLog(path, max_bytes=max_bytes, ring_size=ring.maxlen)
    _EVENT_LOG.ring.extend(ring)
    return _EVENT_LOG


def emit_event(name: str, **fields: Any) -> Dict[str, Any]:
    """Emit a discrete structured event (also counts ``event.<name>``
    in the registry so rates are scrapeable)."""
    registry().count("event." + name)
    return _EVENT_LOG.emit(name, **fields)
